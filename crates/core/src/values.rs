//! Value summaries: the paper's declared future-work extension (§1
//! scopes value content out of the core study; the XSKETCH line's
//! "structure and value synopses" [16] is the cited antecedent).
//!
//! A [`ValueIndex`] attaches to each TreeSketch cluster an equi-depth
//! summary of the numeric values carried by the cluster's elements:
//! a sorted sample (exact when the extent is small, quantile-thinned
//! otherwise) plus the fraction of elements carrying any value at all.
//! During `EVALQUERY`, a step's value predicates scale its selectivity
//! by the fraction of the endpoint cluster's values satisfying them —
//! the same independence posture as the structural assumptions of §4.3.
//!
//! Value summaries live *beside* the structural synopsis: their size is
//! accounted separately ([`ValueIndex::size_bytes`], 4 bytes per stored
//! sample value under the DESIGN.md §4.1 accounting convention).

use crate::sketch::{TreeSketch, TsNodeId};
use axqa_query::ValuePred;
use axqa_synopsis::StableSummary;
use axqa_xml::Document;

/// Per-cluster value summary.
#[derive(Debug, Clone, Default)]
pub struct ValueSummary {
    /// Sorted value sample: all values when `exact`, equi-depth
    /// quantiles otherwise.
    pub sample: Vec<f64>,
    /// Elements of the extent carrying a value.
    pub with_value: u64,
    /// Extent size.
    pub total: u64,
    /// Whether `sample` holds every value (small extents).
    pub exact: bool,
}

impl ValueSummary {
    /// Fraction of the cluster's elements satisfying *all* predicates.
    pub fn selectivity(&self, preds: &[ValuePred]) -> f64 {
        if preds.is_empty() {
            return 1.0;
        }
        if self.total == 0 || self.sample.is_empty() {
            return 0.0;
        }
        let satisfying = self
            .sample
            .iter()
            .filter(|&&v| preds.iter().all(|p| p.test(Some(v))))
            .count();
        let value_fraction = self.with_value as f64 / self.total as f64;
        (satisfying as f64 / self.sample.len() as f64) * value_fraction
    }

    /// Fallible variant of [`ValueSummary::selectivity`]: a non-trivial
    /// predicate over a cluster with a zero element count is a
    /// division-by-zero-count, reported as
    /// [`crate::error::AxqaError::ZeroCountDivision`] instead of being
    /// coerced to selectivity 0.
    pub fn try_selectivity(&self, preds: &[ValuePred]) -> Result<f64, crate::error::AxqaError> {
        if !preds.is_empty() && self.total == 0 {
            return Err(crate::error::AxqaError::ZeroCountDivision {
                context: "value-predicate selectivity",
            });
        }
        Ok(self.selectivity(preds))
    }
}

/// Value summaries for every node of one TreeSketch.
#[derive(Debug, Clone)]
pub struct ValueIndex {
    per_node: Vec<ValueSummary>,
}

impl ValueIndex {
    /// Builds the index for `sketch` given the document, its stable
    /// summary (whose element→class assignment routes values), and the
    /// stable-class → sketch-node assignment produced by the builder.
    /// `capacity` bounds the per-node sample (values beyond it are
    /// thinned to equi-depth quantiles).
    ///
    /// # Panics
    ///
    /// If `stable_assignment` does not cover the stable summary
    /// (`stable_assignment.len() != stable.len()`).
    pub fn build(
        doc: &Document,
        stable: &StableSummary,
        sketch: &TreeSketch,
        stable_assignment: &[u32],
        capacity: usize,
    ) -> ValueIndex {
        assert_eq!(stable_assignment.len(), stable.len());
        let mut values: Vec<Vec<f64>> = vec![Vec::new(); sketch.len()];
        let mut with_value = vec![0u64; sketch.len()];
        for element in doc.node_ids() {
            let class = stable.class_of(element);
            let node = stable_assignment[class.index()] as usize;
            if let Some(v) = doc.value(element) {
                values[node].push(v);
                with_value[node] = with_value[node].saturating_add(1);
            }
        }
        let per_node = values
            .into_iter()
            .enumerate()
            .map(|(i, mut vs)| {
                vs.sort_by(f64::total_cmp);
                let exact = vs.len() <= capacity;
                let sample = if exact {
                    vs
                } else {
                    // Equi-depth thinning: the k-th of `capacity` samples
                    // is the value at quantile (k + ½) / capacity.
                    (0..capacity)
                        .map(|k| vs[(k * vs.len() + vs.len() / 2) / capacity])
                        .collect()
                };
                ValueSummary {
                    sample,
                    with_value: with_value[i],
                    total: sketch.node(TsNodeId(axqa_xml::dense_id(i))).count,
                    exact,
                }
            })
            .collect();
        ValueIndex { per_node }
    }

    /// Builds the index for the *exact* TreeSketch of a stable summary
    /// (identity assignment).
    pub fn build_for_stable(
        doc: &Document,
        stable: &StableSummary,
        sketch: &TreeSketch,
        capacity: usize,
    ) -> ValueIndex {
        let identity: Vec<u32> = (0..axqa_xml::dense_id(stable.len())).collect();
        ValueIndex::build(doc, stable, sketch, &identity, capacity)
    }

    /// The summary of one cluster.
    pub fn summary(&self, node: TsNodeId) -> &ValueSummary {
        &self.per_node[node.index()]
    }

    /// Selectivity of `preds` at `node`.
    pub fn selectivity(&self, node: TsNodeId, preds: &[ValuePred]) -> f64 {
        self.per_node[node.index()].selectivity(preds)
    }

    /// Additional bytes the value layer occupies: 4 per stored sample
    /// value + 8 per node (counts).
    pub fn size_bytes(&self) -> usize {
        self.per_node.iter().map(|s| 8 + 4 * s.sample.len()).sum()
    }

    /// Serializes the index (line-oriented, like the other formats):
    ///
    /// ```text
    /// values v1
    /// node <id> <with_value> <total> <exact 0|1> <v1> <v2> …
    /// ```
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from(
            "values v1
",
        );
        for (i, s) in self.per_node.iter().enumerate() {
            let _ = write!(
                out,
                "node {} {} {} {}",
                i,
                s.with_value,
                s.total,
                u8::from(s.exact)
            );
            for v in &s.sample {
                let _ = write!(out, " {v}");
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Parses the text format; the node count must match the sketch the
    /// index is used with.
    pub fn from_text(text: &str) -> Result<ValueIndex, String> {
        let mut per_node: Vec<ValueSummary> = Vec::new();
        let mut seen_header = false;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let Some(tag) = parts.next() else {
                continue; // unreachable: the line is non-empty after trim
            };
            match tag {
                "values" => {
                    if parts.next() != Some("v1") {
                        return Err(format!("line {}: unsupported version", lineno + 1));
                    }
                    seen_header = true;
                }
                "node" => {
                    let id: usize = parts
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| format!("line {}: bad node id", lineno + 1))?;
                    if id != per_node.len() {
                        return Err(format!("line {}: node ids must be dense", lineno + 1));
                    }
                    let mut num = |what: &str| -> Result<f64, String> {
                        parts
                            .next()
                            .and_then(|t| t.parse().ok())
                            .ok_or_else(|| format!("line {}: bad {what}", lineno + 1))
                    };
                    let with_value = axqa_xml::f64_to_u64(num("with_value")?);
                    let total = axqa_xml::f64_to_u64(num("total")?);
                    let exact = num("exact")? != 0.0;
                    let sample: Result<Vec<f64>, String> = parts
                        .map(|t| {
                            t.parse()
                                .map_err(|_| format!("line {}: bad sample value", lineno + 1))
                        })
                        .collect();
                    per_node.push(ValueSummary {
                        sample: sample?,
                        with_value,
                        total,
                        exact,
                    });
                }
                other => return Err(format!("line {}: unknown record {other:?}", lineno + 1)),
            }
        }
        if !seen_header {
            return Err("missing 'values v1' header".into());
        }
        Ok(ValueIndex { per_node })
    }

    /// Number of per-node summaries (must equal the sketch's node count).
    pub fn len(&self) -> usize {
        self.per_node.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.per_node.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{ts_build, BuildConfig};
    use crate::eval::{eval_query_with_values, EvalConfig};
    use crate::selectivity::estimate_selectivity;
    use axqa_eval::{selectivity as exact_selectivity, DocIndex};
    use axqa_query::parse_twig;
    use axqa_synopsis::build_stable;
    use axqa_xml::parse_document;

    fn bib() -> axqa_xml::Document {
        parse_document(
            "<bib>\
               <p><year>1992</year><k/></p>\
               <p><year>2001</year><k/></p>\
               <p><year>2004</year><k/></p>\
               <p><year>2010</year><k/></p>\
             </bib>",
        )
        .unwrap()
    }

    #[test]
    fn exact_value_selectivity_on_stable_synopsis() {
        let doc = bib();
        let stable = build_stable(&doc);
        let sketch = crate::sketch::TreeSketch::from_stable(&stable);
        let values = ValueIndex::build_for_stable(&doc, &stable, &sketch, 64);
        let index = DocIndex::build(&doc);
        for twig in [
            "q1: q0 //year[. > 2000]",
            "q1: q0 //year[. <= 1992]",
            "q1: q0 //year[. >= 2001][. < 2010]",
        ] {
            let query = parse_twig(twig).unwrap();
            let exact = exact_selectivity(&doc, &index, &query);
            let result =
                eval_query_with_values(&sketch, &query, &EvalConfig::default(), Some(&values));
            let estimate = result.map_or(0.0, |r| estimate_selectivity(&r, &query));
            assert!(
                (exact - estimate).abs() < 1e-9,
                "{twig}: exact {exact} vs estimate {estimate}"
            );
        }
    }

    #[test]
    fn without_value_index_predicates_are_ignored() {
        let doc = bib();
        let stable = build_stable(&doc);
        let sketch = crate::sketch::TreeSketch::from_stable(&stable);
        let query = parse_twig("q1: q0 //year[. > 2000]").unwrap();
        let result = crate::eval::eval_query(&sketch, &query, &EvalConfig::default()).unwrap();
        // Structural upper bound: all 4 years.
        assert_eq!(estimate_selectivity(&result, &query), 4.0);
    }

    #[test]
    fn quantile_thinning_stays_close() {
        // 1000 values 0..1000; capacity 10 → deciles; P(> 700) ≈ 0.3.
        let mut b = axqa_xml::DocumentBuilder::new("r");
        for i in 0..1000 {
            b.leaf_with_value("v", i as f64);
        }
        let doc = b.finish();
        let stable = build_stable(&doc);
        let sketch = crate::sketch::TreeSketch::from_stable(&stable);
        let values = ValueIndex::build_for_stable(&doc, &stable, &sketch, 10);
        let v_label = doc.labels().get("v").unwrap();
        let v_node = sketch.nodes_with_label(v_label).next().unwrap();
        assert!(!values.summary(v_node).exact);
        let sel = values.selectivity(
            v_node,
            &[axqa_query::ValuePred {
                op: axqa_query::ValueOp::Gt,
                constant: 700.0,
            }],
        );
        assert!((sel - 0.3).abs() < 0.1, "sel = {sel}");
    }

    #[test]
    fn value_index_roundtrips_through_text() {
        let doc = bib();
        let stable = build_stable(&doc);
        let sketch = crate::sketch::TreeSketch::from_stable(&stable);
        let values = ValueIndex::build_for_stable(&doc, &stable, &sketch, 64);
        let back = ValueIndex::from_text(&values.to_text()).unwrap();
        assert_eq!(back.len(), values.len());
        for i in 0..back.len() {
            let (a, b) = (
                back.summary(TsNodeId(i as u32)),
                values.summary(TsNodeId(i as u32)),
            );
            assert_eq!(a.sample, b.sample);
            assert_eq!(a.with_value, b.with_value);
            assert_eq!(a.total, b.total);
            assert_eq!(a.exact, b.exact);
        }
        assert!(ValueIndex::from_text("garbage").is_err());
        assert!(ValueIndex::from_text(
            "values v2
"
        )
        .is_err());
    }

    #[test]
    fn values_survive_compression() {
        // Merge the p-classes; the year cluster's values pool together.
        let doc = bib();
        let stable = build_stable(&doc);
        let report = ts_build(&stable, &BuildConfig::with_budget(1));
        let sketch = report.sketch;
        let values = ValueIndex::build(&doc, &stable, &sketch, &report.stable_assignment, 64);
        let index = DocIndex::build(&doc);
        let query = parse_twig("q1: q0 //year[. > 2000]").unwrap();
        let exact = exact_selectivity(&doc, &index, &query);
        let result = eval_query_with_values(&sketch, &query, &EvalConfig::default(), Some(&values));
        let estimate = result.map_or(0.0, |r| estimate_selectivity(&r, &query));
        assert!(
            (exact - estimate).abs() < 1e-9,
            "exact {exact} vs estimate {estimate}"
        );
        assert!(values.size_bytes() > 0);
    }
}
