//! DBLP-style bibliography documents.
//!
//! Shallow, extremely regular records (article / inproceedings / book /
//! phdthesis) with a handful of optional fields: huge documents collapse
//! to tiny count-stable summaries, matching the paper's Table 1 (DBLP:
//! 48 MB, 1.59 M elements → 204 KB stable summary, the best compression
//! ratio of the four datasets).

use crate::GenConfig;
use axqa_xml::{Document, DocumentBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a DBLP-style document.
pub fn generate(config: &GenConfig) -> Document {
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xdb1_dbb1);
    let mut b = DocumentBuilder::new("dblp");
    while b.len() < config.target_elements {
        match rng.gen_range(0..10) {
            0..=5 => gen_inproceedings(&mut b, &mut rng),
            6..=8 => gen_article(&mut b, &mut rng),
            _ => gen_book(&mut b, &mut rng),
        }
    }
    b.finish()
}

fn gen_authors(b: &mut DocumentBuilder, rng: &mut StdRng) {
    for _ in 0..rng.gen_range(1..=4) {
        b.leaf("author");
    }
}

fn gen_article(b: &mut DocumentBuilder, rng: &mut StdRng) {
    b.open("article");
    gen_authors(b, rng);
    b.leaf("title");
    b.leaf("journal");
    b.leaf_with_value("year", rng.gen_range(1970..=2004) as f64);
    if rng.gen_bool(0.8) {
        b.leaf("pages");
    }
    if rng.gen_bool(0.6) {
        b.leaf("ee");
    }
    b.close();
}

fn gen_inproceedings(b: &mut DocumentBuilder, rng: &mut StdRng) {
    b.open("inproceedings");
    gen_authors(b, rng);
    b.leaf("title");
    b.leaf("booktitle");
    b.leaf_with_value("year", rng.gen_range(1970..=2004) as f64);
    if rng.gen_bool(0.8) {
        b.leaf("pages");
    }
    if rng.gen_bool(0.6) {
        b.leaf("ee");
    }
    if rng.gen_bool(0.5) {
        b.leaf("crossref");
    }
    b.close();
}

fn gen_book(b: &mut DocumentBuilder, rng: &mut StdRng) {
    b.open("book");
    gen_authors(b, rng);
    b.leaf("title");
    b.leaf("publisher");
    b.leaf_with_value("year", rng.gen_range(1970..=2004) as f64);
    if rng.gen_bool(0.5) {
        b.leaf("isbn");
    }
    b.close();
}

#[cfg(test)]
mod tests {
    use super::*;
    use axqa_synopsis::build_stable;

    #[test]
    fn compresses_extremely_well() {
        let doc = generate(&GenConfig::sized(50_000));
        let stable = build_stable(&doc);
        let ratio = stable.len() as f64 / doc.len() as f64;
        assert!(ratio < 0.01, "stable ratio {ratio}");
    }

    #[test]
    fn shallow_and_regular() {
        let doc = generate(&GenConfig::sized(5_000));
        assert_eq!(doc.height(), 2);
        for tag in ["article", "inproceedings", "book", "author", "title"] {
            assert!(doc.labels().get(tag).is_some(), "missing {tag}");
        }
    }
}
