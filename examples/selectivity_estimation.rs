// Examples/integration tests are demo code: panicking extractors are fine.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::arithmetic_side_effects
)]

//! Selectivity estimation for query optimization (§4.4): compare
//! TreeSketch and twig-XSketch estimates against exact counts across a
//! workload, at several space budgets.
//!
//! ```text
//! cargo run --release --example selectivity_estimation
//! ```
//!
//! This is a miniature of Figure 12 over the DBLP-style dataset: the
//! sort of estimates a cost-based XML query optimizer would consume.

use axqa::datagen::workload::{positive_workload, WorkloadConfig};
use axqa::prelude::*;
use axqa::xsketch::build::{build_xsketch, XsBuildConfig};
use axqa::xsketch::estimate::{xs_estimate_selectivity, XsEvalConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let doc = generate(
        Dataset::Dblp,
        &GenConfig {
            target_elements: 120_000,
            seed: 7,
        },
    );
    let stable = build_stable(&doc);
    let index = DocIndex::build(&doc);
    println!(
        "bibliography: {} elements, stable summary {} classes",
        doc.len(),
        stable.len()
    );

    // A 60-query twig workload with exact ground truth.
    let workload = positive_workload(
        &stable,
        &WorkloadConfig {
            count: 60,
            seed: 99,
            ..WorkloadConfig::default()
        },
    );
    let exact: Vec<f64> = workload
        .iter()
        .map(|q| selectivity(&doc, &index, q))
        .collect();
    let mut sorted = exact.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let sanity = sorted[sorted.len() / 10].max(1.0);

    // Build workload for the baseline (held out from evaluation).
    let build_queries: Vec<(TwigQuery, f64)> = positive_workload(
        &stable,
        &WorkloadConfig {
            count: 25,
            seed: 4242,
            ..WorkloadConfig::default()
        },
    )
    .into_iter()
    .map(|q| {
        let s = selectivity(&doc, &index, &q);
        (q, s)
    })
    .collect();

    println!(
        "\n{:>8}  {:>12}  {:>12}",
        "budget", "TreeSketch", "TwigXSketch"
    );
    for budget_kb in [2usize, 5, 10, 20] {
        let ts = ts_build(&stable, &BuildConfig::with_budget(budget_kb * 1024)).sketch;
        let xs = build_xsketch(
            &stable,
            &build_queries,
            &XsBuildConfig::with_budget(budget_kb * 1024),
        );
        let mut ts_err = 0.0;
        let mut xs_err = 0.0;
        for (query, &truth) in workload.iter().zip(&exact) {
            let e1 = axqa::core::selectivity::estimate_query_selectivity(
                &ts,
                query,
                &EvalConfig::default(),
            );
            let e2 = xs_estimate_selectivity(&xs, query, &XsEvalConfig::default());
            ts_err += (truth - e1).abs() / e1.max(sanity);
            xs_err += (truth - e2).abs() / e2.max(sanity);
        }
        let n = workload.len() as f64;
        println!(
            "{:>7}K  {:>11.2}%  {:>11.2}%",
            budget_kb,
            ts_err / n * 100.0,
            xs_err / n * 100.0
        );
    }

    // Show a handful of individual estimates.
    println!("\nsample estimates (10KB TreeSketch):");
    let ts = ts_build(&stable, &BuildConfig::with_budget(10 * 1024)).sketch;
    for (query, &truth) in workload.iter().zip(&exact).take(5) {
        let est =
            axqa::core::selectivity::estimate_query_selectivity(&ts, query, &EvalConfig::default());
        let line = query.to_string().replace('\n', " ; ");
        println!("  exact {truth:>10.0}  est {est:>12.1}   {line}");
    }
    Ok(())
}
