//! Value-set distances between weighted child groups.
//!
//! ESD reduces element distance to distances between *sets of values with
//! multiplicities* (§5): the children of two elements that share a tag,
//! where the distance between two individual children is ESD itself,
//! recursively. The paper plugs in MAC (Ioannidis–Poosala) and mentions
//! EMD as an alternative. We implement:
//!
//! * [`SetDistance::GreedyMac`] — a MAC-style greedy transport: mass is
//!   matched in increasing pairwise distance; *unmatched* mass `r` of an
//!   element with expected subtree size `|e|` costs `r^p · |e|` with
//!   `p = 2` by default. The superlinear exponent realizes the "heavy
//!   penalty \[for\] the same sub-tree in different multiplicities" the
//!   paper attributes to MAC, and is what makes ESD prefer the
//!   correlation-preserving answer `T2` in Figure 10 (a linear penalty
//!   ranks `T1` and `T2` equally, like tree-edit distance does).
//! * [`SetDistance::Emd`] — an exact earth-mover distance with deletion/
//!   insertion costs, solved as a balanced transportation problem by
//!   successive shortest paths. Unmatched-mass cost uses the same
//!   `r^p · |e|` shape applied post-hoc to residual masses.
//!
//! Both operate on items `(size, multiplicity)` plus a pairwise distance
//! matrix supplied by the ESD recursion.

/// One item of a weighted value set.
#[derive(Debug, Clone, Copy)]
pub struct SetItem {
    /// Expected subtree size of the value (deletion penalty scale).
    pub size: f64,
    /// Multiplicity (may be fractional).
    pub mult: f64,
}

/// The pluggable value-set distance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SetDistance {
    /// MAC-style greedy matching; `exponent` is the unmatched-mass
    /// penalty power `p` (default 2.0).
    GreedyMac {
        /// Penalty exponent on unmatched multiplicity.
        exponent: f64,
    },
    /// Exact min-cost transport; same residual penalty shape.
    Emd {
        /// Penalty exponent on unmatched multiplicity.
        exponent: f64,
    },
}

impl Default for SetDistance {
    fn default() -> Self {
        SetDistance::GreedyMac { exponent: 2.0 }
    }
}

impl SetDistance {
    /// Distance between value sets `u` and `v` given the pairwise
    /// distance matrix `dist[i][j]` (row-major: `dist[i * v.len() + j]`).
    ///
    /// Either side may be empty — the §5 transformation (insert an
    /// artificial element at distance `|e|`) reduces to pure residual
    /// penalties.
    pub fn eval(&self, u: &[SetItem], v: &[SetItem], dist: &[f64]) -> f64 {
        debug_assert_eq!(dist.len(), u.len() * v.len());
        match *self {
            SetDistance::GreedyMac { exponent } => greedy_mac(u, v, dist, exponent),
            SetDistance::Emd { exponent } => emd(u, v, dist, exponent),
        }
    }
}

fn residual_penalty(item: &SetItem, remaining: f64, exponent: f64) -> f64 {
    if remaining <= 0.0 {
        0.0
    } else {
        remaining.powf(exponent) * item.size
    }
}

/// Greedy transport: match mass along pairs in increasing distance.
fn greedy_mac(u: &[SetItem], v: &[SetItem], dist: &[f64], exponent: f64) -> f64 {
    let mut ru: Vec<f64> = u.iter().map(|i| i.mult).collect();
    let mut rv: Vec<f64> = v.iter().map(|i| i.mult).collect();
    let mut pairs: Vec<(usize, usize)> = (0..u.len())
        .flat_map(|i| (0..v.len()).map(move |j| (i, j)))
        .collect();
    pairs.sort_unstable_by(|&(i1, j1), &(i2, j2)| {
        dist[i1 * v.len() + j1].total_cmp(&dist[i2 * v.len() + j2])
    });
    let mut cost = 0.0;
    for (i, j) in pairs {
        if ru[i] <= 0.0 || rv[j] <= 0.0 {
            continue;
        }
        let m = ru[i].min(rv[j]);
        cost += m * dist[i * v.len() + j];
        ru[i] -= m;
        rv[j] -= m;
    }
    for (item, &r) in u.iter().zip(&ru) {
        cost += residual_penalty(item, r, exponent);
    }
    for (item, &r) in v.iter().zip(&rv) {
        cost += residual_penalty(item, r, exponent);
    }
    cost
}

/// Exact transport with optional non-matching: minimize
/// `Σ f_ij · d_ij + residual penalties of unmatched mass`. The residual
/// penalty is linearized at the full mass (rate `r^p·|e| / r`), making
/// the flow problem linear; the reported cost then applies the exact
/// `r^p · |e|` penalty to the leftover masses (equal to the linearized
/// one when `p = 1`; never larger, since leftovers shrink).
///
/// Solved exactly as a balanced transportation problem by successive
/// shortest paths: supplies are the `u` masses plus an *insert* node
/// feeding unmatched `v` demand; demands are the `v` masses plus a
/// *delete* node absorbing unmatched `u` mass. Only source/sink arcs
/// have finite capacity, so at most `|u| + |v| + 2` augmentations occur.
fn emd(u: &[SetItem], v: &[SetItem], dist: &[f64], exponent: f64) -> f64 {
    if u.is_empty() || v.is_empty() {
        return u
            .iter()
            .map(|i| residual_penalty(i, i.mult, exponent))
            .sum::<f64>()
            + v.iter()
                .map(|i| residual_penalty(i, i.mult, exponent))
                .sum::<f64>();
    }
    let nu = u.len();
    let nv = v.len();
    let rate = |item: &SetItem| {
        if item.mult > 0.0 {
            residual_penalty(item, item.mult, exponent) / item.mult
        } else {
            0.0
        }
    };
    let sum_u: f64 = u.iter().map(|i| i.mult).sum();
    let sum_v: f64 = v.iter().map(|i| i.mult).sum();

    // Node layout: 0 = source, 1..=nu = u items, nu+1 = insert,
    // nu+2..=nu+1+nv = v items, nu+nv+2 = delete, nu+nv+3 = sink.
    let source = 0usize;
    let insert = nu + 1;
    let delete = nu + nv + 2;
    let sink = nu + nv + 3;
    let n_nodes = sink + 1;
    let mut flow = MinCostFlow::new(n_nodes);
    for (i, item) in u.iter().enumerate() {
        flow.add_edge(source, 1 + i, item.mult, 0.0);
        flow.add_edge(1 + i, delete, f64::INFINITY, rate(item));
        for j in 0..nv {
            flow.add_edge(1 + i, nu + 2 + j, f64::INFINITY, dist[i * nv + j]);
        }
    }
    flow.add_edge(source, insert, sum_v, 0.0);
    flow.add_edge(insert, delete, f64::INFINITY, 0.0);
    for (j, item) in v.iter().enumerate() {
        flow.add_edge(insert, nu + 2 + j, f64::INFINITY, rate(item));
        flow.add_edge(nu + 2 + j, sink, item.mult, 0.0);
    }
    flow.add_edge(delete, sink, sum_u, 0.0);
    flow.run(source, sink);

    // Reconstruct: matched transport at true cost; leftovers at the
    // exact superlinear penalty.
    let mut cost = 0.0;
    let mut ru: Vec<f64> = u.iter().map(|i| i.mult).collect();
    let mut rv: Vec<f64> = v.iter().map(|i| i.mult).collect();
    for i in 0..nu {
        for j in 0..nv {
            let f = flow.flow_between(1 + i, nu + 2 + j);
            if f > 1e-12 {
                cost += f * dist[i * nv + j];
                ru[i] -= f;
                rv[j] -= f;
            }
        }
    }
    for (item, &r) in u.iter().zip(&ru) {
        cost += residual_penalty(item, r.max(0.0), exponent);
    }
    for (item, &r) in v.iter().zip(&rv) {
        cost += residual_penalty(item, r.max(0.0), exponent);
    }
    cost
}

/// Successive-shortest-path min-cost max-flow with `f64` capacities.
/// Costs are non-negative; graphs here are tiny (≤ a few dozen nodes),
/// so Bellman–Ford per augmentation is fine.
struct MinCostFlow {
    /// Per edge: (to, capacity remaining, cost); edges stored in pairs
    /// (forward at even index, backward at odd).
    to: Vec<usize>,
    cap: Vec<f64>,
    cost: Vec<f64>,
    /// Adjacency: node → edge indices.
    adj: Vec<Vec<usize>>,
}

impl MinCostFlow {
    fn new(n: usize) -> MinCostFlow {
        MinCostFlow {
            to: Vec::new(),
            cap: Vec::new(),
            cost: Vec::new(),
            adj: vec![Vec::new(); n],
        }
    }

    fn add_edge(&mut self, from: usize, to: usize, cap: f64, cost: f64) {
        let e = self.to.len();
        self.to.push(to);
        self.cap.push(cap);
        self.cost.push(cost);
        self.adj[from].push(e);
        self.to.push(from);
        self.cap.push(0.0);
        self.cost.push(-cost);
        self.adj[to].push(e + 1);
    }

    fn run(&mut self, source: usize, sink: usize) {
        loop {
            // Bellman–Ford shortest path by cost.
            let n = self.adj.len();
            let mut dist = vec![f64::INFINITY; n];
            let mut pred: Vec<Option<usize>> = vec![None; n];
            dist[source] = 0.0;
            for _ in 0..n {
                let mut changed = false;
                for node in 0..n {
                    if dist[node].is_infinite() {
                        continue;
                    }
                    for &e in &self.adj[node] {
                        if self.cap[e] > 1e-12
                            && dist[node] + self.cost[e] < dist[self.to[e]] - 1e-12
                        {
                            dist[self.to[e]] = dist[node] + self.cost[e];
                            pred[self.to[e]] = Some(e);
                            changed = true;
                        }
                    }
                }
                if !changed {
                    break;
                }
            }
            if dist[sink].is_infinite() {
                break;
            }
            // Bottleneck along the path.
            let mut bottleneck = f64::INFINITY;
            let mut node = sink;
            while node != source {
                let Some(e) = pred[node] else {
                    break; // unreachable: dist[sink] finite implies a full path
                };
                bottleneck = bottleneck.min(self.cap[e]);
                node = self.to[e ^ 1];
            }
            if bottleneck <= 1e-12 || bottleneck.is_infinite() {
                break;
            }
            let mut node = sink;
            while node != source {
                let Some(e) = pred[node] else {
                    break; // unreachable: dist[sink] finite implies a full path
                };
                self.cap[e] -= bottleneck;
                self.cap[e ^ 1] += bottleneck;
                node = self.to[e ^ 1];
            }
        }
    }

    /// Net flow pushed along the (first) forward edge `from → to`.
    fn flow_between(&self, from: usize, to: usize) -> f64 {
        for &e in &self.adj[from] {
            if e % 2 == 0 && self.to[e] == to {
                return self.cap[e ^ 1]; // backward residual = flow
            }
        }
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(size: f64, mult: f64) -> SetItem {
        SetItem { size, mult }
    }

    #[test]
    fn identical_sets_have_zero_distance() {
        let u = vec![item(3.0, 2.0), item(5.0, 1.0)];
        let d = vec![0.0, 10.0, 10.0, 0.0];
        for sd in [SetDistance::default(), SetDistance::Emd { exponent: 2.0 }] {
            assert_eq!(sd.eval(&u, &u, &d), 0.0);
        }
    }

    #[test]
    fn empty_side_costs_residuals() {
        let u = vec![item(2.0, 3.0)];
        let sd = SetDistance::GreedyMac { exponent: 2.0 };
        // 3² · 2 = 18.
        assert_eq!(sd.eval(&u, &[], &[]), 18.0);
        assert_eq!(sd.eval(&[], &u, &[]), 18.0);
        let emd = SetDistance::Emd { exponent: 2.0 };
        assert_eq!(emd.eval(&u, &[], &[]), 18.0);
    }

    #[test]
    fn multiplicity_mismatch_penalty_is_superlinear() {
        // Same value on both sides, multiplicities 4 vs 1: residual 3
        // units at size 2 → 9·2 = 18 (not 6).
        let u = vec![item(2.0, 4.0)];
        let v = vec![item(2.0, 1.0)];
        let d = vec![0.0];
        let sd = SetDistance::default();
        assert_eq!(sd.eval(&u, &v, &d), 18.0);
    }

    #[test]
    fn matching_prefers_near_values() {
        // u has two values; v has one close to the second.
        let u = vec![item(1.0, 1.0), item(1.0, 1.0)];
        let v = vec![item(1.0, 1.0)];
        let d = vec![5.0, 0.5]; // d(u0,v0)=5, d(u1,v0)=0.5
        let sd = SetDistance::GreedyMac { exponent: 1.0 };
        // Match u1↔v0 at 0.5; u0 unmatched: 1·1 = 1 → total 1.5.
        assert_eq!(sd.eval(&u, &v, &d), 1.5);
    }

    #[test]
    fn emd_beats_greedy_on_adversarial_instance() {
        // Greedy grabs the globally cheapest pair first and may strand
        // expensive leftovers; EMD must never cost more.
        let u = vec![item(10.0, 1.0), item(10.0, 1.0)];
        let v = vec![item(10.0, 1.0), item(10.0, 1.0)];
        // d = [1 2; 1 100]: greedy matches (u0,v0)=1 then (u1,v1)=100;
        // optimal is (u0,v1)=2, (u1,v0)=1 → 3.
        let d = vec![1.0, 2.0, 1.0, 100.0];
        let greedy = SetDistance::GreedyMac { exponent: 1.0 }.eval(&u, &v, &d);
        let emd = SetDistance::Emd { exponent: 1.0 }.eval(&u, &v, &d);
        assert!(emd <= greedy + 1e-9, "emd {emd} > greedy {greedy}");
        assert!((emd - 3.0).abs() < 1e-9, "exact optimum is 3, got {emd}");
    }

    #[test]
    fn emd_declines_terrible_matches() {
        // Matching cost exceeds both residual rates: both sides stay
        // unmatched.
        let u = vec![item(1.0, 1.0)];
        let v = vec![item(1.0, 1.0)];
        let d = vec![1000.0];
        let emd = SetDistance::Emd { exponent: 1.0 }.eval(&u, &v, &d);
        assert_eq!(emd, 2.0); // delete + insert
    }

    #[test]
    fn fractional_multiplicities() {
        let u = vec![item(4.0, 0.5)];
        let v = vec![item(4.0, 0.25)];
        let d = vec![0.0];
        let sd = SetDistance::GreedyMac { exponent: 2.0 };
        // Residual 0.25² · 4 = 0.25.
        assert!((sd.eval(&u, &v, &d) - 0.25).abs() < 1e-12);
    }
}
