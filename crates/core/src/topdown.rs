//! Top-down TreeSketch construction — the ablation of §4.2.
//!
//! The paper argues for bottom-up agglomeration over the top-down
//! expansion used by the XSKETCH line of work, citing better quality at
//! similar cost. This module implements the top-down alternative so the
//! claim can be measured (`bench/ablation_topdown.rs`): start from the
//! label-split graph (one cluster per tag) and repeatedly split the
//! cluster direction with the largest squared-error contribution,
//! separating members below/above the median child count, while the
//! budget allows.

use crate::build::BuildConfig;
use crate::cluster::ClusterState;
use crate::sketch::TreeSketch;
use axqa_synopsis::{StableSummary, SynNodeId};
use axqa_xml::fxhash::FxHashMap;

/// Builds a TreeSketch top-down within `config.budget_bytes`.
///
/// Splitting stops when the budget would be exceeded or no split reduces
/// the squared error.
pub fn topdown_build(stable: &StableSummary, config: &BuildConfig) -> TreeSketch {
    let mut state = ClusterState::new(stable, config.size_model);

    // Collapse to the label-split graph: merge all same-label clusters.
    let mut by_label: FxHashMap<u32, u32> = FxHashMap::default();
    let ids: Vec<u32> = state.alive_ids().collect();
    for id in ids {
        let label = state.cluster(id).label.0;
        match by_label.get(&label) {
            Some(&repr) => {
                let repr = state.resolve(repr);
                let merged = state.apply_merge(repr, id);
                by_label.insert(label, merged);
            }
            None => {
                by_label.insert(label, id);
            }
        }
    }

    // Greedy splitting while the budget allows.
    loop {
        if state.size_bytes() >= config.budget_bytes {
            break;
        }
        let Some((victim, partition)) = best_split(&state) else {
            break;
        };
        // A split adds one node and possibly edges; apply and check; the
        // size model makes a split add at least node_bytes, so the loop
        // terminates.
        let before = state.size_bytes();
        state.apply_split(victim, &partition);
        if state.size_bytes() > config.budget_bytes {
            // Over budget: accept the overshoot of at most one split, as
            // XSKETCH-style builders do, and stop.
            break;
        }
        debug_assert!(state.size_bytes() > before);
    }

    state.to_sketch()
}

/// Chooses the split with the best error reduction: the cluster whose
/// worst direction has the highest variance, partitioned at the median
/// per-member child count along that direction.
fn best_split(state: &ClusterState<'_>) -> Option<(u32, Vec<u32>)> {
    let mut best: Option<(f64, u32, u32)> = None; // (err, cluster, target)
    for id in state.alive_ids() {
        let cluster = state.cluster(id);
        if cluster.members.len() < 2 {
            continue;
        }
        let n = cluster.elem_count as f64;
        for &(target, stat) in &cluster.stats {
            let err = (stat.sum2 - stat.sum * stat.sum / n).max(0.0);
            if err > 1e-9 && best.is_none_or(|(e, _, _)| err > e) {
                best = Some((err, id, target));
            }
        }
    }
    let (_, id, target) = best?;
    // Partition members at the median K along the chosen direction.
    let cluster = state.cluster(id);
    let mut keyed: Vec<(u64, u32)> = cluster
        .members
        .iter()
        .map(|&s| {
            let k: u64 = state
                .stable()
                .node(SynNodeId(s))
                .children
                .iter()
                .filter(|&&(t, _)| state.cluster_of(t) == target)
                .map(|&(_, k)| k as u64)
                .sum();
            (k, s)
        })
        .collect();
    keyed.sort_unstable();
    let mid = keyed.len() / 2;
    // Ensure both sides non-empty even with ties: split at the first
    // index where the key changes, nearest to the middle.
    let mut cut = mid.max(1);
    while cut < keyed.len() && keyed[cut].0 == keyed[cut - 1].0 {
        cut += 1;
    }
    if cut == keyed.len() {
        cut = mid.max(1);
        while cut > 1 && keyed[cut - 1].0 == keyed[cut].0 {
            cut -= 1;
        }
        if cut == 1 && keyed[0].0 == keyed[1].0 {
            // All keys equal along this direction — variance came from
            // extent weighting; fall back to an arbitrary balanced split.
            cut = mid.max(1);
        }
    }
    let part: Vec<u32> = keyed[..cut].iter().map(|&(_, s)| s).collect();
    if part.len() == cluster.members.len() {
        return None;
    }
    Some((id, part))
}

#[cfg(test)]
mod tests {
    use super::*;
    use axqa_synopsis::{build_stable, SizeModel};
    use axqa_xml::parse_document;

    fn sample_doc() -> axqa_xml::Document {
        parse_document(
            "<r><a><b><c/></b><b><c/><c/><c/><c/></b></a>\
             <a><b><c/></b><b><c/><c/><c/><c/></b></a>\
             <a><b><c/><c/></b></a></r>",
        )
        .unwrap()
    }

    #[test]
    fn label_split_floor_when_budget_tiny() {
        let doc = sample_doc();
        let stable = build_stable(&doc);
        let ts = topdown_build(&stable, &BuildConfig::with_budget(1));
        assert_eq!(ts.len(), doc.labels().len());
    }

    #[test]
    fn splits_reduce_error_under_roomier_budget() {
        let doc = sample_doc();
        let stable = build_stable(&doc);
        let tiny = topdown_build(&stable, &BuildConfig::with_budget(1));
        let model = SizeModel::TREESKETCH;
        let exact_bytes = model.graph_bytes(stable.len(), stable.num_edges());
        let roomy = topdown_build(&stable, &BuildConfig::with_budget(exact_bytes * 2));
        assert!(roomy.len() > tiny.len());
        assert!(roomy.squared_error() <= tiny.squared_error());
    }

    #[test]
    fn full_budget_recovers_zero_error() {
        let doc = sample_doc();
        let stable = build_stable(&doc);
        let model = SizeModel::TREESKETCH;
        let exact_bytes = model.graph_bytes(stable.len(), stable.num_edges());
        let ts = topdown_build(&stable, &BuildConfig::with_budget(exact_bytes * 4));
        assert!(ts.squared_error() < 1e-9, "err = {}", ts.squared_error());
    }

    #[test]
    fn state_invariants_after_merges_and_splits() {
        let doc = sample_doc();
        let stable = build_stable(&doc);
        let config = BuildConfig::with_budget(10_000);
        let mut state = ClusterState::new(&stable, config.size_model);
        // Collapse to the label-split graph (exercises apply_merge) …
        let mut by_label: FxHashMap<u32, u32> = FxHashMap::default();
        let ids: Vec<u32> = state.alive_ids().collect();
        for id in ids {
            let label = state.cluster(id).label.0;
            match by_label.get(&label) {
                Some(&repr) => {
                    let repr = state.resolve(repr);
                    let merged = state.apply_merge(repr, id);
                    by_label.insert(label, merged);
                }
                None => {
                    by_label.insert(label, id);
                }
            }
        }
        state.verify().unwrap();
        // … then split twice (exercises apply_split after merges).
        for _ in 0..2 {
            let Some((victim, part)) = best_split(&state) else {
                break;
            };
            state.apply_split(victim, &part);
            state.verify().unwrap();
        }
    }
}
