//! Direct allocation-site detection at the token level.
//!
//! The alloc-reachability analysis ([`crate::hotpath`]) needs to know
//! which function bodies *directly* allocate. This module scans a body
//! token range (the same range [`crate::callgraph`] scans for calls)
//! and records every construct the engine treats as an allocation:
//!
//! * constructor calls on heap-owning types — `Vec::new(…)`,
//!   `Box::new(…)`, `String::from(…)`, `FxHashMap::default()`,
//!   `Vec::with_capacity(…)`, … (owner × {`new`, `default`, `from`,
//!   `from_iter`, `with_capacity`});
//! * owned-result method calls — `.collect()`, `.to_vec()`,
//!   `.to_string()`, `.to_owned()`, `.clone()` (type-blind: every
//!   `.clone()` counts, since the token stream carries no types — a
//!   `Copy` clone must be written as a plain copy to stay off the
//!   surface);
//! * growth calls — `.resize(…)`, `.resize_with(…)`, `.reserve(…)`,
//!   `.reserve_exact(…)` (the scratch-pool growth idiom; deliberate
//!   amortized growth is granted via `[[alloc-ok]]`);
//! * allocating macros — `vec![…]`, `format!(…)`;
//! * *macro-opaque* calls — any other macro invocation not on the
//!   benign whitelist (assert/debug_assert families, `panic!`-family
//!   diverging macros, `matches!`, `cfg!`, `write!`/`writeln!`, …) is
//!   conservatively treated as an allocation site, because the engine
//!   never expands macros.
//!
//! Out of scope by design (documented in DESIGN.md §11): `push` /
//! `insert` / `extend` past capacity. Pooled-buffer reuse is exactly
//! the idiom the hot paths rely on; flagging every push would make the
//! analysis useless. Capacity discipline is covered by the growth
//! detectors above plus the grant ratchet.

use crate::parse::is_keyword;
use crate::token::{next_code, prev_code, TokenKind};
use crate::SourceFile;

/// One direct allocation site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocSite {
    /// Stable label used in findings and `[[alloc-ok]]` grants:
    /// `Vec::new`, `.collect`, `.resize`, `vec!`, `format!`, or
    /// `some_macro!` for macro-opaque invocations.
    pub what: String,
    /// 1-based line of the site.
    pub line: u32,
}

/// Types whose constructors own heap storage.
const HEAP_OWNERS: &[&str] = &[
    "Vec",
    "VecDeque",
    "String",
    "Box",
    "Rc",
    "Arc",
    "FxHashMap",
    "FxHashSet",
    "HashMap",
    "HashSet",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
    "PathBuf",
    "OsString",
    "CString",
];

/// Constructor names that (may) allocate on a heap owner.
const CTOR_METHODS: &[&str] = &["new", "default", "from", "from_iter", "with_capacity"];

/// Dotted methods that return owned heap storage.
const OWNED_METHODS: &[&str] = &["collect", "to_vec", "to_string", "to_owned", "clone"];

/// Dotted methods that grow existing heap storage.
const GROWTH_METHODS: &[&str] = &["resize", "resize_with", "reserve", "reserve_exact"];

/// Macros known not to allocate on the non-diverging path. The
/// panic/assert families format their message only when they fire
/// (a diverging cold path the panic surface already tracks);
/// `write!`/`writeln!` write into a caller-owned buffer.
const BENIGN_MACROS: &[&str] = &[
    "assert",
    "assert_eq",
    "assert_ne",
    "debug_assert",
    "debug_assert_eq",
    "debug_assert_ne",
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "matches",
    "cfg",
    "write",
    "writeln",
    "include_str",
    "include_bytes",
    "concat",
    "stringify",
    "env",
    "option_env",
    "line",
    "column",
    "file",
    "compile_error",
    "macro_rules",
];

/// True when token `i` starts a call argument list: the next code
/// token is `(`, or a turbofish `::<…>(` follows (`collect::<Vec<_>>`).
fn is_called(file: &SourceFile, i: usize) -> bool {
    let tokens = &file.tokens;
    let Some(n) = next_code(tokens, i) else {
        return false;
    };
    match tokens[n].text(&file.text) {
        "(" => true,
        "::" => next_code(tokens, n).is_some_and(|k| {
            let t = tokens[k].text(&file.text);
            t == "<" || t == "<<"
        }),
        _ => false,
    }
}

/// Scans `tokens[start..end]` of `file` for direct allocation sites,
/// skipping `#[cfg(test)]`-masked tokens.
pub fn scan(file: &SourceFile, start: usize, end: usize) -> Vec<AllocSite> {
    let tokens = &file.tokens;
    let mut sites = Vec::new();
    for i in start..end.min(tokens.len()) {
        if file.in_test.get(i).copied().unwrap_or(false) || tokens[i].kind != TokenKind::Ident {
            continue;
        }
        let name = tokens[i].text(&file.text);
        // Keywords first: `if !cond` is a negation, not an `if!` macro
        // (`!=` arrives as one compound token and never reads as `!`).
        if is_keyword(name) {
            continue;
        }

        // Macro invocation: `name !`.
        if next_code(tokens, i).is_some_and(|n| tokens[n].text(&file.text) == "!") {
            if name == "vec" || name == "format" || !BENIGN_MACROS.contains(&name) {
                sites.push(AllocSite {
                    what: format!("{name}!"),
                    line: tokens[i].line,
                });
            }
            continue;
        }

        if !is_called(file, i) {
            continue;
        }
        let Some(p) = prev_code(tokens, i) else {
            continue;
        };
        let prev = tokens[p].text(&file.text);

        // Dotted method: `.collect(…)`, `.resize(…)`, …
        if prev == "." {
            if OWNED_METHODS.contains(&name) || GROWTH_METHODS.contains(&name) {
                sites.push(AllocSite {
                    what: format!(".{name}"),
                    line: tokens[i].line,
                });
            }
            continue;
        }

        // Constructor: `Vec :: new (…)` — owner must be a heap type.
        if prev == "::" && CTOR_METHODS.contains(&name) {
            let owner = prev_code(tokens, p)
                .filter(|o| tokens[*o].kind == TokenKind::Ident)
                .map(|o| tokens[o].text(&file.text));
            if let Some(owner) = owner.filter(|o| HEAP_OWNERS.contains(o)) {
                sites.push(AllocSite {
                    what: format!("{owner}::{name}"),
                    line: tokens[i].line,
                });
            }
        }
    }
    sites
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sites(body: &str) -> Vec<String> {
        let text = format!("pub fn f() {{\n{body}\n}}\n");
        let file = SourceFile::new(
            "crates/core/src/x.rs".to_string(),
            "axqa-core".to_string(),
            false,
            text,
        );
        scan(&file, 0, file.tokens.len())
            .into_iter()
            .map(|s| s.what)
            .collect()
    }

    #[test]
    fn constructors_on_heap_owners_are_sites() {
        assert_eq!(sites("let v: Vec<u32> = Vec::new();"), vec!["Vec::new"]);
        assert_eq!(sites("let b = Box::new(3);"), vec!["Box::new"]);
        assert_eq!(sites("let s = String::from(\"x\");"), vec!["String::from"]);
        assert_eq!(
            sites("let m: FxHashMap<u32, u32> = FxHashMap::default();"),
            vec!["FxHashMap::default"]
        );
        assert_eq!(
            sites("let v = Vec::with_capacity(8);"),
            vec!["Vec::with_capacity"]
        );
    }

    #[test]
    fn non_heap_constructors_are_not_sites() {
        assert!(sites("let s = ScoreScratch::new();").is_empty());
        assert!(sites("let d = EdgeStat::default();").is_empty());
        assert!(sites("let x = Self::new();").is_empty());
    }

    #[test]
    fn owned_result_methods_are_sites() {
        assert_eq!(sites("let v: Vec<u32> = it.collect();"), vec![".collect"]);
        assert_eq!(sites("let v = it.collect::<Vec<u32>>();"), vec![".collect"]);
        assert_eq!(sites("let v = s.to_vec();"), vec![".to_vec"]);
        assert_eq!(sites("let s = n.to_string();"), vec![".to_string"]);
        assert_eq!(sites("let c = v.clone();"), vec![".clone"]);
    }

    #[test]
    fn growth_methods_are_sites() {
        assert_eq!(sites("buf.resize(n, 0.0);"), vec![".resize"]);
        assert_eq!(sites("buf.resize_with(n, Vec::new);"), vec![".resize_with"]);
        assert_eq!(sites("buf.reserve(n);"), vec![".reserve"]);
    }

    #[test]
    fn alloc_macros_and_opaque_macros_are_sites() {
        assert_eq!(sites("let v = vec![1, 2];"), vec!["vec!"]);
        assert_eq!(sites("let s = format!(\"{}\", 1);"), vec!["format!"]);
        assert_eq!(sites("mystery!(a, b);"), vec!["mystery!"]);
    }

    #[test]
    fn benign_macros_are_not_sites() {
        assert!(sites("assert!(x > 0); debug_assert_eq!(a, b);").is_empty());
        assert!(sites("if matches!(x, Some(_)) { panic!(\"boom\"); }").is_empty());
        assert!(sites("writeln!(out, \"row\")?;").is_empty());
    }

    #[test]
    fn keyword_negation_is_not_a_macro() {
        assert!(sites("if !done { return !flag; }").is_empty());
        assert!(sites("while !queue_empty() { step(); }").is_empty());
    }

    #[test]
    fn push_and_insert_are_out_of_scope() {
        assert!(sites("buf.push(1); map.insert(k, v); buf.extend_from_slice(&x);").is_empty());
    }

    #[test]
    fn cfg_test_masked_sites_are_excluded() {
        let text = "pub fn live() { let v = Vec::new(); }\n\
                    #[cfg(test)]\nmod tests {\n  fn t() { let v = vec![1]; let s = format!(\"x\"); }\n}\n";
        let file = SourceFile::new(
            "crates/core/src/x.rs".to_string(),
            "axqa-core".to_string(),
            false,
            text.to_string(),
        );
        let found = scan(&file, 0, file.tokens.len());
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].what, "Vec::new");
    }
}
