//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's API shape:
//! `lock()` returns the guard directly (no `Result`), and
//! `into_inner()` consumes the lock without a poison check. Poisoned
//! locks are unwrapped into the inner guard — a panic while holding
//! the lock already aborts the experiment, matching parking_lot's
//! "no poisoning" semantics closely enough for this workspace.

use std::sync::{self, PoisonError};

pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(3);
        *m.lock() += 4;
        assert_eq!(m.into_inner(), 7);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }
}
