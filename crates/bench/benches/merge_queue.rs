// Benchmarks are test-like code: panicking extractors are acceptable here.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::arithmetic_side_effects
)]

//! The lazy stale-skipping merge queue in isolation (DESIGN.md §13):
//! `MergeQueue::from_pool` (heapify + score-memo seeding) and a full
//! pop/skip/rescore drain — exactly the per-pool work of one TSBUILD
//! merge round — at three pool sizes. The drain interleaves every path
//! the queue has: fresh pops handed to `apply_merge`, dead self-pairs
//! discarded, memo hits re-pushed without scoring, and
//! adjacency-invalidated entries re-evaluated lazily.

/// Bench binaries install the counting allocator (DESIGN.md §12)
/// so recorded spans carry real allocation profiles.
#[global_allocator]
static ALLOC: axqa_obs::alloc::CountingAlloc = axqa_obs::alloc::CountingAlloc;

use axqa_bench::Fixture;
use axqa_core::{create_candidate_pool, BuildConfig, ClusterState, MergeQueue, ScoreScratch};
use axqa_datagen::Dataset;
use axqa_synopsis::SizeModel;
use criterion::{criterion_group, criterion_main, Criterion};

/// The paper's `Lh` drain threshold (§4.2): pools drain down to this
/// length before TSBUILD regenerates them.
const LOWER: usize = 100;

/// One CREATEPOOL-sized candidate pool against a fresh state, capped at
/// `pool_size` by the `Uh` bound.
fn build_pool(fixture: &Fixture, pool_size: usize) -> Vec<axqa_core::MergeCandidate> {
    let state = ClusterState::new(&fixture.stable, SizeModel::TREESKETCH);
    let mut config = BuildConfig::with_budget(1);
    config.heap_upper = pool_size;
    config.threads = 1;
    let mut scratch = ScoreScratch::new();
    create_candidate_pool(&state, &config, &mut scratch)
}

fn bench_from_pool(c: &mut Criterion) {
    let mut group = c.benchmark_group("merge_queue_seed");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(5));
    // The reference-config document size (BENCH_core.json): smaller
    // fixtures cannot fill a 10k-candidate pool, which would collapse
    // the three sizes into one.
    let fixture = Fixture::new(Dataset::SProt, 60_000, 0);
    // The first CREATEPOOL round of this fixture yields ~3.5k
    // candidates before the level loop exits, so the `Uh` sweep stays
    // below that to keep the three sizes distinct.
    for pool_size in [500usize, 1_500, 3_000] {
        let pool = build_pool(&fixture, pool_size);
        let state = ClusterState::new(&fixture.stable, SizeModel::TREESKETCH);
        group.bench_function(format!("from_pool/{pool_size}"), |b| {
            b.iter(|| {
                let queue = MergeQueue::from_pool(pool.clone(), &state);
                queue.len()
            })
        });
    }
    group.finish();
}

fn bench_drain(c: &mut Criterion) {
    let mut group = c.benchmark_group("merge_queue_drain");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(10));
    // The reference-config document size (BENCH_core.json): smaller
    // fixtures cannot fill a 10k-candidate pool, which would collapse
    // the three sizes into one.
    let fixture = Fixture::new(Dataset::SProt, 60_000, 0);
    // The first CREATEPOOL round of this fixture yields ~3.5k
    // candidates before the level loop exits, so the `Uh` sweep stays
    // below that to keep the three sizes distinct.
    for pool_size in [500usize, 1_500, 3_000] {
        let pool = build_pool(&fixture, pool_size);
        group.bench_function(format!("pop_skip_rescore/{pool_size}"), |b| {
            b.iter(|| {
                // ClusterState is not Clone; rebuild-and-replay keeps
                // each iteration identical (a fresh state from the same
                // stable summary has the same ids, versions, and
                // merge-generation stamps the pool was scored under).
                let mut state = ClusterState::new(&fixture.stable, SizeModel::TREESKETCH);
                let mut queue = MergeQueue::from_pool(pool.clone(), &state);
                let mut scratch = ScoreScratch::new();
                let mut merges = 0usize;
                while let Some((a, b)) = queue.next_merge(&mut state, &mut scratch, LOWER) {
                    state.apply_merge(a, b);
                    merges += 1;
                }
                let stats = queue.stats();
                (merges, stats.reevals, stats.stale_skipped)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_from_pool, bench_drain);
criterion_main!(benches);
