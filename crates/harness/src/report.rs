//! Report formatting helpers: aligned text tables + CSV export.

use std::fmt::Write as _;
use std::path::Path;

/// A simple column-aligned table with a title.
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Table {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells);
    }

    /// Attaches a note rendered below the table (non-fatal diagnostics
    /// travel with the report instead of leaking to stderr).
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Renders the aligned text form.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize], out: &mut String| {
            for (cell, w) in cells.iter().zip(widths) {
                let _ = write!(out, "{cell:>w$}  ");
            }
            let _ = writeln!(out);
        };
        line(&self.header, &widths, &mut out);
        let total: usize = widths.iter().map(|w| w + 2).sum();
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            line(row, &widths, &mut out);
        }
        for note in &self.notes {
            let _ = writeln!(out, "note: {note}");
        }
        out
    }

    /// Renders CSV (header + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.header.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }

    /// Writes the CSV beside other experiment outputs; best-effort.
    pub fn save_csv(&self, dir: &Path, name: &str) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join(format!("{name}.csv")), self.to_csv())
    }
}

/// Formats a float with sensible precision for tables.
pub fn fmt_f(value: f64) -> String {
    if value == 0.0 {
        "0".to_string()
    } else if value.abs() >= 1000.0 {
        format!("{value:.0}")
    } else if value.abs() >= 10.0 {
        format!("{value:.1}")
    } else {
        format!("{value:.3}")
    }
}

/// Formats a byte count as `x.xKB`.
pub fn fmt_kb(bytes: usize) -> String {
    format!("{:.1}KB", bytes as f64 / 1024.0)
}

/// Formats a duration as seconds with millisecond precision.
pub fn fmt_secs(duration: std::time::Duration) -> String {
    format!("{:.3}s", duration.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        let text = t.render();
        assert!(text.contains("== demo =="));
        assert!(text.contains("longer"));
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("name,value"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_f(0.0), "0");
        assert_eq!(fmt_f(1.23456), "1.235");
        assert_eq!(fmt_f(1234.4), "1234");
        assert_eq!(fmt_kb(10240), "10.0KB");
    }
}
