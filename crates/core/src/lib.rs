// Count-carrying crate (ISSUE 1; DESIGN.md "Static analysis & invariants"):
// lossy casts and unchecked arithmetic on element/edge counts are denied
// outside tests, on top of the workspace lint table.
#![cfg_attr(
    not(test),
    deny(
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss,
        clippy::arithmetic_side_effects
    )
)]
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss
    )
)]

//! # axqa-core — TreeSketch synopses (the paper's contribution)
//!
//! A TreeSketch (§3.2, Definition 3.2) is a graph synopsis whose nodes
//! carry element counts and whose edges carry **average** child counts;
//! it approximates the unique count-stable summary of a document within a
//! space budget. This crate implements the full TreeSketch life cycle:
//!
//! * [`TreeSketch`] — the synopsis data structure, with the paper's
//!   clustering interpretation (every node is a cluster of elements whose
//!   per-target child-count vectors are collapsed to their centroid) and
//!   squared-error quality metric.
//! * [`cluster`] — the mutable clustering state over a count-stable
//!   skeleton that construction algorithms manipulate: incremental
//!   sufficient statistics (per-edge sums and sums of squares, §4.2) with
//!   exact cross-term maintenance via the stable skeleton.
//! * [`build`] — `TSBUILD` + `CREATEPOOL` (Figures 5, 6): bottom-up
//!   greedy merging ranked by marginal gain `errd/sized`, with a bounded
//!   candidate pool regenerated between rounds.
//! * [`queue`] — the lazy stale-skipping merge queue the TSBUILD loop
//!   drains: generation-stamped heap entries plus a score memo that
//!   re-evaluates only candidates adjacent to an applied merge, with the
//!   greedy merge sequence provably bit-identical to eager re-scoring.
//! * [`topdown`] — the top-down split-based ablation §4.2 argues against.
//! * [`eval`] — `EVALQUERY` + `EVALEMBED` (Figures 7, 8): approximate
//!   twig answering producing a [`eval::ResultSketch`] that summarizes
//!   the nesting tree, with inclusion–exclusion branch selectivities.
//! * [`selectivity`] — the §4.4 estimator: one post-order pass over the
//!   result sketch yielding the expected number of binding tuples.

pub mod build;
pub mod cluster;
pub mod error;
pub mod eval;
pub mod expand;
pub mod io;
pub mod queue;
pub mod selectivity;
pub mod sketch;
pub mod topdown;
pub mod values;

pub use build::{
    create_candidate_pool, try_ts_build, ts_build, ts_build_eager, BuildConfig, BuildReport,
};
pub use cluster::{ClusterState, PartitionSnapshot, ScoreScratch};
pub use error::AxqaError;
pub use eval::{
    eval_query, eval_query_with_scratch, eval_query_with_values, EvalConfig, EvalScratch,
    ResultSketch,
};
pub use expand::{expand_result, Expansion};
pub use queue::{MergeCandidate, MergeQueue, QueueStats};
pub use selectivity::{estimate_selectivity, try_estimate_query_selectivity};
pub use sketch::{TreeSketch, TsNodeId};
pub use topdown::topdown_build;
pub use values::{ValueIndex, ValueSummary};
