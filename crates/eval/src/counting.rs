//! Direct binding-tuple counting without materializing the nesting tree.
//!
//! The large-scale selectivity experiments (Figure 13) need only the
//! *count* of binding tuples per query; materializing `NT(Q)` first is
//! wasteful when results are large. This evaluator computes, bottom-up
//! over the query tree, the per-element tuple counts
//!
//! ```text
//! t(e, q) = Π over children qc of q:
//!             f( Σ_{e' ∈ matches(e, path(q,qc))} t(e', qc) )
//! ```
//!
//! with `f = max(·, 1)` for optional edges — exactly the recurrence
//! `NestingTree::binding_tuples` evaluates on the materialized tree —
//! memoizing `t(e, q)` per `(element, variable)` so shared elements
//! (reached from several parent bindings via nested `//` contexts) are
//! counted once.

use crate::index::DocIndex;
use crate::matching::PathMatcher;
use axqa_query::{QVar, ResolvedPath, TwigQuery};
use axqa_xml::fxhash::FxHashMap;
use axqa_xml::{Document, NodeId};

/// Counts the binding tuples of `query` over `doc` (0.0 when empty).
pub fn count_binding_tuples(doc: &Document, index: &DocIndex, query: &TwigQuery) -> f64 {
    let mut matcher = PathMatcher::new(doc, index);
    let resolved: Vec<ResolvedPath> = query
        .vars()
        .skip(1)
        .map(|v| query.node(v).path.resolve(doc.labels()))
        .collect();
    let mut memo: FxHashMap<(NodeId, u32), f64> = FxHashMap::default();
    tuples(
        doc.root(),
        QVar::ROOT,
        query,
        &resolved,
        &mut matcher,
        &mut memo,
    )
}

fn tuples(
    element: NodeId,
    var: QVar,
    query: &TwigQuery,
    resolved: &[ResolvedPath],
    matcher: &mut PathMatcher<'_>,
    memo: &mut FxHashMap<(NodeId, u32), f64>,
) -> f64 {
    if let Some(&cached) = memo.get(&(element, var.0)) {
        return cached;
    }
    let mut product = 1.0f64;
    for qc in query.children(var) {
        let path = &resolved[qc.index() - 1];
        let sum: f64 = matcher
            .matches(element, path)
            .into_iter()
            .map(|child| tuples(child, qc, query, resolved, matcher, memo))
            .sum();
        product *= if query.node(qc).optional {
            sum.max(1.0)
        } else {
            sum
        };
        if product == 0.0 {
            break;
        }
    }
    memo.insert((element, var.0), product);
    product
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nesting::selectivity;
    use axqa_query::parse_twig;
    use axqa_xml::parse_document;

    fn check(src: &str, twig: &str) {
        let doc = parse_document(src).unwrap();
        let index = DocIndex::build(&doc);
        let query = parse_twig(twig).unwrap();
        let via_nt = selectivity(&doc, &index, &query);
        let direct = count_binding_tuples(&doc, &index, &query);
        assert!(
            (via_nt - direct).abs() < 1e-9 * via_nt.max(1.0),
            "{twig}: nesting-tree {via_nt} vs direct {direct}"
        );
    }

    #[test]
    fn agrees_with_nesting_tree_counting() {
        let src = "<d><a><p><k/></p><p><k/><k/></p><n/></a>\
                   <a><n/><p><k/></p><b><t/></b></a>\
                   <a><n/><p><k/></p><b><t/></b></a></d>";
        check(src, "q1: q0 //a\nq2: q1 //p\nq3: q2 //k");
        check(
            src,
            "q1: q0 //a[//b]\nq2: q1 //p\nq3: q2 ? //k\nq4: q1 ? //n",
        );
        check(src, "q1: q0 //a\nq2: q1 //b\nq3: q1 //k");
        check(src, "q1: q0 //zzz");
        check(src, "q1: q0 //a\nq2: q1 ? //zzz");
    }

    #[test]
    fn nested_contexts_memoize_correctly() {
        // Nested a's share descendants; memoization must not conflate
        // counts across different variables.
        let src = "<r><a><a><b/><b/></a><b/></a></r>";
        check(src, "q1: q0 //a\nq2: q1 //b");
        check(src, "q1: q0 //a[//b]\nq2: q1 //a\nq3: q2 /b");
    }

    #[test]
    fn value_predicates_respected() {
        let src = "<bib><p><year>1992</year><k/></p><p><year>2004</year><k/><k/></p></bib>";
        check(src, "q1: q0 //p[year[. > 2000]]\nq2: q1 /k");
        check(src, "q1: q0 //year[. < 1995]");
    }
}
