// Examples/integration tests are demo code: panicking extractors are fine.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::arithmetic_side_effects
)]

//! Property tests of the weighted subset-automaton path counting in
//! `core/src/eval.rs` (`EVALQUERY`, §4.3).
//!
//! A brute-force twig enumerator — written here from the paper's
//! definitions, sharing no code with the engine — walks small random
//! trees (≤ 30 nodes, depth ≤ 5) and counts nesting-tree occurrences per
//! query variable: an occurrence of `q` is a pair (valid occurrence of
//! `parent(q)`, distinct path endpoint), where *distinct* endpoint is the
//! subset-automaton semantics (an element reachable through several
//! intermediate nodes of a `//`-path counts once). The oracle is
//! triangulated against the exact nesting-tree evaluator, and
//! `eval_query` over a count-stable TreeSketch must reproduce it exactly
//! (§4.3: on stable synopses the approximation is exact).

use axqa::prelude::*;
use axqa::query::{Axis, Step};
use axqa::xml::NodeId;
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

/// A random tree: label index and children.
#[derive(Debug, Clone)]
struct Tree {
    label: u8,
    children: Vec<Tree>,
}

/// Depth ≤ 5 by construction (4 recursion levels over leaves); size is
/// hard-capped by [`trim`].
fn tree_strategy() -> impl Strategy<Value = Tree> {
    let leaf = (0u8..4).prop_map(|label| Tree {
        label,
        children: vec![],
    });
    leaf.prop_recursive(4, 24, 4, |inner| {
        ((0u8..4), prop::collection::vec(inner, 0..4))
            .prop_map(|(label, children)| Tree { label, children })
    })
}

/// Pre-order copy keeping at most `*remaining` nodes (ISSUE bound: the
/// oracle is exponential-ish, so trees stay ≤ 30 nodes).
fn trim(tree: &Tree, remaining: &mut usize) -> Option<Tree> {
    if *remaining == 0 {
        return None;
    }
    *remaining -= 1;
    let mut children = Vec::new();
    for child in &tree.children {
        match trim(child, remaining) {
            Some(kept) => children.push(kept),
            None => break,
        }
    }
    Some(Tree {
        label: tree.label,
        children,
    })
}

fn label_name(index: u8) -> String {
    format!("l{index}")
}

fn to_document(tree: &Tree) -> Document {
    fn add(doc: &mut Document, parent: NodeId, tree: &Tree) {
        let node = doc.add_child_named(parent, &label_name(tree.label));
        for child in &tree.children {
            add(doc, node, child);
        }
    }
    let mut doc = Document::new(&label_name(tree.label));
    let root = doc.root();
    for child in &tree.children {
        add(&mut doc, root, child);
    }
    doc
}

/// One random query edge: (parent choice, steps as (descendant?,
/// label), optional?).
type RandomEdge = (usize, Vec<(bool, u8)>, bool);

/// A random twig query over the same label pool.
#[derive(Debug, Clone)]
struct RandomQuery {
    edges: Vec<RandomEdge>,
}

fn query_strategy() -> impl Strategy<Value = RandomQuery> {
    prop::collection::vec(
        (
            any::<usize>(),
            prop::collection::vec((any::<bool>(), 0u8..4), 1..3),
            any::<bool>(),
        ),
        1..4,
    )
    .prop_map(|edges| RandomQuery { edges })
}

fn to_twig(random: &RandomQuery) -> TwigQuery {
    let mut query = TwigQuery::new();
    let mut vars = vec![QVar::ROOT];
    for (parent_pick, steps, optional) in &random.edges {
        let parent = vars[parent_pick % vars.len()];
        let path = PathExpr::new(
            steps
                .iter()
                .map(|&(descendant, label)| {
                    Step::new(
                        if descendant {
                            Axis::Descendant
                        } else {
                            Axis::Child
                        },
                        label_name(label),
                    )
                })
                .collect(),
        );
        let var = if *optional {
            query.add_optional(parent, path)
        } else {
            query.add(parent, path)
        };
        vars.push(var);
    }
    query
}

// ---------------------------------------------------------------------
// Brute-force oracle
// ---------------------------------------------------------------------

/// Distinct endpoints of `path` starting from `from`: the frontier of a
/// step-by-step subset walk. An endpoint reachable through several
/// intermediate nodes appears once (subset-automaton semantics).
fn endpoints(doc: &Document, from: NodeId, path: &PathExpr) -> BTreeSet<NodeId> {
    fn descendants(doc: &Document, node: NodeId, label: &str, out: &mut BTreeSet<NodeId>) {
        for child in doc.children(node) {
            if doc.label_name(child) == label {
                out.insert(child);
            }
            descendants(doc, child, label, out);
        }
    }
    let mut frontier = BTreeSet::from([from]);
    for step in &path.steps {
        let mut next = BTreeSet::new();
        for &context in &frontier {
            match step.axis {
                Axis::Child => {
                    for child in doc.children(context) {
                        if doc.label_name(child) == step.label {
                            next.insert(child);
                        }
                    }
                }
                Axis::Descendant => descendants(doc, context, &step.label, &mut next),
            }
        }
        frontier = next;
    }
    frontier
}

/// Whether binding `var` to `node` can be extended to all non-optional
/// child variables (recursively). Memoized on `(var, node)`; the relation
/// is acyclic because child variables are strictly larger.
fn is_valid(
    doc: &Document,
    query: &TwigQuery,
    var: QVar,
    node: NodeId,
    memo: &mut BTreeMap<(u32, u32), bool>,
) -> bool {
    if let Some(&known) = memo.get(&(var.0, node.0)) {
        return known;
    }
    let mut valid = true;
    for child_var in query.children(var) {
        let child = query.node(child_var);
        if child.optional {
            continue;
        }
        let extensible = endpoints(doc, node, &child.path)
            .into_iter()
            .any(|endpoint| is_valid(doc, query, child_var, endpoint, memo));
        if !extensible {
            valid = false;
            break;
        }
    }
    memo.insert((var.0, node.0), valid);
    valid
}

/// Brute-force nesting-tree occurrence counts per variable, or `None`
/// when the twig has no complete match (some effectively-required
/// variable is empty — exactly when the root binding is not valid).
fn brute_force_counts(doc: &Document, query: &TwigQuery) -> Option<Vec<u64>> {
    let mut memo = BTreeMap::new();
    if !is_valid(doc, query, QVar::ROOT, doc.root(), &mut memo) {
        return None;
    }
    // occ[q][u] — number of nesting-tree occurrences of variable q at
    // document node u (one per valid parent occurrence and endpoint).
    let mut occ: Vec<BTreeMap<NodeId, u64>> = vec![BTreeMap::new(); query.num_vars()];
    occ[0].insert(doc.root(), 1);
    for var in query.vars() {
        for child_var in query.children(var) {
            let path = query.node(child_var).path.clone();
            let parents: Vec<(NodeId, u64)> = occ[var.index()]
                .iter()
                .map(|(&node, &count)| (node, count))
                .collect();
            for (parent_node, parent_count) in parents {
                for endpoint in endpoints(doc, parent_node, &path) {
                    if is_valid(doc, query, child_var, endpoint, &mut memo) {
                        *occ[child_var.index()].entry(endpoint).or_insert(0) += parent_count;
                    }
                }
            }
        }
    }
    Some(occ.iter().map(|per_node| per_node.values().sum()).collect())
}

// ---------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // The oracle agrees with the exact nesting-tree evaluator: same
    // emptiness verdict, same per-variable occurrence counts.
    #[test]
    fn brute_force_matches_exact_nesting_tree(
        tree in tree_strategy(),
        random_query in query_strategy(),
    ) {
        let doc = to_document(&trim(&tree, &mut 30).unwrap());
        let query = to_twig(&random_query);
        let index = DocIndex::build(&doc);
        let exact = evaluate(&doc, &index, &query);
        let brute = brute_force_counts(&doc, &query);
        prop_assert_eq!(
            exact.is_some(),
            brute.is_some(),
            "emptiness mismatch for {}", query
        );
        if let (Some(nt), Some(counts)) = (exact, brute) {
            for var in query.vars() {
                prop_assert_eq!(
                    nt.bindings(var).len() as u64,
                    counts[var.index()],
                    "var {} of {}", var, query
                );
            }
        }
    }

    // `eval_query` over a count-stable TreeSketch reproduces the
    // brute-force counts exactly (§4.3): the weighted path counting
    // collapses to integer occurrence counts when every cluster is
    // homogeneous.
    #[test]
    fn eval_query_is_exact_against_brute_force(
        tree in tree_strategy(),
        random_query in query_strategy(),
    ) {
        let doc = to_document(&trim(&tree, &mut 30).unwrap());
        let query = to_twig(&random_query);
        let sketch = TreeSketch::from_stable(&build_stable(&doc));
        let result = eval_query(&sketch, &query, &EvalConfig::default());
        let brute = brute_force_counts(&doc, &query);
        prop_assert_eq!(
            result.is_some(),
            brute.is_some(),
            "emptiness mismatch for {}", query
        );
        if let (Some(answer), Some(counts)) = (result, brute) {
            for var in query.vars() {
                let exact = counts[var.index()] as f64;
                let estimate = answer.estimated_bindings(var);
                prop_assert!(
                    (exact - estimate).abs() <= 1e-6 * exact.max(1.0),
                    "var {}: exact {} vs estimate {} for {}",
                    var, exact, estimate, query
                );
            }
        }
    }
}

/// The diamond case the subset-automaton semantics exists for: with
/// `<r><a><a><k/></a></a></r>`, the path `//a//k` reaches `k` through
/// both `a` elements, yet `k` binds once — path counting must aggregate
/// per distinct endpoint, not per path.
#[test]
fn nested_descendants_count_endpoints_once() {
    let doc = parse_document("<r><a><a><k/></a></a></r>").unwrap();
    let mut query = TwigQuery::new();
    let path = PathExpr::new(vec![
        Step::new(Axis::Descendant, "a"),
        Step::new(Axis::Descendant, "k"),
    ]);
    query.add(QVar::ROOT, path);

    let counts = brute_force_counts(&doc, &query).unwrap();
    assert_eq!(counts, vec![1, 1]);

    let index = DocIndex::build(&doc);
    let nt = evaluate(&doc, &index, &query).unwrap();
    assert_eq!(nt.bindings(QVar(1)).len(), 1);

    let sketch = TreeSketch::from_stable(&build_stable(&doc));
    let answer = eval_query(&sketch, &query, &EvalConfig::default()).unwrap();
    assert!((answer.estimated_bindings(QVar(1)) - 1.0).abs() < 1e-9);
}
