//! Concrete answer trees: `(label, variable)`-tagged trees decoupled
//! from any document.
//!
//! An [`AnswerTree`] is the common concrete-answer representation shared
//! by the exact evaluator (a nesting tree forgets its element ids and
//! becomes an answer tree) and by baseline approximate-answer generators
//! that *sample* answers (twig-XSketch, §6.1) and therefore produce
//! nodes that correspond to no real document element.

use crate::nesting::{NestingTree, NtNodeId};
use axqa_query::QVar;
use axqa_xml::{Document, LabelId, LabelTable};

/// One node of an answer tree.
#[derive(Debug, Clone)]
pub struct AnswerNode {
    /// Element label.
    pub label: LabelId,
    /// Query variable the node binds.
    pub var: QVar,
    /// Child node indices.
    pub children: Vec<u32>,
}

/// A tree of query bindings with labels but no document identity.
#[derive(Debug, Clone)]
pub struct AnswerTree {
    labels: LabelTable,
    nodes: Vec<AnswerNode>,
}

impl AnswerTree {
    /// Creates an answer tree containing only a root binding.
    pub fn new(labels: LabelTable, root_label: LabelId) -> AnswerTree {
        AnswerTree {
            labels,
            nodes: vec![AnswerNode {
                label: root_label,
                var: QVar::ROOT,
                children: Vec::new(),
            }],
        }
    }

    /// The root node (index 0).
    pub fn root(&self) -> u32 {
        0
    }

    /// All nodes; children always have larger indices than parents.
    pub fn nodes(&self) -> &[AnswerNode] {
        &self.nodes
    }

    /// Number of binding nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether only the root binding exists.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// The label table.
    pub fn labels(&self) -> &LabelTable {
        &self.labels
    }

    /// Appends a binding under `parent`, returning its index.
    pub fn add(&mut self, parent: u32, label: LabelId, var: QVar) -> u32 {
        let id = axqa_xml::dense_id(self.nodes.len());
        self.nodes.push(AnswerNode {
            label,
            var,
            children: Vec::new(),
        });
        self.nodes[parent as usize].children.push(id);
        id
    }

    /// Converts an exact nesting tree into an answer tree (dropping
    /// element identities).
    pub fn from_nesting_tree(doc: &Document, nt: &NestingTree) -> AnswerTree {
        let mut tree = AnswerTree::new(doc.labels().clone(), doc.label(nt.element(nt.root())));
        // NT ids are parent-before-child; map as we go.
        let mut map = vec![u32::MAX; nt.len()];
        map[0] = 0;
        for i in 0..axqa_xml::dense_id(nt.len()) {
            let parent_new = map[i as usize];
            debug_assert_ne!(parent_new, u32::MAX);
            for &child in nt.children(NtNodeId(i)) {
                let new = tree.add(parent_new, doc.label(nt.element(child)), nt.var(child));
                map[child.index()] = new;
            }
        }
        tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::DocIndex;
    use crate::nesting::evaluate;
    use axqa_query::parse_twig;
    use axqa_xml::parse_document;

    #[test]
    fn from_nesting_tree_preserves_shape() {
        let doc =
            parse_document("<d><a><p><k/></p><n/></a><a><p><k/><k/></p><n/></a></d>").unwrap();
        let index = DocIndex::build(&doc);
        let query = parse_twig("q1: q0 //a\nq2: q1 //p\nq3: q2 //k").unwrap();
        let nt = evaluate(&doc, &index, &query).unwrap();
        let tree = AnswerTree::from_nesting_tree(&doc, &nt);
        assert_eq!(tree.len(), nt.len());
        // Root has two a-children bound to q1.
        let root_children = &tree.nodes()[0].children;
        assert_eq!(root_children.len(), 2);
        for &c in root_children {
            let node = &tree.nodes()[c as usize];
            assert_eq!(tree.labels().name(node.label), "a");
            assert_eq!(node.var, QVar(1));
        }
        // Parent-before-child ordering.
        for (i, node) in tree.nodes().iter().enumerate() {
            for &c in &node.children {
                assert!((c as usize) > i);
            }
        }
    }

    #[test]
    fn manual_construction() {
        let doc = parse_document("<r><a/></r>").unwrap();
        let mut tree = AnswerTree::new(doc.labels().clone(), doc.label(doc.root()));
        let a = doc.labels().get("a").unwrap();
        let child = tree.add(tree.root(), a, QVar(1));
        assert_eq!(tree.len(), 2);
        assert_eq!(tree.nodes()[0].children, vec![child]);
        assert!(!tree.is_empty());
    }
}
