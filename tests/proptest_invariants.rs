// Examples/integration tests are demo code: panicking extractors are fine.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::arithmetic_side_effects
)]

//! Property-based tests of the core invariants (proptest).
//!
//! Random node-labeled trees over a small label pool exercise:
//! BUILDSTABLE correctness and minimality bookkeeping, Expand
//! isomorphism (Lemma 3.1), TSBUILD budget/mass conservation and
//! incremental-statistics consistency, exactness of approximate
//! evaluation on count-stable synopses, ESD metric axioms, tree-edit
//! sanity bounds, and parser round-trips.

use axqa::core::build::ts_build_state;
use axqa::core::cluster::ClusterState;
use axqa::distance::{esd_documents, tree_edit_distance, EditCosts, EsdConfig};
use axqa::prelude::*;
use axqa::query::{Axis, Step};
use proptest::prelude::*;

/// A random tree: label index and children.
#[derive(Debug, Clone)]
struct Tree {
    label: u8,
    children: Vec<Tree>,
}

fn tree_strategy() -> impl Strategy<Value = Tree> {
    let leaf = (0u8..5).prop_map(|label| Tree {
        label,
        children: vec![],
    });
    leaf.prop_recursive(4, 80, 5, |inner| {
        ((0u8..5), prop::collection::vec(inner, 0..5))
            .prop_map(|(label, children)| Tree { label, children })
    })
}

fn label_name(index: u8) -> String {
    format!("l{index}")
}

fn to_document(tree: &Tree) -> Document {
    fn add(doc: &mut Document, parent: axqa::xml::NodeId, tree: &Tree) {
        let node = doc.add_child_named(parent, &label_name(tree.label));
        for child in &tree.children {
            add(doc, node, child);
        }
    }
    let mut doc = Document::new(&label_name(tree.label));
    let root = doc.root();
    for child in &tree.children {
        add(&mut doc, root, child);
    }
    doc
}

/// Canonical form of a document as an unordered tree.
fn canonical(doc: &Document) -> String {
    fn rec(doc: &Document, node: axqa::xml::NodeId) -> String {
        let mut kids: Vec<String> = doc.children(node).map(|c| rec(doc, c)).collect();
        kids.sort();
        format!("{}({})", doc.label_name(node), kids.join(","))
    }
    rec(doc, doc.root())
}

/// One random query edge: (parent choice, steps as (descendant?,
/// label), optional?).
type RandomEdge = (usize, Vec<(bool, u8)>, bool);

/// A random twig query over the same label pool.
#[derive(Debug, Clone)]
struct RandomQuery {
    edges: Vec<RandomEdge>,
}

fn query_strategy() -> impl Strategy<Value = RandomQuery> {
    prop::collection::vec(
        (
            any::<usize>(),
            prop::collection::vec((any::<bool>(), 0u8..5), 1..3),
            any::<bool>(),
        ),
        1..4,
    )
    .prop_map(|edges| RandomQuery { edges })
}

fn to_twig(random: &RandomQuery) -> TwigQuery {
    let mut query = TwigQuery::new();
    let mut vars = vec![QVar::ROOT];
    for (parent_pick, steps, optional) in &random.edges {
        let parent = vars[parent_pick % vars.len()];
        let path = PathExpr::new(
            steps
                .iter()
                .map(|&(descendant, label)| {
                    Step::new(
                        if descendant {
                            Axis::Descendant
                        } else {
                            Axis::Child
                        },
                        label_name(label),
                    )
                })
                .collect(),
        );
        let var = if *optional {
            query.add_optional(parent, path)
        } else {
            query.add(parent, path)
        };
        vars.push(var);
    }
    query
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn buildstable_is_count_stable(tree in tree_strategy()) {
        let doc = to_document(&tree);
        let stable = build_stable(&doc);
        prop_assert!(stable.verify_against(&doc).is_ok());
        let total: u64 = stable.nodes().iter().map(|n| n.extent).sum();
        prop_assert_eq!(total, doc.len() as u64);
        // The exact TreeSketch of a stable summary has zero error.
        prop_assert_eq!(TreeSketch::from_stable(&stable).squared_error(), 0.0);
    }

    #[test]
    fn expand_is_unordered_isomorphism(tree in tree_strategy()) {
        let doc = to_document(&tree);
        let stable = build_stable(&doc);
        let expanded = expand(&stable);
        prop_assert_eq!(expanded.len(), doc.len());
        prop_assert_eq!(canonical(&expanded), canonical(&doc));
    }

    #[test]
    fn parser_roundtrip(tree in tree_strategy()) {
        let doc = to_document(&tree);
        let text = write_document(&doc);
        let reparsed = parse_document(&text).unwrap();
        prop_assert_eq!(write_document(&reparsed), text);
    }

    #[test]
    fn tsbuild_conserves_mass_and_respects_budget(
        tree in tree_strategy(),
        budget in 1usize..4096,
    ) {
        let doc = to_document(&tree);
        let stable = build_stable(&doc);
        let mut state = ClusterState::new(&stable, SizeModel::TREESKETCH);
        let report = ts_build_state(&mut state, &BuildConfig::with_budget(budget)).unwrap();
        prop_assert!(state.verify().is_ok(), "{:?}", state.verify());
        prop_assert_eq!(report.sketch.total_elements(), doc.len() as u64);
        prop_assert_eq!(
            report.final_bytes,
            report.sketch.size_bytes(&SizeModel::TREESKETCH)
        );
        if report.reached_budget {
            prop_assert!(report.final_bytes <= budget);
        }
        prop_assert!(report.squared_error >= 0.0);
        // Squared error reported by the builder matches the sketch's.
        prop_assert!((report.squared_error - report.sketch.squared_error()).abs() < 1e-6);
    }

    #[test]
    fn estimates_are_exact_on_stable_synopses(
        tree in tree_strategy(),
        random_query in query_strategy(),
    ) {
        let doc = to_document(&tree);
        let query = to_twig(&random_query);
        let index = DocIndex::build(&doc);
        let exact = selectivity(&doc, &index, &query);
        let sketch = TreeSketch::from_stable(&build_stable(&doc));
        let estimate = axqa::core::selectivity::estimate_query_selectivity(
            &sketch,
            &query,
            &EvalConfig::default(),
        );
        prop_assert!(
            (exact - estimate).abs() <= 1e-6 * exact.max(1.0),
            "exact {} vs estimate {} for {}", exact, estimate, query
        );
    }

    #[test]
    fn esd_axioms(t1 in tree_strategy(), t2 in tree_strategy()) {
        let d1 = to_document(&t1);
        let d2 = to_document(&t2);
        let config = EsdConfig::default();
        prop_assert_eq!(esd_documents(&d1, &d1, &config), 0.0);
        prop_assert_eq!(esd_documents(&d2, &d2, &config), 0.0);
        let ab = esd_documents(&d1, &d2, &config);
        let ba = esd_documents(&d2, &d1, &config);
        prop_assert!(ab >= 0.0);
        prop_assert!((ab - ba).abs() <= 1e-9 * ab.abs().max(1.0), "{} vs {}", ab, ba);
    }

    #[test]
    fn tree_edit_axioms(t1 in tree_strategy(), t2 in tree_strategy()) {
        let d1 = to_document(&t1);
        let d2 = to_document(&t2);
        let costs = EditCosts::default();
        prop_assert_eq!(tree_edit_distance(&d1, &d1, &costs), 0.0);
        let ab = tree_edit_distance(&d1, &d2, &costs);
        let ba = tree_edit_distance(&d2, &d1, &costs);
        prop_assert!((ab - ba).abs() < 1e-9);
        // Delete-all + insert-all upper bound.
        prop_assert!(ab <= (d1.len() + d2.len()) as f64);
        // Identical canonical forms still differ by sibling order only;
        // equal documents must be at distance 0.
        if write_document(&d1) == write_document(&d2) {
            prop_assert_eq!(ab, 0.0);
        }
    }

    #[test]
    fn negative_estimates_never_appear(
        tree in tree_strategy(),
        random_query in query_strategy(),
        budget in 16usize..2048,
    ) {
        let doc = to_document(&tree);
        let query = to_twig(&random_query);
        let stable = build_stable(&doc);
        let sketch = ts_build(&stable, &BuildConfig::with_budget(budget)).sketch;
        let estimate = axqa::core::selectivity::estimate_query_selectivity(
            &sketch,
            &query,
            &EvalConfig::default(),
        );
        prop_assert!(estimate >= 0.0);
        prop_assert!(estimate.is_finite());
    }
}
