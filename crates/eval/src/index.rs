//! Structural-join index: pre-order ranks, subtree extents and per-label
//! sorted position lists.
//!
//! With `pre(e)` the pre-order rank of element `e` and `size(e)` its
//! subtree size, the descendants of `e` are exactly the elements with
//! rank in `(pre(e), pre(e) + size(e))`. Keeping, for every label, the
//! sorted list of ranks of its elements turns "descendants of `e` with
//! label `l`" into a binary-searched slice — the lookup every `//l` step
//! performs.

use axqa_xml::{Document, LabelId, NodeId};

/// Immutable evaluation index over one [`Document`].
#[derive(Debug, Clone)]
pub struct DocIndex {
    /// `pre[node]` = pre-order rank of the node.
    pre: Vec<u32>,
    /// `order[rank]` = node with that pre-order rank.
    order: Vec<NodeId>,
    /// `size[node]` = subtree size (inclusive).
    size: Vec<u32>,
    /// `by_label[label]` = sorted pre-order ranks of elements with label.
    by_label: Vec<Vec<u32>>,
}

impl DocIndex {
    /// Builds the index in two linear passes.
    pub fn build(doc: &Document) -> DocIndex {
        let n = doc.len();
        let mut pre = vec![0u32; n];
        let mut order = Vec::with_capacity(n);
        for (rank, node) in doc.pre_order().enumerate() {
            pre[node.index()] = axqa_xml::dense_id(rank);
            order.push(node);
        }
        let mut size = vec![1u32; n];
        for node in doc.post_order() {
            for child in doc.children(node) {
                // Subtree sizes are bounded by the node count, which the
                // document arena already caps at u32::MAX.
                size[node.index()] = size[node.index()].saturating_add(size[child.index()]);
            }
        }
        let mut by_label = vec![Vec::new(); doc.labels().len()];
        // Iterate in rank order so the per-label lists come out sorted.
        for &node in &order {
            by_label[doc.label(node).index()].push(pre[node.index()]);
        }
        DocIndex {
            pre,
            order,
            size,
            by_label,
        }
    }

    /// Pre-order rank of `node`.
    #[inline]
    pub fn rank(&self, node: NodeId) -> u32 {
        self.pre[node.index()]
    }

    /// Node at pre-order `rank`.
    #[inline]
    pub fn node_at(&self, rank: u32) -> NodeId {
        self.order[rank as usize]
    }

    /// Subtree size of `node` (inclusive).
    #[inline]
    pub fn subtree_size(&self, node: NodeId) -> u32 {
        self.size[node.index()]
    }

    /// Whether `ancestor` is a proper ancestor of `node`.
    pub fn is_ancestor(&self, ancestor: NodeId, node: NodeId) -> bool {
        let a = self.rank(ancestor);
        let n = self.rank(node);
        n > a && n < a.saturating_add(self.subtree_size(ancestor))
    }

    /// The proper descendants of `context` with `label`, in document
    /// order, as pre-order ranks.
    pub fn descendants_with_label(&self, context: NodeId, label: LabelId) -> &[u32] {
        let list = match self.by_label.get(label.index()) {
            Some(list) => list.as_slice(),
            None => return &[],
        };
        let lo = self.rank(context).saturating_add(1);
        let hi = self
            .rank(context)
            .saturating_add(self.subtree_size(context)); // exclusive
        let start = list.partition_point(|&r| r < lo);
        let end = list.partition_point(|&r| r < hi);
        &list[start..end]
    }

    /// Number of elements carrying `label` in the whole document.
    pub fn label_count(&self, label: LabelId) -> usize {
        self.by_label.get(label.index()).map_or(0, Vec::len)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Always false: documents have at least a root.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axqa_xml::parse_document;

    fn sample() -> Document {
        parse_document("<r><a><b/><a><b/><b/></a></a><b/><a/></r>").unwrap()
    }

    #[test]
    fn ranks_are_preorder() {
        let doc = sample();
        let idx = DocIndex::build(&doc);
        assert_eq!(idx.rank(doc.root()), 0);
        for node in doc.node_ids() {
            assert_eq!(idx.node_at(idx.rank(node)), node);
        }
    }

    #[test]
    fn subtree_sizes() {
        let doc = sample();
        let idx = DocIndex::build(&doc);
        assert_eq!(idx.subtree_size(doc.root()) as usize, doc.len());
        let first_a = doc.children(doc.root()).next().unwrap();
        assert_eq!(idx.subtree_size(first_a), 5); // a, b, a, b, b
    }

    #[test]
    fn descendant_lookup_matches_naive_scan() {
        let doc = sample();
        let idx = DocIndex::build(&doc);
        let b = doc.labels().get("b").unwrap();
        let a = doc.labels().get("a").unwrap();
        for context in doc.node_ids() {
            for label in [a, b] {
                let fast: Vec<NodeId> = idx
                    .descendants_with_label(context, label)
                    .iter()
                    .map(|&r| idx.node_at(r))
                    .collect();
                let naive: Vec<NodeId> = doc
                    .subtree(context)
                    .filter(|&n| n != context && doc.label(n) == label)
                    .collect();
                assert_eq!(fast, naive, "context {context:?} label {label:?}");
            }
        }
    }

    #[test]
    fn ancestor_test() {
        let doc = sample();
        let idx = DocIndex::build(&doc);
        let root = doc.root();
        let first_a = doc.children(root).next().unwrap();
        let inner_b = doc.children(first_a).next().unwrap();
        assert!(idx.is_ancestor(root, inner_b));
        assert!(idx.is_ancestor(first_a, inner_b));
        assert!(!idx.is_ancestor(inner_b, first_a));
        assert!(!idx.is_ancestor(first_a, first_a));
    }

    #[test]
    fn label_counts() {
        let doc = sample();
        let idx = DocIndex::build(&doc);
        let a = doc.labels().get("a").unwrap();
        let b = doc.labels().get("b").unwrap();
        assert_eq!(idx.label_count(a), 3);
        assert_eq!(idx.label_count(b), 4);
    }
}
