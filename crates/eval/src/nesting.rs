//! Nesting trees and exact twig evaluation.
//!
//! The nesting tree `NT(Q)` (§2) contains every element that appears in
//! some binding tuple of `Q`, arranged to preserve the
//! ancestor/descendant relationships of the query paths. We materialize
//! it as a tree of `(element, variable)` binding nodes: the children of a
//! binding `(e, q)` under query edge `(q, qc)` are the matches of
//! `path(q, qc)` relative to `e` that survive pruning. An element bound
//! under two distinct parent bindings appears as two nesting-tree nodes,
//! which is exactly what binding-tuple counting requires.
//!
//! Pruning implements the tuple semantics: a binding with no surviving
//! match for some *required* (solid-edge) child variable completes no
//! tuple and is removed; removal cascades upward. Optional (dashed)
//! edges never remove bindings and contribute `max(Σ, 1)` to the tuple
//! count, mirroring the generalized-tree-pattern semantics of §2.

use crate::index::DocIndex;
use crate::matching::PathMatcher;
use axqa_query::{QVar, ResolvedPath, TwigQuery};
use axqa_xml::{Document, NodeId};

/// Index of a node inside a [`NestingTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NtNodeId(pub u32);

impl NtNodeId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone)]
struct NtNode {
    element: NodeId,
    var: QVar,
    children: Vec<NtNodeId>,
}

/// The exact nesting tree of a twig query over a document.
#[derive(Debug, Clone)]
pub struct NestingTree {
    nodes: Vec<NtNode>,
    /// `bindings[var]` = surviving nesting-tree nodes bound to `var`.
    bindings: Vec<Vec<NtNodeId>>,
}

impl NestingTree {
    /// The root binding `(document root, q0)`.
    pub fn root(&self) -> NtNodeId {
        NtNodeId(0)
    }

    /// Total number of binding nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether only the root binding exists.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// The document element of a binding node.
    pub fn element(&self, id: NtNodeId) -> NodeId {
        self.nodes[id.index()].element
    }

    /// The query variable of a binding node.
    pub fn var(&self, id: NtNodeId) -> QVar {
        self.nodes[id.index()].var
    }

    /// Children of a binding node.
    pub fn children(&self, id: NtNodeId) -> &[NtNodeId] {
        &self.nodes[id.index()].children
    }

    /// Surviving bindings of `var`.
    pub fn bindings(&self, var: QVar) -> &[NtNodeId] {
        &self.bindings[var.index()]
    }

    /// Number of *distinct elements* bound to `var`.
    pub fn distinct_elements(&self, var: QVar) -> usize {
        let mut elements: Vec<NodeId> = self.bindings[var.index()]
            .iter()
            .map(|&id| self.element(id))
            .collect();
        elements.sort_unstable();
        elements.dedup();
        elements.len()
    }

    /// The number of binding tuples of the query (§2): the count the
    /// paper's selectivity experiments use as ground truth. Computed
    /// bottom-up; required child variables multiply by the sum of their
    /// subtree tuple counts, optional ones by `max(sum, 1)`.
    pub fn binding_tuples(&self, query: &TwigQuery) -> f64 {
        let mut tuples = vec![0.0f64; self.nodes.len()];
        // Nodes were created parent-before-child, so a reverse scan is a
        // valid bottom-up order.
        for i in (0..self.nodes.len()).rev() {
            let node = &self.nodes[i];
            let mut product = 1.0f64;
            for qc in query.children(node.var) {
                let sum: f64 = node
                    .children
                    .iter()
                    .filter(|&&c| self.nodes[c.index()].var == qc)
                    .map(|&c| tuples[c.index()])
                    .sum();
                product *= if query.node(qc).optional {
                    sum.max(1.0)
                } else {
                    sum
                };
            }
            tuples[i] = product;
        }
        tuples[0]
    }
}

/// Evaluates `query` over `doc`, returning the nesting tree, or `None`
/// when the query has no binding tuples (an *empty result*).
pub fn evaluate(doc: &Document, index: &DocIndex, query: &TwigQuery) -> Option<NestingTree> {
    let mut matcher = PathMatcher::new(doc, index);
    evaluate_with(&mut matcher, query)
}

/// Like [`evaluate`] but reusing a caller-provided matcher (and its
/// predicate memo) across queries.
pub fn evaluate_with(matcher: &mut PathMatcher<'_>, query: &TwigQuery) -> Option<NestingTree> {
    let doc = matcher.document();
    let labels = doc.labels();
    // Resolve every edge path once.
    let resolved: Vec<ResolvedPath> = query
        .vars()
        .skip(1)
        .map(|v| query.node(v).path.resolve(labels))
        .collect();

    let mut nodes = vec![NtNode {
        element: doc.root(),
        var: QVar::ROOT,
        children: Vec::new(),
    }];
    let mut bindings: Vec<Vec<NtNodeId>> = vec![Vec::new(); query.num_vars()];
    bindings[0].push(NtNodeId(0));

    // Top-down match: variables are numbered topologically.
    for var in query.vars().skip(1) {
        let parent = query.parent(var);
        let path = &resolved[var.index() - 1];
        let parent_bindings = bindings[parent.index()].clone();
        for pb in parent_bindings {
            let context = nodes[pb.index()].element;
            for element in matcher.matches(context, path) {
                let id = NtNodeId(axqa_xml::dense_id(nodes.len()));
                nodes.push(NtNode {
                    element,
                    var,
                    children: Vec::new(),
                });
                nodes[pb.index()].children.push(id);
                bindings[var.index()].push(id);
            }
        }
    }

    // Bottom-up prune: a binding lacking matches for a required child
    // variable completes no tuple.
    let mut keep = vec![true; nodes.len()];
    for i in (0..nodes.len()).rev() {
        let var = nodes[i].var;
        for qc in query.children(var) {
            if query.node(qc).optional {
                continue;
            }
            let has_survivor = nodes[i]
                .children
                .iter()
                .any(|&c| nodes[c.index()].var == qc && keep[c.index()]);
            if !has_survivor {
                keep[i] = false;
                break;
            }
        }
    }
    if !keep[0] {
        return None;
    }

    // Compact away pruned nodes (children of pruned nodes go with them).
    let mut remap = vec![u32::MAX; nodes.len()];
    let mut compact: Vec<NtNode> = Vec::new();
    for (i, node) in nodes.iter().enumerate() {
        if !keep[i] {
            continue;
        }
        // A kept node's parent chain is kept only if all ancestors kept;
        // enforce reachability by requiring the parent to be remapped
        // already (nodes are in parent-first order). The root is always
        // index 0.
        remap[i] = axqa_xml::dense_id(compact.len());
        compact.push(NtNode {
            element: node.element,
            var: node.var,
            children: Vec::new(),
        });
    }
    // Second pass: rebuild child lists and bindings only along kept paths
    // reachable from the root.
    let mut reachable = vec![false; nodes.len()];
    reachable[0] = true;
    let mut final_bindings: Vec<Vec<NtNodeId>> = vec![Vec::new(); query.num_vars()];
    final_bindings[0].push(NtNodeId(0));
    for (i, node) in nodes.iter().enumerate() {
        if !keep[i] || !reachable[i] {
            continue;
        }
        let ni = remap[i] as usize;
        for &c in &node.children {
            if keep[c.index()] {
                reachable[c.index()] = true;
                let child_new = NtNodeId(remap[c.index()]);
                compact[ni].children.push(child_new);
                final_bindings[nodes[c.index()].var.index()].push(child_new);
            }
        }
    }
    // Drop compact nodes that were kept but unreachable (ancestor pruned):
    // they were never linked, so they are garbage at the tail only if no
    // reachable node follows them; rather than re-compact, verify they
    // hold no children and are absent from bindings — harmless orphans.
    Some(NestingTree {
        nodes: compact,
        bindings: final_bindings,
    })
}

/// The true selectivity (number of binding tuples) of `query`, 0.0 for
/// empty results.
pub fn selectivity(doc: &Document, index: &DocIndex, query: &TwigQuery) -> f64 {
    match evaluate(doc, index, query) {
        Some(nt) => nt.binding_tuples(query),
        None => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axqa_query::{parse_twig, PathExpr, TwigQuery};
    use axqa_xml::parse_document;

    /// The paper's Figure 1 document.
    fn figure1() -> (Document, DocIndex) {
        let src = "<d>\
            <a><p><y/><t/><k/></p><p><y/><t/><k/><k/></p><n/></a>\
            <a><n/><p><y/><t/><k/></p><b><t/></b></a>\
            <a><n/><p><y/><t/><k/></p><b><t/></b></a>\
            </d>";
        let doc = parse_document(src).unwrap();
        let index = DocIndex::build(&doc);
        (doc, index)
    }

    /// The paper's Figure 2 query.
    fn figure2() -> TwigQuery {
        parse_twig("q1: q0 //a[//b]\nq2: q1 //p\nq3: q2 ? //k\nq4: q1 ? //n").unwrap()
    }

    #[test]
    fn figure2_nesting_tree_matches_paper() {
        let (doc, index) = figure1();
        let query = figure2();
        let nt = evaluate(&doc, &index, &query).expect("non-empty");
        // Figure 2(c): a2 and a3 bound to q1; one p each to q2; one k
        // each to q3; one n each to q4.
        assert_eq!(nt.bindings(QVar(1)).len(), 2);
        assert_eq!(nt.bindings(QVar(2)).len(), 2);
        assert_eq!(nt.bindings(QVar(3)).len(), 2);
        assert_eq!(nt.bindings(QVar(4)).len(), 2);
        // 1 + 2 + 2 + 2 + 2 binding nodes.
        assert_eq!(nt.len(), 9);
        // Each a contributes 1 (p) × 1 (k) × 1 (n) = 1 tuple; the root
        // multiplies by the sum over a's = 2.
        assert_eq!(nt.binding_tuples(&query), 2.0);
    }

    #[test]
    fn required_edge_prunes_bindings() {
        let (doc, index) = figure1();
        // //a must have a (required) b child-path and a required //k.
        let query = parse_twig("q1: q0 //a\nq2: q1 //b\nq3: q1 //k").unwrap();
        let nt = evaluate(&doc, &index, &query).unwrap();
        // a1 has no b descendant → pruned; a2, a3 survive.
        assert_eq!(nt.bindings(QVar(1)).len(), 2);
        // tuples: each surviving a: 1 b × 1 k = 1 → total 2.
        assert_eq!(nt.binding_tuples(&query), 2.0);
    }

    #[test]
    fn empty_result_is_none() {
        let (doc, index) = figure1();
        let query = parse_twig("q1: q0 //zzz").unwrap();
        assert!(evaluate(&doc, &index, &query).is_none());
        assert_eq!(selectivity(&doc, &index, &query), 0.0);
    }

    #[test]
    fn optional_edges_do_not_prune_and_count_max1() {
        let (doc, index) = figure1();
        let query = parse_twig("q1: q0 //b\nq2: q1 ? //zzz").unwrap();
        let nt = evaluate(&doc, &index, &query).unwrap();
        assert_eq!(nt.bindings(QVar(1)).len(), 2);
        assert_eq!(nt.bindings(QVar(2)).len(), 0);
        assert_eq!(nt.binding_tuples(&query), 2.0);
    }

    #[test]
    fn tuple_counting_multiplies_branches() {
        let src = "<r><a><x/><x/><y/></a><a><x/><y/><y/></a></r>";
        let doc = parse_document(src).unwrap();
        let index = DocIndex::build(&doc);
        let query = parse_twig("q1: q0 /a\nq2: q1 /x\nq3: q1 /y").unwrap();
        let nt = evaluate(&doc, &index, &query).unwrap();
        // a1: 2x × 1y = 2; a2: 1x × 2y = 2 → 4 tuples.
        assert_eq!(nt.binding_tuples(&query), 4.0);
    }

    #[test]
    fn nested_bindings_duplicate_elements_per_parent() {
        // //a matches nested a's; the inner b is a descendant of both.
        let src = "<r><a><a><b/></a></a></r>";
        let doc = parse_document(src).unwrap();
        let index = DocIndex::build(&doc);
        let query = parse_twig("q1: q0 //a\nq2: q1 //b").unwrap();
        let nt = evaluate(&doc, &index, &query).unwrap();
        assert_eq!(nt.bindings(QVar(1)).len(), 2);
        // b bound once under each a binding.
        assert_eq!(nt.bindings(QVar(2)).len(), 2);
        assert_eq!(nt.distinct_elements(QVar(2)), 1);
        // tuples: outer a has 1 b; inner a has 1 b → 2 tuples.
        assert_eq!(nt.binding_tuples(&query), 2.0);
    }

    #[test]
    fn cascade_pruning_reaches_root() {
        let src = "<r><a><b/></a></r>";
        let doc = parse_document(src).unwrap();
        let index = DocIndex::build(&doc);
        // b must contain c — it does not, so a is pruned, so the result
        // is empty.
        let query = parse_twig("q1: q0 //a\nq2: q1 /b\nq3: q2 /c").unwrap();
        assert!(evaluate(&doc, &index, &query).is_none());
    }

    #[test]
    fn trivial_query_binds_root_only() {
        let (doc, index) = figure1();
        let query = TwigQuery::new();
        let nt = evaluate(&doc, &index, &query).unwrap();
        assert_eq!(nt.len(), 1);
        assert_eq!(nt.binding_tuples(&query), 1.0);
    }

    #[test]
    fn builder_and_parser_agree() {
        let (doc, index) = figure1();
        let mut q = TwigQuery::new();
        let q1 = q.add(
            QVar::ROOT,
            PathExpr::descendant("a").with_predicate(PathExpr::descendant("b")),
        );
        q.add(q1, PathExpr::descendant("p"));
        let parsed = parse_twig("q1: q0 //a[//b]\nq2: q1 //p").unwrap();
        assert_eq!(
            selectivity(&doc, &index, &q),
            selectivity(&doc, &index, &parsed)
        );
    }
}
