//! `cargo xtask lint` — repository invariants clippy cannot express.
//!
//! The pass walks every library source file (`src/` trees of the
//! workspace crates plus the umbrella crate, skipping vendored stubs,
//! tests, benches and examples), strips `#[cfg(test)]` regions, and
//! enforces four rules (ISSUE tentpole 3; DESIGN.md "Static analysis &
//! invariants"):
//!
//! 1. **No lossy count casts** — `as u32` / `as usize` applied to an
//!    expression whose trailing identifier mentions `count`, `card`,
//!    `sel` or `freq` is a lossy conversion of a count-like quantity;
//!    use `u32::try_from` / [`axqa_xml::dense_id`] instead.
//! 2. **No float equality in `distance/`** — the error-metric crate must
//!    compare floats with tolerances, never `==` / `!=`.
//! 3. **Paper-anchored docs** — every `pub fn` in `core/src/build.rs`
//!    and `core/src/eval.rs` carries a doc comment citing the paper
//!    (a `§` section or a `Fig.` reference).
//! 4. **No `unwrap()` in non-test code** — anywhere in the lib trees.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => lint(),
        Some(other) => {
            eprintln!("unknown xtask command {other:?}; available: lint");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("usage: cargo xtask lint");
            ExitCode::FAILURE
        }
    }
}

fn lint() -> ExitCode {
    let root = workspace_root();
    let files = collect_lib_sources(&root);
    if files.is_empty() {
        eprintln!("xtask lint: no source files found under {}", root.display());
        return ExitCode::FAILURE;
    }
    let mut violations: Vec<String> = Vec::new();
    for path in &files {
        let Ok(text) = std::fs::read_to_string(path) else {
            violations.push(format!("{}: unreadable", path.display()));
            continue;
        };
        let rel = path.strip_prefix(&root).unwrap_or(path);
        check_file(rel, &text, &mut violations);
    }
    if violations.is_empty() {
        println!("xtask lint: {} files, all invariants hold", files.len());
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("xtask lint: {v}");
        }
        eprintln!("xtask lint: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}

/// The workspace root: the directory holding the top-level Cargo.toml
/// with a `[workspace]` table (cargo runs xtask from the root, but be
/// robust to invocation from a subdirectory).
fn workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}

/// All non-test library sources: `crates/*/src/**/*.rs` (excluding the
/// vendored stubs and xtask itself) plus the umbrella `src/`.
fn collect_lib_sources(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let crates = root.join("crates");
    if let Ok(entries) = std::fs::read_dir(&crates) {
        for entry in entries.flatten() {
            let dir = entry.path();
            if dir.file_name().is_some_and(|n| n == "xtask") {
                continue;
            }
            walk_rs(&dir.join("src"), &mut files);
        }
    }
    walk_rs(&root.join("src"), &mut files);
    files.sort();
    files
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            walk_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn check_file(rel: &Path, text: &str, violations: &mut Vec<String>) {
    let rel_str = rel.to_string_lossy().replace('\\', "/");
    let lines: Vec<&str> = text.lines().collect();
    let in_test = test_region_mask(&lines);
    let in_distance = rel_str.contains("distance/src");
    let needs_paper_docs =
        rel_str.ends_with("core/src/build.rs") || rel_str.ends_with("core/src/eval.rs");

    let mut doc_block_has_citation = false;
    for (i, raw) in lines.iter().enumerate() {
        let lineno = i.saturating_add(1);
        let code = strip_line_comment(raw);
        let trimmed = raw.trim_start();

        // Rule 3 bookkeeping: track citations in the pending doc block.
        if trimmed.starts_with("///") || trimmed.starts_with("//!") {
            if trimmed.contains('§') || trimmed.contains("Fig.") {
                doc_block_has_citation = true;
            }
            continue;
        }
        if needs_paper_docs && !in_test[i] && is_pub_fn(trimmed) {
            if !doc_block_has_citation {
                let mut msg = String::new();
                let _ = write!(
                    msg,
                    "{rel_str}:{lineno}: pub fn without a paper citation \
                     (§ or Fig.) in its doc comment"
                );
                violations.push(msg);
            }
            doc_block_has_citation = false;
        } else if !trimmed.starts_with("#[") && !trimmed.is_empty() && !is_pub_fn(trimmed) {
            // Any other code line ends the pending doc block.
            doc_block_has_citation = false;
        }

        if in_test[i] {
            continue;
        }

        // Rule 1: lossy casts of count-like identifiers.
        for cast in ["as u32", "as usize"] {
            for pos in find_all(&code, cast) {
                if let Some(ident) = trailing_identifier(&code[..pos]) {
                    // Judge the final segment (the field/binding actually
                    // being cast) so `self.` / receiver chains don't
                    // contribute — `self` must not match `sel`.
                    let last = ident.rsplit('.').next().unwrap_or("");
                    let lower = last.to_ascii_lowercase();
                    if ["count", "card", "sel", "freq"]
                        .iter()
                        .any(|needle| lower.contains(needle))
                    {
                        violations.push(format!(
                            "{rel_str}:{lineno}: `{ident} {cast}` — lossy cast of a \
                             count-like quantity (use try_from/dense_id)"
                        ));
                    }
                }
            }
        }

        // Rule 2: float equality in the distance crate.
        if in_distance && has_float_equality(&code) {
            violations.push(format!(
                "{rel_str}:{lineno}: float equality comparison in distance/ \
                 (compare with a tolerance)"
            ));
        }

        // Rule 4: unwrap() outside test code.
        if code.contains(".unwrap()") {
            violations.push(format!(
                "{rel_str}:{lineno}: `.unwrap()` in non-test code (return an \
                 error or match explicitly)"
            ));
        }
    }
}

/// Marks the lines inside `#[cfg(test)]`-gated items by brace counting
/// from the attribute to the close of the item it gates.
fn test_region_mask(lines: &[&str]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    let mut i = 0usize;
    while i < lines.len() {
        if lines[i].trim_start().starts_with("#[cfg(test)]") {
            let mut depth = 0i64;
            let mut opened = false;
            let mut j = i;
            while j < lines.len() {
                mask[j] = true;
                for ch in strip_line_comment(lines[j]).chars() {
                    match ch {
                        '{' => {
                            depth = depth.saturating_add(1);
                            opened = true;
                        }
                        '}' => depth = depth.saturating_sub(1),
                        _ => {}
                    }
                }
                if opened && depth <= 0 {
                    break;
                }
                j = j.saturating_add(1);
            }
            i = j;
        }
        i = i.saturating_add(1);
    }
    mask
}

/// Drops a trailing `// …` comment (good enough for this codebase: no
/// string literal here contains `//`).
fn strip_line_comment(line: &str) -> String {
    match line.find("//") {
        Some(pos) => line[..pos].to_string(),
        None => line.to_string(),
    }
}

fn is_pub_fn(trimmed: &str) -> bool {
    trimmed.starts_with("pub fn ")
        || trimmed.starts_with("pub const fn ")
        || trimmed.starts_with("pub unsafe fn ")
}

fn find_all(haystack: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut start = 0usize;
    while let Some(pos) = haystack[start..].find(needle) {
        let abs = start.saturating_add(pos);
        out.push(abs);
        start = abs.saturating_add(needle.len());
    }
    out
}

/// The identifier chain (`a.b_c`, `self.count`) immediately before a
/// cast, if any.
fn trailing_identifier(before: &str) -> Option<String> {
    let trimmed = before.trim_end();
    let bytes = trimmed.as_bytes();
    let mut start = bytes.len();
    while start > 0 {
        let b = bytes[start.saturating_sub(1)];
        if b.is_ascii_alphanumeric() || b == b'_' || b == b'.' {
            start = start.saturating_sub(1);
        } else {
            break;
        }
    }
    let ident = trimmed[start..].trim_matches('.');
    if ident.is_empty() || ident.chars().all(|c| c.is_ascii_digit() || c == '.') {
        None
    } else {
        Some(ident.to_string())
    }
}

/// Detects `==` / `!=` with a float literal on either side, or between
/// expressions ending in a float-typed accessor — heuristically: any
/// equality operator whose neighborhood contains a numeric literal with
/// a decimal point.
fn has_float_equality(code: &str) -> bool {
    for op in ["==", "!="] {
        for pos in find_all(code, op) {
            // Skip `<=`, `>=`, `!=` handled separately, and `=>`.
            if op == "==" && pos > 0 {
                let prev = code.as_bytes()[pos.saturating_sub(1)];
                if prev == b'<' || prev == b'>' || prev == b'!' || prev == b'=' {
                    continue;
                }
            }
            let left = trailing_identifier(&code[..pos]);
            let right_str: String = code[pos.saturating_add(2)..]
                .trim_start()
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '.' || *c == '_')
                .collect();
            if is_float_literal(left.as_deref().unwrap_or("")) || is_float_literal(&right_str) {
                return true;
            }
        }
    }
    false
}

fn is_float_literal(token: &str) -> bool {
    let t = token.trim_end_matches("f64").trim_end_matches("f32");
    !t.is_empty()
        && t.contains('.')
        && t.chars()
            .all(|c| c.is_ascii_digit() || c == '.' || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_str(rel: &str, text: &str) -> Vec<String> {
        let mut v = Vec::new();
        check_file(Path::new(rel), text, &mut v);
        v
    }

    #[test]
    fn flags_count_casts_and_unwrap() {
        let v = check_str(
            "crates/core/src/cluster.rs",
            "fn f(elem_count: u64) -> u32 {\n    let x = elem_count as u32;\n    x\n}\n\
             fn g(o: Option<u32>) -> u32 { o.unwrap() }\n",
        );
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v[0].contains("lossy cast"));
        assert!(v[1].contains("unwrap"));
    }

    #[test]
    fn test_regions_are_exempt() {
        let v = check_str(
            "crates/core/src/cluster.rs",
            "fn ok() {}\n#[cfg(test)]\nmod tests {\n    fn t(count: usize) {\n        \
             let _ = count as u32;\n        Some(1).unwrap();\n    }\n}\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn flags_float_equality_only_in_distance() {
        let code = "fn f(x: f64) -> bool { x == 0.5 }\n";
        assert_eq!(check_str("crates/distance/src/esd.rs", code).len(), 1);
        assert!(check_str("crates/core/src/eval.rs", code).is_empty());
        // Integer equality in distance/ is fine.
        let ints = "fn f(x: u32) -> bool { x == 5 }\n";
        assert!(check_str("crates/distance/src/esd.rs", ints).is_empty());
    }

    #[test]
    fn requires_paper_citation_on_build_and_eval_pub_fns() {
        let undocumented = "pub fn ts_build() {}\n";
        assert_eq!(check_str("crates/core/src/build.rs", undocumented).len(), 1);
        let documented = "/// TSBUILD (Fig. 5).\npub fn ts_build() {}\n";
        assert!(check_str("crates/core/src/build.rs", documented).is_empty());
        // Other files do not require citations.
        assert!(check_str("crates/xml/src/tree.rs", undocumented).is_empty());
    }
}
