//! A minimal recursive-descent JSON reader for `bench diff`
//! (DESIGN.md §12): just enough to load two `axqa-bench-baseline/*`
//! snapshots back into navigable values. Hand-rolled like the writers —
//! the workspace carries no serde — and read-only: numbers are kept as
//! `f64` (the magnitudes in a bench report are far below 2^53, where
//! that is lossless for the integers we compare exactly).

use std::collections::BTreeMap;

/// A parsed JSON value. Object keys are sorted (`BTreeMap`) so
/// diff output iterates deterministically.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Json>),
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on an object (`None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// Walks a `.`-separated member path: `pointer("machine.cpus")`.
    pub fn pointer(&self, path: &str) -> Option<&Json> {
        let mut node = self;
        for key in path.split('.') {
            node = node.get(key)?;
        }
        Some(node)
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as an exact u64 (integral, in range), for counters
    /// compared bit-for-bit.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Number(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= 9.007_199_254_740_992e15 => {
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                // Guarded: integral, non-negative, ≤ 2^53 — exact in f64.
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses a complete JSON document; trailing garbage is an error.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected '{}' at byte {} (found {:?})",
            byte as char,
            *pos,
            bytes.get(*pos).map(|b| *b as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
        other => Err(format!(
            "unexpected {:?} at byte {}",
            other.map(|b| *b as char),
            *pos
        )),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Number)
        .map_err(|e| format!("bad number {text:?} at byte {start}: {e}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|e| format!("\\u{hex}: {e}"))?;
                        // Surrogate pairs don't occur in our own writers;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    other => {
                        return Err(format!("bad escape {:?}", other.map(|b| *b as char)));
                    }
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences pass
                // through unchanged).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let ch = rest.chars().next().ok_or("unterminated string")?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            other => {
                return Err(format!(
                    "expected ',' or ']' at byte {} (found {:?})",
                    *pos,
                    other.map(|b| *b as char)
                ));
            }
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Object(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Object(map));
            }
            other => {
                return Err(format!(
                    "expected ',' or '}}' at byte {} (found {:?})",
                    *pos,
                    other.map(|b| *b as char)
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("-12.5e1").unwrap(), Json::Number(-125.0));
        assert_eq!(
            parse("\"a\\n\\\"b\\u0041\"").unwrap(),
            Json::String("a\n\"bA".into())
        );
        let doc = parse(r#"{"a": [1, 2, {"b": false}], "c": {}}"#).unwrap();
        assert_eq!(doc.pointer("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            doc.pointer("a").unwrap().as_array().unwrap()[2].pointer("b"),
            Some(&Json::Bool(false))
        );
    }

    #[test]
    fn exact_integer_extraction_guards_range_and_fraction() {
        assert_eq!(parse("55456").unwrap().as_u64(), Some(55456));
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("-3").unwrap().as_u64(), None);
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{}extra").is_err());
        assert!(parse("\"open").is_err());
    }

    #[test]
    fn round_trips_a_real_baseline_document() {
        // The committed snapshot must stay loadable by this reader —
        // `bench diff` in CI depends on it.
        let text = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_core.json"
        ))
        .unwrap();
        let doc = parse(&text).unwrap();
        assert!(doc.pointer("schema").unwrap().as_str().is_some());
        assert!(doc.pointer("metrics.counters").is_some());
    }
}
