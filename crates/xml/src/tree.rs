//! Arena-allocated node-labeled tree (the paper's `T(V, E)`).
//!
//! Nodes live in a single `Vec`; sibling lists are intrusive
//! (`first_child` / `last_child` / `next_sibling` links) so appending a
//! child is O(1) and traversal allocates nothing. Every node stores its
//! parent, which the nesting-tree machinery and the ESD metric both need.

use crate::label::{LabelId, LabelTable};

/// Identifier of a node inside one [`Document`]; also its pre-order rank
/// when the document was built top-down (as parser and generators do).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

const NONE: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct NodeData {
    label: LabelId,
    parent: u32,
    first_child: u32,
    last_child: u32,
    next_sibling: u32,
}

/// A node-labeled ordered tree with interned labels.
///
/// Leaf elements may carry a numeric *value* (the paper's §1 scopes
/// values out of the core study; this substrate supports them for the
/// value-predicate extension). Values are stored sparsely.
#[derive(Debug, Clone)]
pub struct Document {
    labels: LabelTable,
    nodes: Vec<NodeData>,
    /// Sparse numeric leaf values, sorted by node id.
    values: Vec<(u32, f64)>,
}

impl Document {
    /// Creates a document containing only a root labeled `root_label`.
    pub fn new(root_label: &str) -> Self {
        let mut labels = LabelTable::new();
        let label = labels.intern(root_label);
        Document {
            labels,
            nodes: vec![NodeData {
                label,
                parent: NONE,
                first_child: NONE,
                last_child: NONE,
                next_sibling: NONE,
            }],
            values: Vec::new(),
        }
    }

    /// The numeric value of `node`, if one was assigned.
    pub fn value(&self, node: NodeId) -> Option<f64> {
        self.values
            .binary_search_by_key(&node.0, |&(n, _)| n)
            .ok()
            .map(|i| self.values[i].1)
    }

    /// Assigns (or overwrites) the numeric value of `node`.
    pub fn set_value(&mut self, node: NodeId, value: f64) {
        match self.values.binary_search_by_key(&node.0, |&(n, _)| n) {
            Ok(i) => self.values[i].1 = value,
            Err(i) => self.values.insert(i, (node.0, value)),
        }
    }

    /// Number of nodes carrying a value.
    pub fn num_values(&self) -> usize {
        self.values.len()
    }

    /// The root node (always `NodeId(0)`).
    #[inline]
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// Number of element nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the document holds only its root. (A document is never
    /// entirely empty.)
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// The label table.
    #[inline]
    pub fn labels(&self) -> &LabelTable {
        &self.labels
    }

    /// Interns a tag in this document's label table.
    pub fn intern(&mut self, name: &str) -> LabelId {
        self.labels.intern(name)
    }

    /// The label id of `node`.
    #[inline]
    pub fn label(&self, node: NodeId) -> LabelId {
        self.nodes[node.index()].label
    }

    /// The tag string of `node`.
    #[inline]
    pub fn label_name(&self, node: NodeId) -> &str {
        self.labels.name(self.label(node))
    }

    /// The parent of `node`, or `None` for the root.
    #[inline]
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        let p = self.nodes[node.index()].parent;
        (p != NONE).then_some(NodeId(p))
    }

    /// Whether `node` has no children.
    #[inline]
    pub fn is_leaf(&self, node: NodeId) -> bool {
        self.nodes[node.index()].first_child == NONE
    }

    /// Appends a child labeled `label` under `parent`, returning its id.
    ///
    /// # Panics
    ///
    /// If the document already holds `u32::MAX` nodes — the arena
    /// addresses nodes with `u32` ids.
    pub fn add_child(&mut self, parent: NodeId, label: LabelId) -> NodeId {
        let id = match u32::try_from(self.nodes.len()) {
            Ok(next) => next,
            // The arena addresses nodes with u32; beyond that the tree is
            // unrepresentable and aborting beats aliasing node ids.
            Err(_) => panic!("document overflow: more than u32::MAX nodes"),
        };
        self.nodes.push(NodeData {
            label,
            parent: parent.0,
            first_child: NONE,
            last_child: NONE,
            next_sibling: NONE,
        });
        let pdata = &mut self.nodes[parent.index()];
        if pdata.last_child == NONE {
            pdata.first_child = id;
            pdata.last_child = id;
        } else {
            let prev = pdata.last_child;
            pdata.last_child = id;
            self.nodes[prev as usize].next_sibling = id;
        }
        NodeId(id)
    }

    /// Appends a child by tag string (interning it first).
    pub fn add_child_named(&mut self, parent: NodeId, name: &str) -> NodeId {
        let label = self.labels.intern(name);
        self.add_child(parent, label)
    }

    /// Iterates the children of `node` in document order.
    #[inline]
    pub fn children(&self, node: NodeId) -> Children<'_> {
        Children {
            doc: self,
            next: self.nodes[node.index()].first_child,
        }
    }

    /// Number of children of `node` (O(children)).
    pub fn child_count(&self, node: NodeId) -> usize {
        self.children(node).count()
    }

    /// Pre-order traversal of the whole document.
    pub fn pre_order(&self) -> PreOrder<'_> {
        PreOrder {
            doc: self,
            stack: vec![self.root()],
        }
    }

    /// Pre-order traversal of the subtree rooted at `node` (inclusive).
    pub fn subtree(&self, node: NodeId) -> PreOrder<'_> {
        PreOrder {
            doc: self,
            stack: vec![node],
        }
    }

    /// Post-order traversal of the whole document. `BUILDSTABLE` (§4.1)
    /// visits elements in exactly this order.
    pub fn post_order(&self) -> PostOrder<'_> {
        PostOrder::new(self, self.root())
    }

    /// Number of nodes in the subtree rooted at `node` (inclusive).
    pub fn subtree_size(&self, node: NodeId) -> usize {
        self.subtree(node).count()
    }

    /// Depth of every node (root = 0), indexed by `NodeId`.
    pub fn depths(&self) -> Vec<u32> {
        let mut depths = vec![0u32; self.nodes.len()];
        for node in self.pre_order() {
            if let Some(parent) = self.parent(node) {
                depths[node.index()] = depths[parent.index()] + 1;
            }
        }
        depths
    }

    /// Height of the tree: the maximum node depth.
    pub fn height(&self) -> u32 {
        self.depths().into_iter().max().unwrap_or(0)
    }

    /// The paper's *depth* of an element (§4.2, CREATEPOOL): 0 for a leaf,
    /// else `1 + max(depth of children)` — i.e. the longest downward path
    /// to a leaf. Returned for every node, indexed by `NodeId`.
    pub fn leaf_depths(&self) -> Vec<u32> {
        let mut depth = vec![0u32; self.nodes.len()];
        for node in self.post_order() {
            let best = self
                .children(node)
                .map(|c| depth[c.index()] + 1)
                .max()
                .unwrap_or(0);
            depth[node.index()] = best;
        }
        depth
    }

    /// Iterates all node ids in arena order (== creation order).
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..u32::try_from(self.nodes.len()).unwrap_or(u32::MAX)).map(NodeId)
    }
}

/// Iterator over the children of a node.
pub struct Children<'a> {
    doc: &'a Document,
    next: u32,
}

impl Iterator for Children<'_> {
    type Item = NodeId;

    #[inline]
    fn next(&mut self) -> Option<NodeId> {
        if self.next == NONE {
            return None;
        }
        let id = NodeId(self.next);
        self.next = self.doc.nodes[id.index()].next_sibling;
        Some(id)
    }
}

/// Pre-order (document-order) traversal.
pub struct PreOrder<'a> {
    doc: &'a Document,
    stack: Vec<NodeId>,
}

impl Iterator for PreOrder<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let node = self.stack.pop()?;
        // Push children in reverse so the leftmost pops first.
        let mut children: Vec<NodeId> = self.doc.children(node).collect();
        children.reverse();
        self.stack.extend(children);
        Some(node)
    }
}

/// Iterative post-order traversal (children before parents).
pub struct PostOrder<'a> {
    doc: &'a Document,
    /// (node, expanded?) — a node is yielded when popped in expanded state.
    stack: Vec<(NodeId, bool)>,
}

impl<'a> PostOrder<'a> {
    fn new(doc: &'a Document, root: NodeId) -> Self {
        PostOrder {
            doc,
            stack: vec![(root, false)],
        }
    }
}

impl Iterator for PostOrder<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        loop {
            let (node, expanded) = self.stack.pop()?;
            if expanded {
                return Some(node);
            }
            self.stack.push((node, true));
            let base = self.stack.len();
            self.stack
                .extend(self.doc.children(node).map(|c| (c, false)));
            self.stack[base..].reverse();
        }
    }
}

/// Stack-based builder for constructing documents top-down, used by the
/// parser and the dataset generators.
///
/// ```
/// use axqa_xml::DocumentBuilder;
/// let mut b = DocumentBuilder::new("bib");
/// b.open("author");
/// b.leaf("name");
/// b.close();
/// let doc = b.finish();
/// assert_eq!(doc.len(), 3);
/// ```
#[derive(Debug)]
pub struct DocumentBuilder {
    doc: Document,
    stack: Vec<NodeId>,
}

impl DocumentBuilder {
    /// Starts a document whose root is labeled `root_label`; the root is
    /// the initially open element.
    pub fn new(root_label: &str) -> Self {
        let doc = Document::new(root_label);
        let root = doc.root();
        DocumentBuilder {
            doc,
            stack: vec![root],
        }
    }

    /// Opens a new element under the current one; it becomes current.
    pub fn open(&mut self, name: &str) -> NodeId {
        let parent = self.current();
        let id = self.doc.add_child_named(parent, name);
        self.stack.push(id);
        id
    }

    /// Adds an empty element under the current one (open + close).
    pub fn leaf(&mut self, name: &str) -> NodeId {
        let parent = self.current();
        self.doc.add_child_named(parent, name)
    }

    /// Adds a leaf carrying a numeric value.
    pub fn leaf_with_value(&mut self, name: &str, value: f64) -> NodeId {
        let id = self.leaf(name);
        self.doc.set_value(id, value);
        id
    }

    /// Assigns a numeric value to the currently open element (used by
    /// the parser when a leaf's text content is numeric).
    pub fn set_current_value(&mut self, value: f64) {
        let current = self.current();
        self.doc.set_value(current, value);
    }

    /// Whether the currently open element has no children yet.
    pub fn current_is_leaf(&self) -> bool {
        self.doc.is_leaf(self.current())
    }

    /// Closes the current element.
    ///
    /// # Panics
    /// Panics on an attempt to close the root.
    pub fn close(&mut self) {
        assert!(self.stack.len() > 1, "cannot close the document root");
        self.stack.pop();
    }

    /// Depth of the currently open element (root = 0).
    pub fn depth(&self) -> usize {
        self.stack.len() - 1
    }

    /// The currently open element.
    ///
    /// # Panics
    ///
    /// If the element stack is empty — unreachable in practice, since
    /// the stack starts with the root and `close` refuses to pop it.
    pub fn current(&self) -> NodeId {
        match self.stack.last() {
            Some(&id) => id,
            // The stack starts with the root and `close` refuses to pop it.
            None => unreachable!("builder stack never empty"),
        }
    }

    /// Nodes built so far.
    pub fn len(&self) -> usize {
        self.doc.len()
    }

    /// Whether only the root exists so far.
    pub fn is_empty(&self) -> bool {
        self.doc.is_empty()
    }

    /// Finishes the document, implicitly closing any open elements.
    pub fn finish(self) -> Document {
        self.doc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the example bibliography document of the paper's Figure 1.
    pub(crate) fn figure1_document() -> Document {
        let mut b = DocumentBuilder::new("d");
        // a1: p(y,t,k), p(y,t,k,k), n
        b.open("a");
        b.open("p");
        b.leaf("y");
        b.leaf("t");
        b.leaf("k");
        b.close();
        b.open("p");
        b.leaf("y");
        b.leaf("t");
        b.leaf("k");
        b.leaf("k");
        b.close();
        b.leaf("n");
        b.close();
        // a2: n, p(y,t,k), b(t)
        b.open("a");
        b.leaf("n");
        b.open("p");
        b.leaf("y");
        b.leaf("t");
        b.leaf("k");
        b.close();
        b.open("b");
        b.leaf("t");
        b.close();
        b.close();
        // a3: n, p(y,t,k), b(t)
        b.open("a");
        b.leaf("n");
        b.open("p");
        b.leaf("y");
        b.leaf("t");
        b.leaf("k");
        b.close();
        b.open("b");
        b.leaf("t");
        b.close();
        b.close();
        b.finish()
    }

    #[test]
    fn builder_produces_expected_shape() {
        let doc = figure1_document();
        // d + 3 a + 4 p + 3 y+3 t(p)+5 k + 3 n + 2 b + 2 t(b) ... count:
        // a1: a,p,y,t,k,p,y,t,k,k,n = 11
        // a2: a,n,p,y,t,k,b,t = 8
        // a3: 8  → total 1 + 11 + 8 + 8 = 28
        assert_eq!(doc.len(), 28);
        let root = doc.root();
        assert_eq!(doc.label_name(root), "d");
        assert_eq!(doc.child_count(root), 3);
        for a in doc.children(root) {
            assert_eq!(doc.label_name(a), "a");
            assert_eq!(doc.parent(a), Some(root));
        }
    }

    #[test]
    fn children_in_document_order() {
        let mut doc = Document::new("r");
        let l = doc.intern("x");
        let c1 = doc.add_child(doc.root(), l);
        let c2 = doc.add_child(doc.root(), l);
        let c3 = doc.add_child(doc.root(), l);
        let kids: Vec<_> = doc.children(doc.root()).collect();
        assert_eq!(kids, vec![c1, c2, c3]);
    }

    #[test]
    fn pre_order_visits_parent_before_children() {
        let doc = figure1_document();
        let order: Vec<_> = doc.pre_order().collect();
        assert_eq!(order.len(), doc.len());
        let mut position = vec![0usize; doc.len()];
        for (i, n) in order.iter().enumerate() {
            position[n.index()] = i;
        }
        for n in doc.node_ids() {
            if let Some(p) = doc.parent(n) {
                assert!(position[p.index()] < position[n.index()]);
            }
        }
    }

    #[test]
    fn post_order_visits_children_before_parent() {
        let doc = figure1_document();
        let order: Vec<_> = doc.post_order().collect();
        assert_eq!(order.len(), doc.len());
        let mut position = vec![0usize; doc.len()];
        for (i, n) in order.iter().enumerate() {
            position[n.index()] = i;
        }
        for n in doc.node_ids() {
            if let Some(p) = doc.parent(n) {
                assert!(position[p.index()] > position[n.index()]);
            }
        }
        assert_eq!(*order.last().unwrap(), doc.root());
    }

    #[test]
    fn subtree_sizes_and_height() {
        let doc = figure1_document();
        assert_eq!(doc.subtree_size(doc.root()), 28);
        let first_a = doc.children(doc.root()).next().unwrap();
        assert_eq!(doc.subtree_size(first_a), 11);
        assert_eq!(doc.height(), 3); // d → a → p → y
    }

    #[test]
    fn leaf_depths_match_paper_definition() {
        let doc = figure1_document();
        let depth = doc.leaf_depths();
        assert_eq!(depth[doc.root().index()], 3);
        for n in doc.node_ids() {
            if doc.is_leaf(n) {
                assert_eq!(depth[n.index()], 0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "cannot close the document root")]
    fn closing_root_panics() {
        let mut b = DocumentBuilder::new("r");
        b.close();
    }
}
