// Examples/integration tests are demo code: panicking extractors are fine.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::arithmetic_side_effects
)]

//! Approximate-answer quality under the ESD metric (§5): why averages
//! beat histogram sampling for *structure*, and why tree-edit distance
//! is the wrong yardstick.
//!
//! ```text
//! cargo run --release --example answer_quality
//! ```
//!
//! Part 1 re-enacts Figure 10: tree-edit distance cannot tell a
//! correlation-preserving approximation from a correlation-destroying
//! one; ESD can. Part 2 measures average ESD of TreeSketch answers vs
//! sampled twig-XSketch answers on a protein dataset (a miniature of
//! Figure 11).

use axqa::datagen::workload::{positive_workload, WorkloadConfig};
use axqa::distance::{
    esd_answer, esd_answer_tree, esd_documents, tree_edit_distance, EditCosts, EsdConfig,
};
use axqa::prelude::*;
use axqa::xsketch::answer::{sample_answer, SampleConfig};
use axqa::xsketch::build::{build_xsketch, XsBuildConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ------------------------------------------------------------------
    // Part 1 — Figure 10.
    // ------------------------------------------------------------------
    let truth = parse_document("<r><a><c/><c/><c/><c/><d/></a><a><c/><d/><d/><d/><d/></a></r>")?;
    let t1 = parse_document("<r><a><c/><d/></a><a><c/><c/><c/><c/><d/><d/><d/><d/></a></r>")?;
    let t2 = parse_document(
        "<r><a><c/><c/><c/><c/><c/><c/><d/><d/></a><a><c/><c/><d/><d/><d/><d/><d/><d/></a></r>",
    )?;
    let edit = EditCosts::insert_delete_only();
    println!("Figure 10 — T has a's with (4c,1d) and (1c,4d) children:");
    println!(
        "  tree-edit:  d(T,T1) = {}   d(T,T2) = {}   (cannot separate them)",
        tree_edit_distance(&truth, &t1, &edit),
        tree_edit_distance(&truth, &t2, &edit)
    );
    let esd = EsdConfig::default();
    println!(
        "  ESD      :  d(T,T1) = {:.1}  d(T,T2) = {:.1}  (prefers the correlation-preserving T2)\n",
        esd_documents(&truth, &t1, &esd),
        esd_documents(&truth, &t2, &esd)
    );

    // ------------------------------------------------------------------
    // Part 2 — miniature Figure 11 on SwissProt-style data.
    // ------------------------------------------------------------------
    let doc = generate(
        Dataset::SProt,
        &GenConfig {
            target_elements: 40_000,
            seed: 11,
        },
    );
    let stable = build_stable(&doc);
    let index = DocIndex::build(&doc);
    let workload = positive_workload(
        &stable,
        &WorkloadConfig {
            count: 30,
            seed: 3,
            ..WorkloadConfig::default()
        },
    );
    let build_queries: Vec<(TwigQuery, f64)> = positive_workload(
        &stable,
        &WorkloadConfig {
            count: 20,
            seed: 777,
            ..WorkloadConfig::default()
        },
    )
    .into_iter()
    .map(|q| (q.clone(), selectivity(&doc, &index, &q)))
    .collect();

    println!(
        "avg ESD of approximate answers, SwissProt-style ({} elements):",
        doc.len()
    );
    println!(
        "{:>8}  {:>12}  {:>12}",
        "budget", "TreeSketch", "TwigXSketch"
    );
    for budget_kb in [10usize, 25, 50] {
        let ts = ts_build(&stable, &BuildConfig::with_budget(budget_kb * 1024)).sketch;
        let xs = build_xsketch(
            &stable,
            &build_queries,
            &XsBuildConfig::with_budget(budget_kb * 1024),
        );
        let mut ts_total = 0.0;
        let mut xs_total = 0.0;
        for (i, query) in workload.iter().enumerate() {
            let truth = evaluate(&doc, &index, query).expect("positive workload");
            // TreeSketch answer.
            ts_total += match eval_query(&ts, query, &EvalConfig::default()) {
                Some(result) => esd_answer(&doc, &truth, &result, &esd),
                None => axqa::distance::esd_empty_answer(&doc, &truth, &esd),
            };
            // Sampled twig-XSketch answer.
            let mut rng = StdRng::seed_from_u64(i as u64);
            xs_total += match sample_answer(&xs, query, &SampleConfig::default(), &mut rng) {
                Some(tree) => esd_answer_tree(&doc, &truth, &tree, &esd),
                None => axqa::distance::esd_empty_answer(&doc, &truth, &esd),
            };
        }
        let n = workload.len() as f64;
        println!(
            "{:>7}K  {:>12.1}  {:>12.1}",
            budget_kb,
            ts_total / n,
            xs_total / n
        );
    }
    Ok(())
}
