//! Parsers for path expressions and the compact twig text format.
//!
//! Path grammar (the paper's XPath subset):
//!
//! ```text
//! path      := step+
//! step      := axis name predicate*
//! axis      := "//" | "/"
//! predicate := "[" relpath "]" | "[" "." op number "]"
//! op        := "<" | "<=" | "=" | ">=" | ">"
//! relpath   := path | name-first-path        (leading axis defaults to "/")
//! name      := [A-Za-z0-9_.:-]+
//! ```
//!
//! `[. op number]` is a *value predicate* on the step's own element
//! (the value-content extension); whitespace inside it is allowed.
//!
//! Twig grammar: one line per non-root variable, in topological order:
//!
//! ```text
//! qJ: qI [?] path        e.g.  "q1: q0 //a[//b]"
//! ```

use crate::path::{Axis, PathExpr, Step, ValueOp, ValuePred};
use crate::twig::{QVar, TwigQuery};
use std::fmt;

/// Parse errors for paths and twig queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input where it went wrong.
    pub offset: usize,
}

impl fmt::Display for QueryParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "query parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for QueryParseError {}

fn err(message: impl Into<String>, offset: usize) -> QueryParseError {
    QueryParseError {
        message: message.into(),
        offset,
    }
}

struct Cursor<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn eat(&mut self, token: &str) -> bool {
        if self.rest().starts_with(token) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn name(&mut self) -> Result<String, QueryParseError> {
        let start = self.pos;
        let bytes = self.input.as_bytes();
        while self.pos < bytes.len() {
            let b = bytes[self.pos];
            let ok = b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':');
            if !ok {
                break;
            }
            self.pos += 1;
        }
        if self.pos == start {
            return Err(err("expected a label name", start));
        }
        Ok(self.input[start..self.pos].to_owned())
    }

    fn skip_spaces(&mut self) {
        while self.peek() == Some(' ') {
            self.pos += 1;
        }
    }

    /// Parses `op number` after the `.` of a value predicate.
    fn value_pred(&mut self) -> Result<ValuePred, QueryParseError> {
        self.skip_spaces();
        let op = if self.eat("<=") {
            ValueOp::Le
        } else if self.eat(">=") {
            ValueOp::Ge
        } else if self.eat("<") {
            ValueOp::Lt
        } else if self.eat(">") {
            ValueOp::Gt
        } else if self.eat("=") {
            ValueOp::Eq
        } else {
            return Err(err("expected a comparison operator after '.'", self.pos));
        };
        self.skip_spaces();
        let start = self.pos;
        let bytes = self.input.as_bytes();
        while self.pos < bytes.len()
            && matches!(
                bytes[self.pos],
                b'0'..=b'9' | b'.' | b'-' | b'+' | b'e' | b'E'
            )
        {
            self.pos += 1;
        }
        let constant: f64 = self.input[start..self.pos]
            .parse()
            .map_err(|_| err("expected a number in value predicate", start))?;
        Ok(ValuePred { op, constant })
    }

    /// Parses a path; `leading_axis_required` is false inside predicates,
    /// where `[b/c]` means `[/b/c]`.
    fn path(&mut self, leading_axis_required: bool) -> Result<PathExpr, QueryParseError> {
        let mut steps = Vec::new();
        loop {
            let axis = if self.eat("//") {
                Axis::Descendant
            } else if self.eat("/") || (steps.is_empty() && !leading_axis_required) {
                Axis::Child
            } else if steps.is_empty() {
                return Err(err("expected '/' or '//'", self.pos));
            } else {
                break;
            };
            let label = self.name()?;
            let mut step = Step::new(axis, label);
            while self.eat("[") {
                self.skip_spaces();
                if self.eat(".") {
                    let pred = self.value_pred()?;
                    self.skip_spaces();
                    if !self.eat("]") {
                        return Err(err("expected ']'", self.pos));
                    }
                    step.value_preds.push(pred);
                } else {
                    let predicate = self.path(false)?;
                    if !self.eat("]") {
                        return Err(err("expected ']'", self.pos));
                    }
                    step.predicates.push(predicate);
                }
            }
            steps.push(step);
        }
        Ok(PathExpr::new(steps))
    }
}

/// Parses a path expression like `//a[//b]/c[d/e]`.
pub fn parse_path(input: &str) -> Result<PathExpr, QueryParseError> {
    let mut cursor = Cursor {
        input: input.trim(),
        pos: 0,
    };
    let path = cursor.path(true)?;
    if cursor.peek().is_some() {
        return Err(err(
            format!("trailing input: {:?}", cursor.rest()),
            cursor.pos,
        ));
    }
    Ok(path)
}

/// Parses the compact twig format (see module docs); blank lines and
/// `#`-comment lines are skipped.
pub fn parse_twig(input: &str) -> Result<TwigQuery, QueryParseError> {
    let mut query = TwigQuery::new();
    let mut consumed = 0usize;
    let mut next_var = 1u32;
    for line in input.lines() {
        let line_offset = consumed;
        consumed += line.len() + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let (head, rest) = trimmed
            .split_once(':')
            .ok_or_else(|| err("expected 'qJ: qI path'", line_offset))?;
        let declared = parse_var(head.trim(), line_offset)?;
        if declared != QVar(next_var) {
            return Err(err(
                format!("expected declaration of q{next_var}, found {declared}"),
                line_offset,
            ));
        }
        let rest = rest.trim_start();
        let (parent_text, rest) = rest
            .split_once(char::is_whitespace)
            .ok_or_else(|| err("expected parent variable then path", line_offset))?;
        let parent = parse_var(parent_text, line_offset)?;
        if parent.0 >= next_var {
            return Err(err(
                format!("parent {parent} not declared before q{next_var}"),
                line_offset,
            ));
        }
        let mut rest = rest.trim_start();
        let optional = if let Some(stripped) = rest.strip_prefix('?') {
            rest = stripped.trim_start();
            true
        } else {
            false
        };
        let path = parse_path(rest).map_err(|e| err(e.message, line_offset + e.offset))?;
        if optional {
            query.add_optional(parent, path);
        } else {
            query.add(parent, path);
        }
        next_var += 1;
    }
    Ok(query)
}

fn parse_var(text: &str, offset: usize) -> Result<QVar, QueryParseError> {
    let digits = text.strip_prefix('q').ok_or_else(|| {
        err(
            format!("expected a variable like q1, found {text:?}"),
            offset,
        )
    })?;
    let n: u32 = digits
        .parse()
        .map_err(|_| err(format!("bad variable number in {text:?}"), offset))?;
    Ok(QVar(n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::twig::figure2_query;

    #[test]
    fn parse_simple_paths() {
        assert_eq!(parse_path("//a").unwrap().to_string(), "//a");
        assert_eq!(parse_path("/a/b//c").unwrap().to_string(), "/a/b//c");
    }

    #[test]
    fn parse_predicates_with_default_child_axis() {
        let p = parse_path("/d[g]//f").unwrap();
        assert_eq!(p.to_string(), "/d[/g]//f");
        let p = parse_path("//a[//b][c/d]").unwrap();
        assert_eq!(p.to_string(), "//a[//b][/c/d]");
    }

    #[test]
    fn parse_nested_predicates() {
        let p = parse_path("//a[b[//c]]").unwrap();
        assert_eq!(p.to_string(), "//a[/b[//c]]");
    }

    #[test]
    fn reject_garbage() {
        assert!(parse_path("a//b").is_err()); // no leading axis at top level
        assert!(parse_path("//a[").is_err());
        assert!(parse_path("//a]").is_err());
        assert!(parse_path("//").is_err());
        assert!(parse_path("").is_err());
    }

    #[test]
    fn twig_roundtrip_through_display() {
        let q = figure2_query();
        let reparsed = parse_twig(&q.to_string()).unwrap();
        assert_eq!(reparsed, q);
    }

    #[test]
    fn twig_with_comments_and_blanks() {
        let q = parse_twig("# the Figure 2 query\n\nq1: q0 //a[//b]\nq2: q1 //p\n").unwrap();
        assert_eq!(q.num_vars(), 3);
        assert!(!q.node(QVar(1)).optional);
    }

    #[test]
    fn twig_rejects_forward_references() {
        assert!(parse_twig("q1: q3 //a").is_err());
        assert!(parse_twig("q2: q0 //a").is_err()); // must start at q1
    }

    #[test]
    fn twig_optional_marker() {
        let q = parse_twig("q1: q0 ? //n").unwrap();
        assert!(q.node(QVar(1)).optional);
    }
}

#[cfg(test)]
mod value_pred_tests {
    use super::*;
    use crate::path::ValueOp;

    #[test]
    fn parse_value_predicates() {
        let p = parse_path("//p/year[. > 1995]").unwrap();
        assert_eq!(p.to_string(), "//p/year[. > 1995]");
        let step = p.steps.last().unwrap();
        assert_eq!(step.value_preds.len(), 1);
        assert_eq!(step.value_preds[0].op, ValueOp::Gt);
        assert_eq!(step.value_preds[0].constant, 1995.0);
    }

    #[test]
    fn all_operators_and_ranges() {
        for (text, op) in [
            ("[.<5]", ValueOp::Lt),
            ("[.<=5]", ValueOp::Le),
            ("[.=5]", ValueOp::Eq),
            ("[.>=5]", ValueOp::Ge),
            ("[.>5]", ValueOp::Gt),
        ] {
            let p = parse_path(&format!("//x{text}")).unwrap();
            assert_eq!(p.steps[0].value_preds[0].op, op, "{text}");
        }
        // Range via two predicates.
        let p = parse_path("//x[.>=2][.<10]").unwrap();
        assert_eq!(p.steps[0].value_preds.len(), 2);
    }

    #[test]
    fn value_and_path_predicates_mix() {
        let p = parse_path("//p[year][. > 3]/k").unwrap();
        assert_eq!(p.steps[0].predicates.len(), 1);
        assert_eq!(p.steps[0].value_preds.len(), 1);
    }

    #[test]
    fn negative_and_float_constants() {
        let p = parse_path("//t[. <= -2.75]").unwrap();
        assert_eq!(p.steps[0].value_preds[0].constant, -2.75);
    }

    #[test]
    fn reject_bad_value_predicates() {
        assert!(parse_path("//x[.]").is_err());
        assert!(parse_path("//x[.>]").is_err());
        assert!(parse_path("//x[.>abc]").is_err());
    }

    #[test]
    fn value_pred_roundtrip_through_twig() {
        let q = parse_twig("q1: q0 //p[. >= 1990]\nq2: q1 /k").unwrap();
        let reparsed = parse_twig(&q.to_string()).unwrap();
        assert_eq!(q, reparsed);
    }
}

#[cfg(test)]
mod fuzz_tests {
    use super::*;

    /// The parser must fail cleanly (never panic) on malformed input.
    #[test]
    fn parser_rejects_garbage_without_panicking() {
        let nasty = [
            "",
            "[",
            "]",
            "//",
            "///",
            "//a[",
            "//a[.]",
            "//a[.>>3]",
            "//a[b",
            "q1 q0 //a",
            "q1:",
            "q1: q0",
            "q1: q0 ?",
            "q0: q0 /a",
            "q1: q0 //a\nq1: q0 //b",
            "q2: q1 //a",
            "//a[.=1e]",
            "//a[]",
            "/a/[b]",
            "//a//",
            "//a[//b]]",
            "q1: qx //a",
            "//a[. = ]",
        ];
        for input in nasty {
            let _ = parse_path(input);
            let _ = parse_twig(input);
        }
    }

    #[test]
    fn deep_nesting_parses() {
        let deep = "//a[b[c[d[e[f[g]]]]]]";
        let p = parse_path(deep).unwrap();
        assert_eq!(p.total_steps(), 7);
    }

    #[test]
    fn long_chains_parse() {
        let chain = "/a".repeat(64);
        let p = parse_path(&chain).unwrap();
        assert_eq!(p.steps.len(), 64);
    }
}
