// Benchmarks are test-like code: panicking extractors are acceptable here.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::arithmetic_side_effects
)]

//! Figure 12 — the selectivity-estimation pipeline per technique:
//! EVALQUERY + §4.4 post-order counting over 10 KB synopses, against the
//! histogram-based twig-XSketch estimator.

/// Bench binaries install the counting allocator (DESIGN.md §12)
/// so recorded spans carry real allocation profiles.
#[global_allocator]
static ALLOC: axqa_obs::alloc::CountingAlloc = axqa_obs::alloc::CountingAlloc;

use axqa_bench::Fixture;
use axqa_core::selectivity::estimate_query_selectivity;
use axqa_core::{ts_build, BuildConfig, EvalConfig};
use axqa_datagen::Dataset;
use axqa_xsketch::build::{build_xsketch, XsBuildConfig};
use axqa_xsketch::estimate::{xs_estimate_selectivity, XsEvalConfig};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_fig12(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_selectivity");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(5));
    for dataset in [Dataset::XMark, Dataset::SProt] {
        let fixture = Fixture::new(dataset, 20_000, 100);
        let ts = ts_build(&fixture.stable, &BuildConfig::with_budget(10 * 1024)).sketch;
        let build_workload = fixture.build_workload(15);
        let xs = build_xsketch(
            &fixture.stable,
            &build_workload,
            &XsBuildConfig::with_budget(10 * 1024),
        );
        group.bench_function(format!("treesketch_estimate/{}", dataset.name()), |b| {
            b.iter(|| {
                fixture
                    .workload
                    .iter()
                    .map(|q| estimate_query_selectivity(&ts, q, &EvalConfig::default()))
                    .sum::<f64>()
            })
        });
        group.bench_function(format!("xsketch_estimate/{}", dataset.name()), |b| {
            b.iter(|| {
                fixture
                    .workload
                    .iter()
                    .map(|q| xs_estimate_selectivity(&xs, q, &XsEvalConfig::default()))
                    .sum::<f64>()
            })
        });
        // The cost an exact engine would pay instead (what approximate
        // answering saves, §1).
        group.bench_function(format!("exact_evaluation/{}", dataset.name()), |b| {
            b.iter(|| {
                fixture
                    .workload
                    .iter()
                    .map(|q| axqa_eval::selectivity(&fixture.doc, &fixture.index, q))
                    .sum::<f64>()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig12);
criterion_main!(benches);
