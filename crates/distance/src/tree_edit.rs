//! Ordered tree-edit distance (Zhang–Shasha), the syntax-oriented
//! baseline §5 argues against.
//!
//! The classic O(n₁·n₂·min(depth,leaves)²) dynamic program of Zhang and
//! Shasha \[20\] over post-order-numbered trees with keyroots. Costs are
//! configurable; the paper's Figure 10 example uses insert/delete-only
//! editing, which [`EditCosts::insert_delete_only`] models by pricing a
//! relabel as delete + insert.

use axqa_xml::{Document, NodeId};

/// Per-operation costs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EditCosts {
    /// Cost of deleting a node.
    pub delete: f64,
    /// Cost of inserting a node.
    pub insert: f64,
    /// Cost of relabeling a node (matching identical labels is free).
    pub relabel: f64,
}

impl Default for EditCosts {
    fn default() -> Self {
        EditCosts {
            delete: 1.0,
            insert: 1.0,
            relabel: 1.0,
        }
    }
}

impl EditCosts {
    /// The Figure 10 regime: only insertions and deletions (a relabel
    /// costs as much as delete + insert, so it is never beneficial).
    pub fn insert_delete_only() -> EditCosts {
        EditCosts {
            delete: 1.0,
            insert: 1.0,
            relabel: 2.0,
        }
    }
}

/// Post-order view of a document used by the DP.
struct PostOrderTree {
    /// Labels by post-order index (0-based).
    labels: Vec<String>,
    /// `lml[i]` — post-order index of the leftmost leaf of the subtree
    /// rooted at post-order node `i`.
    lml: Vec<usize>,
    /// Keyroots in increasing post-order.
    keyroots: Vec<usize>,
}

impl PostOrderTree {
    fn build(doc: &Document) -> PostOrderTree {
        let order: Vec<NodeId> = doc.post_order().collect();
        let mut post_index = vec![0usize; doc.len()];
        for (i, n) in order.iter().enumerate() {
            post_index[n.index()] = i;
        }
        let mut labels = Vec::with_capacity(order.len());
        let mut lml = vec![0usize; order.len()];
        for (i, &n) in order.iter().enumerate() {
            labels.push(doc.label_name(n).to_owned());
            // Leftmost leaf: descend first children.
            let mut cur = n;
            while let Some(first) = doc.children(cur).next() {
                cur = first;
            }
            lml[i] = post_index[cur.index()];
        }
        // Keyroots: nodes that are not the leftmost child of their
        // parent (equivalently, the highest node of each distinct lml).
        let mut seen = vec![false; order.len()];
        let mut keyroots = Vec::new();
        for i in (0..order.len()).rev() {
            if !seen[lml[i]] {
                keyroots.push(i);
                seen[lml[i]] = true;
            }
        }
        keyroots.sort_unstable();
        PostOrderTree {
            labels,
            lml,
            keyroots,
        }
    }
}

/// Zhang–Shasha tree-edit distance between two documents.
pub fn tree_edit_distance(d1: &Document, d2: &Document, costs: &EditCosts) -> f64 {
    let t1 = PostOrderTree::build(d1);
    let t2 = PostOrderTree::build(d2);
    let n1 = t1.labels.len();
    let n2 = t2.labels.len();
    let mut tree_dist = vec![vec![0.0f64; n2]; n1];

    for &i in &t1.keyroots {
        for &j in &t2.keyroots {
            forest_distance(&t1, &t2, i, j, costs, &mut tree_dist);
        }
    }
    tree_dist[n1 - 1][n2 - 1]
}

/// Fills `tree_dist` for the keyroot pair `(i, j)` via the forest DP.
fn forest_distance(
    t1: &PostOrderTree,
    t2: &PostOrderTree,
    i: usize,
    j: usize,
    costs: &EditCosts,
    tree_dist: &mut [Vec<f64>],
) {
    let li = t1.lml[i];
    let lj = t2.lml[j];
    let m = i - li + 2; // forest sizes + 1 for the empty forest row/col
    let n = j - lj + 2;
    let mut fd = vec![vec![0.0f64; n]; m];
    for x in 1..m {
        fd[x][0] = fd[x - 1][0] + costs.delete;
    }
    for y in 1..n {
        fd[0][y] = fd[0][y - 1] + costs.insert;
    }
    for x in 1..m {
        for y in 1..n {
            let node1 = li + x - 1;
            let node2 = lj + y - 1;
            if t1.lml[node1] == li && t2.lml[node2] == lj {
                // Both forests are whole trees: full match allowed.
                let rel = if t1.labels[node1] == t2.labels[node2] {
                    0.0
                } else {
                    costs.relabel
                };
                fd[x][y] = (fd[x - 1][y] + costs.delete)
                    .min(fd[x][y - 1] + costs.insert)
                    .min(fd[x - 1][y - 1] + rel);
                tree_dist[node1][node2] = fd[x][y];
            } else {
                let tx = t1.lml[node1] - li; // forest prefix before node1's subtree
                let ty = t2.lml[node2] - lj;
                fd[x][y] = (fd[x - 1][y] + costs.delete)
                    .min(fd[x][y - 1] + costs.insert)
                    .min(fd[tx][ty] + tree_dist[node1][node2]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axqa_xml::parse_document;

    fn dist(a: &str, b: &str) -> f64 {
        let d1 = parse_document(a).unwrap();
        let d2 = parse_document(b).unwrap();
        tree_edit_distance(&d1, &d2, &EditCosts::default())
    }

    #[test]
    fn identical_trees_zero() {
        assert_eq!(dist("<a><b/><c/></a>", "<a><b/><c/></a>"), 0.0);
    }

    #[test]
    fn single_insertions_and_deletions() {
        assert_eq!(dist("<a/>", "<a><b/></a>"), 1.0);
        assert_eq!(dist("<a><b/><b/></a>", "<a><b/></a>"), 1.0);
    }

    #[test]
    fn relabel_costs_one() {
        assert_eq!(dist("<a><b/></a>", "<a><c/></a>"), 1.0);
    }

    #[test]
    fn symmetric() {
        let a = "<r><a><b/><b/></a><c/></r>";
        let b = "<r><a><b/></a><c/><c/></r>";
        assert_eq!(dist(a, b), dist(b, a));
    }

    #[test]
    fn nested_restructure() {
        // Move b under c: delete b, insert b — distance 2 with unit
        // costs (relabel path may also achieve 2).
        assert_eq!(dist("<r><b/><c/></r>", "<r><c><b/></c></r>"), 2.0);
    }

    #[test]
    fn figure10_edit_distance_cannot_separate_t1_t2() {
        // §5: under insert/delete editing both approximations are
        // 3·|Sc| + 3·|Sd| away from T (with |Sc| = |Sd| = 1 → 6).
        let t = parse_document("<r><a><c/><c/><c/><c/><d/></a><a><c/><d/><d/><d/><d/></a></r>")
            .unwrap();
        let t1 = parse_document("<r><a><c/><d/></a><a><c/><c/><c/><c/><d/><d/><d/><d/></a></r>")
            .unwrap();
        let t2 = parse_document(
            "<r><a><c/><c/><c/><c/><c/><c/><d/><d/></a>\
             <a><c/><c/><d/><d/><d/><d/><d/><d/></a></r>",
        )
        .unwrap();
        let costs = EditCosts::insert_delete_only();
        let d1 = tree_edit_distance(&t, &t1, &costs);
        let d2 = tree_edit_distance(&t, &t2, &costs);
        assert_eq!(d1, 6.0);
        assert_eq!(d2, 6.0);
        assert_eq!(d1, d2, "edit distance judges T1 and T2 equal");
    }

    #[test]
    fn completely_different_trees() {
        // Root relabel + child changes.
        let d = dist("<a><b/></a>", "<x><y/><z/></x>");
        assert!(d >= 3.0);
    }
}
