//! The other instantiations of the generic graph-synopsis model that
//! §3.1 cites: 1-indexes (Milo–Suciu) and A(k)-indexes
//! (Kaushik et al.), both label-respecting node partitionings.
//!
//! On *trees* the incoming label path of an element is unique, so:
//!
//! * the **1-index** partitions elements by their full root-to-element
//!   label path;
//! * the **A(k)-index** partitions by the last `k+1` labels of that
//!   path (`A(0)` is exactly the label-split graph);
//! * `A(k)` refines `A(k-1)` and converges to the 1-index once `k`
//!   reaches the document height.
//!
//! These partitions describe *incoming* paths, while count stability
//! describes *outgoing* subtrees — the two are incomparable in general,
//! which is precisely why the TreeSketch work needed a new equivalence
//! (backward indexes cannot capture result structure below an element).

use axqa_xml::fxhash::FxHashMap;
use axqa_xml::{Document, LabelId, NodeId};

/// A label-respecting partition of a document's elements: the common
/// shape of every §3.1 synopsis.
#[derive(Debug, Clone)]
pub struct Partition {
    /// `class_of[element]` = class id (dense, 0-based).
    pub class_of: Vec<u32>,
    /// Number of classes.
    pub num_classes: usize,
    /// Common label per class.
    pub labels: Vec<LabelId>,
    /// Extent size per class.
    pub extents: Vec<u64>,
}

impl Partition {
    /// The class of an element.
    pub fn class(&self, element: NodeId) -> u32 {
        self.class_of[element.index()]
    }

    /// Number of synopsis edges the partition induces (distinct
    /// parent-class → child-class pairs).
    pub fn num_edges(&self, doc: &Document) -> usize {
        let mut edges: std::collections::HashSet<(u32, u32)> = std::collections::HashSet::new();
        for element in doc.node_ids() {
            if let Some(parent) = doc.parent(element) {
                edges.insert((self.class(parent), self.class(element)));
            }
        }
        edges.len()
    }

    /// Checks that the partition respects labels.
    pub fn verify_labels(&self, doc: &Document) -> bool {
        doc.node_ids()
            .all(|n| self.labels[self.class(n) as usize] == doc.label(n))
    }
}

/// Builds the A(k)-index partition: elements are equivalent iff the last
/// `k+1` labels of their root paths agree. `A(0)` is the label-split
/// graph.
pub fn ak_index(doc: &Document, k: u32) -> Partition {
    // signature[element] = class under the current refinement level.
    // Level 0: by label. Level i: by (own class at i-1, parent class at
    // i-1) — the standard bisimulation refinement, which on trees equals
    // the last-(i+1)-labels criterion.
    let mut class_of: Vec<u32> = doc.node_ids().map(|n| doc.label(n).0).collect();
    // Compact level-0 ids.
    class_of = compact(&class_of);
    for _ in 0..k {
        let mut table: FxHashMap<(u32, u32), u32> = FxHashMap::default();
        let mut next: Vec<u32> = vec![0; class_of.len()];
        // Pre-order guarantees parents are processed before children,
        // but refinement uses the *previous* level's ids, so order is
        // irrelevant.
        for element in doc.node_ids() {
            let own = class_of[element.index()];
            let parent = doc
                .parent(element)
                .map(|p| class_of[p.index()])
                .unwrap_or(u32::MAX);
            let fresh = axqa_xml::dense_id(table.len());
            let id = *table.entry((own, parent)).or_insert(fresh);
            next[element.index()] = id;
        }
        let stabilized = table.len() == count_classes(&class_of);
        class_of = next;
        if stabilized {
            break; // fixpoint: A(k) == A(k-1) == … == 1-index
        }
    }
    finish(doc, class_of)
}

/// Builds the 1-index partition (full incoming-path equivalence): the
/// A(k) fixpoint, reached at `k = height`.
pub fn one_index(doc: &Document) -> Partition {
    ak_index(doc, doc.height())
}

fn count_classes(class_of: &[u32]) -> usize {
    let mut seen: Vec<u32> = class_of.to_vec();
    seen.sort_unstable();
    seen.dedup();
    seen.len()
}

fn compact(class_of: &[u32]) -> Vec<u32> {
    let mut remap: FxHashMap<u32, u32> = FxHashMap::default();
    class_of
        .iter()
        .map(|&c| {
            let fresh = axqa_xml::dense_id(remap.len());
            *remap.entry(c).or_insert(fresh)
        })
        .collect()
}

fn finish(doc: &Document, raw: Vec<u32>) -> Partition {
    let class_of = compact(&raw);
    let num_classes = count_classes(&class_of);
    let mut labels = vec![LabelId(0); num_classes];
    let mut extents = vec![0u64; num_classes];
    for element in doc.node_ids() {
        let class = class_of[element.index()] as usize;
        labels[class] = doc.label(element);
        extents[class] = extents[class].saturating_add(1);
    }
    Partition {
        class_of,
        num_classes,
        labels,
        extents,
    }
}

/// Convenience: the partition induced by a count-stable summary's
/// assignment, in the same [`Partition`] shape (for size comparisons
/// across the synopsis family).
pub fn stable_partition(doc: &Document, summary: &crate::stable::StableSummary) -> Partition {
    let class_of: Vec<u32> = doc.node_ids().map(|n| summary.class_of(n).0).collect();
    let num_classes = summary.len();
    let labels = summary.nodes().iter().map(|n| n.label).collect();
    let extents = summary.nodes().iter().map(|n| n.extent).collect();
    Partition {
        class_of,
        num_classes,
        labels,
        extents,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stable::build_stable;
    use axqa_xml::parse_document;

    fn sample() -> Document {
        parse_document("<r><a><b/><b/></a><c><a><b/></a></c><a><d/></a></r>").unwrap()
    }

    #[test]
    fn a0_is_label_split() {
        let doc = sample();
        let p = ak_index(&doc, 0);
        assert_eq!(p.num_classes, doc.labels().len());
        assert!(p.verify_labels(&doc));
    }

    #[test]
    fn ak_refines_with_k() {
        let doc = sample();
        let mut previous = 0usize;
        for k in 0..=doc.height() {
            let p = ak_index(&doc, k);
            assert!(
                p.num_classes >= previous,
                "A({k}) coarser than A({})",
                k.saturating_sub(1)
            );
            assert!(p.verify_labels(&doc));
            previous = p.num_classes;
        }
    }

    #[test]
    fn one_index_separates_by_incoming_path() {
        let doc = sample();
        let p = one_index(&doc);
        // The a's under r share a class; the a under c is separate.
        let mut a_classes: Vec<u32> = doc
            .node_ids()
            .filter(|&n| doc.label_name(n) == "a")
            .map(|n| p.class(n))
            .collect();
        a_classes.sort_unstable();
        a_classes.dedup();
        assert_eq!(a_classes.len(), 2);
        // The b's under /r/a and the b under /r/c/a differ too.
        let mut b_classes: Vec<u32> = doc
            .node_ids()
            .filter(|&n| doc.label_name(n) == "b")
            .map(|n| p.class(n))
            .collect();
        b_classes.sort_unstable();
        b_classes.dedup();
        assert_eq!(b_classes.len(), 2);
    }

    #[test]
    fn backward_and_forward_partitions_are_incomparable() {
        // 1-index merges the two /r/a elements although their subtrees
        // differ (b,b vs d) — count stability must split them; count
        // stability merges elements at different paths with identical
        // subtrees — the 1-index splits those.
        let doc = parse_document("<r><a><b/></a><c><a><b/></a></c><a><x/></a></r>").unwrap();
        let one = one_index(&doc);
        let stable = build_stable(&doc);
        let sp = stable_partition(&doc, &stable);
        let a_nodes: Vec<_> = doc
            .node_ids()
            .filter(|&n| doc.label_name(n) == "a")
            .collect();
        // /r/a(b) and /r/a(x): same 1-index path class? both /r/a → same
        // class under 1-index, different under stability.
        let (first, third) = (a_nodes[0], a_nodes[2]);
        assert_eq!(one.class(first), one.class(third));
        assert_ne!(sp.class(first), sp.class(third));
        // /r/a(b) and /r/c/a(b): different 1-index classes, same stable
        // class (identical subtrees).
        let second = a_nodes[1];
        assert_ne!(one.class(first), one.class(second));
        assert_eq!(sp.class(first), sp.class(second));
    }

    #[test]
    fn extents_sum_to_document_size() {
        let doc = sample();
        for p in [ak_index(&doc, 0), ak_index(&doc, 2), one_index(&doc)] {
            assert_eq!(p.extents.iter().sum::<u64>(), doc.len() as u64);
            assert_eq!(p.num_edges(&doc) > 0, doc.len() > 1);
        }
    }
}
