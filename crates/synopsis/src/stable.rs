//! Count-stable summaries and the `BUILDSTABLE` algorithm (§4.1, Fig. 4).

use axqa_xml::fxhash::FxHashMap;
use axqa_xml::{Document, LabelId, LabelTable, NodeId};
use std::fmt;

/// Identifier of a synopsis node (an equivalence class of elements).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SynNodeId(pub u32);

impl SynNodeId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SynNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// One node of a count-stable summary.
///
/// Because the partition is count-stable, *every* element of the extent
/// has exactly `count` children in each child class — so the per-element
/// child structure is stored once, exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct StableNode {
    /// Common label of all extent elements.
    pub label: LabelId,
    /// Extent size `|extent(u)|`.
    pub extent: u64,
    /// `(child class, k)` pairs with `k ≥ 1`, sorted by child class.
    /// Children classes always have smaller ids than their parents
    /// (classes are created in post-order), so the summary is a DAG.
    pub children: Vec<(SynNodeId, u32)>,
    /// The paper's *depth* (§4.2): 0 for leaf classes, else
    /// `1 + max(child depth)` — identical for all extent elements of a
    /// count-stable class.
    pub depth: u32,
}

impl StableNode {
    /// Per-element child count into `target`, 0 when there is no edge.
    pub fn count_to(&self, target: SynNodeId) -> u32 {
        self.children
            .binary_search_by_key(&target, |&(t, _)| t)
            .map(|i| self.children[i].1)
            .unwrap_or(0)
    }

    /// Per-element total number of children.
    pub fn fanout(&self) -> u64 {
        self.children.iter().map(|&(_, k)| k as u64).sum()
    }
}

/// The unique minimal count-stable summary of a document (Lemma 3.1),
/// plus the element → class assignment that witnesses it.
#[derive(Debug, Clone)]
pub struct StableSummary {
    labels: LabelTable,
    nodes: Vec<StableNode>,
    /// `assignment[element]` = class of the element.
    assignment: Vec<SynNodeId>,
    /// Total number of document elements (Σ extents).
    total_elements: u64,
}

impl StableSummary {
    /// All synopsis nodes, indexed by [`SynNodeId`].
    pub fn nodes(&self) -> &[StableNode] {
        &self.nodes
    }

    /// The node with id `id`.
    pub fn node(&self, id: SynNodeId) -> &StableNode {
        &self.nodes[id.index()]
    }

    /// Number of synopsis nodes (equivalence classes).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// A summary always has at least the root class.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Total synopsis edges.
    pub fn num_edges(&self) -> usize {
        self.nodes.iter().map(|n| n.children.len()).sum()
    }

    /// The class of the document root. The root's subtree strictly
    /// contains every other subtree, so its class is a singleton and is
    /// created last by the post-order construction.
    pub fn root(&self) -> SynNodeId {
        SynNodeId(axqa_xml::dense_id(self.nodes.len()).saturating_sub(1))
    }

    /// The label table (shared vocabulary with the source document).
    pub fn labels(&self) -> &LabelTable {
        &self.labels
    }

    /// Class of a document element.
    pub fn class_of(&self, element: NodeId) -> SynNodeId {
        self.assignment[element.index()]
    }

    /// Total document elements summarized.
    pub fn total_elements(&self) -> u64 {
        self.total_elements
    }

    /// Maximum class depth (== document height measured leaf-up).
    pub fn height(&self) -> u32 {
        self.nodes.iter().map(|n| n.depth).max().unwrap_or(0)
    }

    /// Ids of all classes carrying `label`.
    pub fn classes_with_label(&self, label: LabelId) -> impl Iterator<Item = SynNodeId> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(move |(_, n)| n.label == label)
            .map(|(i, _)| SynNodeId(axqa_xml::dense_id(i)))
    }

    /// Parent adjacency: for every node, the list of `(parent, k)` edges
    /// pointing at it. Computed on demand (TSBUILD keeps its own).
    pub fn parents(&self) -> Vec<Vec<(SynNodeId, u32)>> {
        let mut parents = vec![Vec::new(); self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            for &(child, k) in &node.children {
                parents[child.index()].push((SynNodeId(axqa_xml::dense_id(i)), k));
            }
        }
        parents
    }

    /// Reassembles a summary from parts (deserialization); the
    /// per-element assignment is empty, so [`StableSummary::class_of`]
    /// must not be called on the result.
    pub fn from_parts(
        labels: LabelTable,
        nodes: Vec<StableNode>,
        total_elements: u64,
    ) -> Result<StableSummary, String> {
        if nodes.is_empty() {
            return Err("a summary has at least one node".into());
        }
        for (i, node) in nodes.iter().enumerate() {
            if node.label.index() >= labels.len() {
                return Err(format!("node s{i} has out-of-range label"));
            }
            for &(child, k) in &node.children {
                if child.index() >= i {
                    return Err(format!("node s{i} edge target {child} not before it"));
                }
                if k == 0 {
                    return Err(format!("node s{i} has a 0-count edge"));
                }
            }
        }
        Ok(StableSummary {
            labels,
            nodes,
            assignment: Vec::new(),
            total_elements,
        })
    }

    /// Checks Definition 3.1 against the source document: every element
    /// of every class has exactly the class's `k` children in each child
    /// class, and labels agree. Used by tests and debug assertions.
    pub fn verify_against(&self, doc: &Document) -> Result<(), String> {
        if doc.len() != self.assignment.len() {
            return Err(format!(
                "assignment covers {} elements, document has {}",
                self.assignment.len(),
                doc.len()
            ));
        }
        let mut extent_check = vec![0u64; self.nodes.len()];
        for element in doc.node_ids() {
            let class = self.class_of(element);
            let node = self.node(class);
            extent_check[class.index()] = extent_check[class.index()].saturating_add(1);
            if doc.label(element) != node.label {
                return Err(format!(
                    "element {element:?} label differs from class {class}"
                ));
            }
            let mut counts: FxHashMap<SynNodeId, u32> = FxHashMap::default();
            for child in doc.children(element) {
                let slot = counts.entry(self.class_of(child)).or_insert(0);
                *slot = slot.saturating_add(1);
            }
            let mut expected: Vec<(SynNodeId, u32)> = counts.into_iter().collect();
            expected.sort_unstable_by_key(|&(t, _)| t);
            if expected != node.children {
                return Err(format!(
                    "element {element:?} child signature {expected:?} ≠ class {class} signature {:?}",
                    node.children
                ));
            }
        }
        for (i, node) in self.nodes.iter().enumerate() {
            if extent_check[i] != node.extent {
                return Err(format!(
                    "class s{i} extent {} but {} elements assigned",
                    node.extent, extent_check[i]
                ));
            }
        }
        Ok(())
    }
}

/// `BUILDSTABLE` (Fig. 4): builds the minimal count-stable summary in one
/// post-order pass, hashing each element's `(label, child signature)`.
///
/// ```
/// use axqa_xml::parse_document;
/// use axqa_synopsis::build_stable;
///
/// // Two structurally identical authors collapse into one class.
/// let doc = parse_document("<bib><a><p/></a><a><p/></a></bib>").unwrap();
/// let summary = build_stable(&doc);
/// assert_eq!(summary.len(), 3); // p, a(p), bib
/// assert_eq!(summary.total_elements(), 5);
/// summary.verify_against(&doc).unwrap();
/// ```
pub fn build_stable(doc: &Document) -> StableSummary {
    let _span = axqa_obs::span_with("BUILDSTABLE", "elements", doc.len() as u64);
    let mut nodes: Vec<StableNode> = Vec::new();
    let mut assignment = vec![SynNodeId(0); doc.len()];
    // H[label, C] of the paper: signature → class id.
    let mut table: FxHashMap<(LabelId, Vec<(SynNodeId, u32)>), SynNodeId> = FxHashMap::default();
    // Reused scratch for building signatures.
    let mut signature: Vec<(SynNodeId, u32)> = Vec::new();

    for element in doc.post_order() {
        signature.clear();
        for child in doc.children(element) {
            signature.push((assignment[child.index()], 0));
        }
        // Collapse duplicates into (class, count) pairs.
        signature.sort_unstable_by_key(|&(t, _)| t);
        let mut collapsed: Vec<(SynNodeId, u32)> = Vec::with_capacity(signature.len());
        for &(class, _) in signature.iter() {
            match collapsed.last_mut() {
                Some(last) if last.0 == class => last.1 = last.1.saturating_add(1),
                _ => collapsed.push((class, 1)),
            }
        }
        let label = doc.label(element);
        let key = (label, collapsed);
        let class = match table.get(&key) {
            Some(&class) => {
                nodes[class.index()].extent = nodes[class.index()].extent.saturating_add(1);
                class
            }
            None => {
                let id = SynNodeId(axqa_xml::dense_id(nodes.len()));
                let depth = key
                    .1
                    .iter()
                    .map(|&(t, _)| nodes[t.index()].depth.saturating_add(1))
                    .max()
                    .unwrap_or(0);
                nodes.push(StableNode {
                    label,
                    extent: 1,
                    children: key.1.clone(),
                    depth,
                });
                table.insert(key, id);
                id
            }
        };
        assignment[element.index()] = class;
    }

    StableSummary {
        labels: doc.labels().clone(),
        total_elements: doc.len() as u64,
        nodes,
        assignment,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axqa_xml::parse_document;

    /// Figure 3(a): document T1 — a1 has b(1c) and b(4c), a2 likewise.
    fn doc_t1() -> Document {
        parse_document(
            "<r><a><b><c/></b><b><c/><c/><c/><c/></b></a>\
               <a><b><c/></b><b><c/><c/><c/><c/></b></a></r>",
        )
        .unwrap()
    }

    /// Figure 3(b): document T2 — a1 has b(1c) and b(1c), a2 has b(4c) twice.
    fn doc_t2() -> Document {
        parse_document(
            "<r><a><b><c/></b><b><c/></b></a>\
               <a><b><c/><c/><c/><c/></b><b><c/><c/><c/><c/></b></a></r>",
        )
        .unwrap()
    }

    #[test]
    fn figure3_t1_stable_summary() {
        // Paper Fig. 3(f), left: r →2 a; a →1 b1, →1 b4; b1 →1 c; b4 →4 c.
        let doc = doc_t1();
        let s = build_stable(&doc);
        s.verify_against(&doc).unwrap();
        // Classes: c, b(1c), b(4c), a, r = 5.
        assert_eq!(s.len(), 5);
        let root = s.node(s.root());
        assert_eq!(s.labels().name(root.label), "r");
        assert_eq!(root.extent, 1);
        assert_eq!(root.children.len(), 1);
        let (a_class, k) = root.children[0];
        assert_eq!(k, 2);
        let a = s.node(a_class);
        assert_eq!(a.extent, 2);
        assert_eq!(a.children.len(), 2);
        // a has one b-with-1-c and one b-with-4-c child each.
        let counts: Vec<u32> = a.children.iter().map(|&(_, k)| k).collect();
        assert_eq!(counts, vec![1, 1]);
        let b_ks: Vec<u32> = a
            .children
            .iter()
            .map(|&(b, _)| s.node(b).children[0].1)
            .collect();
        let mut sorted = b_ks.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 4]);
    }

    #[test]
    fn figure3_t2_stable_summary() {
        // Paper Fig. 3(f), right: r →1 a1, →1 a2; a1 →2 b1; a2 →2 b4.
        let doc = doc_t2();
        let s = build_stable(&doc);
        s.verify_against(&doc).unwrap();
        // Classes: c, b(1c), b(4c), a(2×b1), a(2×b4), r = 6.
        assert_eq!(s.len(), 6);
        let root = s.node(s.root());
        assert_eq!(root.children.len(), 2);
        for &(a_class, k) in &root.children {
            assert_eq!(k, 1);
            let a = s.node(a_class);
            assert_eq!(a.extent, 1);
            assert_eq!(a.children.len(), 1);
            assert_eq!(a.children[0].1, 2);
        }
    }

    #[test]
    fn distinct_structures_get_distinct_classes() {
        let doc = parse_document("<r><a><x/></a><a><y/></a><a><x/></a></r>").unwrap();
        let s = build_stable(&doc);
        s.verify_against(&doc).unwrap();
        let a = doc.labels().get("a").unwrap();
        let a_classes: Vec<_> = s.classes_with_label(a).collect();
        assert_eq!(a_classes.len(), 2);
        let extents: Vec<u64> = a_classes.iter().map(|&c| s.node(c).extent).collect();
        let mut sorted = extents.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 2]);
    }

    #[test]
    fn depth_is_leafward() {
        let doc = parse_document("<r><a><b><c/></b></a><d/></r>").unwrap();
        let s = build_stable(&doc);
        assert_eq!(s.node(s.root()).depth, 3);
        assert_eq!(s.height(), 3);
        let d = doc.labels().get("d").unwrap();
        let d_class = s.classes_with_label(d).next().unwrap();
        assert_eq!(s.node(d_class).depth, 0);
    }

    #[test]
    fn summary_is_a_dag_with_children_before_parents() {
        let doc = doc_t1();
        let s = build_stable(&doc);
        for (i, node) in s.nodes().iter().enumerate() {
            for &(child, _) in &node.children {
                assert!(child.index() < i, "child class after parent class");
            }
        }
    }

    #[test]
    fn extents_sum_to_document_size() {
        for doc in [doc_t1(), doc_t2()] {
            let s = build_stable(&doc);
            let total: u64 = s.nodes().iter().map(|n| n.extent).sum();
            assert_eq!(total, doc.len() as u64);
            assert_eq!(s.total_elements(), doc.len() as u64);
        }
    }

    #[test]
    fn recursive_markup() {
        let doc = parse_document("<r><l><l><l/></l></l><l><l><l/></l></l></r>").unwrap();
        let s = build_stable(&doc);
        s.verify_against(&doc).unwrap();
        // Three distinct l-classes by nesting depth.
        let l = doc.labels().get("l").unwrap();
        assert_eq!(s.classes_with_label(l).count(), 3);
    }

    #[test]
    fn parents_adjacency() {
        let doc = doc_t1();
        let s = build_stable(&doc);
        let parents = s.parents();
        let c = doc.labels().get("c").unwrap();
        let c_class = s.classes_with_label(c).next().unwrap();
        // c is pointed at by both b classes.
        assert_eq!(parents[c_class.index()].len(), 2);
        assert!(parents[s.root().index()].is_empty());
    }

    #[test]
    fn count_to_and_fanout() {
        let doc = doc_t1();
        let s = build_stable(&doc);
        let root = s.node(s.root());
        let (a_class, _) = root.children[0];
        assert_eq!(root.count_to(a_class), 2);
        assert_eq!(root.count_to(SynNodeId(0)), 0);
        assert_eq!(root.fanout(), 2);
    }
}
