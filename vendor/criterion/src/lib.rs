//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API surface the workspace's benches use —
//! `criterion_group!` / `criterion_main!`, `Criterion`,
//! `BenchmarkGroup` (with `sample_size`, `warm_up_time`,
//! `measurement_time`, `throughput`), `Bencher::iter`, `BenchmarkId`
//! and `Throughput` — backed by a plain wall-clock timer instead of
//! criterion's statistical machinery. Each benchmark runs a short
//! warm-up, then a fixed number of timed iterations, and reports
//! mean time per iteration (plus derived throughput) on stdout.

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
    BytesDecimal(u64),
}

#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new<S: fmt::Display, P: fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            name: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Timer handed to the benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(200),
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let (sample_size, warm_up_time, measurement_time) =
            (self.sample_size, self.warm_up_time, self.measurement_time);
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size,
            warm_up_time,
            measurement_time,
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let group_name = String::new();
        run_benchmark(
            &group_name,
            name,
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            None,
            f,
        );
        self
    }

    pub fn final_summary(&mut self) {}
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<S: fmt::Display, F>(&mut self, id: S, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(
            &self.name,
            &id.to_string(),
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            self.throughput,
            f,
        );
        self
    }

    pub fn bench_with_input<S: fmt::Display, I: ?Sized, F>(
        &mut self,
        id: S,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

fn run_benchmark<F>(
    group: &str,
    name: &str,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    let full_name = if group.is_empty() {
        name.to_string()
    } else {
        format!("{group}/{name}")
    };

    // Warm-up: single iterations until the warm-up budget is spent.
    let warm_up_start = Instant::now();
    let mut warm_iters: u64 = 0;
    let mut warm_elapsed = Duration::ZERO;
    while warm_up_start.elapsed() < warm_up_time {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        warm_elapsed += b.elapsed;
        warm_iters += 1;
    }
    let per_iter = if warm_iters > 0 && !warm_elapsed.is_zero() {
        warm_elapsed / u32::try_from(warm_iters).unwrap_or(u32::MAX)
    } else {
        Duration::from_nanos(1)
    };

    // Spread the measurement budget over `sample_size` samples.
    let budget_per_sample = measurement_time
        .checked_div(u32::try_from(sample_size.max(1)).unwrap_or(u32::MAX))
        .unwrap_or(Duration::from_millis(100));
    let iters_per_sample = (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1))
        .clamp(1, 1_000_000) as u64;

    let mut total = Duration::ZERO;
    let mut total_iters: u64 = 0;
    for _ in 0..sample_size.max(1) {
        let mut b = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        total_iters += iters_per_sample;
    }

    let mean_ns = total.as_nanos() as f64 / total_iters.max(1) as f64;
    let rate = throughput.map(|t| match t {
        Throughput::Bytes(n) | Throughput::BytesDecimal(n) => {
            format!(" ({:.1} MiB/s)", n as f64 / (mean_ns / 1e9) / (1 << 20) as f64)
        }
        Throughput::Elements(n) => {
            format!(" ({:.0} elem/s)", n as f64 / (mean_ns / 1e9))
        }
    });
    println!(
        "bench {full_name:<50} {:>12.1} ns/iter{}",
        mean_ns,
        rate.unwrap_or_default()
    );
}

/// Mirrors criterion's `criterion_group!`: both the plain and the
/// `name = ...; config = ...; targets = ...` forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        let mut group = c.benchmark_group("t");
        group.throughput(Throughput::Elements(10));
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }
}
