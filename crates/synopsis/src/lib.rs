// Count-carrying crate (ISSUE 1; DESIGN.md "Static analysis & invariants"):
// lossy casts and unchecked arithmetic on element/edge counts are denied
// outside tests, on top of the workspace lint table.
#![cfg_attr(
    not(test),
    deny(
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss,
        clippy::arithmetic_side_effects
    )
)]
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss
    )
)]

//! # axqa-synopsis — graph synopses and count-stable summaries
//!
//! §3.1 of the paper defines a *graph synopsis* `S_R(T)` for an XML tree
//! `T`: a label-respecting partitioning of the element nodes, with one
//! synopsis node per equivalence class (its *extent*) and an edge
//! `(u, v)` whenever some element of `extent(u)` has a child in
//! `extent(v)`. §3.2 refines this with *count stability*: the pair
//! `(u, v)` is `k`-stable iff **every** element of `u` has exactly `k`
//! children in `v`, and a synopsis is count-stable iff every pair is
//! `k`-stable for some `k ≥ 0`.
//!
//! This crate implements:
//!
//! * [`StableSummary`] — the unique minimal count-stable summary, built
//!   by the linear-time post-order [`build_stable`] (the paper's
//!   `BUILDSTABLE`, Fig. 4), together with the element → class
//!   assignment.
//! * [`expand`] — the `Expand` function of Lemma 3.1, materializing an
//!   XML tree isomorphic (as an unordered tree) to the original document.
//! * [`SizeModel`] — the byte-accounting model used for all synopsis
//!   space budgets (the paper states budgets in KB without a layout; see
//!   DESIGN.md §4.1).
//! * [`io`] — a line-oriented text serialization for stable summaries.

pub mod expand;
pub mod io;
pub mod pathindex;
pub mod size;
pub mod stable;

pub use expand::expand;
pub use pathindex::{ak_index, one_index, Partition};
pub use size::SizeModel;
pub use stable::{build_stable, StableNode, StableSummary, SynNodeId};
