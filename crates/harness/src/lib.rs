// Tests opt back into panicking extractors; library code returns errors
// (workspace lint table, DESIGN.md "Static analysis & invariants").
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss
    )
)]

//! # axqa-harness — regenerating the paper's tables and figures
//!
//! One module per experiment, each producing a typed report with a
//! `print` method (paper-style rows) and CSV export. The `harness`
//! binary dispatches subcommands:
//!
//! | command    | reproduces                                              |
//! |------------|---------------------------------------------------------|
//! | `table1`   | Table 1 — dataset characteristics                        |
//! | `table2`   | Table 2 — workload characteristics                       |
//! | `table3`   | Table 3 — construction times                             |
//! | `fig11`    | Figure 11 — avg ESD of approximate answers vs budget     |
//! | `fig12`    | Figure 12 — avg selectivity error vs budget (TX)         |
//! | `fig13`    | Figure 13 — TreeSketch error on the large datasets       |
//! | `negative` | §6.1 — negative-workload behavior                        |
//! | `all`      | everything above (EXPERIMENTS.md source)                 |
//! | `bench`    | `bench baseline` — wall-clock snapshot (BENCH_core.json) |
//!
//! Scale control: `--scale f` multiplies every dataset's element target
//! (default 0.25 for figures — laptop-friendly while preserving the
//! shapes; `--scale 1` is the paper's scale), `--queries n` sets the
//! workload size (paper: 1000).

pub mod bench;
pub mod diff;
pub mod experiments;
pub mod json;
pub mod pipeline;
pub mod report;

pub use pipeline::{PipelineConfig, Prepared};
