//! Determinism dataflow rules.
//!
//! The system's headline guarantee is that TSBUILD/EVALQUERY answers
//! are bit-identical across thread counts and budgets. Two token-level
//! dataflow approximations defend it statically in the crates on that
//! deterministic path (core, eval, synopsis, xsketch, distance):
//!
//! * `hashmap-iter-order` — iterating an `FxHashMap`/`HashMap`
//!   (`iter`, `keys`, `values`, `into_iter`, `drain`, or a `for` loop
//!   over the map) in non-test code, where the iteration order can
//!   flow into a returned value or an accumulator. Order-insensitive
//!   terminals (`count`, `any`, `all`, `len`, …) are exempt, as is the
//!   collect-then-sort idiom (`let mut v = m.iter().collect(); v.sort…`).
//! * `float-total-order` — `f64`/`f32` comparisons that depend on the
//!   IEEE partial order: `.partial_cmp(…)` anywhere (use `total_cmp`),
//!   and `==`/`!=` against identifiers declared with a float type
//!   (generalizing the literal-adjacent `float-eq` rule across
//!   statement boundaries).
//!
//! Both are statement-granularity approximations over the token
//! stream, not a type checker: identifiers are classified by local
//! `name: FxHashMap<…>` / `name: f64` declarations (let bindings,
//! params, struct fields) within the same file. DESIGN.md §10 spells
//! out the soundness caveats.

use crate::token::{next_code, prev_code, Token, TokenKind};
use crate::{Finding, Rule, SourceFile};

/// Crates whose non-test code must be order-independent.
const DETERMINISTIC_CRATES: &[&str] = &[
    "axqa-core",
    "axqa-eval",
    "axqa-synopsis",
    "axqa-xsketch",
    "axqa-distance",
];

/// Map methods that yield iteration-order-dependent sequences.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "drain",
];

/// Chain terminals whose result is independent of iteration order.
const EXEMPT_TERMINALS: &[&str] = &[
    "count",
    "any",
    "all",
    "len",
    "is_empty",
    "contains",
    "contains_key",
    "max",
    "min",
];

/// Statement-level markers that the sequence flows somewhere ordered.
const FLOW_MARKERS: &[&str] = &[
    "collect",
    "fold",
    "sum",
    "product",
    "reduce",
    "extend",
    "push",
    "insert",
    "chain",
    "zip",
    "last",
    "position",
    "find",
    "map_while",
    "take_while",
    "for_each",
];

/// `name.sort…` methods that restore a total order after collecting.
const SORT_METHODS: &[&str] = &[
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
];

fn in_scope(file: &SourceFile) -> bool {
    DETERMINISTIC_CRATES.contains(&file.crate_name.as_str())
}

fn finding(rule: &'static str, file: &SourceFile, token: &Token, message: String) -> Finding {
    Finding {
        rule,
        severity: crate::Severity::Error,
        file: file.rel.clone(),
        line: token.line,
        span: (token.start, token.end),
        message,
    }
}

fn text(file: &SourceFile, i: usize) -> &str {
    file.tokens[i].text(&file.text)
}

fn is_punct(file: &SourceFile, i: usize, p: &str) -> bool {
    file.tokens[i].kind == TokenKind::Punct && text(file, i) == p
}

/// Identifiers declared with one of `types` in this file: collects the
/// bound name from `name: T…`, `let [mut] name = T::…`, struct fields
/// and fn params alike. A per-file name set, not a scope analysis —
/// good enough for lint-grade classification.
fn typed_idents(file: &SourceFile, types: &[&str]) -> Vec<String> {
    let tokens = &file.tokens;
    let mut names: Vec<String> = Vec::new();
    for i in 0..tokens.len() {
        if tokens[i].kind != TokenKind::Ident || !types.contains(&text(file, i)) {
            continue;
        }
        // `name : [& [mut]] T` — annotation on a let, param, or field.
        let mut j = match prev_code(tokens, i) {
            Some(j) => j,
            None => continue,
        };
        while is_punct(file, j, "&")
            || (tokens[j].kind == TokenKind::Ident && text(file, j) == "mut")
        {
            match prev_code(tokens, j) {
                Some(p) => j = p,
                None => break,
            }
        }
        let name_idx = if is_punct(file, j, ":") {
            prev_code(tokens, j)
        } else if is_punct(file, j, "=") {
            // `let [mut] name = T::default()`.
            prev_code(tokens, j)
        } else {
            None
        };
        if let Some(n) = name_idx {
            if tokens[n].kind == TokenKind::Ident && !crate::parse::is_keyword(text(file, n)) {
                let name = text(file, n).to_string();
                if !names.contains(&name) {
                    names.push(name);
                }
            }
        }
    }
    names
}

/// Walks back from `i` to the first code token after the previous
/// statement boundary (`;`, `{`, `}`) — an approximation that treats
/// any brace as a boundary.
fn statement_start(file: &SourceFile, i: usize) -> usize {
    let tokens = &file.tokens;
    let mut start = i;
    let mut j = i;
    while let Some(p) = prev_code(tokens, j) {
        if is_punct(file, p, ";") || is_punct(file, p, "{") || is_punct(file, p, "}") {
            break;
        }
        start = p;
        j = p;
    }
    start
}

/// Walks forward from `i` to the statement's terminating `;` (or the
/// `{` opening a block at nesting depth zero, for `for`/`if`/`match`
/// heads). Returns an exclusive end index.
fn statement_end(file: &SourceFile, i: usize) -> usize {
    let tokens = &file.tokens;
    let mut depth: usize = 0;
    let mut j = i;
    while j < tokens.len() {
        if tokens[j].kind == TokenKind::Punct {
            match text(file, j) {
                "(" | "[" => depth = depth.saturating_add(1),
                ")" | "]" => depth = depth.saturating_sub(1),
                ";" if depth == 0 => return j,
                "{" | "}" if depth == 0 => return j,
                _ => {}
            }
        }
        j = j.saturating_add(1);
    }
    tokens.len()
}

/// The index one past the matching `}` for the `{` at `open`.
fn block_end(file: &SourceFile, open: usize) -> usize {
    let tokens = &file.tokens;
    let mut depth: usize = 0;
    let mut j = open;
    while j < tokens.len() {
        if tokens[j].kind == TokenKind::Punct {
            match text(file, j) {
                "{" => depth = depth.saturating_add(1),
                "}" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return j.saturating_add(1);
                    }
                }
                _ => {}
            }
        }
        j = j.saturating_add(1);
    }
    tokens.len()
}

/// Walks a method chain starting at the iterator method's `(` and
/// returns the name of the last method called on the chain.
fn chain_terminal(file: &SourceFile, method: usize) -> &str {
    let tokens = &file.tokens;
    let mut terminal = method;
    let mut j = method;
    // Skip the argument list (and any turbofish before it).
    while let Some(mut open) = next_code(tokens, j) {
        if is_punct(file, open, "::") {
            // `collect::<Vec<_>>(…)` — skip to the `(` after the generics.
            let mut k = open;
            let mut angle: usize = 0;
            loop {
                let Some(n) = next_code(tokens, k) else {
                    return text(file, terminal);
                };
                match text(file, n) {
                    "<" => angle = angle.saturating_add(1),
                    ">" => angle = angle.saturating_sub(1),
                    ">>" => angle = angle.saturating_sub(2),
                    "(" if angle == 0 => {
                        open = n;
                        break;
                    }
                    _ => {}
                }
                k = n;
            }
        }
        if !is_punct(file, open, "(") {
            break;
        }
        let mut depth: usize = 0;
        let mut k = open;
        while k < tokens.len() {
            if tokens[k].kind == TokenKind::Punct {
                match text(file, k) {
                    "(" => depth = depth.saturating_add(1),
                    ")" => {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
            }
            k = k.saturating_add(1);
        }
        // After `)`: `?`, then `.` + ident continues the chain.
        let mut after = match next_code(tokens, k) {
            Some(a) => a,
            None => break,
        };
        if is_punct(file, after, "?") {
            after = match next_code(tokens, after) {
                Some(a) => a,
                None => break,
            };
        }
        if !is_punct(file, after, ".") {
            break;
        }
        let Some(name) = next_code(tokens, after) else {
            break;
        };
        if tokens[name].kind != TokenKind::Ident {
            break;
        }
        terminal = name;
        j = name;
    }
    text(file, terminal)
}

/// True when `name.sort…(` appears in `tokens[from..to]`.
fn sorted_later(file: &SourceFile, name: &str, from: usize, to: usize) -> bool {
    let tokens = &file.tokens;
    for i in from..to.min(tokens.len()) {
        if tokens[i].kind == TokenKind::Ident
            && SORT_METHODS.contains(&text(file, i))
            && prev_code(tokens, i).is_some_and(|p| {
                is_punct(file, p, ".")
                    && prev_code(tokens, p).is_some_and(|r| {
                        tokens[r].kind == TokenKind::Ident && text(file, r) == name
                    })
            })
        {
            return true;
        }
    }
    false
}

/// Does `tokens[start..end]` contain a flow marker (ordered sink)?
fn has_flow_marker(file: &SourceFile, start: usize, end: usize) -> bool {
    let tokens = &file.tokens;
    for (i, token) in tokens.iter().enumerate().take(end).skip(start) {
        match token.kind {
            TokenKind::Ident if FLOW_MARKERS.contains(&text(file, i)) => return true,
            TokenKind::Punct
                if matches!(
                    text(file, i),
                    "+=" | "-=" | "*=" | "/=" | "|=" | "&=" | "^="
                ) =>
            {
                return true
            }
            _ => {}
        }
    }
    false
}

/// Flags `FxHashMap`/`HashMap` iteration whose order can reach a
/// returned value or accumulator in non-test code of deterministic-path
/// crates.
pub struct HashMapIterOrder;

impl HashMapIterOrder {
    fn check_site(
        &self,
        file: &SourceFile,
        site: usize,
        map_name: &str,
        findings: &mut Vec<Finding>,
    ) {
        let tokens = &file.tokens;
        let start = statement_start(file, site);
        let end = statement_end(file, site);
        let head = text(file, start);

        if head == "for" {
            // Order flows iteration-by-iteration: flag when the loop
            // body accumulates.
            let body_end = block_end(file, end);
            if !has_flow_marker(file, end, body_end) {
                return;
            }
        } else {
            let terminal = chain_terminal(file, site);
            if EXEMPT_TERMINALS.contains(&terminal) {
                return;
            }
            // Collect-then-sort: `let [mut] v = m.iter()…; … v.sort…`.
            if head == "let" {
                let mut n = next_code(tokens, start);
                if n.is_some_and(|i| text(file, i) == "mut") {
                    n = next_code(tokens, n.unwrap_or(start));
                }
                if let Some(n) = n {
                    if tokens[n].kind == TokenKind::Ident {
                        let bound = text(file, n).to_string();
                        let horizon = end.saturating_add(400);
                        if sorted_later(file, &bound, end, horizon) {
                            return;
                        }
                    }
                }
            }
            if !has_flow_marker(file, start, end) && head != "return" {
                return;
            }
        }
        findings.push(finding(
            self.id(),
            file,
            &tokens[site],
            format!(
                "iteration order of hashmap `{map_name}` can flow into an ordered result — \
                 sort the entries (collect + sort by key) or use an order-independent fold"
            ),
        ));
    }
}

impl Rule for HashMapIterOrder {
    fn id(&self) -> &'static str {
        "hashmap-iter-order"
    }
    fn describe(&self) -> &'static str {
        "no order-dependent FxHashMap/HashMap iteration in non-test code of \
         deterministic-path crates (core/eval/synopsis/xsketch/distance)"
    }
    fn check_file(&self, file: &SourceFile, findings: &mut Vec<Finding>) {
        if !in_scope(file) {
            return;
        }
        let maps = typed_idents(file, &["FxHashMap", "HashMap"]);
        if maps.is_empty() {
            return;
        }
        let tokens = &file.tokens;
        for i in 0..tokens.len() {
            if file.in_test[i] || tokens[i].kind != TokenKind::Ident {
                continue;
            }
            let t = text(file, i);
            // `map.iter()` / `map.keys()` / … method chains.
            if ITER_METHODS.contains(&t)
                && next_code(tokens, i).is_some_and(|n| is_punct(file, n, "("))
            {
                let receiver = prev_code(tokens, i)
                    .filter(|p| is_punct(file, *p, "."))
                    .and_then(|p| prev_code(tokens, p))
                    .filter(|r| tokens[*r].kind == TokenKind::Ident)
                    .map(|r| text(file, r).to_string());
                if let Some(name) = receiver {
                    if maps.contains(&name) {
                        self.check_site(file, i, &name, findings);
                    }
                }
                continue;
            }
            // `for pat in [&[mut]] map {` — implicit IntoIterator.
            if t == "in" {
                let mut j = next_code(tokens, i);
                while j.is_some_and(|k| is_punct(file, k, "&") || text(file, k) == "mut") {
                    j = next_code(tokens, j.unwrap_or(i));
                }
                if let Some(j) = j {
                    if tokens[j].kind == TokenKind::Ident
                        && maps.contains(&text(file, j).to_string())
                        && next_code(tokens, j).is_some_and(|n| is_punct(file, n, "{"))
                    {
                        let name = text(file, j).to_string();
                        self.check_site(file, j, &name, findings);
                    }
                }
            }
        }
    }
}

/// Flags float comparisons that depend on the IEEE partial order.
pub struct FloatTotalOrder;

impl Rule for FloatTotalOrder {
    fn id(&self) -> &'static str {
        "float-total-order"
    }
    fn describe(&self) -> &'static str {
        "no partial_cmp / ==/!= on f64|f32 values in deterministic-path crates — \
         use total_cmp or an epsilon predicate"
    }
    fn check_file(&self, file: &SourceFile, findings: &mut Vec<Finding>) {
        if !in_scope(file) {
            return;
        }
        let floats = typed_idents(file, &["f64", "f32"]);
        let tokens = &file.tokens;
        for i in 0..tokens.len() {
            if file.in_test[i] {
                continue;
            }
            match tokens[i].kind {
                // `.partial_cmp(` — calls only; `fn partial_cmp`
                // (a PartialOrd impl's signature) is not a site.
                TokenKind::Ident
                    if text(file, i) == "partial_cmp"
                        && prev_code(tokens, i).is_some_and(|p| is_punct(file, p, "."))
                        && next_code(tokens, i).is_some_and(|n| is_punct(file, n, "(")) =>
                {
                    findings.push(finding(
                        self.id(),
                        file,
                        &tokens[i],
                        "`.partial_cmp(…)` yields None for NaN and is order-unstable — \
                         use `f64::total_cmp` for sorting keys"
                            .to_string(),
                    ));
                }
                TokenKind::Punct if matches!(text(file, i), "==" | "!=") => {
                    if floats.is_empty() {
                        continue;
                    }
                    let lhs = prev_code(tokens, i)
                        .filter(|p| tokens[*p].kind == TokenKind::Ident)
                        .map(|p| text(file, p));
                    let mut r = next_code(tokens, i);
                    if r.is_some_and(|k| is_punct(file, k, "-") || is_punct(file, k, "&")) {
                        r = next_code(tokens, r.unwrap_or(i));
                    }
                    let rhs = r
                        .filter(|p| tokens[*p].kind == TokenKind::Ident)
                        .map(|p| text(file, p));
                    let float_side = [lhs, rhs]
                        .into_iter()
                        .flatten()
                        .find(|n| floats.contains(&(*n).to_string()));
                    if let Some(name) = float_side {
                        let op = text(file, i).to_string();
                        findings.push(finding(
                            self.id(),
                            file,
                            &tokens[i],
                            format!(
                                "`{op}` on float `{name}` — bitwise float equality is a \
                                 determinism hazard; compare with `total_cmp` or an epsilon"
                            ),
                        ));
                    }
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(text: &str) -> SourceFile {
        SourceFile::new(
            "crates/core/src/x.rs".to_string(),
            "axqa-core".to_string(),
            false,
            text.to_string(),
        )
    }

    fn run_map(text: &str) -> Vec<Finding> {
        let mut findings = Vec::new();
        HashMapIterOrder.check_file(&file(text), &mut findings);
        findings
    }

    fn run_float(text: &str) -> Vec<Finding> {
        let mut findings = Vec::new();
        FloatTotalOrder.check_file(&file(text), &mut findings);
        findings
    }

    #[test]
    fn tracks_declarations_in_all_forms() {
        let f = file(
            "struct S { field: FxHashMap<u32, u32> }\n\
             fn g(param: &FxHashMap<u32, u32>, other: u32) {\n\
                 let local: HashMap<u32, u32> = HashMap::new();\n\
                 let built = FxHashMap::default();\n\
             }\n",
        );
        let names = typed_idents(&f, &["FxHashMap", "HashMap"]);
        assert_eq!(names, vec!["field", "param", "local", "built"]);
    }

    #[test]
    fn collect_into_return_is_flagged() {
        let findings = run_map(
            "fn f(m: &FxHashMap<u32, u32>) -> Vec<u32> {\n\
                 m.values().copied().collect()\n\
             }\n",
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("`m`"));
    }

    #[test]
    fn order_insensitive_terminals_are_exempt() {
        assert!(
            run_map("fn f(m: &FxHashMap<u32, u32>) -> usize { m.keys().count() }\n").is_empty()
        );
        assert!(
            run_map("fn f(m: &FxHashMap<u32, u32>) -> bool { m.values().any(|v| *v > 0) }\n")
                .is_empty()
        );
    }

    #[test]
    fn collect_then_sort_is_exempt() {
        let findings = run_map(
            "fn f(m: &FxHashMap<u32, u32>) -> Vec<(u32, u32)> {\n\
                 let mut v: Vec<(u32, u32)> = m.iter().map(|(k, v)| (*k, *v)).collect();\n\
                 v.sort_unstable_by_key(|(k, _)| *k);\n\
                 v\n\
             }\n",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn for_loop_accumulation_is_flagged_but_pure_reads_pass() {
        let flagged = run_map(
            "fn f(m: &FxHashMap<u32, u32>) -> Vec<u32> {\n\
                 let mut out = Vec::new();\n\
                 for (_, v) in m { out.push(*v); }\n\
                 out\n\
             }\n",
        );
        assert_eq!(flagged.len(), 1, "{flagged:?}");

        let clean = run_map(
            "fn f(m: &FxHashMap<u32, u32>) {\n\
                 for (_, v) in m { assert_ne!(*v, 0); }\n\
             }\n",
        );
        assert!(clean.is_empty(), "{clean:?}");
    }

    #[test]
    fn test_code_and_other_crates_are_out_of_scope() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f(m: &FxHashMap<u32, u32>) -> Vec<u32> {\n\
                   m.values().copied().collect() }\n}\n";
        assert!(run_map(src).is_empty());

        let mut findings = Vec::new();
        let f = SourceFile::new(
            "crates/obs/src/x.rs".to_string(),
            "axqa-obs".to_string(),
            false,
            "fn f(m: &FxHashMap<u32, u32>) -> Vec<u32> { m.values().copied().collect() }\n"
                .to_string(),
        );
        HashMapIterOrder.check_file(&f, &mut findings);
        assert!(findings.is_empty());
    }

    #[test]
    fn partial_cmp_calls_flagged_but_impl_signature_is_not() {
        let findings = run_float(
            "impl PartialOrd for S {\n\
                 fn partial_cmp(&self, other: &S) -> Option<Ordering> {\n\
                     self.key.partial_cmp(&other.key)\n\
                 }\n\
             }\n",
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("total_cmp"));
    }

    #[test]
    fn float_ident_equality_is_flagged_across_statements() {
        let findings = run_float(
            "fn f(weight: f64) -> bool {\n\
                 let limit: f64 = threshold();\n\
                 weight == limit\n\
             }\n",
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("`weight`"));

        // Integers compare fine.
        assert!(run_float("fn f(n: u32) -> bool { n == 3 }\n").is_empty());
    }
}
