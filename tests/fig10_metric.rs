// Examples/integration tests are demo code: panicking extractors are fine.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::arithmetic_side_effects
)]

//! Figure 10 / §5, cross-crate: tree-edit distance treats the
//! correlation-preserving approximation `T2` and the
//! correlation-destroying `T1` as equally good; ESD separates them —
//! including with non-trivial `Sc`/`Sd` subtrees and under both set
//! distances.

use axqa::distance::{esd_documents, tree_edit_distance, EditCosts, EsdConfig, SetDistance};
use axqa::prelude::*;

/// Builds the Figure 10 trees with configurable `Sc`/`Sd` subtrees.
fn fig10_with(sc: &str, sd: &str, counts: [(usize, usize); 2]) -> Document {
    let mut src = String::from("<r>");
    for (nc, nd) in counts {
        src.push_str("<a>");
        src.push_str(&sc.repeat(nc));
        src.push_str(&sd.repeat(nd));
        src.push_str("</a>");
    }
    src.push_str("</r>");
    parse_document(&src).unwrap()
}

/// The default instance: leaf `Sc`/`Sd`, where node-level edit
/// operations coincide with the paper's subtree-level ones.
fn fig10(counts: [(usize, usize); 2]) -> Document {
    fig10_with("<c/>", "<d/>", counts)
}

#[test]
fn edit_distance_is_blind_to_correlation() {
    // With leaf subtrees (|Sc| = |Sd| = 1) node edits are subtree edits
    // and the paper's Figure 10 equality holds exactly:
    // distE(T, T1) = distE(T, T2) = 3·|Sc| + 3·|Sd| = 6.
    let t = fig10([(4, 1), (1, 4)]);
    let t1 = fig10([(1, 1), (4, 4)]);
    let t2 = fig10([(6, 2), (2, 6)]);
    let costs = EditCosts::insert_delete_only();
    let d1 = tree_edit_distance(&t, &t1, &costs);
    let d2 = tree_edit_distance(&t, &t2, &costs);
    assert_eq!(d1, 6.0);
    assert_eq!(d2, 6.0);
}

#[test]
fn node_level_edit_distance_can_even_misrank() {
    // Stronger than the paper's claim: with multi-node Sc/Sd subtrees,
    // standard (Zhang–Shasha) node-level editing — where deleting a node
    // promotes its children — makes the correlation-destroying T1 look
    // strictly *closer* than the correlation-preserving T2 (verified
    // against a brute-force forest DP). ESD ranks them the right way
    // around (next test).
    let sc = "<c><u/></c>";
    let sd = "<d><w/></d>";
    let t = fig10_with(sc, sd, [(4, 1), (1, 4)]);
    let t1 = fig10_with(sc, sd, [(1, 1), (4, 4)]);
    let t2 = fig10_with(sc, sd, [(6, 2), (2, 6)]);
    let costs = EditCosts::insert_delete_only();
    let d1 = tree_edit_distance(&t, &t1, &costs);
    let d2 = tree_edit_distance(&t, &t2, &costs);
    assert_eq!(d1, 8.0);
    assert_eq!(d2, 12.0);
    let esd = EsdConfig::default();
    let e1 = esd_documents(&t, &t1, &esd);
    let e2 = esd_documents(&t, &t2, &esd);
    assert!(e2 < e1, "ESD must prefer T2: {e1} vs {e2}");
}

#[test]
fn esd_separates_under_both_set_distances() {
    let t = fig10([(4, 1), (1, 4)]);
    let t1 = fig10([(1, 1), (4, 4)]);
    let t2 = fig10([(6, 2), (2, 6)]);
    for set_distance in [
        SetDistance::GreedyMac { exponent: 2.0 },
        SetDistance::Emd { exponent: 2.0 },
    ] {
        let config = EsdConfig { set_distance };
        let d1 = esd_documents(&t, &t1, &config);
        let d2 = esd_documents(&t, &t2, &config);
        assert!(
            d2 < d1,
            "{set_distance:?}: esd(T,T1) = {d1}, esd(T,T2) = {d2}"
        );
    }
}

#[test]
fn esd_is_a_premetric_on_these_trees() {
    let trees = [
        fig10([(4, 1), (1, 4)]),
        fig10([(1, 1), (4, 4)]),
        fig10([(6, 2), (2, 6)]),
    ];
    let config = EsdConfig::default();
    for (i, a) in trees.iter().enumerate() {
        assert_eq!(esd_documents(a, a, &config), 0.0);
        for b in &trees[i + 1..] {
            let ab = esd_documents(a, b, &config);
            let ba = esd_documents(b, a, &config);
            assert!(ab > 0.0);
            assert!((ab - ba).abs() < 1e-9, "asymmetric: {ab} vs {ba}");
        }
    }
}

#[test]
fn esd_scales_with_divergence() {
    // Moving further from T must not decrease ESD: T with (4,1)/(1,4)
    // vs increasingly uniform approximations.
    let t = fig10([(4, 1), (1, 4)]);
    let near = fig10([(4, 2), (2, 4)]);
    let far = fig10([(1, 1), (4, 4)]);
    let config = EsdConfig::default();
    let d_near = esd_documents(&t, &near, &config);
    let d_far = esd_documents(&t, &far, &config);
    assert!(
        d_near < d_far,
        "near {d_near} should be closer than far {d_far}"
    );
}
