//! Label interning: element tags ↔ dense integer ids.
//!
//! Every algorithm in the workspace compares labels; interning them once
//! makes those comparisons integer equality and lets per-label tables be
//! plain vectors.

use crate::fxhash::FxHashMap;
use std::fmt;

/// Dense identifier of an interned element label (tag).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LabelId(pub u32);

impl LabelId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LabelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// Interner mapping tag strings to [`LabelId`]s and back.
///
/// Ids are assigned densely in first-seen order, so `LabelId(i)` indexes
/// directly into per-label vectors of length [`LabelTable::len`].
#[derive(Debug, Default, Clone)]
pub struct LabelTable {
    names: Vec<Box<str>>,
    by_name: FxHashMap<Box<str>, LabelId>,
}

impl LabelTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its id (existing or fresh).
    ///
    /// # Panics
    ///
    /// If more than `u32::MAX` distinct labels are interned — a document
    /// alphabet beyond the id space cannot be represented.
    pub fn intern(&mut self, name: &str) -> LabelId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = match u32::try_from(self.names.len()) {
            Ok(next) => LabelId(next),
            // A document alphabet beyond u32::MAX distinct tags cannot be
            // represented; aborting beats silently aliasing label ids.
            Err(_) => panic!("label table overflow: more than u32::MAX distinct labels"),
        };
        let boxed: Box<str> = name.into();
        self.names.push(boxed.clone());
        self.by_name.insert(boxed, id);
        id
    }

    /// Looks up an already-interned label without inserting.
    pub fn get(&self, name: &str) -> Option<LabelId> {
        self.by_name.get(name).copied()
    }

    /// The tag string for `id`.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this table.
    pub fn name(&self, id: LabelId) -> &str {
        &self.names[id.index()]
    }

    /// Number of distinct labels interned.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (LabelId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (LabelId(u32::try_from(i).unwrap_or(u32::MAX)), n.as_ref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = LabelTable::new();
        let a1 = t.intern("author");
        let a2 = t.intern("author");
        assert_eq!(a1, a2);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut t = LabelTable::new();
        let a = t.intern("a");
        let b = t.intern("b");
        let c = t.intern("c");
        assert_eq!((a.0, b.0, c.0), (0, 1, 2));
        assert_eq!(t.name(b), "b");
    }

    #[test]
    fn get_does_not_insert() {
        let mut t = LabelTable::new();
        assert_eq!(t.get("missing"), None);
        assert_eq!(t.len(), 0);
        t.intern("present");
        assert!(t.get("present").is_some());
    }

    #[test]
    fn iter_yields_in_id_order() {
        let mut t = LabelTable::new();
        for name in ["x", "y", "z"] {
            t.intern(name);
        }
        let collected: Vec<_> = t.iter().map(|(id, n)| (id.0, n.to_owned())).collect();
        assert_eq!(
            collected,
            vec![
                (0, "x".to_owned()),
                (1, "y".to_owned()),
                (2, "z".to_owned())
            ]
        );
    }
}
