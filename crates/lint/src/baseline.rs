//! The `lint-baseline.toml` ratchet.
//!
//! Pre-existing findings are grandfathered per `(rule, file)` with a
//! count; anything beyond the recorded count is *new* and fails the
//! gate. Fixing violations makes entries stale (reported as notes),
//! and `cargo xtask lint --update-baseline` rewrites the file with the
//! current counts — so the baseline only ever shrinks under review.
//!
//! The file is a deliberately tiny TOML subset (parsed here without a
//! TOML dependency): comments, repeated `[[allow]]` tables with string
//! `rule`/`file` keys and an integer `count`, and repeated
//! `[[alloc-ok]]` tables granting deliberate allocation sites to the
//! hot-path analysis ([`crate::hotpath`]): string `path` (qualified fn
//! path suffix), string `what` (site label from
//! [`crate::allocsite::AllocSite::what`]), integer `count`, and a
//! **required** non-empty `reason` — every grant documents why the
//! allocation is acceptable (scratch-pool growth, cold path, output
//! construction), so the surface carries zero undocumented grants.

use crate::Finding;

/// Path of the committed baseline, relative to the workspace root.
pub const BASELINE_PATH: &str = "lint-baseline.toml";

/// One grandfathered `(rule, file)` group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// Rule id the findings belong to.
    pub rule: String,
    /// Workspace-relative file the findings are in.
    pub file: String,
    /// How many findings of this rule in this file are tolerated.
    pub count: usize,
}

/// One granted allocation site group for the hot-path analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocGrant {
    /// Qualified function-path suffix the grant applies to
    /// (`ClusterState::apply_merge` matches
    /// `axqa_core::cluster::ClusterState::apply_merge`).
    pub path: String,
    /// Site label (`.clone`, `Vec::with_capacity`, `vec!`, …).
    pub what: String,
    /// How many sites with this label are granted in that function.
    pub count: usize,
    /// Why the allocation is deliberate. Required and non-empty.
    pub reason: String,
}

/// The parsed baseline.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// All allow entries, in file order.
    pub allows: Vec<Allow>,
    /// All alloc-ok grants, in file order.
    pub alloc_ok: Vec<AllocGrant>,
}

/// Result of matching findings against a baseline.
#[derive(Debug)]
pub struct Applied {
    /// `baselined[i]` — finding `i` is covered by an allow entry.
    pub baselined: Vec<bool>,
    /// Entries whose allowance exceeds the current count (violations
    /// were fixed; `--update-baseline` will drop/shrink them).
    pub stale: Vec<Allow>,
}

impl Baseline {
    /// Parses the baseline text. Unknown keys, unknown tables, or
    /// malformed lines are hard errors — a silently misread baseline
    /// would un-gate CI.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut baseline = Baseline::default();
        let mut current: Option<Entry> = None;
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx.saturating_add(1);
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[allow]]" || line == "[[alloc-ok]]" {
                finish_entry(&mut current, &mut baseline, lineno)?;
                current = Some(if line == "[[allow]]" {
                    Entry::Allow(Default::default())
                } else {
                    Entry::AllocOk(Default::default())
                });
                continue;
            }
            if line.starts_with('[') {
                return Err(format!(
                    "{BASELINE_PATH}:{lineno}: unknown table `{line}` (expected [[allow]] or \
                     [[alloc-ok]])"
                ));
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("{BASELINE_PATH}:{lineno}: expected `key = value`"));
            };
            let entry = current
                .as_mut()
                .ok_or_else(|| format!("{BASELINE_PATH}:{lineno}: key outside a table"))?;
            let key = key.trim();
            let value = value.trim();
            let count = |value: &str| {
                value.parse::<usize>().map_err(|_| {
                    format!("{BASELINE_PATH}:{lineno}: `count` must be a non-negative integer")
                })
            };
            match entry {
                Entry::Allow(fields) => match key {
                    "rule" => fields.0 = Some(parse_string(value, lineno)?),
                    "file" => fields.1 = Some(parse_string(value, lineno)?),
                    "count" => fields.2 = Some(count(value)?),
                    other => {
                        return Err(format!(
                            "{BASELINE_PATH}:{lineno}: unknown [[allow]] key `{other}`"
                        ));
                    }
                },
                Entry::AllocOk(fields) => match key {
                    "path" => fields.0 = Some(parse_string(value, lineno)?),
                    "what" => fields.1 = Some(parse_string(value, lineno)?),
                    "count" => fields.2 = Some(count(value)?),
                    "reason" => fields.3 = Some(parse_string(value, lineno)?),
                    other => {
                        return Err(format!(
                            "{BASELINE_PATH}:{lineno}: unknown [[alloc-ok]] key `{other}`"
                        ));
                    }
                },
            }
        }
        let end = text.lines().count();
        finish_entry(&mut current, &mut baseline, end)?;
        Ok(baseline)
    }

    /// Builds a baseline that exactly covers `findings` (the
    /// `--update-baseline` output), grouped by `(rule, file)` and
    /// sorted for a stable diff.
    pub fn from_findings(findings: &[Finding]) -> Baseline {
        let mut allows: Vec<Allow> = Vec::new();
        for finding in findings {
            if let Some(existing) = allows
                .iter_mut()
                .find(|a| a.rule == finding.rule && a.file == finding.file)
            {
                existing.count = existing.count.saturating_add(1);
            } else {
                allows.push(Allow {
                    rule: finding.rule.to_string(),
                    file: finding.file.clone(),
                    count: 1,
                });
            }
        }
        allows.sort_by(|a, b| (&a.file, &a.rule).cmp(&(&b.file, &b.rule)));
        Baseline {
            allows,
            alloc_ok: Vec::new(),
        }
    }

    /// Renders back to the committed TOML form.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# Grandfathered lint findings (generated by `cargo xtask lint --update-baseline`).\n\
             # New findings beyond these counts fail the gate; fix violations and\n\
             # regenerate to shrink this file. Target: empty.\n",
        );
        for allow in &self.allows {
            out.push_str("\n[[allow]]\n");
            out.push_str(&format!("rule = \"{}\"\n", allow.rule));
            out.push_str(&format!("file = \"{}\"\n", allow.file));
            out.push_str(&format!("count = {}\n", allow.count));
        }
        if !self.alloc_ok.is_empty() {
            out.push_str(
                "\n# Deliberate allocation sites on the hot-path cones (DESIGN.md §11).\n\
                 # Each grant names the function, the site label, how many sites it\n\
                 # covers, and why the allocation is acceptable. Hand-maintained:\n\
                 # `--update-baseline` preserves these entries.\n",
            );
        }
        for grant in &self.alloc_ok {
            out.push_str("\n[[alloc-ok]]\n");
            out.push_str(&format!("path = \"{}\"\n", grant.path));
            out.push_str(&format!("what = \"{}\"\n", grant.what));
            out.push_str(&format!("count = {}\n", grant.count));
            out.push_str(&format!("reason = \"{}\"\n", grant.reason));
        }
        out
    }

    /// Matches `findings` against the allowances. Within a `(rule,
    /// file)` group the first `count` findings (engine order: by line)
    /// are baselined; the overflow is new.
    pub fn apply(&self, findings: &[Finding]) -> Applied {
        let mut baselined = vec![false; findings.len()];
        let mut stale = Vec::new();
        for allow in &self.allows {
            let mut remaining = allow.count;
            for (i, finding) in findings.iter().enumerate() {
                if remaining == 0 {
                    break;
                }
                if !baselined[i] && finding.rule == allow.rule && finding.file == allow.file {
                    baselined[i] = true;
                    remaining = remaining.saturating_sub(1);
                }
            }
            if remaining > 0 {
                stale.push(allow.clone());
            }
        }
        Applied { baselined, stale }
    }
}

/// An in-progress table during parsing.
enum Entry {
    /// `rule`, `file`, `count`.
    Allow((Option<String>, Option<String>, Option<usize>)),
    /// `path`, `what`, `count`, `reason`.
    AllocOk(
        (
            Option<String>,
            Option<String>,
            Option<usize>,
            Option<String>,
        ),
    ),
}

/// Validates and closes the in-progress table entry.
fn finish_entry(
    current: &mut Option<Entry>,
    baseline: &mut Baseline,
    lineno: usize,
) -> Result<(), String> {
    match current.take() {
        None => {}
        Some(Entry::Allow((rule, file, count))) => {
            let missing =
                |key: &str| format!("{BASELINE_PATH}:{lineno}: [[allow]] entry missing `{key}`");
            baseline.allows.push(Allow {
                rule: rule.ok_or_else(|| missing("rule"))?,
                file: file.ok_or_else(|| missing("file"))?,
                count: count.ok_or_else(|| missing("count"))?,
            });
        }
        Some(Entry::AllocOk((path, what, count, reason))) => {
            let missing =
                |key: &str| format!("{BASELINE_PATH}:{lineno}: [[alloc-ok]] entry missing `{key}`");
            let reason = reason.ok_or_else(|| missing("reason"))?;
            if reason.trim().is_empty() {
                return Err(format!(
                    "{BASELINE_PATH}:{lineno}: [[alloc-ok]] `reason` must be non-empty — \
                     every grant documents why the allocation is deliberate"
                ));
            }
            baseline.alloc_ok.push(AllocGrant {
                path: path.ok_or_else(|| missing("path"))?,
                what: what.ok_or_else(|| missing("what"))?,
                count: count.ok_or_else(|| missing("count"))?,
                reason,
            });
        }
    }
    Ok(())
}

/// Parses a double-quoted TOML basic string with no escapes (rule ids
/// and repo paths never need them).
fn parse_string(value: &str, lineno: usize) -> Result<String, String> {
    let inner = value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .ok_or_else(|| format!("{BASELINE_PATH}:{lineno}: expected a double-quoted string"))?;
    if inner.contains('"') || inner.contains('\\') {
        return Err(format!(
            "{BASELINE_PATH}:{lineno}: escapes are not supported in baseline strings"
        ));
    }
    Ok(inner.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Severity;

    fn finding(rule: &'static str, file: &str, line: u32) -> Finding {
        Finding {
            rule,
            severity: Severity::Error,
            file: file.to_string(),
            line,
            span: (0, 0),
            message: String::from("m"),
        }
    }

    #[test]
    fn parse_render_round_trip() {
        let baseline = Baseline {
            allows: vec![Allow {
                rule: "no-unwrap".to_string(),
                file: "crates/harness/src/bench.rs".to_string(),
                count: 2,
            }],
            alloc_ok: Vec::new(),
        };
        let parsed = Baseline::parse(&baseline.render()).unwrap();
        assert_eq!(parsed, baseline);
    }

    #[test]
    fn overflow_beyond_allowance_is_new() {
        let baseline = Baseline {
            allows: vec![Allow {
                rule: "no-unwrap".to_string(),
                file: "a.rs".to_string(),
                count: 1,
            }],
            alloc_ok: Vec::new(),
        };
        let findings = vec![
            finding("no-unwrap", "a.rs", 3),
            finding("no-unwrap", "a.rs", 9),
            finding("count-cast", "a.rs", 4),
        ];
        let applied = baseline.apply(&findings);
        assert_eq!(applied.baselined, vec![true, false, false]);
        assert!(applied.stale.is_empty());
    }

    #[test]
    fn fixed_violations_make_entries_stale() {
        let baseline = Baseline {
            allows: vec![Allow {
                rule: "float-eq".to_string(),
                file: "crates/distance/src/lib.rs".to_string(),
                count: 3,
            }],
            alloc_ok: Vec::new(),
        };
        let applied = baseline.apply(&[]);
        assert_eq!(applied.stale.len(), 1);
        assert_eq!(applied.stale[0].count, 3);
    }

    #[test]
    fn from_findings_groups_and_sorts() {
        let findings = vec![
            finding("no-unwrap", "b.rs", 1),
            finding("no-unwrap", "a.rs", 2),
            finding("no-unwrap", "a.rs", 7),
        ];
        let baseline = Baseline::from_findings(&findings);
        assert_eq!(
            baseline.allows,
            vec![
                Allow {
                    rule: "no-unwrap".into(),
                    file: "a.rs".into(),
                    count: 2
                },
                Allow {
                    rule: "no-unwrap".into(),
                    file: "b.rs".into(),
                    count: 1
                },
            ]
        );
    }

    #[test]
    fn malformed_baselines_are_hard_errors() {
        assert!(Baseline::parse("count = 1\n").is_err()); // key outside table
        assert!(Baseline::parse("[[allow]]\nrule = \"x\"\n").is_err()); // missing keys
        assert!(Baseline::parse("[[allow]]\nrule = x\nfile = \"f\"\ncount = 1\n").is_err());
        assert!(Baseline::parse("[[allow]]\nrule = \"x\"\nfile = \"f\"\ncount = -1\n").is_err());
    }

    #[test]
    fn alloc_ok_grants_round_trip() {
        let baseline = Baseline {
            allows: Vec::new(),
            alloc_ok: vec![AllocGrant {
                path: "ClusterState::apply_merge".to_string(),
                what: ".clone".to_string(),
                count: 1,
                reason: "runs once per applied merge, not per scored candidate".to_string(),
            }],
        };
        let parsed = Baseline::parse(&baseline.render()).unwrap();
        assert_eq!(parsed, baseline);
    }

    #[test]
    fn alloc_ok_requires_a_reason() {
        let text = "[[alloc-ok]]\npath = \"f\"\nwhat = \".clone\"\ncount = 1\n";
        let err = Baseline::parse(text).unwrap_err();
        assert!(err.contains("missing `reason`"), "{err}");

        let text = "[[alloc-ok]]\npath = \"f\"\nwhat = \".clone\"\ncount = 1\nreason = \" \"\n";
        let err = Baseline::parse(text).unwrap_err();
        assert!(err.contains("non-empty"), "{err}");
    }

    #[test]
    fn unknown_tables_and_cross_table_keys_are_errors() {
        assert!(Baseline::parse("[[deny]]\n").is_err());
        assert!(Baseline::parse("[[allow]]\npath = \"x\"\n").is_err());
        assert!(Baseline::parse("[[alloc-ok]]\nrule = \"x\"\n").is_err());
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# header\n\n[[allow]]\n# inner\nrule = \"r\"\nfile = \"f\"\ncount = 0\n";
        let parsed = Baseline::parse(text).unwrap();
        assert_eq!(parsed.allows.len(), 1);
        assert_eq!(parsed.allows[0].count, 0);
    }
}
