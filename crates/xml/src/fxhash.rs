//! A minimal implementation of the Fx hash algorithm (the fast,
//! non-DoS-resistant hasher used inside rustc) plus `HashMap`/`HashSet`
//! aliases built on it.
//!
//! Every hot map in this workspace is keyed by small integers (node ids,
//! label ids, cluster ids) where SipHash dominates lookup cost. The
//! algorithm below is the classic multiply-rotate-xor mix over native
//! words; it is identical in spirit to the `rustc-hash` crate, which is
//! not in the allowed offline dependency set.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;
/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;
/// The `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// Fast non-cryptographic hasher; do not use where HashDoS matters.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// Convenience: an empty [`FxHashMap`].
#[inline]
pub fn fx_map<K, V>() -> FxHashMap<K, V> {
    FxHashMap::default()
}

/// Convenience: an empty [`FxHashSet`].
#[inline]
pub fn fx_set<T>() -> FxHashSet<T> {
    FxHashSet::default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash + ?Sized>(value: &T) -> u64 {
        let mut hasher = FxHasher::default();
        value.hash(&mut hasher);
        hasher.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(&42u32), hash_of(&42u32));
        assert_eq!(hash_of(&"twig"), hash_of(&"twig"));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&(1u32, 2u32)), hash_of(&(2u32, 1u32)));
    }

    #[test]
    fn map_roundtrip() {
        let mut map: FxHashMap<u32, &str> = fx_map();
        map.insert(7, "seven");
        map.insert(11, "eleven");
        assert_eq!(map.get(&7), Some(&"seven"));
        assert_eq!(map.get(&11), Some(&"eleven"));
        assert_eq!(map.get(&13), None);
    }

    #[test]
    fn handles_unaligned_byte_tails() {
        // 9 bytes exercises both the 8-byte chunk and the remainder path.
        assert_ne!(hash_of(&[1u8; 9][..]), hash_of(&[1u8; 8][..]));
    }
}
