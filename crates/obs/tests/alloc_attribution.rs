// Integration tests opt back into panicking extractors (workspace lint
// table, DESIGN.md "Static analysis & invariants").
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! Pins `SpanGuard` allocation-delta attribution (ISSUE 9): exclusive
//! parent/child accounting under nested spans, zero-cost observer
//! bookkeeping, and stability across thread-local buffer flushes (the
//! 1024-span eager flush fires mid-parent here).
//!
//! This test binary installs [`axqa_obs::alloc::CountingAlloc`] as its
//! global allocator — the same wiring the harness and xtask binaries
//! use — so the spans observe real heap traffic.

use axqa_obs::alloc::CountingAlloc;
use axqa_obs::{span, uninstall, Recorder, Snapshot};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Recorder install/uninstall and alloc tracking are process-wide;
/// serialize the tests in this binary.
static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn record(work: impl FnOnce()) -> Snapshot {
    let recorder = Recorder::new();
    recorder.install();
    work();
    uninstall();
    recorder.drain()
}

fn only<'a>(snapshot: &'a Snapshot, name: &str) -> &'a axqa_obs::SpanRecord {
    let mut matching = snapshot.spans.iter().filter(|s| s.name == name);
    let span = matching.next().unwrap_or_else(|| panic!("span {name}"));
    assert!(matching.next().is_none(), "span {name} recorded once");
    span
}

#[test]
fn nested_spans_attribute_allocations_exclusively() {
    let _gate = GATE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let snapshot = record(|| {
        let _outer = span("outer");
        let outer_buf: Vec<u8> = std::hint::black_box(Vec::with_capacity(1024));
        {
            let _inner = span("inner");
            let inner_buf: Vec<u8> = std::hint::black_box(Vec::with_capacity(65536));
            drop(inner_buf);
        }
        drop(outer_buf);
    });
    let outer = only(&snapshot, "outer");
    let inner = only(&snapshot, "inner");
    // The inner span owns its 64 KiB vec...
    assert!(
        inner.alloc_count >= 1,
        "inner events: {}",
        inner.alloc_count
    );
    assert!(
        inner.alloc_bytes >= 65536,
        "inner bytes: {}",
        inner.alloc_bytes
    );
    assert!(inner.peak_live_delta >= 65536);
    // ...and the outer span does NOT: its exclusive tally is its own
    // 1 KiB vec, strictly below the child's traffic.
    assert!(outer.alloc_count >= 1);
    assert!(outer.alloc_bytes >= 1024);
    assert!(
        outer.alloc_bytes < 65536,
        "child allocations leaked into the parent: {} bytes",
        outer.alloc_bytes
    );
}

#[test]
fn empty_spans_and_observer_bookkeeping_cost_zero_allocations() {
    let _gate = GATE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let snapshot = record(|| {
        // Warm the recorder's thread-local buffers first.
        {
            let _warm = span("warmup");
        }
        let _parent = span("quiet_parent");
        for _ in 0..64 {
            let _child = span("quiet_child");
            axqa_obs::counter("quiet.counter", 1);
        }
    });
    // A span that does no caller work records zero allocations even
    // though the recorder itself pushed records and counter entries —
    // bookkeeping runs with tracking suspended.
    let parent = only(&snapshot, "quiet_parent");
    assert_eq!(parent.alloc_count, 0, "observer cost charged to parent");
    assert_eq!(parent.alloc_bytes, 0);
    assert_eq!(snapshot.span_alloc_count("quiet_child"), 0);
    assert_eq!(snapshot.span_alloc_bytes("quiet_child"), 0);
}

#[test]
fn attribution_survives_thread_local_buffer_flushes() {
    let _gate = GATE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    // 1500 children exceed the 1024-span FLUSH_THRESHOLD, so the
    // thread buffer flushes to the shared sink while `parent` is still
    // open; its window and child tallies must survive the flush.
    const CHILDREN: u64 = 1500;
    let snapshot = record(|| {
        let _parent = span("flush_parent");
        let parent_buf: Vec<u8> = std::hint::black_box(Vec::with_capacity(32768));
        for _ in 0..CHILDREN {
            let _child = span("flush_child");
            let small: Vec<u8> = std::hint::black_box(Vec::with_capacity(256));
            drop(small);
        }
        drop(parent_buf);
    });
    assert_eq!(
        snapshot.span_count("flush_child"),
        usize::try_from(CHILDREN).unwrap()
    );
    assert!(snapshot.span_alloc_count("flush_child") >= CHILDREN);
    assert!(snapshot.span_alloc_bytes("flush_child") >= CHILDREN * 256);
    let parent = only(&snapshot, "flush_parent");
    // Exclusive: the children's 1500 events stay out of the parent.
    assert!(parent.alloc_count >= 1);
    assert!(
        parent.alloc_count < 100,
        "children or flush bookkeeping charged to parent: {} events",
        parent.alloc_count
    );
    assert!(parent.alloc_bytes >= 32768);
    assert!(parent.peak_live_delta >= 32768);
}
