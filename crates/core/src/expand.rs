//! Expanding a result sketch into a concrete answer tree.
//!
//! §4.3: "the full nesting tree can be retrieved by expanding `T S_Q`".
//! A result sketch stores *average* descendant counts, so expansion must
//! turn fractional averages into integer child counts. We use
//! deterministic largest-remainder rounding: one running remainder
//! accumulator per result-sketch edge, so across all materialized
//! parents the total number of children matches `parents × avg` to
//! within one — preserving aggregate counts without randomness.
//!
//! Expansion of a highly compressed synopsis can blow up (counts
//! multiply down the tree), so a node cap truncates generation
//! breadth-first; [`Expansion::truncated`] reports whether the cap hit.

use crate::eval::ResultSketch;
use axqa_eval::AnswerTree;
use std::collections::VecDeque;

/// Result of expanding a result sketch.
pub struct Expansion {
    /// The materialized answer tree.
    pub tree: AnswerTree,
    /// Whether the node cap stopped expansion early.
    pub truncated: bool,
}

/// Expands `result` into a concrete answer tree with at most `max_nodes`
/// binding nodes.
pub fn expand_result(result: &ResultSketch, max_nodes: usize) -> Expansion {
    let rnodes = result.nodes();
    let root = result.root() as usize;
    let mut tree = AnswerTree::new(result.labels().clone(), rnodes[root].label);
    // Remainder accumulator per (result node, edge index).
    let mut remainders: Vec<Vec<f64>> =
        rnodes.iter().map(|n| vec![0.0f64; n.edges.len()]).collect();
    let mut queue: VecDeque<(u32, u32)> = VecDeque::new(); // (answer node, rnode)
    queue.push_back((tree.root(), axqa_xml::dense_id(root)));
    let mut truncated = false;

    while let Some((answer_parent, rnode)) = queue.pop_front() {
        let edges = rnodes[rnode as usize].edges.clone();
        for (edge_index, (target, avg)) in edges.into_iter().enumerate() {
            // Largest-remainder rounding across all parents of this edge.
            let slot = &mut remainders[rnode as usize][edge_index];
            *slot += avg;
            let emit = usize::try_from(axqa_xml::f64_to_u64(slot.floor())).unwrap_or(usize::MAX);
            *slot -= emit as f64;
            for _ in 0..emit {
                if tree.len() >= max_nodes {
                    truncated = true;
                    break;
                }
                let child = tree.add(
                    answer_parent,
                    rnodes[target as usize].label,
                    rnodes[target as usize].var,
                );
                queue.push_back((child, target));
            }
            if truncated {
                break;
            }
        }
        if truncated {
            break;
        }
    }
    Expansion { tree, truncated }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval_query, EvalConfig};
    use crate::sketch::TreeSketch;
    use axqa_query::{parse_twig, QVar};
    use axqa_synopsis::build_stable;
    use axqa_xml::parse_document;

    #[test]
    fn exact_sketch_expands_to_exact_nesting_tree() {
        let doc =
            parse_document("<d><a><p><k/></p></a><a><p><k/></p></a><a><p><k/><k/></p></a></d>")
                .unwrap();
        let ts = TreeSketch::from_stable(&build_stable(&doc));
        let query = parse_twig("q1: q0 //a\nq2: q1 //p\nq3: q2 //k").unwrap();
        let result = eval_query(&ts, &query, &EvalConfig::default()).unwrap();
        let expansion = expand_result(&result, 100_000);
        assert!(!expansion.truncated);
        // Exact nesting tree: root + 3 a + 3 p + 4 k = 11 nodes.
        assert_eq!(expansion.tree.len(), 11);
        let q3_count = expansion
            .tree
            .nodes()
            .iter()
            .filter(|n| n.var == QVar(3))
            .count();
        assert_eq!(q3_count, 4);
    }

    #[test]
    fn fractional_averages_round_to_matching_totals() {
        // 4 b's averaging 2.5 c's each → 10 c's total after rounding.
        let doc = parse_document(
            "<r><a><b><c/></b><b><c/><c/><c/><c/></b></a>\
             <a><b><c/></b><b><c/><c/><c/><c/></b></a></r>",
        )
        .unwrap();
        let stable = build_stable(&doc);
        let ts = crate::build::ts_build(&stable, &crate::build::BuildConfig::with_budget(1)).sketch;
        let query = parse_twig("q1: q0 //b\nq2: q1 /c").unwrap();
        let result = eval_query(&ts, &query, &EvalConfig::default()).unwrap();
        let expansion = expand_result(&result, 100_000);
        assert!(!expansion.truncated);
        let c_count = expansion
            .tree
            .nodes()
            .iter()
            .filter(|n| n.var == QVar(2))
            .count();
        assert_eq!(c_count, 10);
    }

    #[test]
    fn cap_truncates_gracefully() {
        let doc = parse_document("<r><a><b/><b/><b/><b/><b/><b/></a></r>").unwrap();
        let ts = TreeSketch::from_stable(&build_stable(&doc));
        let query = parse_twig("q1: q0 //b").unwrap();
        let result = eval_query(&ts, &query, &EvalConfig::default()).unwrap();
        let expansion = expand_result(&result, 3);
        assert!(expansion.truncated);
        assert!(expansion.tree.len() <= 3);
    }
}
