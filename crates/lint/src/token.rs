//! A small hand-rolled Rust tokenizer.
//!
//! The lint rules need to see code the way the compiler does — `as u32`
//! inside a string literal is not a cast, a cast split over two lines is
//! still a cast — but they do not need types or a full grammar. This
//! tokenizer produces a flat token stream good enough for token-pattern
//! rules: identifiers, literals (strings, raw strings, byte strings,
//! char literals, numbers), doc and plain comments, lifetimes, and
//! punctuation (with the handful of two/three-character operators the
//! rules care about combined into single tokens, so `!=` never reads as
//! `!` `=`).
//!
//! [`test_mask`] additionally marks the tokens inside `#[cfg(test)]`-
//! gated items, by bracket/brace matching on tokens rather than by line
//! heuristics, so rules can skip test code reliably.

/// Lexical class of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`count`, `as`, `pub`, `r#type`).
    Ident,
    /// Lifetime (`'a`) — distinguished from char literals.
    Lifetime,
    /// Numeric literal (`42`, `1.5e-3`, `0xFF_u32`).
    Number,
    /// String, raw-string, byte-string or char literal.
    Literal,
    /// `///` or `//!` line doc comment, `/** */` or `/*! */` block doc.
    DocComment,
    /// Plain `//` or `/* */` comment.
    Comment,
    /// Operator or delimiter, possibly multi-character (`==`, `::`).
    Punct,
}

/// One token: kind plus the byte span and 1-based start line.
#[derive(Debug, Clone, Copy)]
pub struct Token {
    /// Lexical class.
    pub kind: TokenKind,
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based line of the first character.
    pub line: u32,
}

impl Token {
    /// The token's text within its source.
    pub fn text<'s>(&self, source: &'s str) -> &'s str {
        &source[self.start..self.end]
    }
}

/// Multi-character operators recognized as single tokens, longest first.
const COMPOUND_PUNCT: &[&str] = &[
    "<<=", ">>=", "..=", "...", "==", "!=", "<=", ">=", "=>", "->", "::", "..", "&&", "||", "<<",
    ">>", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=",
];

/// Tokenizes `source`, keeping comments (rules need doc comments) and
/// dropping only whitespace. Unterminated literals/comments consume the
/// rest of the input rather than erroring: the linter must degrade
/// gracefully on code rustc would reject anyway.
pub fn tokenize(source: &str) -> Vec<Token> {
    Lexer {
        source,
        bytes: source.as_bytes(),
        pos: 0,
        line: 1,
        tokens: Vec::new(),
    }
    .run()
}

struct Lexer<'s> {
    source: &'s str,
    bytes: &'s [u8],
    pos: usize,
    line: u32,
    tokens: Vec<Token>,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Token> {
        while self.pos < self.bytes.len() {
            let start = self.pos;
            let line = self.line;
            let b = self.bytes[self.pos];
            match b {
                b' ' | b'\t' | b'\r' => self.bump(),
                b'\n' => {
                    self.line = self.line.saturating_add(1);
                    self.bump();
                }
                b'/' if self.peek(1) == Some(b'/') => {
                    let doc = matches!(self.peek(2), Some(b'/') | Some(b'!'))
                        && self.peek(3) != Some(b'/'); // `////…` is a plain rule
                    self.consume_until_newline();
                    self.push(
                        if doc {
                            TokenKind::DocComment
                        } else {
                            TokenKind::Comment
                        },
                        start,
                        line,
                    );
                }
                b'/' if self.peek(1) == Some(b'*') => {
                    let doc = matches!(self.peek(2), Some(b'*') | Some(b'!'))
                        && self.peek(3) != Some(b'/'); // `/**/` is empty, not doc
                    self.consume_block_comment();
                    self.push(
                        if doc {
                            TokenKind::DocComment
                        } else {
                            TokenKind::Comment
                        },
                        start,
                        line,
                    );
                }
                b'"' => {
                    self.consume_string();
                    self.push(TokenKind::Literal, start, line);
                }
                b'\'' => self.char_or_lifetime(start, line),
                b'0'..=b'9' => {
                    self.consume_number(start);
                    self.push(TokenKind::Number, start, line);
                }
                _ if b == b'_' || b.is_ascii_alphabetic() => {
                    self.ident_or_prefixed_literal(start, line)
                }
                _ => {
                    let rest = &self.source[self.pos..];
                    let compound = COMPOUND_PUNCT.iter().find(|op| rest.starts_with(**op));
                    match compound {
                        Some(op) => {
                            for _ in 0..op.len() {
                                self.bump();
                            }
                        }
                        None => self.bump(),
                    }
                    self.push(TokenKind::Punct, start, line);
                }
            }
        }
        self.tokens
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos.saturating_add(ahead)).copied()
    }

    fn bump(&mut self) {
        self.pos = self.pos.saturating_add(1);
    }

    fn push(&mut self, kind: TokenKind, start: usize, line: u32) {
        self.tokens.push(Token {
            kind,
            start,
            end: self.pos,
            line,
        });
    }

    fn consume_until_newline(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
            self.bump();
        }
    }

    /// `/* … */`, nesting like rustc.
    fn consume_block_comment(&mut self) {
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while self.pos < self.bytes.len() && depth > 0 {
            match (self.bytes[self.pos], self.peek(1)) {
                (b'/', Some(b'*')) => {
                    depth = depth.saturating_add(1);
                    self.bump();
                    self.bump();
                }
                (b'*', Some(b'/')) => {
                    depth = depth.saturating_sub(1);
                    self.bump();
                    self.bump();
                }
                (b'\n', _) => {
                    self.line = self.line.saturating_add(1);
                    self.bump();
                }
                _ => self.bump(),
            }
        }
    }

    /// A `"…"` literal with escapes (the opening quote is current).
    fn consume_string(&mut self) {
        self.bump();
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => {
                    self.bump();
                    self.bump();
                }
                b'"' => {
                    self.bump();
                    return;
                }
                b'\n' => {
                    self.line = self.line.saturating_add(1);
                    self.bump();
                }
                _ => self.bump(),
            }
        }
    }

    /// Raw string `r"…"` / `r#"…"#…` with `hashes` leading `#`s; the
    /// caller has consumed the prefix up to and including the opening
    /// quote.
    fn consume_raw_string(&mut self, hashes: usize) {
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'"' => {
                    self.bump();
                    let mut seen = 0usize;
                    while seen < hashes && self.peek(0) == Some(b'#') {
                        self.bump();
                        seen = seen.saturating_add(1);
                    }
                    if seen == hashes {
                        return;
                    }
                }
                b'\n' => {
                    self.line = self.line.saturating_add(1);
                    self.bump();
                }
                _ => self.bump(),
            }
        }
    }

    /// Disambiguates `'a'` (char literal) from `'a` (lifetime); the `'`
    /// is current.
    fn char_or_lifetime(&mut self, start: usize, line: u32) {
        let first = self.peek(1);
        let second = self.peek(2);
        let is_lifetime = match first {
            Some(c) if c == b'_' || c.is_ascii_alphabetic() => second != Some(b'\''),
            _ => false,
        };
        if is_lifetime {
            self.bump(); // '
            while self
                .peek(0)
                .is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric())
            {
                self.bump();
            }
            self.push(TokenKind::Lifetime, start, line);
            return;
        }
        // Char literal: '\n', 'x', '\'', '\u{1F600}'.
        self.bump(); // '
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => {
                    self.bump();
                    self.bump();
                }
                b'\'' => {
                    self.bump();
                    break;
                }
                b'\n' => break, // stray quote: don't eat the file
                _ => self.bump(),
            }
        }
        self.push(TokenKind::Literal, start, line);
    }

    /// Numeric literal: integer/float with `_`, radix prefixes, type
    /// suffixes and exponents. Stops before `..` so ranges lex cleanly.
    fn consume_number(&mut self, start: usize) {
        while let Some(c) = self.peek(0) {
            let so_far = &self.source[start..self.pos];
            let radix_prefixed =
                so_far.starts_with("0x") || so_far.starts_with("0o") || so_far.starts_with("0b");
            if c == b'.' {
                // `1..n` is a range, `1.max(2)` a method call; a dot is
                // part of the number only when followed by a digit.
                if self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                    self.bump();
                } else {
                    break;
                }
            } else if (c == b'+' || c == b'-')
                && matches!(
                    self.bytes.get(self.pos.wrapping_sub(1)),
                    Some(b'e') | Some(b'E')
                )
                && !radix_prefixed
            {
                self.bump(); // exponent sign in 1.5e-3
            } else if c == b'_' || c.is_ascii_alphanumeric() {
                self.bump();
            } else {
                break;
            }
        }
    }

    /// An identifier, or a literal with an identifier-like prefix
    /// (`r"…"`, `r#"…"#`, `b"…"`, `b'…'`, `br#"…"#`, `r#ident`).
    fn ident_or_prefixed_literal(&mut self, start: usize, line: u32) {
        while self
            .peek(0)
            .is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric())
        {
            self.bump();
        }
        let ident = &self.source[start..self.pos];
        match (ident, self.peek(0)) {
            ("r" | "br" | "rb", Some(b'"')) => {
                self.bump();
                self.consume_raw_string(0);
                self.push(TokenKind::Literal, start, line);
            }
            ("r" | "br" | "rb", Some(b'#')) => {
                let mut hashes = 0usize;
                while self.peek(0) == Some(b'#') {
                    self.bump();
                    hashes = hashes.saturating_add(1);
                }
                if self.peek(0) == Some(b'"') {
                    self.bump();
                    self.consume_raw_string(hashes);
                    self.push(TokenKind::Literal, start, line);
                } else if hashes == 1 && ident == "r" {
                    // raw identifier r#type: the `#` is consumed, eat
                    // the identifier body.
                    while self
                        .peek(0)
                        .is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric())
                    {
                        self.bump();
                    }
                    self.push(TokenKind::Ident, start, line);
                } else {
                    self.push(TokenKind::Ident, start, line);
                }
            }
            ("b", Some(b'"')) => {
                self.bump();
                self.consume_string_body_as_bytes();
                self.push(TokenKind::Literal, start, line);
            }
            ("b", Some(b'\'')) => {
                self.bump(); // '
                while self.pos < self.bytes.len() {
                    match self.bytes[self.pos] {
                        b'\\' => {
                            self.bump();
                            self.bump();
                        }
                        b'\'' => {
                            self.bump();
                            break;
                        }
                        b'\n' => break,
                        _ => self.bump(),
                    }
                }
                self.push(TokenKind::Literal, start, line);
            }
            _ => self.push(TokenKind::Ident, start, line),
        }
    }

    fn consume_string_body_as_bytes(&mut self) {
        // b"…" shares the escape grammar of "…"; the opening quote is
        // current.
        self.consume_string();
    }
}

/// Marks tokens inside `#[cfg(test)]`-gated items.
///
/// For every `#[cfg(test)]` attribute the mask covers the attribute
/// itself, any further attributes, and the gated item — up to the close
/// of its first brace block, or to a top-level `;` for item forms
/// without a body (`#[cfg(test)] use …;`).
pub fn test_mask(source: &str, tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if let Some(after_attr) = match_cfg_test_attr(source, tokens, i) {
            let mut j = after_attr;
            // Skip further attributes between #[cfg(test)] and the item.
            while j < tokens.len() && tokens[j].text(source) == "#" {
                j = skip_attr(source, tokens, j);
            }
            // The gated item: ends at the close of the first `{…}`
            // block, or at a `;` seen before any brace.
            let mut depth = 0i64;
            let mut opened = false;
            while j < tokens.len() {
                let text = tokens[j].text(source);
                if tokens[j].kind == TokenKind::Punct {
                    match text {
                        "{" => {
                            depth = depth.saturating_add(1);
                            opened = true;
                        }
                        "}" => {
                            depth = depth.saturating_sub(1);
                            if opened && depth <= 0 {
                                break;
                            }
                        }
                        ";" if !opened && depth == 0 => break,
                        _ => {}
                    }
                }
                j = j.saturating_add(1);
            }
            for slot in mask
                .iter_mut()
                .take((j.saturating_add(1)).min(tokens.len()))
                .skip(i)
            {
                *slot = true;
            }
            i = j.saturating_add(1);
        } else {
            i = i.saturating_add(1);
        }
    }
    mask
}

/// If tokens at `i` spell `#[cfg(test)]`, returns the index one past the
/// closing `]`.
fn match_cfg_test_attr(source: &str, tokens: &[Token], i: usize) -> Option<usize> {
    let expected = ["#", "[", "cfg", "(", "test", ")", "]"];
    for (offset, want) in expected.iter().enumerate() {
        let token = tokens.get(i.saturating_add(offset))?;
        if token.text(source) != *want {
            return None;
        }
    }
    Some(i.saturating_add(expected.len()))
}

/// Skips one `#[…]` attribute starting at the `#`; returns the index one
/// past the closing `]` (bracket-depth matched).
pub(crate) fn skip_attr(source: &str, tokens: &[Token], i: usize) -> usize {
    let mut j = i.saturating_add(1);
    if tokens.get(j).map(|t| t.text(source)) != Some("[") {
        return j;
    }
    let mut depth = 0i64;
    while j < tokens.len() {
        match tokens[j].text(source) {
            "[" => depth = depth.saturating_add(1),
            "]" => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return j.saturating_add(1);
                }
            }
            _ => {}
        }
        j = j.saturating_add(1);
    }
    j
}

/// The previous non-comment token index before `i`, if any.
pub fn prev_code(tokens: &[Token], i: usize) -> Option<usize> {
    let mut j = i;
    while j > 0 {
        j = j.saturating_sub(1);
        if !matches!(tokens[j].kind, TokenKind::Comment | TokenKind::DocComment) {
            return Some(j);
        }
    }
    None
}

/// The next non-comment token index after `i`, if any.
pub fn next_code(tokens: &[Token], i: usize) -> Option<usize> {
    let mut j = i.saturating_add(1);
    while j < tokens.len() {
        if !matches!(tokens[j].kind, TokenKind::Comment | TokenKind::DocComment) {
            return Some(j);
        }
        j = j.saturating_add(1);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(source: &str) -> Vec<(TokenKind, String)> {
        tokenize(source)
            .iter()
            .map(|t| (t.kind, t.text(source).to_string()))
            .collect()
    }

    #[test]
    fn strings_and_comments_are_opaque() {
        let src = r#"let s = "x as u32 // not code"; // as u32
        let r = r"raw as u32"; /* as u32 */"#;
        let idents: Vec<String> = texts(src)
            .into_iter()
            .filter(|(k, _)| *k == TokenKind::Ident)
            .map(|(_, t)| t)
            .collect();
        assert_eq!(idents, ["let", "s", "let", "r"]);
    }

    #[test]
    fn raw_strings_with_hashes_and_byte_literals() {
        let src = r##"let a = r#"he said "as u32""#; let b = b"bytes"; let c = b'x';"##;
        let literals: Vec<String> = texts(src)
            .into_iter()
            .filter(|(k, _)| *k == TokenKind::Literal)
            .map(|(_, t)| t)
            .collect();
        assert_eq!(literals.len(), 3, "{literals:?}");
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'a' }";
        let kinds: Vec<TokenKind> = tokenize(src).iter().map(|t| t.kind).collect();
        let lifetimes = kinds.iter().filter(|k| **k == TokenKind::Lifetime).count();
        let literals = kinds.iter().filter(|k| **k == TokenKind::Literal).count();
        assert_eq!((lifetimes, literals), (2, 1));
    }

    #[test]
    fn compound_punct_and_numbers() {
        let src = "if a != 1.5e-3 && b == 0.5f64 { c ..= d; e :: f }";
        let t = texts(src);
        assert!(t.contains(&(TokenKind::Punct, "!=".into())));
        assert!(t.contains(&(TokenKind::Punct, "==".into())));
        assert!(t.contains(&(TokenKind::Number, "1.5e-3".into())));
        assert!(t.contains(&(TokenKind::Number, "0.5f64".into())));
        assert!(t.contains(&(TokenKind::Punct, "::".into())));
    }

    #[test]
    fn ranges_lex_as_ranges() {
        let src = "for i in 0..10 {}";
        let t = texts(src);
        assert!(t.contains(&(TokenKind::Number, "0".into())));
        assert!(t.contains(&(TokenKind::Punct, "..".into())));
        assert!(t.contains(&(TokenKind::Number, "10".into())));
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let src = "a\n\"two\nline\"\nb";
        let tokens = tokenize(src);
        let b = tokens.last().expect("tokens");
        assert_eq!(b.line, 4);
    }

    #[test]
    fn cfg_test_masking_covers_items_and_statements() {
        let src =
            "fn live() {}\n#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}\nfn live2() {}";
        let tokens = tokenize(src);
        let mask = test_mask(src, &tokens);
        for (token, masked) in tokens.iter().zip(&mask) {
            let text = token.text(src);
            if text == "unwrap" {
                assert!(*masked);
            }
            if text == "live" || text == "live2" {
                assert!(!*masked, "{text} wrongly masked");
            }
        }
    }

    #[test]
    fn cfg_test_masking_handles_semicolon_items_and_extra_attrs() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn live() {}\n#[cfg(test)]\n#[allow(dead_code)]\nfn t() { y.unwrap() }\nfn live2() {}";
        let tokens = tokenize(src);
        let mask = test_mask(src, &tokens);
        for (token, masked) in tokens.iter().zip(&mask) {
            let text = token.text(src);
            if text == "bar" || text == "unwrap" || text == "dead_code" {
                assert!(*masked, "{text} not masked");
            }
            if text == "live" || text == "live2" {
                assert!(!*masked, "{text} wrongly masked");
            }
        }
    }

    #[test]
    fn doc_comments_are_classified() {
        let src = "/// doc §4\n//! inner\n// plain\n/** block doc */\nfn f() {}";
        let kinds: Vec<TokenKind> = tokenize(src).iter().map(|t| t.kind).collect();
        let docs = kinds
            .iter()
            .filter(|k| **k == TokenKind::DocComment)
            .count();
        let plain = kinds.iter().filter(|k| **k == TokenKind::Comment).count();
        assert_eq!((docs, plain), (3, 1));
    }
}
