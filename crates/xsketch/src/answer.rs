//! Approximate answers from a twig-XSketch (§6.1).
//!
//! The paper: *"The algorithm traverses the query tree and uses the
//! distribution information of the recorded edge histograms in order to
//! sample the number of descendants for each element in the approximate
//! result tree."* We implement exactly that: the query tree is walked
//! top-down; for every materialized binding element the child counts
//! along each synopsis edge are sampled from the node's joint histogram
//! (preserving whatever correlation the histogram retained), descendant
//! steps recurse through sampled intermediate elements, and branch
//! predicates keep a sampled element with probability equal to the
//! estimated branch selectivity. The output is a concrete
//! [`AnswerTree`]; generation is capped to keep pathological samples
//! bounded.

use crate::estimate::{XsEvalConfig, XsWalker};
use crate::sketch::{XSketch, XsNodeId};
use axqa_eval::AnswerTree;
use axqa_query::{Axis, ResolvedPath, ResolvedStep, TwigQuery};
use rand::Rng;

/// Sampling knobs.
#[derive(Debug, Clone)]
pub struct SampleConfig {
    /// Hard cap on materialized answer nodes.
    pub max_nodes: usize,
    /// Hard cap on sampled intermediate elements per descendant step.
    pub max_intermediates: usize,
    /// Estimation knobs for branch selectivities.
    pub eval: XsEvalConfig,
}

impl Default for SampleConfig {
    fn default() -> Self {
        SampleConfig {
            max_nodes: 200_000,
            max_intermediates: 500_000,
            eval: XsEvalConfig::default(),
        }
    }
}

/// Samples an approximate answer tree for `query`; `None` when a
/// required variable ends up with no bindings in the sample.
pub fn sample_answer<R: Rng + ?Sized>(
    sketch: &XSketch,
    query: &TwigQuery,
    config: &SampleConfig,
    rng: &mut R,
) -> Option<AnswerTree> {
    let labels = sketch.labels();
    let resolved: Vec<ResolvedPath> = query
        .vars()
        .skip(1)
        .map(|v| query.node(v).path.resolve(labels))
        .collect();
    let walker = XsWalker {
        sketch,
        epsilon: config.eval.epsilon,
        max_depth: config
            .eval
            .max_descendant_depth
            .unwrap_or_else(|| sketch.height().saturating_add(1)),
    };

    let root_label = sketch.node(sketch.root()).label;
    let mut tree = AnswerTree::new(labels.clone(), root_label);
    // Bindings of each variable: (answer node, synopsis node).
    let mut bind: Vec<Vec<(u32, XsNodeId)>> = vec![Vec::new(); query.num_vars()];
    bind[0].push((tree.root(), sketch.root()));
    let mut sampler = Sampler {
        sketch,
        walker,
        budget: Budget {
            nodes_left: config.max_nodes,
            intermediates_left: config.max_intermediates,
        },
        found: Vec::new(),
        rng,
    };

    for var in query.vars() {
        for qc in query.children(var) {
            let path = &resolved[qc.index() - 1];
            let parents = bind[var.index()].clone();
            for (answer_parent, xs_parent) in parents {
                sampler.found.clear();
                sampler.sample_path(xs_parent, &path.steps);
                for xs_node in std::mem::take(&mut sampler.found) {
                    if sampler.budget.nodes_left == 0 {
                        break;
                    }
                    sampler.budget.nodes_left -= 1;
                    let label = sketch.node(xs_node).label;
                    let id = tree.add(answer_parent, label, qc);
                    bind[qc.index()].push((id, xs_node));
                }
            }
        }
    }

    for var in query.vars().skip(1) {
        if query.effectively_required(var) && bind[var.index()].is_empty() {
            return None;
        }
    }
    Some(tree)
}

struct Budget {
    nodes_left: usize,
    intermediates_left: usize,
}

/// Sampling state threaded through the recursive walk: the synopsis,
/// the estimator (for predicate selectivities), the generation budget,
/// the RNG and the accumulator of sampled endpoints.
struct Sampler<'a, R: Rng + ?Sized> {
    sketch: &'a XSketch,
    walker: XsWalker<'a>,
    budget: Budget,
    found: Vec<XsNodeId>,
    rng: &'a mut R,
}

impl<R: Rng + ?Sized> Sampler<'_, R> {
    /// Samples the multiset of endpoint bindings of `steps` from one
    /// element of `node`, pushing one entry per sampled binding.
    fn sample_path(&mut self, node: XsNodeId, steps: &[ResolvedStep]) {
        let Some((step, rest)) = steps.split_first() else {
            self.found.push(node);
            return;
        };
        let Some(label) = step.label else { return };
        match step.axis {
            Axis::Child => {
                let counts = self.sketch.node(node).histogram.sample(self.rng);
                let num_edges = self.sketch.node(node).edges.len();
                for dim in 0..num_edges {
                    let target = self.sketch.node(node).edges[dim].target;
                    if self.sketch.node(target).label != label {
                        continue;
                    }
                    for _ in 0..counts.get(dim).copied().unwrap_or(0) {
                        if !self.keep_by_predicates(target, step) {
                            continue;
                        }
                        self.sample_path(target, rest);
                    }
                }
            }
            Axis::Descendant => {
                self.sample_descend(node, step, label, rest, self.walker.max_depth);
            }
        }
    }

    fn sample_descend(
        &mut self,
        node: XsNodeId,
        step: &ResolvedStep,
        label: axqa_xml::LabelId,
        rest: &[ResolvedStep],
        depth_left: u32,
    ) {
        if depth_left == 0 || self.budget.intermediates_left == 0 {
            return;
        }
        let counts = self.sketch.node(node).histogram.sample(self.rng);
        let num_edges = self.sketch.node(node).edges.len();
        for dim in 0..num_edges {
            let target = self.sketch.node(node).edges[dim].target;
            let k = counts.get(dim).copied().unwrap_or(0);
            for _ in 0..k {
                if self.budget.intermediates_left == 0 {
                    return;
                }
                self.budget.intermediates_left -= 1;
                if self.sketch.node(target).label == label && self.keep_by_predicates(target, step)
                {
                    self.sample_path(target, rest);
                }
                self.sample_descend(target, step, label, rest, depth_left.saturating_sub(1));
            }
        }
    }

    /// Bernoulli filter: keep the element with probability equal to the
    /// estimated selectivity of each branch predicate.
    fn keep_by_predicates(&mut self, node: XsNodeId, step: &ResolvedStep) -> bool {
        step.predicates.iter().all(|p| {
            let s = self.walker.branch_selectivity(node, p);
            s >= 1.0 || self.rng.gen::<f64>() < s
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axqa_query::{parse_twig, QVar};
    use axqa_synopsis::build_stable;
    use axqa_xml::parse_document;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn label_split(doc: &axqa_xml::Document, buckets: usize) -> XSketch {
        let stable = build_stable(doc);
        let (partition, n) = XSketch::label_split_partition(&stable);
        XSketch::from_partition(&stable, &partition, n, buckets)
    }

    #[test]
    fn sampled_answer_has_plausible_shape() {
        let doc = parse_document("<r><a><b/><b/></a><a><b/><b/></a><a><b/><b/></a></r>").unwrap();
        let xs = label_split(&doc, 100);
        let query = parse_twig("q1: q0 /a\nq2: q1 /b").unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let tree = sample_answer(&xs, &query, &SampleConfig::default(), &mut rng).unwrap();
        // Exactly stable structure → exact sample: 3 a's, 2 b's each.
        assert_eq!(tree.len(), 1 + 3 + 6);
        let root_children = &tree.nodes()[0].children;
        assert_eq!(root_children.len(), 3);
        for &a in root_children {
            assert_eq!(tree.nodes()[a as usize].children.len(), 2);
        }
    }

    #[test]
    fn sampling_averages_match_histogram_means() {
        // b counts 1 and 4 (Fig. 3): sampled totals hover around 2.5/b.
        let doc = parse_document(
            "<r><a><b><c/></b><b><c/><c/><c/><c/></b></a>\
             <a><b><c/></b><b><c/><c/><c/><c/></b></a></r>",
        )
        .unwrap();
        let xs = label_split(&doc, 100);
        let query = parse_twig("q1: q0 //b\nq2: q1 /c").unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let mut total_c = 0usize;
        let rounds = 300;
        for _ in 0..rounds {
            let tree =
                sample_answer(&xs, &query, &SampleConfig::default(), &mut rng).expect("b's exist");
            total_c += tree.nodes().iter().filter(|n| n.var == QVar(2)).count();
        }
        let avg = total_c as f64 / rounds as f64;
        // Exact expectation: 4 b's × 2.5 c = 10 per sample.
        assert!((avg - 10.0).abs() < 1.0, "avg = {avg}");
    }

    #[test]
    fn empty_sample_for_missing_labels() {
        let doc = parse_document("<r><a/></r>").unwrap();
        let xs = label_split(&doc, 10);
        let query = parse_twig("q1: q0 //zzz").unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(sample_answer(&xs, &query, &SampleConfig::default(), &mut rng).is_none());
    }

    #[test]
    fn caps_bound_generation() {
        let doc = parse_document("<r><a><b/><b/><b/><b/></a></r>").unwrap();
        let xs = label_split(&doc, 10);
        let query = parse_twig("q1: q0 //b").unwrap();
        let config = SampleConfig {
            max_nodes: 2,
            ..SampleConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(3);
        let tree = sample_answer(&xs, &query, &config, &mut rng).unwrap();
        assert!(tree.len() <= 3); // root + 2
    }
}
