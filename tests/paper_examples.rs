// Examples/integration tests are demo code: panicking extractors are fine.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::arithmetic_side_effects
)]

//! Cross-crate checks of every worked example in the paper, driven
//! through the public `axqa` API.

use axqa::prelude::*;

/// The Figure 1 bibliography document.
fn figure1() -> Document {
    parse_document(
        "<d>\
           <a><p><y/><t/><k/></p><p><y/><t/><k/><k/></p><n/></a>\
           <a><n/><p><y/><t/><k/></p><b><t/></b></a>\
           <a><n/><p><y/><t/><k/></p><b><t/></b></a>\
         </d>",
    )
    .unwrap()
}

#[test]
fn figure2_nesting_tree_and_tuples() {
    let doc = figure1();
    let index = DocIndex::build(&doc);
    let query = parse_twig("q1: q0 //a[//b]\nq2: q1 //p\nq3: q2 ? //k\nq4: q1 ? //n").unwrap();
    let nt = evaluate(&doc, &index, &query).expect("non-empty");
    // Figure 2(c): two authors (a2, a3), each with one p, one k, one n.
    assert_eq!(nt.bindings(QVar(1)).len(), 2);
    assert_eq!(nt.bindings(QVar(2)).len(), 2);
    assert_eq!(nt.bindings(QVar(3)).len(), 2);
    assert_eq!(nt.bindings(QVar(4)).len(), 2);
    assert_eq!(nt.binding_tuples(&query), 2.0);
}

#[test]
fn figure3_documents_have_equal_selectivity_but_different_structure() {
    // §3.1: every twig has the same selectivity on T1 and T2, yet their
    // count-stable synopses (and hence the true answers) differ.
    let t1 = parse_document(
        "<r><a><b><c/></b><b><c/><c/><c/><c/></b></a>\
         <a><b><c/></b><b><c/><c/><c/><c/></b></a></r>",
    )
    .unwrap();
    let t2 = parse_document(
        "<r><a><b><c/></b><b><c/></b></a>\
         <a><b><c/><c/><c/><c/></b><b><c/><c/><c/><c/></b></a></r>",
    )
    .unwrap();
    let query = parse_twig("q1: q0 //a\nq2: q1 /b\nq3: q2 /c").unwrap();
    let i1 = DocIndex::build(&t1);
    let i2 = DocIndex::build(&t2);
    // Same selectivity (10 in the paper)…
    assert_eq!(selectivity(&t1, &i1, &query), 10.0);
    assert_eq!(selectivity(&t2, &i2, &query), 10.0);
    // …different count-stable synopses (Fig. 3(f): 5 vs 6 classes)…
    let s1 = build_stable(&t1);
    let s2 = build_stable(&t2);
    assert_eq!(s1.len(), 5);
    assert_eq!(s2.len(), 6);
    // …and the documents are genuinely far apart under ESD.
    let esd = axqa::distance::esd_documents(&t1, &t2, &Default::default());
    assert!(esd > 0.0);
}

#[test]
fn branch_selectivity_fractional_and_saturated() {
    // Example 4.1's inclusion–exclusion arithmetic (0.6, 0.7 → 0.88) is
    // asserted against the hand-built Figure 9 synopsis in axqa-core's
    // unit tests. Here the two regimes of EVALEMBED's branch handling
    // are exercised end to end on real documents compressed to the
    // label-split floor:
    //
    // (a) fractional: 6 of 10 d's have a g child → [/g] selectivity 0.6;
    let mut src = String::from("<r>");
    for i in 0..10 {
        src.push_str(if i < 6 { "<d><g/></d>" } else { "<d/>" });
    }
    src.push_str("</r>");
    let doc = parse_document(&src).unwrap();
    let ts = ts_build(&build_stable(&doc), &BuildConfig::with_budget(1)).sketch;
    let query = parse_twig("q1: q0 /d[/g]").unwrap();
    let estimate =
        axqa::core::selectivity::estimate_query_selectivity(&ts, &query, &EvalConfig::default());
    assert!((estimate - 6.0).abs() < 1e-9, "estimate = {estimate}");

    // (b) saturated (Fig. 8 lines 8–9): aggregated descendant count
    // 1.3 ≥ 1 ⇒ selectivity exactly 1 even though no single path
    // guarantees a match.
    let mut src = String::from("<r>");
    for i in 0..10 {
        src.push_str("<d>");
        if i < 6 {
            src.push_str("<g><v/></g>");
        }
        if i >= 3 {
            src.push_str("<h><v/></h>");
        }
        src.push_str("</d>");
    }
    src.push_str("</r>");
    let doc = parse_document(&src).unwrap();
    let ts = ts_build(&build_stable(&doc), &BuildConfig::with_budget(1)).sketch;
    let query = parse_twig("q1: q0 /d[//v]").unwrap();
    let estimate =
        axqa::core::selectivity::estimate_query_selectivity(&ts, &query, &EvalConfig::default());
    // True answer is 10 (every d has a v descendant); the saturation
    // rule recovers it exactly.
    assert!((estimate - 10.0).abs() < 1e-9, "estimate = {estimate}");
}

#[test]
fn lemma31_expand_roundtrip() {
    let doc = figure1();
    let stable = build_stable(&doc);
    let expanded = expand(&stable);
    assert_eq!(expanded.len(), doc.len());
    // Unordered isomorphism ⟺ identical canonical stable summaries.
    let s2 = build_stable(&expanded);
    assert_eq!(stable.len(), s2.len());
    assert_eq!(stable.num_edges(), s2.num_edges());
}

#[test]
fn figure9_example_full_numbers() {
    // The Figure 9 walkthrough numbers are asserted against the
    // hand-built synopsis in axqa-core's unit tests; here, a document
    // engineered so its *label-split* TreeSketch matches Figure 9's
    // r → a edge: one r with 10 a's.
    let mut src = String::from("<r>");
    for _ in 0..10 {
        src.push_str("<a><b/></a>");
    }
    src.push_str("</r>");
    let doc = parse_document(&src).unwrap();
    let ts = ts_build(&build_stable(&doc), &BuildConfig::with_budget(1)).sketch;
    let query = parse_twig("q1: q0 //a").unwrap();
    let result = eval_query(&ts, &query, &EvalConfig::default()).unwrap();
    assert_eq!(result.estimated_bindings(QVar(1)), 10.0);
}
