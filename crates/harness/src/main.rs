//! `harness` — regenerate the paper's tables and figures.
//!
//! ```text
//! harness <command> [options]
//!
//! commands:
//!   table1 | table2 | table3 | fig11 | fig12 | fig13 | negative
//!   ablation            bottom-up vs top-down construction
//!   family              §3.1 synopsis-family sizes (A(k), 1-index, stable)
//!   values              value-predicate estimation (extension)
//!   all                 every experiment in order
//!   bench baseline      wall-clock baseline snapshot (BENCH_core.json);
//!                       options: --dataset NAME --elements N --queries N
//!                       --runs N --budgets a,b,c --threads N --seed N
//!                       --out PATH
//!
//! options:
//!   --scale F           dataset scale multiplier (default 0.25; 1 = paper)
//!   --queries N         workload size (default 200; paper = 1000)
//!   --esd-queries N     queries used for ESD (default 100)
//!   --budgets a,b,c     synopsis budgets in KB (default 10,20,30,40,50)
//!   --seed N            RNG seed (default 0x5EED)
//!   --threads N         worker threads (default: all cores)
//!   --no-xsketch        skip the slow twig-XSketch baseline
//!   --csv DIR           also write CSV files into DIR
//! ```

use axqa_harness::experiments::{
    ablation_topdown, family, fig11, fig12, fig13, negative, table1, table2, table3, values,
    ExperimentConfig,
};
use axqa_harness::PipelineConfig;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().cloned() else {
        eprintln!("usage: harness <table1|table2|table3|fig11|fig12|fig13|negative|ablation|family|all|bench> [options]");
        return ExitCode::from(2);
    };
    if command == "bench" {
        return cmd_bench(&args[1..]);
    }
    let mut config = ExperimentConfig {
        pipeline: PipelineConfig {
            scale: 0.25,
            queries: 200,
            seed: 0x5EED,
            threads: 0,
            need_nesting: true,
        },
        ..ExperimentConfig::default()
    };
    let mut iter = args.iter().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| -> String {
            iter.next()
                .unwrap_or_else(|| {
                    eprintln!("missing value for {name}");
                    std::process::exit(2);
                })
                .clone()
        };
        match arg.as_str() {
            "--scale" => config.pipeline.scale = parse(&value("--scale")),
            "--queries" => config.pipeline.queries = parse(&value("--queries")),
            "--esd-queries" => config.esd_queries = parse(&value("--esd-queries")),
            "--seed" => config.pipeline.seed = parse(&value("--seed")),
            "--threads" => config.pipeline.threads = parse(&value("--threads")),
            "--no-xsketch" => config.with_xsketch = false,
            "--budgets" => {
                config.budgets_kb = value("--budgets")
                    .split(',')
                    .map(|s| parse::<usize>(s.trim()))
                    .collect();
            }
            "--csv" => config.csv_dir = Some(value("--csv").into()),
            other => {
                eprintln!("unknown option {other}");
                return ExitCode::from(2);
            }
        }
    }

    println!(
        "# axqa harness — scale {:.2}, {} queries, seed {:#x}, budgets {:?} KB{}",
        config.pipeline.scale,
        config.pipeline.queries,
        config.pipeline.seed,
        config.budgets_kb,
        if config.with_xsketch {
            ""
        } else {
            ", no xsketch"
        },
    );
    let started = std::time::Instant::now();
    match command.as_str() {
        "table1" => print_one(table1(&config)),
        "table2" => print_one(table2(&config)),
        "table3" => print_one(table3(&config)),
        "fig11" => print_many(fig11(&config)),
        "fig12" => print_many(fig12(&config)),
        "fig13" => print_one(fig13(&config)),
        "negative" => print_one(negative(&config)),
        "ablation" => print_one(ablation_topdown(&config)),
        "family" => print_one(family(&config)),
        "values" => print_one(values(&config)),
        "all" => {
            print_one(table1(&config));
            print_one(table2(&config));
            print_one(table3(&config));
            print_many(fig11(&config));
            print_many(fig12(&config));
            print_one(fig13(&config));
            print_one(negative(&config));
            print_one(family(&config));
            print_one(values(&config));
            print_one(ablation_topdown(&config));
        }
        other => {
            eprintln!("unknown command {other}");
            return ExitCode::from(2);
        }
    }
    println!("# done in {:.1}s", started.elapsed().as_secs_f64());
    ExitCode::SUCCESS
}

fn cmd_bench(args: &[String]) -> ExitCode {
    let Some(sub) = args.first() else {
        eprintln!("usage: harness bench baseline [options]");
        return ExitCode::from(2);
    };
    if sub != "baseline" {
        eprintln!("unknown bench subcommand {sub} (expected: baseline)");
        return ExitCode::from(2);
    }
    let mut config = axqa_harness::bench::BaselineConfig::default();
    let mut iter = args.iter().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| -> String {
            iter.next()
                .unwrap_or_else(|| {
                    eprintln!("missing value for {name}");
                    std::process::exit(2);
                })
                .clone()
        };
        match arg.as_str() {
            "--dataset" => {
                let name = value("--dataset");
                config.dataset = axqa_harness::bench::parse_dataset(&name).unwrap_or_else(|| {
                    eprintln!("unknown dataset {name} (xmark|imdb|sprot|dblp)");
                    std::process::exit(2);
                });
            }
            "--elements" => config.elements = parse(&value("--elements")),
            "--queries" => config.queries = parse(&value("--queries")),
            "--runs" => config.runs = parse(&value("--runs")),
            "--threads" => config.threads = parse(&value("--threads")),
            "--seed" => config.seed = parse(&value("--seed")),
            "--budgets" => {
                config.budgets_kb = value("--budgets")
                    .split(',')
                    .map(|s| parse::<usize>(s.trim()))
                    .collect();
            }
            "--out" => config.out = value("--out").into(),
            other => {
                eprintln!("unknown option {other}");
                return ExitCode::from(2);
            }
        }
    }
    let started = std::time::Instant::now();
    let report = axqa_harness::bench::run_baseline(&config);
    print!("{}", report.render());
    if let Err(error) = report.write() {
        eprintln!("could not write {}: {error}", config.out.display());
        return ExitCode::FAILURE;
    }
    println!(
        "# wrote {} in {:.1}s",
        config.out.display(),
        started.elapsed().as_secs_f64()
    );
    ExitCode::SUCCESS
}

fn print_one(table: axqa_harness::report::Table) {
    println!("{}", table.render());
}

fn print_many(tables: Vec<axqa_harness::report::Table>) {
    for table in tables {
        println!("{}", table.render());
    }
}

fn parse<T: std::str::FromStr>(text: &str) -> T {
    text.parse().unwrap_or_else(|_| {
        eprintln!("could not parse option value {text:?}");
        std::process::exit(2);
    })
}
