//! Error type for XML parsing and document construction.

use std::fmt;

/// Errors produced by [`crate::parse_document`] and tree construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlError {
    /// Input ended while an element was still open.
    UnexpectedEof {
        /// Tag of the innermost unclosed element, if any.
        open_tag: Option<String>,
    },
    /// A closing tag did not match the innermost open element.
    MismatchedTag {
        /// Tag that was open.
        expected: String,
        /// Tag that was found.
        found: String,
        /// Byte offset of the offending closing tag.
        offset: usize,
    },
    /// Content appeared outside the single document root.
    MultipleRoots {
        /// Byte offset of the second root element.
        offset: usize,
    },
    /// The document contained no element at all.
    EmptyDocument,
    /// Malformed markup (bad tag name, unterminated construct, ...).
    Malformed {
        /// Human-readable description.
        message: String,
        /// Byte offset of the problem.
        offset: usize,
    },
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlError::UnexpectedEof {
                open_tag: Some(tag),
            } => {
                write!(f, "unexpected end of input: element <{tag}> is still open")
            }
            XmlError::UnexpectedEof { open_tag: None } => {
                write!(f, "unexpected end of input")
            }
            XmlError::MismatchedTag {
                expected,
                found,
                offset,
            } => {
                write!(
                    f,
                    "mismatched closing tag </{found}> at byte {offset}: expected </{expected}>"
                )
            }
            XmlError::MultipleRoots { offset } => {
                write!(
                    f,
                    "second root element at byte {offset}: a document has exactly one root"
                )
            }
            XmlError::EmptyDocument => write!(f, "document contains no element"),
            XmlError::Malformed { message, offset } => {
                write!(f, "malformed XML at byte {offset}: {message}")
            }
        }
    }
}

impl std::error::Error for XmlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = XmlError::MismatchedTag {
            expected: "a".into(),
            found: "b".into(),
            offset: 17,
        };
        let text = err.to_string();
        assert!(text.contains("</b>"));
        assert!(text.contains("</a>"));
        assert!(text.contains("17"));
    }

    #[test]
    fn eof_with_and_without_tag() {
        assert!(XmlError::UnexpectedEof {
            open_tag: Some("x".into())
        }
        .to_string()
        .contains("<x>"));
        assert!(!XmlError::UnexpectedEof { open_tag: None }
            .to_string()
            .contains('<'));
    }
}
