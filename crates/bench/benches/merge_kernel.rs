// Benchmarks are test-like code: panicking extractors are acceptable here.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::arithmetic_side_effects
)]

//! The TSBUILD merge-loop kernel in isolation (§4.2; DESIGN.md §4.7):
//! `evaluate_merge` with a reused `ScoreScratch` (the hot scoring path —
//! 82% of construction time in the PR 4 baseline) and `apply_merge`
//! (partition mutation plus incremental error/size bookkeeping), each at
//! three stable-summary sizes.

/// Bench binaries install the counting allocator (DESIGN.md §12)
/// so recorded spans carry real allocation profiles.
#[global_allocator]
static ALLOC: axqa_obs::alloc::CountingAlloc = axqa_obs::alloc::CountingAlloc;

use axqa_bench::Fixture;
use axqa_core::{ClusterState, ScoreScratch};
use axqa_datagen::Dataset;
use axqa_synopsis::SizeModel;
use criterion::{criterion_group, criterion_main, Criterion};

/// Same-label candidate pairs over the live clusters, capped so the
/// per-iteration work stays comparable across sizes.
fn candidate_pairs(state: &ClusterState, cap: usize) -> Vec<(u32, u32)> {
    let ids: Vec<u32> = state.alive_ids().collect();
    let mut pairs = Vec::new();
    for (i, &a) in ids.iter().enumerate() {
        for &b in &ids[i + 1..] {
            if state.cluster(a).label == state.cluster(b).label {
                pairs.push((a, b));
                if pairs.len() >= cap {
                    return pairs;
                }
            }
        }
    }
    pairs
}

/// A merge sequence that is valid when replayed on a fresh state:
/// recorded by greedily merging the first candidate pair `steps` times.
fn record_merge_sequence(fixture: &Fixture, steps: usize) -> Vec<(u32, u32)> {
    let mut state = ClusterState::new(&fixture.stable, SizeModel::TREESKETCH);
    let mut sequence = Vec::new();
    for _ in 0..steps {
        let Some(&pair) = candidate_pairs(&state, 1).first() else {
            break;
        };
        state.apply_merge(pair.0, pair.1);
        sequence.push(pair);
    }
    sequence
}

fn bench_evaluate_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("merge_kernel_score");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(5));
    for elements in [3_000usize, 10_000, 30_000] {
        let fixture = Fixture::new(Dataset::SProt, elements, 0);
        let state = ClusterState::new(&fixture.stable, SizeModel::TREESKETCH);
        let pairs = candidate_pairs(&state, 512);
        let mut scratch = ScoreScratch::new();
        group.bench_function(format!("evaluate_merge/{elements}"), |b| {
            b.iter(|| {
                let mut acc = 0.0f64;
                for &(x, y) in &pairs {
                    let delta = state.evaluate_merge(x, y, &mut scratch);
                    acc += delta.errd;
                }
                acc
            })
        });
        // The retained hashmap reference, for contrast with the
        // structure-of-arrays scratch path above (same pairs, same
        // results bitwise — proptest_merge_kernel pins that; this group
        // quantifies what the SoA layout + err-total cache buy).
        group.bench_function(format!("evaluate_merge_reference/{elements}"), |b| {
            b.iter(|| {
                let mut acc = 0.0f64;
                for &(x, y) in &pairs {
                    let delta = state.evaluate_merge_reference(x, y);
                    acc += delta.errd;
                }
                acc
            })
        });
    }
    group.finish();
}

fn bench_apply_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("merge_kernel_apply");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(5));
    for elements in [3_000usize, 10_000, 30_000] {
        let fixture = Fixture::new(Dataset::SProt, elements, 0);
        let sequence = record_merge_sequence(&fixture, 64);
        group.bench_function(format!("apply_merge/{elements}"), |b| {
            b.iter(|| {
                // ClusterState is not Clone; rebuild-and-replay keeps each
                // iteration identical (construction cost is shared noise).
                let mut state = ClusterState::new(&fixture.stable, SizeModel::TREESKETCH);
                for &(x, y) in &sequence {
                    state.apply_merge(x, y);
                }
                state.squared_error()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_evaluate_merge, bench_apply_merge);
criterion_main!(benches);
