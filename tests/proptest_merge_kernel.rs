// Examples/integration tests are demo code: panicking extractors are fine.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::arithmetic_side_effects
)]

//! Property tests of the allocation-free merge-loop kernel in
//! `core/src/cluster.rs` (TSBUILD, §4.2; DESIGN.md §4.7).
//!
//! The kernel rewrite (scratch-space scoring, sorted-stats merge-joins,
//! incremental error bookkeeping) retained the original hashmap-based
//! implementations as `*_reference` functions. These tests pin the new
//! code to the old bitwise: `evaluate_merge` must produce bit-identical
//! `MergeDelta`s (this transitively pins the scratch-based
//! `cross_terms`, whose per-parent accumulation order the scratch
//! preserves), and the sort-coalesce `recompute_stats` /
//! `recompute_child_k` must reproduce the reference accumulations
//! exactly after splits rewire the partition. A separate determinism
//! test drives randomized merge/split sequences and checks the
//! incrementally-maintained `squared_error`/`size_bytes` aggregates
//! against full recomputation.

use axqa::core::cluster::{ClusterState, ScoreScratch};
use axqa::prelude::*;
use proptest::prelude::*;

/// A random tree: label index and children.
#[derive(Debug, Clone)]
struct Tree {
    label: u8,
    children: Vec<Tree>,
}

fn tree_strategy() -> impl Strategy<Value = Tree> {
    let leaf = (0u8..4).prop_map(|label| Tree {
        label,
        children: vec![],
    });
    leaf.prop_recursive(4, 60, 5, |inner| {
        ((0u8..4), prop::collection::vec(inner, 0..5))
            .prop_map(|(label, children)| Tree { label, children })
    })
}

fn label_name(index: u8) -> String {
    format!("l{index}")
}

fn to_document(tree: &Tree) -> Document {
    fn add(doc: &mut Document, parent: axqa::xml::NodeId, tree: &Tree) {
        let node = doc.add_child_named(parent, &label_name(tree.label));
        for child in &tree.children {
            add(doc, node, child);
        }
    }
    let mut doc = Document::new(&label_name(tree.label));
    let root = doc.root();
    for child in &tree.children {
        add(&mut doc, root, child);
    }
    doc
}

/// All same-label pairs of live clusters (the pairs TSBUILD scores).
fn mergeable_pairs(state: &ClusterState) -> Vec<(u32, u32)> {
    let ids: Vec<u32> = state.alive_ids().collect();
    let mut pairs = Vec::new();
    for (i, &a) in ids.iter().enumerate() {
        for &b in &ids[i + 1..] {
            if state.cluster(a).label == state.cluster(b).label {
                pairs.push((a, b));
            }
        }
    }
    pairs
}

/// Tiny splitmix-style step for deterministic in-test choices.
fn next_choice(seed: &mut u64, bound: usize) -> usize {
    *seed = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    ((*seed >> 33) as usize) % bound.max(1)
}

/// Splits the largest multi-member live cluster (alternating members),
/// returning false when every cluster is a singleton.
fn split_one(state: &mut ClusterState) -> bool {
    let target = state
        .alive_ids()
        .filter(|&id| state.cluster(id).members.len() >= 2)
        .max_by_key(|&id| state.cluster(id).members.len());
    let Some(id) = target else {
        return false;
    };
    let part: Vec<u32> = state
        .cluster(id)
        .members
        .iter()
        .copied()
        .step_by(2)
        .collect();
    debug_assert!(part.len() < state.cluster(id).members.len());
    state.apply_split(id, &part);
    true
}

/// Asserts the freshly (re)computed structures of every live cluster
/// match the retained hashmap reference implementations bitwise.
fn assert_matches_reference(state: &ClusterState) {
    for id in state.alive_ids() {
        let have = &state.cluster(id).stats;
        let want = state.recompute_stats_reference(id);
        assert_eq!(have.len(), want.len(), "stats arity of cluster {}", id);
        for (h, w) in have.iter().zip(&want) {
            assert_eq!(h.0, w.0);
            assert_eq!(h.1.sum.to_bits(), w.1.sum.to_bits());
            assert_eq!(h.1.sum2.to_bits(), w.1.sum2.to_bits());
        }
        for &s in &state.cluster(id).members {
            let have_k = state.child_counts(s);
            let want_k = state.recompute_child_k_reference(s);
            assert_eq!(have_k, want_k.as_slice(), "child_k of stable node {}", s);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // The scratch-based scorer is bit-identical to the hashmap
    // reference, including after merges and splits reshape the stats
    // it reads — and scoring stays pure (identical on re-evaluation
    // with a dirty scratch).
    #[test]
    fn scratch_scoring_matches_reference(tree in tree_strategy(), seed in any::<u64>()) {
        let doc = to_document(&tree);
        let stable = build_stable(&doc);
        let mut state = ClusterState::new(&stable, SizeModel::TREESKETCH);
        let mut scratch = ScoreScratch::new();
        let mut seed = seed;
        for round in 0..6 {
            let pairs = mergeable_pairs(&state);
            if pairs.is_empty() {
                break;
            }
            for &(a, b) in pairs.iter().take(24) {
                let fast = state.evaluate_merge(a, b, &mut scratch);
                let slow = state.evaluate_merge_reference(a, b);
                prop_assert_eq!(
                    fast.errd.to_bits(), slow.errd.to_bits(),
                    "errd diverged for ({}, {}): {} vs {}", a, b, fast.errd, slow.errd
                );
                prop_assert_eq!(fast.sized, slow.sized);
                let again = state.evaluate_merge(a, b, &mut scratch);
                prop_assert_eq!(fast.errd.to_bits(), again.errd.to_bits());
            }
            // Mutate the partition between rounds: mostly merges, with
            // a split every third round to rewire child_k/stats.
            if round % 3 == 2 && split_one(&mut state) {
                assert_matches_reference(&state);
            } else {
                let (a, b) = pairs[next_choice(&mut seed, pairs.len())];
                state.apply_merge(a, b);
            }
        }
    }

    // `recompute_stats`/`recompute_child_k` (sort-coalesce merge-joins)
    // reproduce the reference accumulations bitwise right after a
    // split recomputes them from the stable skeleton.
    #[test]
    fn split_recomputation_matches_reference(tree in tree_strategy(), seed in any::<u64>()) {
        let doc = to_document(&tree);
        let stable = build_stable(&doc);
        let mut state = ClusterState::new(&stable, SizeModel::TREESKETCH);
        let mut seed = seed;
        // Coarsen first so splits have multi-member clusters to cut.
        for _ in 0..8 {
            let pairs = mergeable_pairs(&state);
            if pairs.is_empty() {
                break;
            }
            let (a, b) = pairs[next_choice(&mut seed, pairs.len())];
            state.apply_merge(a, b);
        }
        for _ in 0..4 {
            if !split_one(&mut state) {
                break;
            }
            assert_matches_reference(&state);
        }
    }

    // The incrementally-maintained `squared_error`/`size_bytes`
    // aggregates match full recomputation after any randomized
    // merge/split sequence (the O(delta) bookkeeping never drifts).
    #[test]
    fn incremental_aggregates_match_recomputation(
        tree in tree_strategy(),
        seed in any::<u64>(),
        ops in 1usize..12,
    ) {
        let doc = to_document(&tree);
        let stable = build_stable(&doc);
        let mut state = ClusterState::new(&stable, SizeModel::TREESKETCH);
        let mut seed = seed;
        for op in 0..ops {
            let split_turn = op % 4 == 3;
            if split_turn {
                split_one(&mut state);
            } else {
                let pairs = mergeable_pairs(&state);
                if pairs.is_empty() {
                    break;
                }
                let (a, b) = pairs[next_choice(&mut seed, pairs.len())];
                state.apply_merge(a, b);
            }
            let slow = state.squared_error_slow();
            prop_assert!(
                (state.squared_error() - slow).abs() <= 1e-6 * slow.abs().max(1.0),
                "incremental squared_error {} drifted from recomputed {}",
                state.squared_error(), slow
            );
            prop_assert_eq!(
                state.size_bytes(),
                state.to_sketch().size_bytes(&SizeModel::TREESKETCH),
                "incremental size_bytes drifted from the finalized sketch's"
            );
        }
        prop_assert!(state.verify().is_ok(), "{:?}", state.verify());
    }
}
