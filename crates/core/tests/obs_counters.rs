// Integration tests opt back into panicking extractors (workspace lint
// table, DESIGN.md "Static analysis & invariants").
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! Determinism-adjacent observability test (ISSUE 4 satellite): serial
//! and parallel TSBUILD must report the *same work* — identical counter
//! totals for merges and candidates scored — even though span timings
//! and thread interleavings differ. PR 2 proved the builds bit-identical;
//! this pins the instrumentation to the same invariant so a counter
//! regression (double-counting in the sharded path, a lost worker
//! buffer) fails loudly.
//!
//! Kept as a single `#[test]` because the recorder gate is process-wide
//! state; the two phases install and uninstall their own recorders
//! sequentially.

use axqa_core::{ts_build, BuildConfig};
use axqa_synopsis::build_stable;
use axqa_xml::parse_document;

/// Enough same-label classes per level to cross PARALLEL_LEVEL_MIN and
/// shard scoring across workers (same shape as the PR-2 parity tests).
fn many_class_doc() -> axqa_xml::Document {
    let mut src = String::from("<r>");
    for k in 1..=40 {
        src.push_str("<p>");
        src.push_str(&"<k/>".repeat(k));
        src.push_str(&"<m/>".repeat(k % 5 + 1));
        src.push_str("</p>");
    }
    for k in 1..=20 {
        src.push_str("<q><p>");
        src.push_str(&"<k/>".repeat(k * 2));
        src.push_str("</p></q>");
    }
    src.push_str("</r>");
    parse_document(&src).unwrap()
}

#[test]
fn parallel_and_serial_tsbuild_report_identical_counter_totals() {
    let doc = many_class_doc();
    let stable = build_stable(&doc);

    let mut serial_config = BuildConfig::with_budget(1);
    serial_config.threads = 1;
    let mut parallel_config = serial_config.clone();
    parallel_config.threads = std::env::var("AXQA_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);

    let serial_recorder = axqa_obs::Recorder::new();
    serial_recorder.install();
    let serial_report = ts_build(&stable, &serial_config);
    axqa_obs::uninstall();
    let serial = serial_recorder.drain();

    let parallel_recorder = axqa_obs::Recorder::new();
    parallel_recorder.install();
    let parallel_report = ts_build(&stable, &parallel_config);
    axqa_obs::uninstall();
    let parallel = parallel_recorder.drain();

    // Same work, counted once: merges, pool rebuilds, candidates scored.
    assert!(serial.counter("tsbuild.merges") > 0, "{serial:?}");
    assert_eq!(
        serial.counter("tsbuild.merges"),
        parallel.counter("tsbuild.merges")
    );
    assert_eq!(
        serial.counter("tsbuild.pool_rebuilds"),
        parallel.counter("tsbuild.pool_rebuilds")
    );
    assert!(serial.counter("tsbuild.candidates_scored") > 0);
    assert_eq!(
        serial.counter("tsbuild.candidates_scored"),
        parallel.counter("tsbuild.candidates_scored")
    );
    // The lazy merge queue (DESIGN.md §13) drains identically under any
    // thread count: same re-evaluations, same memo hits, same
    // adjacency-invalidated re-scores.
    assert_eq!(
        serial.counter("tsbuild.reevals"),
        parallel.counter("tsbuild.reevals")
    );
    assert_eq!(
        serial.counter("tsbuild.stale_skipped"),
        parallel.counter("tsbuild.stale_skipped")
    );
    assert_eq!(
        serial.counter("tsbuild.adjacent_rescored"),
        parallel.counter("tsbuild.adjacent_rescored")
    );
    // Counters agree with the build reports they instrument.
    assert_eq!(
        serial.counter("tsbuild.merges"),
        u64::try_from(serial_report.merges).unwrap()
    );
    assert_eq!(
        parallel.counter("tsbuild.pool_rebuilds"),
        u64::try_from(parallel_report.pool_rebuilds).unwrap()
    );

    // The parallel run's scoring spans come from distinct worker
    // threads (the per-worker CREATEPOOL lanes of the acceptance
    // criterion); the serial run stays on one thread.
    let serial_tids: std::collections::HashSet<u64> = serial.spans.iter().map(|s| s.tid).collect();
    assert_eq!(serial_tids.len(), 1, "{serial_tids:?}");
    let worker_tids: std::collections::HashSet<u64> = parallel
        .spans
        .iter()
        .filter(|s| s.name == "CREATEPOOL.score")
        .map(|s| s.tid)
        .collect();
    assert!(
        worker_tids.len() > 1,
        "expected scoring spans from multiple workers, got {worker_tids:?}"
    );
}
