//! Mutable clustering state over a count-stable skeleton.
//!
//! §4.2 describes TSBUILD as greedy agglomerative clustering whose
//! "sufficient statistics" (per-edge sums and sums of squares of child
//! counts) allow squared-error deltas to be computed without touching
//! base data — except for the cross terms that appear when two *target*
//! clusters merge, for which the paper admits "a small subset" of the
//! count-stable summary must be consulted. This module makes that
//! precise:
//!
//! * A TreeSketch under construction is a **partition of stable nodes**.
//!   Count stability means every element of a stable node `s` has the
//!   same child count `K(s, w) = Σ_{t ∈ w} k(s → t)` into any cluster
//!   `w`, so per-element statistics aggregate exactly from per-stable-node
//!   values weighted by extents.
//! * Each cluster `u` keeps, per child cluster `w`, the pair
//!   `(Σ_s n_s·K(s,w), Σ_s n_s·K(s,w)²)`; the squared error contribution
//!   of the direction `(u, w)` is `sum2 − sum²/N_u` and `sq(T S)` is the
//!   grand total.
//! * Merging clusters `a, b` updates only: the merged cluster's own map
//!   (pointwise sums), and the maps of clusters with edges *into* `a` or
//!   `b`, whose `K(s,a)` and `K(s,b)` values collapse into
//!   `K(s,a)+K(s,b)` — the cross term `2Σ n_s K(s,a) K(s,b)` is computed
//!   exactly by scanning the (typically short) incoming stable-node
//!   lists. This is the paper's `affected(h, m)` locality.

use crate::sketch::{TreeSketch, TsNode, TsNodeId};
use axqa_synopsis::{SizeModel, StableSummary, SynNodeId};
use axqa_xml::fxhash::FxHashMap;
use axqa_xml::{LabelId, LabelTable};

/// Per-direction sufficient statistics: `Σ n_s·K` and `Σ n_s·K²`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EdgeStat {
    /// Weighted sum of per-element child counts.
    pub sum: f64,
    /// Weighted sum of squared per-element child counts.
    pub sum2: f64,
}

impl EdgeStat {
    #[inline]
    fn err(&self, n: f64) -> f64 {
        // Clamp tiny negative values produced by floating-point noise.
        (self.sum2 - self.sum * self.sum / n).max(0.0)
    }

    #[inline]
    fn add(&mut self, other: EdgeStat) {
        self.sum += other.sum;
        self.sum2 += other.sum2;
    }
}

/// One cluster of stable nodes.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// Common label.
    pub label: LabelId,
    /// Whether the cluster is part of the current partition.
    pub alive: bool,
    /// Member stable nodes.
    pub members: Vec<u32>,
    /// `N_u`: total elements (Σ member extents).
    pub elem_count: u64,
    /// Max leafward depth over members (static under merges).
    pub depth: u32,
    /// Sorted `(child cluster, stats)` pairs.
    pub stats: Vec<(u32, EdgeStat)>,
}

impl Cluster {
    fn stat(&self, target: u32) -> EdgeStat {
        self.stats
            .binary_search_by_key(&target, |&(t, _)| t)
            .map(|i| self.stats[i].1)
            .unwrap_or_default()
    }

    fn err_total(&self) -> f64 {
        let n = self.elem_count as f64;
        self.stats.iter().map(|(_, s)| s.err(n)).sum()
    }
}

/// Outcome of evaluating a candidate merge without applying it.
///
/// `errd` is usually positive (coarser clustering), but can be
/// *negative* on the parent side: when elements have anti-correlated
/// child counts into the two merged targets, `Var(A+B) =
/// Var(A)+Var(B)+2Cov(A,B)` shrinks. Such merges are free quality wins
/// and rank first in the heap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MergeDelta {
    /// Change in `sq(T S)` (the paper's `m.errd`).
    pub errd: f64,
    /// Decrease in synopsis bytes (the paper's `m.sized`), > 0.
    pub sized: usize,
}

impl MergeDelta {
    /// The marginal-gain ratio the candidate heap is ordered by.
    pub fn ratio(&self) -> f64 {
        self.errd / self.sized as f64
    }
}

/// Reusable allocation-free workspace for [`ClusterState::evaluate_merge`].
///
/// TSBUILD scores hundreds of thousands of candidates per build, and the
/// original kernel allocated two fresh hash maps per candidate (cross
/// terms, parent dedup). The scratch replaces both with dense arrays
/// indexed by cluster id and stamped by a generation counter: an entry is
/// live iff its stamp equals the current generation, so "clearing"
/// between candidates is a single counter bump. The arrays grow with
/// power-of-two headroom over the cluster-id space and then stay put —
/// steady-state scoring performs zero heap allocation (the
/// `tsbuild.scratch_reuses` counter tracks exactly that).
///
/// Create one per `CREATEPOOL` scoring worker plus one for the merge
/// loop's lazy re-evaluations, and pass it to every `evaluate_merge`
/// call.
#[derive(Debug, Default)]
pub struct ScoreScratch {
    /// Current generation; entries stamped differently are dead.
    generation: u64,
    /// Cross-term mass per parent cluster id.
    cross: Vec<f64>,
    /// Stamps validating `cross` entries.
    cross_stamp: Vec<u64>,
    /// Parent-side dedup stamps (the set `parents_seen` used to fake
    /// with a `FxHashMap<u32, ()>`).
    seen_stamp: Vec<u64>,
    /// Binary searches performed by the current evaluation; flushed to
    /// the `tsbuild.stat_bsearch` counter once per call.
    bsearches: u64,
    /// Epoch of the [`ClusterState`] the persistent caches below were
    /// filled from; a scratch reused against a *different* state drops
    /// them wholesale (cluster ids are only meaningful per state).
    epoch: u64,
    /// Cached `Cluster::err_total` per cluster id — the `old_child_err`
    /// term every evaluation of a cluster recomputes otherwise.
    err_cache: Vec<f64>,
    /// Stamps validating `err_cache`: the cluster's stats version + 1
    /// (0 = empty), so any stats change invalidates the entry for free.
    err_stamp: Vec<u64>,
    /// Structure-of-arrays child-side buffers: the merge-join writes the
    /// combined `(sum, sum2)` pairs of non-self targets into these two
    /// dense lanes, and a separate in-order pass folds the per-target
    /// errors. Splitting the join from the arithmetic keeps the error
    /// pass a branch-free stream over contiguous `f64`s (SIMD-friendly)
    /// without changing the fold order the bitwise oracles pin.
    child_sum: Vec<f64>,
    /// Second SoA lane (see `child_sum`).
    child_sum2: Vec<f64>,
}

impl ScoreScratch {
    /// A fresh scratch; the arrays grow on first use.
    pub fn new() -> ScoreScratch {
        ScoreScratch::default()
    }

    /// Opens a new generation able to address cluster ids `< n`, bound
    /// to the state identified by `epoch`.
    fn begin(&mut self, n: usize, epoch: u64) {
        self.generation = self.generation.wrapping_add(1);
        self.bsearches = 0;
        if self.epoch != epoch {
            // Scratch moved across ClusterStates: the err cache is keyed
            // by cluster id and would alias between states.
            self.epoch = epoch;
            for stamp in &mut self.err_stamp {
                *stamp = 0;
            }
        }
        if self.cross.len() < n {
            // Power-of-two headroom: a handful of growths per build,
            // every later call is a pure reuse.
            let cap = n.next_power_of_two();
            self.cross.resize(cap, 0.0);
            self.cross_stamp.resize(cap, 0);
            self.seen_stamp.resize(cap, 0);
            self.err_cache.resize(cap, 0.0);
            self.err_stamp.resize(cap, 0);
        } else {
            axqa_obs::counter("tsbuild.scratch_reuses", 1);
        }
        self.child_sum.clear();
        self.child_sum2.clear();
    }

    #[inline]
    fn add_cross(&mut self, parent: u32, value: f64) {
        let i = parent as usize;
        if self.cross_stamp[i] == self.generation {
            self.cross[i] += value;
        } else {
            self.cross_stamp[i] = self.generation;
            self.cross[i] = value;
        }
    }

    /// Cross-term mass accumulated for `parent` this generation.
    #[inline]
    fn cross_of(&self, parent: u32) -> f64 {
        let i = parent as usize;
        if self.cross_stamp[i] == self.generation {
            self.cross[i]
        } else {
            0.0
        }
    }

    /// True the first time `parent` is seen this generation.
    #[inline]
    fn first_visit(&mut self, parent: u32) -> bool {
        let i = parent as usize;
        if self.seen_stamp[i] == self.generation {
            false
        } else {
            self.seen_stamp[i] = self.generation;
            true
        }
    }
}

/// The mutable clustering state TSBUILD and the top-down ablation operate
/// on.
pub struct ClusterState<'a> {
    stable: &'a StableSummary,
    model: SizeModel,
    /// stable node → cluster id (always resolved / alive).
    cluster_of: Vec<u32>,
    clusters: Vec<Cluster>,
    /// Per stable node: sorted `(cluster, K)` with `K ≥ 1` — its exact
    /// child counts into current clusters.
    child_k: Vec<Vec<(u32, u64)>>,
    /// Per cluster: sorted stable nodes with ≥ 1 edge into it.
    incoming: Vec<Vec<u32>>,
    /// Forwarding chain for dead clusters.
    merged_into: Vec<u32>,
    /// Stats version per cluster, for lazy heap invalidation.
    version: Vec<u64>,
    /// Merge-generation stamp per cluster: bumped whenever *any* input
    /// of an `evaluate_merge` involving the cluster can have changed —
    /// its own stats changed (superset of `version` bumps) or a parent
    /// cluster of it died in a merge. Two evaluations of the same pair
    /// at equal stamps are therefore bitwise identical, which is the
    /// score-memo invariant the lazy merge queue relies on
    /// (DESIGN.md §13).
    merge_gen: Vec<u64>,
    /// Identity of this state for cross-state scratch reuse (see
    /// [`ScoreScratch::begin`]); unique per constructed state.
    epoch: u64,
    alive: usize,
    total_edges: usize,
    total_sq: f64,
    /// Reusable `(target, visit order, stat)` buffer for
    /// [`Self::recompute_stats`]; grows to the largest recomputed
    /// cluster once, then recomputations are allocation-free.
    raw_scratch: Vec<(u32, usize, EdgeStat)>,
}

impl<'a> ClusterState<'a> {
    /// Initial state: one cluster per stable node (the exact TreeSketch,
    /// squared error 0).
    pub fn new(stable: &'a StableSummary, model: SizeModel) -> ClusterState<'a> {
        let n = stable.len();
        let mut clusters = Vec::with_capacity(n);
        let mut child_k = Vec::with_capacity(n);
        let mut incoming = vec![Vec::new(); n];
        let mut total_edges = 0usize;
        for (i, node) in stable.nodes().iter().enumerate() {
            let n_s = node.extent as f64;
            let stats: Vec<(u32, EdgeStat)> = node
                .children
                .iter()
                .map(|&(t, k)| {
                    let k = k as f64;
                    (
                        t.0,
                        EdgeStat {
                            sum: n_s * k,
                            sum2: n_s * k * k,
                        },
                    )
                })
                .collect();
            total_edges += stats.len();
            child_k.push(
                node.children
                    .iter()
                    .map(|&(t, k)| (t.0, k as u64))
                    .collect::<Vec<_>>(),
            );
            for &(t, _) in &node.children {
                incoming[t.index()].push(axqa_xml::dense_id(i));
            }
            clusters.push(Cluster {
                label: node.label,
                alive: true,
                members: vec![axqa_xml::dense_id(i)],
                elem_count: node.extent,
                depth: node.depth,
                stats,
            });
        }
        // A process-unique epoch per state: lets a reused ScoreScratch
        // detect that its id-keyed caches belong to another state.
        static NEXT_EPOCH: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);
        ClusterState {
            stable,
            model,
            cluster_of: (0..axqa_xml::dense_id(n)).collect(),
            clusters,
            child_k,
            incoming,
            merged_into: (0..axqa_xml::dense_id(n)).collect(),
            version: vec![0; n],
            merge_gen: vec![0; n],
            epoch: NEXT_EPOCH.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            alive: n,
            total_edges,
            total_sq: 0.0,
            raw_scratch: Vec::new(),
        }
    }

    /// The stable skeleton.
    pub fn stable(&self) -> &'a StableSummary {
        self.stable
    }

    /// The size model in effect.
    pub fn model(&self) -> &SizeModel {
        &self.model
    }

    /// Number of alive clusters.
    pub fn num_alive(&self) -> usize {
        self.alive
    }

    /// Current total squared error `sq(T S)`.
    pub fn squared_error(&self) -> f64 {
        self.total_sq
    }

    /// Current synopsis size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.model.graph_bytes(self.alive, self.total_edges)
    }

    /// The live cluster a (possibly dead) id forwards to.
    pub fn resolve(&self, mut id: u32) -> u32 {
        while self.merged_into[id as usize] != id {
            id = self.merged_into[id as usize];
        }
        id
    }

    /// [`Self::resolve`] with path halving: every visited entry is
    /// re-pointed at its grandparent, so forwarding chains built up over
    /// tens of thousands of merges amortize toward length one. Returns
    /// the same root as `resolve` — halving only shortcuts *along* the
    /// chain, never past the current root, so a later redirect of that
    /// root (`apply_split`) still reaches everything behind it.
    pub fn resolve_compress(&mut self, mut id: u32) -> u32 {
        loop {
            let parent = self.merged_into[id as usize];
            if parent == id {
                return id;
            }
            let grand = self.merged_into[parent as usize];
            self.merged_into[id as usize] = grand;
            id = grand;
        }
    }

    /// Whether `id` names a live cluster.
    pub fn is_alive(&self, id: u32) -> bool {
        self.clusters[id as usize].alive
    }

    /// The cluster with id `id`.
    pub fn cluster(&self, id: u32) -> &Cluster {
        &self.clusters[id as usize]
    }

    /// Stats version of a cluster (for lazy invalidation).
    pub fn version_of(&self, id: u32) -> u64 {
        self.version[id as usize]
    }

    /// Merge-generation stamp of a cluster. Invariant: between two
    /// moments at which `merge_gen_of(a)` *and* `merge_gen_of(b)` are
    /// unchanged, `evaluate_merge(a, b, _)` returns bitwise-identical
    /// results — the stamp is bumped for every cluster whose own stats
    /// changed and for every child of a merged pair (whose parent-side
    /// inputs changed). The lazy merge queue keys its score memo on
    /// these stamps.
    pub fn merge_gen_of(&self, id: u32) -> u64 {
        self.merge_gen[id as usize]
    }

    /// Ids of all live clusters.
    pub fn alive_ids(&self) -> impl Iterator<Item = u32> + '_ {
        self.clusters
            .iter()
            .enumerate()
            .filter(|(_, c)| c.alive)
            .map(|(i, _)| axqa_xml::dense_id(i))
    }

    /// The cluster currently containing `stable_node`.
    pub fn cluster_of(&self, stable_node: SynNodeId) -> u32 {
        self.cluster_of[stable_node.index()]
    }

    /// Cross terms `Σ_p Σ_{s∈p} n_s·K(s,a)·K(s,b)` grouped by the parent
    /// cluster `p`, computed by scanning the shorter incoming list.
    ///
    /// Accumulates into `scratch` (stamped dense array) instead of a
    /// per-call hash map; the per-parent accumulation order is the scan
    /// order of the probe list, exactly as it was with the hash map, so
    /// the sums are bitwise identical to
    /// [`Self::cross_terms_reference`].
    fn cross_terms(&self, a: u32, b: u32, scratch: &mut ScoreScratch) {
        let (probe, other) = if self.incoming[a as usize].len() <= self.incoming[b as usize].len() {
            (a, b)
        } else {
            (b, a)
        };
        for &s in &self.incoming[probe as usize] {
            scratch.bsearches = scratch.bsearches.wrapping_add(1);
            let ka = self.k_of(s, probe);
            if ka == 0 {
                continue;
            }
            scratch.bsearches = scratch.bsearches.wrapping_add(1);
            let kb = self.k_of(s, other);
            if kb == 0 {
                continue;
            }
            let n_s = self.stable.node(SynNodeId(s)).extent as f64;
            scratch.add_cross(self.cluster_of[s as usize], n_s * ka as f64 * kb as f64);
        }
    }

    /// Reference implementation of the cross-term computation, retained
    /// from the pre-scratch kernel: a per-call hash-map accumulation.
    /// The merge-kernel proptests pin the scratch-based path against it;
    /// it is not on any hot path.
    pub fn cross_terms_reference(&self, a: u32, b: u32) -> FxHashMap<u32, f64> {
        let mut cross: FxHashMap<u32, f64> = FxHashMap::default();
        let (probe, other) = if self.incoming[a as usize].len() <= self.incoming[b as usize].len() {
            (a, b)
        } else {
            (b, a)
        };
        for &s in &self.incoming[probe as usize] {
            let ka = self.k_of(s, probe);
            if ka == 0 {
                continue;
            }
            let kb = self.k_of(s, other);
            if kb == 0 {
                continue;
            }
            let n_s = self.stable.node(SynNodeId(s)).extent as f64;
            *cross.entry(self.cluster_of[s as usize]).or_insert(0.0) += n_s * ka as f64 * kb as f64;
        }
        cross
    }

    #[inline]
    fn k_of(&self, stable_node: u32, cluster: u32) -> u64 {
        let list = &self.child_k[stable_node as usize];
        list.binary_search_by_key(&cluster, |&(c, _)| c)
            .map(|i| list[i].1)
            .unwrap_or(0)
    }

    /// `Cluster::err_total` through the scratch's per-cluster cache: the
    /// recomputation (an in-order fold over the cluster's stats) only
    /// runs when the cluster's stats version moved since the cached
    /// fold, so repeated evaluations touching the same clusters — the
    /// common case in both CREATEPOOL groups and the merge loop — skip
    /// the O(|stats|) scan. The cached value is the bitwise result of
    /// the fold it replaces.
    fn err_total_cached(&self, id: u32, scratch: &mut ScoreScratch) -> f64 {
        let slot = id as usize;
        let stamp = self.version[slot].wrapping_add(1);
        if scratch.err_stamp[slot] == stamp {
            scratch.err_cache[slot]
        } else {
            let err = self.clusters[slot].err_total();
            scratch.err_stamp[slot] = stamp;
            scratch.err_cache[slot] = err;
            err
        }
    }

    /// Evaluates the merge of live clusters `a` and `b` (same label)
    /// without applying it. The caller provides a [`ScoreScratch`];
    /// steady-state evaluation performs no heap allocation.
    ///
    /// # Panics
    /// Panics (debug) if the clusters are dead, equal, or differ in label.
    pub fn evaluate_merge(&self, a: u32, b: u32, scratch: &mut ScoreScratch) -> MergeDelta {
        debug_assert!(a != b && self.is_alive(a) && self.is_alive(b));
        debug_assert_eq!(
            self.clusters[a as usize].label,
            self.clusters[b as usize].label
        );
        let ca = &self.clusters[a as usize];
        let cb = &self.clusters[b as usize];
        let na = ca.elem_count as f64;
        let nb = cb.elem_count as f64;
        let nc = na + nb;

        scratch.begin(self.clusters.len(), self.epoch);
        self.cross_terms(a, b, scratch);

        // --- Child side: err of the merged cluster vs err(a) + err(b).
        // Merge the two sorted stats lists, collapsing targets a and b
        // into the future cluster c. Non-self targets stream their
        // combined (sum, sum2) pairs into the scratch's SoA lanes; the
        // error arithmetic runs as a separate pass below.
        let mut self_stat = EdgeStat::default(); // target c after rename
        let mut has_self = false;
        {
            let mut i = 0;
            let mut j = 0;
            let sa = &ca.stats;
            let sb = &cb.stats;
            let mut handle = |target: u32, stat: EdgeStat, scratch: &mut ScoreScratch| {
                if target == a || target == b {
                    self_stat.add(stat);
                    has_self = true;
                } else {
                    scratch.child_sum.push(stat.sum);
                    scratch.child_sum2.push(stat.sum2);
                }
            };
            while i < sa.len() || j < sb.len() {
                if j >= sb.len() || (i < sa.len() && sa[i].0 < sb[j].0) {
                    handle(sa[i].0, sa[i].1, scratch);
                    i += 1;
                } else if i >= sa.len() || sb[j].0 < sa[i].0 {
                    handle(sb[j].0, sb[j].1, scratch);
                    j += 1;
                } else {
                    let mut merged = sa[i].1;
                    merged.add(sb[j].1);
                    handle(sa[i].0, merged, scratch);
                    i += 1;
                    j += 1;
                }
            }
        }
        // SoA error pass: per lane `(sum2 − sum²/nc).max(0)` — the exact
        // per-target expression of `EdgeStat::err`, folded in the same
        // (target) order the inline version used, so the total is
        // bitwise identical while the elementwise arithmetic runs over
        // two contiguous f64 streams.
        let mut new_child_err = 0.0f64;
        for (&sum, &sum2) in scratch.child_sum.iter().zip(scratch.child_sum2.iter()) {
            new_child_err += (sum2 - sum * sum / nc).max(0.0);
        }
        let mut new_child_edges = scratch.child_sum.len();
        if has_self {
            // Self-loop target: members of a∪b with edges into a or b;
            // K values combine, adding the exact cross term.
            let self_cross = scratch.cross_of(a) + scratch.cross_of(b);
            self_stat.sum2 += 2.0 * self_cross;
            new_child_err += self_stat.err(nc);
            new_child_edges += 1;
        }
        let old_child_err = self.err_total_cached(a, scratch) + self.err_total_cached(b, scratch);
        let mut errd = new_child_err - old_child_err;
        let child_edges_removed = ca.stats.len() + cb.stats.len() - new_child_edges;

        // --- Parent side: clusters (≠ a, b) with edges into a or b,
        //     deduplicated by generation stamp.
        let mut parent_edges_removed = 0usize;
        for list in [&self.incoming[a as usize], &self.incoming[b as usize]] {
            for &s in list.iter() {
                let p = self.cluster_of[s as usize];
                if p == a || p == b {
                    continue;
                }
                if !scratch.first_visit(p) {
                    continue;
                }
                let cp = &self.clusters[p as usize];
                let np = cp.elem_count as f64;
                scratch.bsearches = scratch.bsearches.wrapping_add(2);
                let stat_a = cp.stat(a);
                let stat_b = cp.stat(b);
                let had_a = stat_a.sum > 0.0;
                let had_b = stat_b.sum > 0.0;
                if had_a && had_b {
                    parent_edges_removed += 1;
                }
                let old = stat_a.err(np) + stat_b.err(np);
                let mut merged = stat_a;
                merged.add(stat_b);
                merged.sum2 += 2.0 * scratch.cross_of(p);
                errd += merged.err(np) - old;
            }
        }
        axqa_obs::counter("tsbuild.stat_bsearch", scratch.bsearches);

        let sized = self.model.node_bytes
            + self.model.edge_bytes * (child_edges_removed + parent_edges_removed);
        MergeDelta { errd, sized }
    }

    /// Reference implementation of [`Self::evaluate_merge`], retained
    /// from the pre-scratch kernel (per-call hash maps instead of
    /// stamped arrays). Produces a bitwise-identical [`MergeDelta`]; the
    /// proptests in `tests/proptest_merge_kernel.rs` enforce exactly
    /// that. Not on any hot path.
    pub fn evaluate_merge_reference(&self, a: u32, b: u32) -> MergeDelta {
        debug_assert!(a != b && self.is_alive(a) && self.is_alive(b));
        debug_assert_eq!(
            self.clusters[a as usize].label,
            self.clusters[b as usize].label
        );
        let ca = &self.clusters[a as usize];
        let cb = &self.clusters[b as usize];
        let na = ca.elem_count as f64;
        let nb = cb.elem_count as f64;
        let nc = na + nb;

        let cross = self.cross_terms_reference(a, b);

        // --- Child side: err of the merged cluster vs err(a) + err(b).
        let mut new_child_err = 0.0f64;
        let mut new_child_edges = 0usize;
        let mut self_stat = EdgeStat::default(); // target c after rename
        let mut has_self = false;
        {
            let mut i = 0;
            let mut j = 0;
            let sa = &ca.stats;
            let sb = &cb.stats;
            let mut handle = |target: u32, stat: EdgeStat| {
                if target == a || target == b {
                    self_stat.add(stat);
                    has_self = true;
                } else {
                    new_child_err += stat.err(nc);
                    new_child_edges += 1;
                }
            };
            while i < sa.len() || j < sb.len() {
                if j >= sb.len() || (i < sa.len() && sa[i].0 < sb[j].0) {
                    handle(sa[i].0, sa[i].1);
                    i += 1;
                } else if i >= sa.len() || sb[j].0 < sa[i].0 {
                    handle(sb[j].0, sb[j].1);
                    j += 1;
                } else {
                    let mut merged = sa[i].1;
                    merged.add(sb[j].1);
                    handle(sa[i].0, merged);
                    i += 1;
                    j += 1;
                }
            }
        }
        if has_self {
            let self_cross =
                cross.get(&a).copied().unwrap_or(0.0) + cross.get(&b).copied().unwrap_or(0.0);
            self_stat.sum2 += 2.0 * self_cross;
            new_child_err += self_stat.err(nc);
            new_child_edges += 1;
        }
        let old_child_err = ca.err_total() + cb.err_total();
        let mut errd = new_child_err - old_child_err;
        let child_edges_removed = ca.stats.len() + cb.stats.len() - new_child_edges;

        // --- Parent side: clusters (≠ a, b) with edges into a or b.
        let mut parent_edges_removed = 0usize;
        let mut parents_seen: FxHashMap<u32, ()> = FxHashMap::default();
        for list in [&self.incoming[a as usize], &self.incoming[b as usize]] {
            for &s in list.iter() {
                let p = self.cluster_of[s as usize];
                if p == a || p == b {
                    continue;
                }
                if parents_seen.insert(p, ()).is_some() {
                    continue;
                }
                let cp = &self.clusters[p as usize];
                let np = cp.elem_count as f64;
                let stat_a = cp.stat(a);
                let stat_b = cp.stat(b);
                let had_a = stat_a.sum > 0.0;
                let had_b = stat_b.sum > 0.0;
                if had_a && had_b {
                    parent_edges_removed += 1;
                }
                let old = stat_a.err(np) + stat_b.err(np);
                let mut merged = stat_a;
                merged.add(stat_b);
                merged.sum2 += 2.0 * cross.get(&p).copied().unwrap_or(0.0);
                errd += merged.err(np) - old;
            }
        }

        let sized = self.model.node_bytes
            + self.model.edge_bytes * (child_edges_removed + parent_edges_removed);
        MergeDelta { errd, sized }
    }

    /// Applies the merge of `a` and `b`, returning the new cluster id.
    pub fn apply_merge(&mut self, a: u32, b: u32) -> u32 {
        debug_assert!(a != b && self.is_alive(a) && self.is_alive(b));
        let c = axqa_xml::dense_id(self.clusters.len());

        // -- Capture the error/edge mass the merge will replace. The
        //    accounting is O(affected): a's and b's own contributions
        //    (which the merge consumes anyway) plus, per parent, only
        //    its entries for targets a and b — never a full `err_total`
        //    scan over a parent's untouched entries. Parent stats list
        //    lengths are O(1) reads whose unchanged part cancels in the
        //    edge delta below.
        let incoming_ab: Vec<u32> = {
            let mut v = self.incoming[a as usize].clone();
            v.extend_from_slice(&self.incoming[b as usize]);
            v.sort_unstable();
            v.dedup();
            v
        };
        let mut parent_set: Vec<u32> = incoming_ab
            .iter()
            .map(|&s| self.cluster_of[s as usize])
            .filter(|&p| p != a && p != b)
            .collect();
        parent_set.sort_unstable();
        parent_set.dedup();
        let mut old_contrib =
            self.clusters[a as usize].err_total() + self.clusters[b as usize].err_total();
        let mut old_edges =
            self.clusters[a as usize].stats.len() + self.clusters[b as usize].stats.len();
        for &p in &parent_set {
            let cp = &self.clusters[p as usize];
            let np = cp.elem_count as f64;
            old_contrib += cp.stat(a).err(np) + cp.stat(b).err(np);
            old_edges += cp.stats.len();
        }

        // -- 1. Create cluster c, reassign membership.
        let label = self.clusters[a as usize].label;
        let depth = self.clusters[a as usize]
            .depth
            .max(self.clusters[b as usize].depth);
        let elem_count = self.clusters[a as usize]
            .elem_count
            .saturating_add(self.clusters[b as usize].elem_count);
        let mut members = std::mem::take(&mut self.clusters[a as usize].members);
        members.append(&mut self.clusters[b as usize].members);
        for &s in &members {
            self.cluster_of[s as usize] = c;
        }

        // -- 2. c's stats: pointwise union of a's and b's (targets a and b
        //       stay keyed as-is; step 3 renames them).
        let stats_a = std::mem::take(&mut self.clusters[a as usize].stats);
        let stats_b = std::mem::take(&mut self.clusters[b as usize].stats);
        let mut stats_c: Vec<(u32, EdgeStat)> = Vec::with_capacity(stats_a.len() + stats_b.len());
        {
            let mut i = 0;
            let mut j = 0;
            while i < stats_a.len() || j < stats_b.len() {
                if j >= stats_b.len() || (i < stats_a.len() && stats_a[i].0 < stats_b[j].0) {
                    stats_c.push(stats_a[i]);
                    i += 1;
                } else if i >= stats_a.len() || stats_b[j].0 < stats_a[i].0 {
                    stats_c.push(stats_b[j]);
                    j += 1;
                } else {
                    let mut merged = stats_a[i].1;
                    merged.add(stats_b[j].1);
                    stats_c.push((stats_a[i].0, merged));
                    i += 1;
                    j += 1;
                }
            }
        }
        self.clusters.push(Cluster {
            label,
            alive: true,
            members,
            elem_count,
            depth,
            stats: stats_c,
        });
        self.clusters[a as usize].alive = false;
        self.clusters[b as usize].alive = false;
        self.merged_into.push(c);
        self.merged_into[a as usize] = c;
        self.merged_into[b as usize] = c;
        self.version.push(0);
        self.merge_gen.push(0); // stamped in step 5 with the final stats
        self.alive -= 1;

        // -- 3. Rewrite child_k entries of stable nodes with edges into a
        //       or b, adjusting the stats of their (current) clusters.
        for &s in &incoming_ab {
            let ka = self.k_of(s, a);
            let kb = self.k_of(s, b);
            let kc = ka.saturating_add(kb);
            debug_assert!(kc > 0);
            let p = self.cluster_of[s as usize];
            let n_s = self.stable.node(SynNodeId(s)).extent as f64;
            // Remove old stat mass, add new.
            let stats = &mut self.clusters[p as usize].stats;
            if ka > 0 {
                Self::stat_sub(stats, a, n_s * ka as f64, n_s * ka as f64 * ka as f64);
            }
            if kb > 0 {
                Self::stat_sub(stats, b, n_s * kb as f64, n_s * kb as f64 * kb as f64);
            }
            Self::stat_add(stats, c, n_s * kc as f64, n_s * kc as f64 * kc as f64);
            // Rewrite child_k[s]: drop a/b entries, add c.
            let list = &mut self.child_k[s as usize];
            list.retain(|&(t, _)| t != a && t != b);
            let pos = list.partition_point(|&(t, _)| t < c);
            list.insert(pos, (c, kc));
        }

        // -- 4. Incoming list of c; a and b become garbage.
        self.incoming.push(incoming_ab);
        self.incoming[a as usize] = Vec::new();
        self.incoming[b as usize] = Vec::new();

        // -- 5. Refresh global accounting from the per-entry deltas and
        //       bump version stamps. Each parent contributes only its
        //       (new) entry for target c; the debug cross-check below
        //       guards the incremental bookkeeping against drift.
        let mut new_contrib = self.clusters[c as usize].err_total();
        let mut new_edges = self.clusters[c as usize].stats.len();
        for &p in &parent_set {
            // Parents may since have been remapped? No — parent clusters
            // are untouched by membership changes (only a, b died), but a
            // parent could *be* c only if it was a or b, which the set
            // excludes.
            let cp = &self.clusters[p as usize];
            let np = cp.elem_count as f64;
            new_contrib += cp.stat(c).err(np);
            new_edges += cp.stats.len();
            self.version[p as usize] = self.version[p as usize].wrapping_add(1);
            self.merge_gen[p as usize] = self.merge_gen[p as usize].wrapping_add(1);
        }
        // Children of the merged pair keep their own stats, but their
        // parent-side evaluate_merge inputs changed (a parent cluster
        // died, its stats collapsed into c): bump their merge-gen so
        // memoized scores involving them are invalidated. c's stats
        // targets are exactly those children (plus possibly c itself).
        for &(t, _) in &self.clusters[c as usize].stats {
            if t != c {
                self.merge_gen[t as usize] = self.merge_gen[t as usize].wrapping_add(1);
            }
        }
        self.version[c as usize] = 1;
        self.merge_gen[c as usize] = self.merge_gen[c as usize].max(1);
        self.total_sq += new_contrib - old_contrib;
        self.total_sq = self.total_sq.max(0.0);
        self.total_edges = self.total_edges + new_edges - old_edges;
        self.debug_check_aggregates("apply_merge");
        c
    }

    /// Subtracts stat mass from an entry, removing it when it empties.
    fn stat_sub(stats: &mut Vec<(u32, EdgeStat)>, target: u32, sum: f64, sum2: f64) {
        if let Ok(i) = stats.binary_search_by_key(&target, |&(t, _)| t) {
            stats[i].1.sum -= sum;
            stats[i].1.sum2 -= sum2;
            if stats[i].1.sum <= 1e-9 {
                stats.remove(i);
            }
        } else {
            debug_assert!(false, "subtracting from a missing stat entry");
        }
    }

    /// Adds stat mass to an entry, creating it if needed.
    fn stat_add(stats: &mut Vec<(u32, EdgeStat)>, target: u32, sum: f64, sum2: f64) {
        match stats.binary_search_by_key(&target, |&(t, _)| t) {
            Ok(i) => {
                stats[i].1.sum += sum;
                stats[i].1.sum2 += sum2;
            }
            Err(i) => stats.insert(i, (target, EdgeStat { sum, sum2 })),
        }
    }

    /// Recomputes a stable node's child counts from the skeleton (used
    /// after splits, where incremental rewriting is not worthwhile).
    ///
    /// Rebuilds the sorted list in place — push raw `(cluster, k)`
    /// pairs, sort by cluster id, coalesce adjacent runs — so the hot
    /// path needs no hash-map accumulation and, once the list has
    /// capacity, no allocation.
    fn recompute_child_k(&mut self, s: u32) {
        let Self {
            stable,
            cluster_of,
            child_k,
            ..
        } = self;
        let list = &mut child_k[s as usize];
        list.clear();
        for &(t, k) in &stable.node(SynNodeId(s)).children {
            list.push((cluster_of[t.index()], u64::from(k)));
        }
        list.sort_unstable_by_key(|&(t, _)| t);
        list.dedup_by(|cur, acc| {
            if cur.0 == acc.0 {
                acc.1 = acc.1.saturating_add(cur.1);
                true
            } else {
                false
            }
        });
    }

    /// Reference recomputation of a stable node's child counts via
    /// hash-map accumulation (the pre-merge-join implementation);
    /// proptest oracle for the sort-and-coalesce rewrite.
    pub fn recompute_child_k_reference(&self, s: u32) -> Vec<(u32, u64)> {
        let mut acc: FxHashMap<u32, u64> = FxHashMap::default();
        for &(t, k) in &self.stable.node(SynNodeId(s)).children {
            let slot = acc.entry(self.cluster_of[t.index()]).or_insert(0);
            *slot = slot.saturating_add(u64::from(k));
        }
        let mut list: Vec<(u32, u64)> = acc.into_iter().collect();
        list.sort_unstable_by_key(|&(t, _)| t);
        list
    }

    /// Recomputes a cluster's stats from its members' child counts via
    /// a sort over `(target, visit order)` pairs followed by a coalesce:
    /// the per-target accumulation order equals the member-iteration
    /// order of the hash-map version
    /// ([`Self::recompute_stats_reference`]), so the resulting sums are
    /// bitwise identical.
    ///
    /// Allocation-free once warm: the raw pair list lives in
    /// `self.raw_scratch` and the coalesced output reuses the cluster's
    /// existing stats vector (both grow by amortized `push` only).
    fn recompute_stats(&mut self, id: u32) {
        let members = std::mem::take(&mut self.clusters[id as usize].members);
        let mut raw = std::mem::take(&mut self.raw_scratch);
        raw.clear();
        for &s in &members {
            let n_s = self.stable.node(SynNodeId(s)).extent as f64;
            for &(t, k) in &self.child_k[s as usize] {
                raw.push((
                    t,
                    raw.len(),
                    EdgeStat {
                        sum: n_s * k as f64,
                        sum2: n_s * k as f64 * k as f64,
                    },
                ));
            }
        }
        raw.sort_unstable_by_key(|&(t, seq, _)| (t, seq));
        let mut stats = std::mem::take(&mut self.clusters[id as usize].stats);
        stats.clear();
        for &(t, _, stat) in &raw {
            match stats.last_mut() {
                Some(last) if last.0 == t => last.1.add(stat),
                _ => stats.push((t, stat)),
            }
        }
        self.raw_scratch = raw;
        self.clusters[id as usize].members = members;
        self.clusters[id as usize].stats = stats;
        self.version[id as usize] = self.version[id as usize].wrapping_add(1);
        self.merge_gen[id as usize] = self.merge_gen[id as usize].wrapping_add(1);
    }

    /// Reference recomputation of a cluster's stats via hash-map
    /// accumulation (the pre-merge-join implementation); proptest
    /// oracle for [`Self::recompute_stats`]'s sort-and-coalesce rewrite.
    pub fn recompute_stats_reference(&self, id: u32) -> Vec<(u32, EdgeStat)> {
        let mut acc: FxHashMap<u32, EdgeStat> = FxHashMap::default();
        for &s in &self.clusters[id as usize].members {
            let n_s = self.stable.node(SynNodeId(s)).extent as f64;
            for &(t, k) in &self.child_k[s as usize] {
                let e = acc.entry(t).or_default();
                e.sum += n_s * k as f64;
                e.sum2 += n_s * k as f64 * k as f64;
            }
        }
        let mut stats: Vec<(u32, EdgeStat)> = acc.into_iter().collect();
        stats.sort_unstable_by_key(|&(t, _)| t);
        stats
    }

    /// Splits a live cluster into two new clusters along a member
    /// partition (the top-down ablation's primitive). `part` must be a
    /// non-empty proper subset of the cluster's members. Returns the two
    /// new cluster ids.
    pub fn apply_split(&mut self, id: u32, part: &[u32]) -> (u32, u32) {
        debug_assert!(self.is_alive(id));
        let members = std::mem::take(&mut self.clusters[id as usize].members);
        debug_assert!(!part.is_empty() && part.len() < members.len());
        // Sorted-slice membership: one sort of the (small) part plus a
        // binary search per member, instead of hashing every member.
        let mut in_part: Vec<u32> = part.to_vec();
        in_part.sort_unstable();
        let (m1, m2): (Vec<u32>, Vec<u32>) = members
            .into_iter()
            .partition(|s| in_part.binary_search(s).is_ok());

        // Global error is recomputed for the affected clusters; capture
        // old contributions first. Affected: id itself and the clusters
        // of stable parents of id's members (their child_k changes).
        let incoming_old = std::mem::take(&mut self.incoming[id as usize]);
        let mut affected: Vec<u32> = incoming_old
            .iter()
            .map(|&s| self.cluster_of[s as usize])
            .filter(|&p| p != id)
            .collect();
        affected.sort_unstable();
        affected.dedup();
        let mut old_contrib = self.clusters[id as usize].err_total();
        let mut old_edges = self.clusters[id as usize].stats.len();
        for &p in &affected {
            old_contrib += self.clusters[p as usize].err_total();
            old_edges += self.clusters[p as usize].stats.len();
        }

        let label = self.clusters[id as usize].label;
        let mk = |state: &mut Self, ms: Vec<u32>| -> u32 {
            let new_id = axqa_xml::dense_id(state.clusters.len());
            let elem_count = ms
                .iter()
                .map(|&s| state.stable.node(SynNodeId(s)).extent)
                .sum();
            let depth = ms
                .iter()
                .map(|&s| state.stable.node(SynNodeId(s)).depth)
                .max()
                .unwrap_or(0);
            for &s in &ms {
                state.cluster_of[s as usize] = new_id;
            }
            state.clusters.push(Cluster {
                label,
                alive: true,
                members: ms,
                elem_count,
                depth,
                stats: Vec::new(),
            });
            state.merged_into.push(new_id);
            state.version.push(0);
            state.merge_gen.push(0);
            state.incoming.push(Vec::new());
            new_id
        };
        let u1 = mk(self, m1);
        let u2 = mk(self, m2);
        self.clusters[id as usize].alive = false;
        self.clusters[id as usize].stats = Vec::new();
        // A dead-by-split cluster forwards to the first half (callers of
        // resolve get *a* live cluster; split users track both halves).
        self.merged_into[id as usize] = u1;
        self.alive += 1; // one died, two born

        // Rewrite child counts of stable parents (K into id splits).
        let mut parent_clusters: Vec<u32> = Vec::new();
        for &s in &incoming_old {
            self.recompute_child_k(s);
            let p = self.cluster_of[s as usize];
            parent_clusters.push(p);
            // Maintain incoming lists of the new halves.
            for half in [u1, u2] {
                if self.k_of(s, half) > 0 {
                    self.incoming[half as usize].push(s);
                }
            }
        }
        for half in [u1, u2] {
            self.incoming[half as usize].sort_unstable();
            self.incoming[half as usize].dedup();
        }
        parent_clusters.sort_unstable();
        parent_clusters.dedup();

        // Recompute stats for the new halves and every affected parent.
        self.recompute_stats(u1);
        self.recompute_stats(u2);
        for &p in &parent_clusters {
            if p != u1 && p != u2 {
                self.recompute_stats(p);
            }
        }
        // Children of the split cluster see their parent identity change
        // (id died, the halves took over its edges): bump their
        // merge-gen like apply_merge does for the merged pair's children.
        for half in [u1, u2] {
            for index in 0..self.clusters[half as usize].stats.len() {
                let t = self.clusters[half as usize].stats[index].0;
                self.merge_gen[t as usize] = self.merge_gen[t as usize].wrapping_add(1);
            }
        }

        // Refresh accounting. New affected set: halves + parents.
        let mut new_contrib =
            self.clusters[u1 as usize].err_total() + self.clusters[u2 as usize].err_total();
        let mut new_edges =
            self.clusters[u1 as usize].stats.len() + self.clusters[u2 as usize].stats.len();
        for &p in &parent_clusters {
            if p != u1 && p != u2 {
                new_contrib += self.clusters[p as usize].err_total();
                new_edges += self.clusters[p as usize].stats.len();
            }
        }
        // `affected` (old parents) and `parent_clusters` (new parents)
        // contain the same live clusters: splitting only re-keys targets.
        debug_assert_eq!(
            affected
                .iter()
                .filter(|&&p| p != u1 && p != u2)
                .collect::<Vec<_>>(),
            parent_clusters
                .iter()
                .filter(|&&p| p != u1 && p != u2)
                .collect::<Vec<_>>()
        );
        self.total_sq += new_contrib - old_contrib;
        self.total_sq = self.total_sq.max(0.0);
        self.total_edges = self.total_edges + new_edges - old_edges;
        self.debug_check_aggregates("apply_split");
        (u1, u2)
    }

    /// The current per-cluster child counts of a stable node (sorted by
    /// cluster id) — diagnostics and test oracles.
    pub fn child_counts(&self, stable_node: u32) -> &[(u32, u64)] {
        &self.child_k[stable_node as usize]
    }

    /// Debug-build cross-check of the incrementally-maintained
    /// `total_sq`/`total_edges` aggregates against full recomputation.
    /// Skipped on larger states to keep debug test suites fast; the
    /// randomized determinism tests cover long merge/split sequences
    /// explicitly.
    fn debug_check_aggregates(&self, context: &str) {
        if !cfg!(debug_assertions) || self.stable.len() > 512 {
            return;
        }
        let slow = self.squared_error_slow();
        debug_assert!(
            (slow - self.total_sq).abs() <= 1e-6 * slow.abs().max(1.0),
            "{context}: incremental total_sq {} drifted from recomputed {}",
            self.total_sq,
            slow
        );
        let edges: usize = self
            .clusters
            .iter()
            .filter(|c| c.alive)
            .map(|c| c.stats.len())
            .sum();
        debug_assert_eq!(
            self.total_edges, edges,
            "{context}: incremental total_edges drifted from recount"
        );
    }

    /// Extracts the current partition as an immutable [`TreeSketch`]
    /// plus the stable-class → sketch-node assignment (used by the
    /// value layer and other per-extent annotations).
    pub fn to_sketch_with_assignment(&self) -> (TreeSketch, Vec<u32>) {
        let _span = axqa_obs::span("TSBUILD.to_sketch");
        let sketch = self.to_sketch();
        // Recompute the dense renumbering the same way to_sketch does.
        let mut dense = vec![u32::MAX; self.clusters.len()];
        let mut next = 0u32;
        for (i, cluster) in self.clusters.iter().enumerate() {
            if cluster.alive {
                dense[i] = next;
                next = next.saturating_add(1);
            }
        }
        let assignment = self.cluster_of.iter().map(|&c| dense[c as usize]).collect();
        (sketch, assignment)
    }

    /// Captures the live partition as a [`PartitionSnapshot`]: a plain
    /// copy of the alive clusters' labels, extents, depths and edge
    /// statistics. The copy is memcpy-cheap relative to
    /// [`ClusterState::to_sketch`] (no renumbering, no centroid
    /// division, no edge sorting), which lets budget sweeps snapshot
    /// between sequential merge phases and finalize every snapshot in
    /// parallel afterwards.
    pub fn snapshot(&self) -> PartitionSnapshot {
        let clusters = self
            .clusters
            .iter()
            .enumerate()
            .filter(|(_, c)| c.alive)
            .map(|(i, c)| SnapshotCluster {
                id: axqa_xml::dense_id(i),
                label: c.label,
                elem_count: c.elem_count,
                depth: c.depth,
                stats: c.stats.clone(),
            })
            .collect();
        PartitionSnapshot {
            labels: self.stable.labels().clone(),
            clusters,
            root: self.cluster_of[self.stable.root().index()],
            squared_error: self.total_sq,
        }
    }

    /// Extracts the current partition as an immutable [`TreeSketch`].
    pub fn to_sketch(&self) -> TreeSketch {
        let mut dense = vec![u32::MAX; self.clusters.len()];
        let mut nodes: Vec<TsNode> = Vec::with_capacity(self.alive);
        for (i, cluster) in self.clusters.iter().enumerate() {
            if cluster.alive {
                dense[i] = axqa_xml::dense_id(nodes.len());
                nodes.push(TsNode {
                    label: cluster.label,
                    count: cluster.elem_count,
                    edges: Vec::with_capacity(cluster.stats.len()),
                    depth: cluster.depth,
                });
            }
        }
        for (i, cluster) in self.clusters.iter().enumerate() {
            if !cluster.alive {
                continue;
            }
            let n = cluster.elem_count as f64;
            let node = &mut nodes[dense[i] as usize];
            node.edges = cluster
                .stats
                .iter()
                .map(|&(t, stat)| (TsNodeId(dense[t as usize]), stat.sum / n))
                .collect();
            node.edges.sort_unstable_by_key(|&(t, _)| t);
        }
        let root = TsNodeId(dense[self.cluster_of[self.stable.root().index()] as usize]);
        TreeSketch::from_parts(self.stable.labels().clone(), nodes, root, self.total_sq)
    }

    /// From-scratch recomputation of `sq(T S)` — O(stable edges); test
    /// oracle for the incremental accounting.
    pub fn squared_error_slow(&self) -> f64 {
        let mut total = 0.0;
        for cluster in self.clusters.iter().filter(|c| c.alive) {
            let n = cluster.elem_count as f64;
            let mut acc: FxHashMap<u32, EdgeStat> = FxHashMap::default();
            for &s in &cluster.members {
                let n_s = self.stable.node(SynNodeId(s)).extent as f64;
                for &(t, k) in &self.child_k[s as usize] {
                    let e = acc.entry(t).or_default();
                    e.sum += n_s * k as f64;
                    e.sum2 += n_s * k as f64 * k as f64;
                }
            }
            // Summation order must not depend on the map's iteration
            // order: float addition is non-associative.
            let mut stats: Vec<(u32, EdgeStat)> = acc.into_iter().collect();
            stats.sort_unstable_by_key(|&(t, _)| t);
            total += stats.iter().map(|(_, e)| e.err(n)).sum::<f64>();
        }
        total
    }

    /// Verifies every internal invariant against the stable skeleton —
    /// O(stable size); used by tests and debug assertions.
    pub fn verify(&self) -> Result<(), String> {
        // Membership is a partition of stable nodes into live clusters.
        let mut seen = vec![false; self.stable.len()];
        for (i, cluster) in self.clusters.iter().enumerate() {
            if !cluster.alive {
                continue;
            }
            let mut elems = 0u64;
            for &s in &cluster.members {
                if seen[s as usize] {
                    return Err(format!("stable node {s} in two clusters"));
                }
                seen[s as usize] = true;
                if self.cluster_of[s as usize] != axqa_xml::dense_id(i) {
                    return Err(format!("cluster_of[{s}] inconsistent"));
                }
                if self.stable.node(SynNodeId(s)).label != cluster.label {
                    return Err(format!("label mismatch in cluster {i}"));
                }
                elems = elems.saturating_add(self.stable.node(SynNodeId(s)).extent);
            }
            if elems != cluster.elem_count {
                return Err(format!("cluster {i} elem_count drift"));
            }
        }
        if seen.iter().any(|&s| !s) {
            return Err("some stable node is unassigned".into());
        }
        // child_k matches the skeleton.
        for s in 0..self.stable.len() {
            let mut acc: FxHashMap<u32, u64> = FxHashMap::default();
            for &(t, k) in &self.stable.node(SynNodeId(axqa_xml::dense_id(s))).children {
                let slot = acc.entry(self.cluster_of[t.index()]).or_insert(0);
                *slot = slot.saturating_add(u64::from(k));
            }
            let mut expected: Vec<(u32, u64)> = acc.into_iter().collect();
            expected.sort_unstable_by_key(|&(t, _)| t);
            if expected != self.child_k[s] {
                return Err(format!("child_k[{s}] drift"));
            }
        }
        // Stats match a recomputation; total_sq and total_edges agree.
        let mut edges = 0usize;
        for (i, cluster) in self.clusters.iter().enumerate() {
            if !cluster.alive {
                continue;
            }
            edges += cluster.stats.len();
            let mut acc: FxHashMap<u32, EdgeStat> = FxHashMap::default();
            for &s in &cluster.members {
                let n_s = self.stable.node(SynNodeId(s)).extent as f64;
                for &(t, k) in &self.child_k[s as usize] {
                    let e = acc.entry(t).or_default();
                    e.sum += n_s * k as f64;
                    e.sum2 += n_s * k as f64 * k as f64;
                }
            }
            if acc.len() != cluster.stats.len() {
                return Err(format!("cluster {i} stats entry-count drift"));
            }
            for &(t, stat) in &cluster.stats {
                let expect = acc.get(&t).copied().unwrap_or_default();
                if (expect.sum - stat.sum).abs() > 1e-6 * expect.sum.abs().max(1.0)
                    || (expect.sum2 - stat.sum2).abs() > 1e-6 * expect.sum2.abs().max(1.0)
                {
                    return Err(format!("cluster {i} target {t} stat drift"));
                }
            }
        }
        if edges != self.total_edges {
            return Err(format!(
                "total_edges drift: {} vs {}",
                self.total_edges, edges
            ));
        }
        let slow = self.squared_error_slow();
        if (slow - self.total_sq).abs() > 1e-6 * slow.abs().max(1.0) {
            return Err(format!("total_sq drift: {} vs {}", self.total_sq, slow));
        }
        Ok(())
    }
}

/// One live cluster as captured by [`ClusterState::snapshot`].
#[derive(Debug, Clone)]
struct SnapshotCluster {
    /// Original (sparse) cluster id; snapshots list clusters in
    /// ascending id order, mirroring `to_sketch`'s renumbering scan.
    id: u32,
    label: LabelId,
    elem_count: u64,
    depth: u32,
    stats: Vec<(u32, EdgeStat)>,
}

/// An immutable copy of a live partition, decoupled from the mutable
/// [`ClusterState`] so sketch finalization can run on another thread
/// while the state continues merging (see `ts_build_sweep`).
#[derive(Debug, Clone)]
pub struct PartitionSnapshot {
    labels: LabelTable,
    clusters: Vec<SnapshotCluster>,
    /// Original id of the cluster containing the document root.
    root: u32,
    squared_error: f64,
}

impl PartitionSnapshot {
    /// Materializes the snapshot as a [`TreeSketch`] — the exact work
    /// `ClusterState::to_sketch` performs, deferred: dense renumbering
    /// (ascending original ids, so the numbering is identical), centroid
    /// edges `sum / N`, and per-node edge sorting.
    ///
    /// # Panics
    ///
    /// If the snapshot references a cluster id with no alive cluster —
    /// impossible for snapshots taken by [`ClusterState::snapshot`].
    pub fn finalize(&self) -> TreeSketch {
        let _span = axqa_obs::span_with("TSBUILD.finalize", "clusters", self.clusters.len() as u64);
        let mut dense: FxHashMap<u32, u32> = FxHashMap::default();
        for (pos, cluster) in self.clusters.iter().enumerate() {
            dense.insert(cluster.id, axqa_xml::dense_id(pos));
        }
        let dense_of = |id: u32| -> u32 {
            match dense.get(&id) {
                Some(&d) => d,
                None => panic!("snapshot references cluster {id} that is not alive"),
            }
        };
        let nodes: Vec<TsNode> = self
            .clusters
            .iter()
            .map(|cluster| {
                let n = cluster.elem_count as f64;
                let mut edges: Vec<(TsNodeId, f64)> = cluster
                    .stats
                    .iter()
                    .map(|&(t, stat)| (TsNodeId(dense_of(t)), stat.sum / n))
                    .collect();
                edges.sort_unstable_by_key(|&(t, _)| t);
                TsNode {
                    label: cluster.label,
                    count: cluster.elem_count,
                    edges,
                    depth: cluster.depth,
                }
            })
            .collect();
        let root = TsNodeId(dense_of(self.root));
        TreeSketch::from_parts(self.labels.clone(), nodes, root, self.squared_error)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axqa_synopsis::{build_stable, SizeModel};
    use axqa_xml::parse_document;

    /// Merges every same-label cluster pair step by step, verifying all
    /// invariants after each merge. The document has nested recursion so
    /// merges create self-loops — the hardest case for the cross-term
    /// bookkeeping.
    #[test]
    fn invariants_through_recursive_merges() {
        let doc = parse_document(
            "<r>\
               <l><l><l/></l></l>\
               <l><l><l/><l/></l></l>\
               <l><t/></l>\
               <l><l><t/></l></l>\
             </r>",
        )
        .unwrap();
        let stable = build_stable(&doc);
        let mut state = ClusterState::new(&stable, SizeModel::TREESKETCH);
        state.verify().unwrap();
        let mut scratch = ScoreScratch::new();
        loop {
            // Find any live same-label pair and merge it.
            let ids: Vec<u32> = state.alive_ids().collect();
            let mut merged = false;
            'outer: for (i, &a) in ids.iter().enumerate() {
                for &b in &ids[i + 1..] {
                    if state.cluster(a).label == state.cluster(b).label {
                        let delta = state.evaluate_merge(a, b, &mut scratch);
                        let before = state.squared_error();
                        let before_size = state.size_bytes();
                        let c = state.apply_merge(a, b);
                        state.verify().unwrap_or_else(|e| {
                            panic!("invariant broken after merging {a},{b} -> {c}: {e}")
                        });
                        // The pre-computed delta matches what happened.
                        let err_jump = state.squared_error() - before;
                        assert!(
                            (err_jump - delta.errd).abs() < 1e-6 * delta.errd.max(1.0),
                            "errd mismatch: predicted {} observed {}",
                            delta.errd,
                            err_jump
                        );
                        let size_drop = before_size - state.size_bytes();
                        assert_eq!(size_drop, delta.sized, "sized mismatch");
                        merged = true;
                        break 'outer;
                    }
                }
            }
            if !merged {
                break;
            }
        }
        // Fully merged: the label-split graph (labels r, l, t).
        assert_eq!(state.num_alive(), 3);
        let sketch = state.to_sketch();
        assert_eq!(sketch.total_elements(), doc.len() as u64);
        // The l cluster has a self-loop after merging the nesting chain.
        let l = sketch.labels().get("l").unwrap();
        let l_node = sketch
            .nodes_with_label(l)
            .map(|id| sketch.node(id))
            .next()
            .unwrap();
        assert!(
            l_node.edges.iter().any(|&(t, _)| sketch.node(t).label == l),
            "expected an l → l self-loop"
        );
    }

    /// snapshot().finalize() must reproduce to_sketch() exactly, at
    /// every stage of a build (it is the deferred form of the same
    /// computation, down to the dense renumbering).
    #[test]
    fn snapshot_finalize_matches_to_sketch() {
        let doc = parse_document(
            "<r><a><b/><b/><c/></a><a><b/><c/><c/></a><a><b/><b/><b/></a>\
             <d><a><b/></a></d><d><a><c/></a></d></r>",
        )
        .unwrap();
        let stable = build_stable(&doc);
        let mut state = ClusterState::new(&stable, SizeModel::TREESKETCH);
        loop {
            let direct = state.to_sketch();
            let deferred = state.snapshot().finalize();
            assert_eq!(direct.len(), deferred.len());
            assert_eq!(direct.root(), deferred.root());
            assert!((direct.squared_error() - deferred.squared_error()).abs() < 1e-12);
            for (a, b) in direct.nodes().iter().zip(deferred.nodes()) {
                assert_eq!(a, b);
            }
            // Merge any same-label pair; stop at the label-split floor.
            let ids: Vec<u32> = state.alive_ids().collect();
            let pair = ids.iter().enumerate().find_map(|(i, &a)| {
                ids[i + 1..]
                    .iter()
                    .find(|&&b| state.cluster(a).label == state.cluster(b).label)
                    .map(|&b| (a, b))
            });
            match pair {
                Some((a, b)) => {
                    state.apply_merge(a, b);
                }
                None => break,
            }
        }
    }

    /// evaluate_merge must be side-effect free.
    #[test]
    fn evaluate_merge_is_pure() {
        let doc = parse_document("<r><a><b/></a><a><b/><b/></a><a><b/><b/><b/></a></r>").unwrap();
        let stable = build_stable(&doc);
        let state = ClusterState::new(&stable, SizeModel::TREESKETCH);
        let ids: Vec<u32> = state.alive_ids().collect();
        let a_label = doc.labels().get("a").unwrap();
        let a_clusters: Vec<u32> = ids
            .iter()
            .copied()
            .filter(|&id| state.cluster(id).label == a_label)
            .collect();
        let before = state.squared_error();
        let mut scratch = ScoreScratch::new();
        let d1 = state.evaluate_merge(a_clusters[0], a_clusters[1], &mut scratch);
        let d2 = state.evaluate_merge(a_clusters[0], a_clusters[1], &mut scratch);
        assert_eq!(d1, d2);
        // The scratch path is bitwise-identical to the retained
        // hash-map reference implementation.
        let d3 = state.evaluate_merge_reference(a_clusters[0], a_clusters[1]);
        assert_eq!(d1.errd.to_bits(), d3.errd.to_bits());
        assert_eq!(d1.sized, d3.sized);
        assert_eq!(state.squared_error(), before);
        state.verify().unwrap();
    }

    /// Merging identical-signature clusters costs zero error.
    #[test]
    fn zero_error_merges_exist() {
        // Two a-classes distinguished only by position (1-index would
        // split them; count stability does not — so force the split via
        // distinct child labels then re-merge the *parents*).
        let doc = parse_document("<r><p><a><b/></a></p><q><a><b/></a></q></r>").unwrap();
        let stable = build_stable(&doc);
        let state = ClusterState::new(&stable, SizeModel::TREESKETCH);
        // p and q have different labels — not mergeable; but the two
        // a-subtrees collapsed into one class already. So pick the only
        // possible same-label pair count: none. Verify nothing to merge:
        let mut same_label_pairs = 0;
        let ids: Vec<u32> = state.alive_ids().collect();
        for (i, &a) in ids.iter().enumerate() {
            for &b in &ids[i + 1..] {
                if state.cluster(a).label == state.cluster(b).label {
                    same_label_pairs += 1;
                }
            }
        }
        assert_eq!(same_label_pairs, 0, "identical subtrees share a class");
    }
}
