//! `bench diff OLD NEW` — metric-by-metric comparison of two
//! `axqa-bench-baseline/*` snapshots (DESIGN.md §12), turning the
//! committed BENCH_core.json into a ratcheting performance trajectory
//! the way lint-baseline.toml ratchets findings.
//!
//! Three kinds of checks, with different tolerances:
//!
//! * **time** metrics (wall-clock medians, phase totals) are noisy —
//!   they pass within a relative threshold (default ±8%, `--time-pct`)
//!   and can be demoted to warnings wholesale (`--warn-only-time`,
//!   which CI uses until a quiet multi-core reference host exists);
//! * **determinism counters** (`tsbuild.merges`, …) are exact by
//!   construction — the TSBUILD merge sequence is thread-count
//!   independent (PR 2) — so any difference is a real behavioral
//!   change and always fails, never warns;
//! * **ratchet counters** (`tsbuild.reevals`) measure work whose
//!   *outcome* is pinned by the determinism set but whose *amount* is
//!   an optimization target (the lazy merge queue, DESIGN.md §13,
//!   exists to shrink it): they must not increase, while decreases are
//!   improvements and pass.
//!
//! Comparing runs of different configurations (dataset, size, seed,
//! budgets, run count) is meaningless for the exact checks, so a config
//! mismatch fails fast before any metric is looked at. Thread count is
//! the one knob allowed to differ: counter parity across thread counts
//! is itself the determinism invariant.

use crate::json::{parse, Json};

/// Tuning knobs for one diff run.
#[derive(Debug, Clone)]
pub struct DiffConfig {
    /// Relative noise threshold for time metrics, in percent.
    pub time_pct: f64,
    /// Demote time regressions from `fail` to `warn` (determinism
    /// counters still fail).
    pub warn_only_time: bool,
    /// Optional path for the `axqa-bench-diff/1` verdict document.
    pub out: Option<std::path::PathBuf>,
}

impl Default for DiffConfig {
    fn default() -> Self {
        DiffConfig {
            time_pct: 8.0,
            warn_only_time: false,
            out: None,
        }
    }
}

/// Outcome of one compared metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Within tolerance (or an improvement).
    Ok,
    /// Out of tolerance, but demoted by `--warn-only-time`.
    Warn,
    /// Out of tolerance; fails the diff.
    Fail,
}

impl Status {
    fn label(self) -> &'static str {
        match self {
            Status::Ok => "ok",
            Status::Warn => "warn",
            Status::Fail => "fail",
        }
    }
}

/// One compared metric.
#[derive(Debug, Clone)]
pub struct Check {
    /// Dotted metric path, e.g. `ts_build[10kb].serial_ms`.
    pub metric: String,
    /// `time` (threshold), `counter` (exact), `ratchet` (must not
    /// increase), or `config` (equality).
    pub kind: &'static str,
    pub old: String,
    pub new: String,
    /// Relative change in percent (time metrics only).
    pub delta_pct: Option<f64>,
    pub status: Status,
}

/// The full comparison result.
#[derive(Debug, Clone)]
pub struct DiffReport {
    pub old_path: String,
    pub new_path: String,
    pub config: DiffConfig,
    pub checks: Vec<Check>,
    /// Fatal precondition failure (unreadable file, bad JSON, schema or
    /// config mismatch) — recorded instead of per-metric checks.
    pub error: Option<String>,
}

/// Determinism counters: identical across thread counts and hosts by
/// construction (PR 2's order-identical parallel scoring), so they are
/// compared exactly. Thread-shape-dependent counters
/// (`tsbuild.scratch_reuses`, `tsbuild.stat_bsearch`, `parallel.*`)
/// are deliberately absent.
pub const DETERMINISM_COUNTERS: &[&str] = &[
    "tsbuild.merges",
    "tsbuild.pool_rebuilds",
    "tsbuild.candidates_scored",
    "evalquery.automaton_states",
    "evalquery.embeddings_expanded",
];

/// Ratcheting counters: deterministic for a given implementation (so
/// still thread-count invariant), but *reducing* them is the point of
/// perf work — `tsbuild.reevals` dropped by design when the lazy merge
/// queue started serving stale pops from its score memo. An increase
/// fails; a decrease is an improvement and passes. (The squared-error
/// outcome itself stays pinned by the exact set: `tsbuild.merges`
/// changing would mean a different merge sequence.)
pub const RATCHET_COUNTERS: &[&str] = &["tsbuild.reevals"];

/// Config keys that must match for two snapshots to be comparable at
/// all (they determine the workload, hence every exact counter).
/// `runs` is included because the recorder accumulates counters across
/// timed runs, so counter totals scale linearly with it; `threads` is
/// excluded on purpose — counter parity across thread counts is exactly
/// the determinism claim the gate checks.
const CONFIG_KEYS: &[&str] = &[
    "dataset",
    "elements",
    "queries",
    "runs",
    "seed",
    "budgets_kb",
];

/// Scalar time metrics compared under the relative threshold.
const TIME_PATHS: &[&str] = &[
    "stable_build_ms",
    "ts_build_phases.ts_build_us",
    "ts_build_phases.create_pool_us",
    "ts_build_phases.merge_loop_us",
    "ts_build_phases.merge_loop_score_us",
    "ts_build_phases.merge_loop_apply_us",
    "ts_build_phases.to_sketch_us",
    "eval_query.total_ms",
    "eval_query.per_query_us",
    "eval_query.per_query_us_p50",
    "eval_query.per_query_us_p95",
];

fn render_json(value: Option<&Json>) -> String {
    match value {
        None => "absent".into(),
        Some(Json::Number(n)) => {
            if n.fract() == 0.0 {
                format!("{n:.0}")
            } else {
                format!("{n:.3}")
            }
        }
        Some(Json::String(s)) => s.clone(),
        Some(Json::Bool(b)) => b.to_string(),
        Some(Json::Null) => "null".into(),
        Some(other) => format!("{other:?}"),
    }
}

/// Loads, parses, and compares the two snapshots.
pub fn run_diff(old_path: &str, new_path: &str, config: DiffConfig) -> DiffReport {
    let mut report = DiffReport {
        old_path: old_path.to_string(),
        new_path: new_path.to_string(),
        config,
        checks: Vec::new(),
        error: None,
    };
    let old = match load(old_path) {
        Ok(doc) => doc,
        Err(err) => {
            report.error = Some(err);
            return report;
        }
    };
    let new = match load(new_path) {
        Ok(doc) => doc,
        Err(err) => {
            report.error = Some(err);
            return report;
        }
    };
    compare(&old, &new, &mut report);
    report
}

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|err| format!("cannot read {path}: {err}"))?;
    let doc = parse(&text).map_err(|err| format!("{path}: invalid JSON: {err}"))?;
    let schema = doc
        .pointer("schema")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{path}: missing \"schema\""))?;
    if !schema.starts_with("axqa-bench-baseline/") {
        return Err(format!(
            "{path}: schema {schema:?} is not an axqa-bench-baseline snapshot"
        ));
    }
    Ok(doc)
}

fn compare(old: &Json, new: &Json, report: &mut DiffReport) {
    // Schema and config equality gate every other check: exact-counter
    // comparison across different workloads would be noise dressed up
    // as signal.
    let old_schema = old.pointer("schema").and_then(Json::as_str).unwrap_or("");
    let new_schema = new.pointer("schema").and_then(Json::as_str).unwrap_or("");
    if old_schema != new_schema {
        report.error = Some(format!(
            "schema mismatch: {old_schema:?} vs {new_schema:?} — regenerate the \
             older snapshot before diffing"
        ));
        return;
    }
    for key in CONFIG_KEYS {
        let path = format!("config.{key}");
        let old_value = old.pointer(&path);
        let new_value = new.pointer(&path);
        if old_value != new_value {
            report.error = Some(format!(
                "config mismatch on {key:?}: {} vs {} — snapshots are not comparable",
                render_json(old_value),
                render_json(new_value)
            ));
            return;
        }
    }

    for path in TIME_PATHS {
        push_time_check(old, new, path, report);
    }
    // Per-budget rows, matched by budget_kb.
    let empty: Vec<Json> = Vec::new();
    let old_rows = old
        .pointer("ts_build")
        .and_then(Json::as_array)
        .unwrap_or(&empty);
    let new_rows = new
        .pointer("ts_build")
        .and_then(Json::as_array)
        .unwrap_or(&empty);
    for old_row in old_rows {
        let Some(budget) = old_row.pointer("budget_kb").and_then(Json::as_u64) else {
            continue;
        };
        let Some(new_row) = new_rows
            .iter()
            .find(|row| row.pointer("budget_kb").and_then(Json::as_u64) == Some(budget))
        else {
            continue; // config equality already guaranteed same budgets
        };
        for field in ["serial_ms", "parallel_ms"] {
            push_time_pair(
                old_row.pointer(field),
                new_row.pointer(field),
                &format!("ts_build[{budget}kb].{field}"),
                report,
            );
        }
    }
    for counter in DETERMINISM_COUNTERS {
        // Counter names contain dots ("tsbuild.merges" is one key, not
        // a path), so look the member up directly under the map.
        let old_value = old
            .pointer("metrics.counters")
            .and_then(|c| c.get(counter))
            .and_then(Json::as_u64);
        let new_value = new
            .pointer("metrics.counters")
            .and_then(|c| c.get(counter))
            .and_then(Json::as_u64);
        let status = if old_value == new_value {
            Status::Ok
        } else {
            Status::Fail
        };
        report.checks.push(Check {
            metric: (*counter).to_string(),
            kind: "counter",
            old: old_value.map_or("absent".into(), |v| v.to_string()),
            new: new_value.map_or("absent".into(), |v| v.to_string()),
            delta_pct: None,
            status,
        });
    }
    for counter in RATCHET_COUNTERS {
        let old_value = old
            .pointer("metrics.counters")
            .and_then(|c| c.get(counter))
            .and_then(Json::as_u64);
        let new_value = new
            .pointer("metrics.counters")
            .and_then(|c| c.get(counter))
            .and_then(Json::as_u64);
        let status = match (old_value, new_value) {
            (Some(old_n), Some(new_n)) => {
                if new_n > old_n {
                    Status::Fail // the ratchet only turns one way
                } else {
                    Status::Ok
                }
            }
            // A snapshot from before the counter existed sets no bar.
            (None, _) => Status::Ok,
            // Coverage shrank: the new run stopped reporting it.
            (Some(_), None) => Status::Fail,
        };
        report.checks.push(Check {
            metric: (*counter).to_string(),
            kind: "ratchet",
            old: old_value.map_or("absent".into(), |v| v.to_string()),
            new: new_value.map_or("absent".into(), |v| v.to_string()),
            delta_pct: None,
            status,
        });
    }
}

fn push_time_check(old: &Json, new: &Json, path: &str, report: &mut DiffReport) {
    push_time_pair(old.pointer(path), new.pointer(path), path, report);
}

fn push_time_pair(
    old_value: Option<&Json>,
    new_value: Option<&Json>,
    metric: &str,
    report: &mut DiffReport,
) {
    let (Some(old_n), Some(new_n)) = (
        old_value.and_then(Json::as_f64),
        new_value.and_then(Json::as_f64),
    ) else {
        // A time metric missing from either side means the schemas
        // diverged in a way the equality gate did not catch — fail
        // loudly rather than silently shrinking coverage.
        report.checks.push(Check {
            metric: metric.to_string(),
            kind: "time",
            old: render_json(old_value),
            new: render_json(new_value),
            delta_pct: None,
            status: Status::Fail,
        });
        return;
    };
    // Sub-resolution phases (e.g. 0µs on a tiny run) can't support a
    // relative comparison; treat them as within noise.
    let delta_pct = if old_n.abs() < 1e-9 {
        if new_n.abs() < 1e-9 {
            0.0
        } else {
            100.0
        }
    } else {
        100.0 * (new_n - old_n) / old_n
    };
    let regressed = delta_pct > report.config.time_pct;
    let status = if !regressed {
        Status::Ok
    } else if report.config.warn_only_time {
        Status::Warn
    } else {
        Status::Fail
    };
    report.checks.push(Check {
        metric: metric.to_string(),
        kind: "time",
        old: render_json(old_value),
        new: render_json(new_value),
        delta_pct: Some(delta_pct),
        status,
    });
}

impl DiffReport {
    /// `true` when nothing failed (warnings allowed).
    pub fn passed(&self) -> bool {
        self.error.is_none() && self.checks.iter().all(|c| c.status != Status::Fail)
    }

    /// Human-readable verdict for stdout.
    pub fn render(&self) -> String {
        let mut out = format!("bench diff: {} -> {}\n", self.old_path, self.new_path);
        if let Some(err) = &self.error {
            out.push_str(&format!("  error: {err}\n  verdict: FAIL\n"));
            return out;
        }
        for check in &self.checks {
            if check.status == Status::Ok && check.kind == "time" {
                continue; // quiet passes; the JSON verdict has them all
            }
            let delta = check
                .delta_pct
                .map_or(String::new(), |d| format!(" ({d:+.1}%)"));
            out.push_str(&format!(
                "  [{}] {} {}: {} -> {}{}\n",
                check.status.label(),
                check.kind,
                check.metric,
                check.old,
                check.new,
                delta,
            ));
        }
        let warns = self
            .checks
            .iter()
            .filter(|c| c.status == Status::Warn)
            .count();
        let fails = self
            .checks
            .iter()
            .filter(|c| c.status == Status::Fail)
            .count();
        out.push_str(&format!(
            "  {} checks, {} warnings, {} failures\n  verdict: {}\n",
            self.checks.len(),
            warns,
            fails,
            if self.passed() { "PASS" } else { "FAIL" },
        ));
        out
    }

    /// The machine-readable `axqa-bench-diff/1` verdict document.
    pub fn to_json(&self) -> String {
        fn escape(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        let checks: Vec<String> = self
            .checks
            .iter()
            .map(|check| {
                let delta = check
                    .delta_pct
                    .map_or("null".to_string(), |d| format!("{d:.3}"));
                format!(
                    concat!(
                        "    {{\"metric\": \"{}\", \"kind\": \"{}\", \"old\": \"{}\", ",
                        "\"new\": \"{}\", \"delta_pct\": {}, \"status\": \"{}\"}}"
                    ),
                    escape(&check.metric),
                    check.kind,
                    escape(&check.old),
                    escape(&check.new),
                    delta,
                    check.status.label(),
                )
            })
            .collect();
        format!(
            r#"{{
  "schema": "axqa-bench-diff/1",
  "old": "{old}",
  "new": "{new}",
  "time_pct": {time_pct:.3},
  "warn_only_time": {warn_only},
  "error": {error},
  "checks": [
{checks}
  ],
  "verdict": "{verdict}"
}}
"#,
            old = escape(&self.old_path),
            new = escape(&self.new_path),
            time_pct = self.config.time_pct,
            warn_only = self.config.warn_only_time,
            error = self
                .error
                .as_ref()
                .map_or("null".to_string(), |e| format!("\"{}\"", escape(e))),
            checks = checks.join(",\n"),
            verdict = if self.passed() { "pass" } else { "fail" },
        )
    }

    /// Writes the verdict JSON when `--out` was given.
    pub fn write(&self) -> std::io::Result<()> {
        if let Some(path) = &self.config.out {
            std::fs::write(path, self.to_json())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(merges: u64, serial_ms: f64) -> String {
        format!(
            r#"{{
  "schema": "axqa-bench-baseline/3",
  "machine": {{"os": "linux", "arch": "x86_64", "cpus": 1, "threads_used": 2}},
  "config": {{"dataset": "xmark", "elements": 1000, "queries": 10, "runs": 1,
              "budgets_kb": [2, 4], "threads": 2, "seed": 24301}},
  "stable_build_ms": 1.5,
  "ts_build": [
    {{"budget_kb": 2, "serial_ms": {serial_ms}, "parallel_ms": 4.0, "threads": 2, "speedup": 1.0}},
    {{"budget_kb": 4, "serial_ms": 6.0, "parallel_ms": 6.0, "threads": 2, "speedup": 1.0}}
  ],
  "ts_build_phases": {{"ts_build_us": 900, "create_pool_us": 300, "merge_loop_us": 400,
                       "merge_loop_score_us": 200, "merge_loop_apply_us": 100,
                       "to_sketch_us": 50}},
  "eval_query": {{"queries": 10, "total_ms": 2.0, "per_query_us": 200.0,
                  "per_query_us_p50": 150.0, "per_query_us_p95": 400.0}},
  "metrics": {{"schema": "axqa-obs/2", "process_id": 1,
               "counters": {{"tsbuild.merges": {merges}, "tsbuild.pool_rebuilds": 3,
                             "tsbuild.reevals": 7, "tsbuild.candidates_scored": 90,
                             "evalquery.automaton_states": 40,
                             "evalquery.embeddings_expanded": 11}},
               "histograms": {{}}, "spans": {{}}}}
}}
"#
        )
    }

    fn write_tmp(name: &str, contents: &str) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("axqa-diff-{}-{name}", std::process::id()));
        std::fs::write(&path, contents).unwrap();
        path
    }

    #[test]
    fn self_compare_passes() {
        let path = write_tmp("self.json", &snapshot(100, 4.0));
        let report = run_diff(
            path.to_str().unwrap(),
            path.to_str().unwrap(),
            DiffConfig::default(),
        );
        assert!(report.error.is_none(), "{:?}", report.error);
        assert!(report.passed(), "{}", report.render());
        assert!(report.render().contains("verdict: PASS"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn determinism_counter_mismatch_fails_even_with_warn_only_time() {
        let old = write_tmp("det-old.json", &snapshot(100, 4.0));
        let new = write_tmp("det-new.json", &snapshot(101, 4.0));
        let config = DiffConfig {
            warn_only_time: true,
            ..DiffConfig::default()
        };
        let report = run_diff(old.to_str().unwrap(), new.to_str().unwrap(), config);
        assert!(!report.passed());
        let failed: Vec<&Check> = report
            .checks
            .iter()
            .filter(|c| c.status == Status::Fail)
            .collect();
        assert_eq!(failed.len(), 1);
        assert_eq!(failed[0].metric, "tsbuild.merges");
        assert!(report.to_json().contains("\"verdict\": \"fail\""));
        let _ = std::fs::remove_file(&old);
        let _ = std::fs::remove_file(&new);
    }

    #[test]
    fn time_regression_respects_threshold_and_warn_only() {
        let old = write_tmp("time-old.json", &snapshot(100, 4.0));
        let new = write_tmp("time-new.json", &snapshot(100, 5.0)); // +25%
        let strict = run_diff(
            old.to_str().unwrap(),
            new.to_str().unwrap(),
            DiffConfig::default(),
        );
        assert!(!strict.passed());
        let warn_only = run_diff(
            old.to_str().unwrap(),
            new.to_str().unwrap(),
            DiffConfig {
                warn_only_time: true,
                ..DiffConfig::default()
            },
        );
        assert!(warn_only.passed());
        assert!(warn_only
            .render()
            .contains("[warn] time ts_build[2kb].serial_ms"));
        let loose = run_diff(
            old.to_str().unwrap(),
            new.to_str().unwrap(),
            DiffConfig {
                time_pct: 30.0,
                ..DiffConfig::default()
            },
        );
        assert!(loose.passed());
        // Improvements never fail: -20% back the other way.
        let improved = run_diff(
            new.to_str().unwrap(),
            old.to_str().unwrap(),
            DiffConfig::default(),
        );
        assert!(improved.passed());
        let _ = std::fs::remove_file(&old);
        let _ = std::fs::remove_file(&new);
    }

    #[test]
    fn reeval_ratchet_accepts_improvements_and_rejects_increases() {
        let old = write_tmp("ratchet-old.json", &snapshot(100, 4.0));
        // tsbuild.reevals drops 7 → 3: an improvement, which must pass
        // even though the values differ (the old exact-match rule would
        // have failed it).
        let better = snapshot(100, 4.0).replace("\"tsbuild.reevals\": 7", "\"tsbuild.reevals\": 3");
        let new = write_tmp("ratchet-new.json", &better);
        let improved = run_diff(
            old.to_str().unwrap(),
            new.to_str().unwrap(),
            DiffConfig::default(),
        );
        assert!(improved.passed(), "{}", improved.render());

        // The other direction (3 → 7) turns the ratchet backwards.
        let regressed = run_diff(
            new.to_str().unwrap(),
            old.to_str().unwrap(),
            DiffConfig {
                warn_only_time: true, // ratchet failures must not demote
                ..DiffConfig::default()
            },
        );
        assert!(!regressed.passed());
        let failed: Vec<&Check> = regressed
            .checks
            .iter()
            .filter(|c| c.status == Status::Fail)
            .collect();
        assert_eq!(failed.len(), 1);
        assert_eq!(failed[0].metric, "tsbuild.reevals");
        assert_eq!(failed[0].kind, "ratchet");
        assert!(regressed
            .render()
            .contains("[fail] ratchet tsbuild.reevals"));

        // A pre-ratchet snapshot (no reevals counter at all) sets no
        // bar: diffing a new run against it passes the ratchet.
        let ancient = snapshot(100, 4.0).replace("\"tsbuild.reevals\": 7, ", "");
        let ancient = write_tmp("ratchet-ancient.json", &ancient);
        let vs_ancient = run_diff(
            ancient.to_str().unwrap(),
            old.to_str().unwrap(),
            DiffConfig::default(),
        );
        assert!(vs_ancient.passed(), "{}", vs_ancient.render());
        // But dropping the counter from the new run shrinks coverage.
        let dropped = run_diff(
            old.to_str().unwrap(),
            ancient.to_str().unwrap(),
            DiffConfig::default(),
        );
        assert!(!dropped.passed());
        let _ = std::fs::remove_file(&old);
        let _ = std::fs::remove_file(&new);
        let _ = std::fs::remove_file(&ancient);
    }

    #[test]
    fn null_speedup_rows_are_tolerated() {
        // Single-threaded baselines emit "speedup": null (there is no
        // parallelism to measure); the diff must parse and compare such
        // snapshots without tripping over the null.
        let nulled = snapshot(100, 4.0).replace("\"speedup\": 1.0", "\"speedup\": null");
        assert!(nulled.contains("\"speedup\": null"));
        let path = write_tmp("null-speedup.json", &nulled);
        let report = run_diff(
            path.to_str().unwrap(),
            path.to_str().unwrap(),
            DiffConfig::default(),
        );
        assert!(report.error.is_none(), "{:?}", report.error);
        assert!(report.passed(), "{}", report.render());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn config_mismatch_fails_fast() {
        let old = write_tmp("cfg-old.json", &snapshot(100, 4.0));
        let other = snapshot(100, 4.0).replace("\"elements\": 1000", "\"elements\": 2000");
        let new = write_tmp("cfg-new.json", &other);
        let report = run_diff(
            old.to_str().unwrap(),
            new.to_str().unwrap(),
            DiffConfig::default(),
        );
        assert!(!report.passed());
        assert!(report.error.as_ref().unwrap().contains("elements"));
        assert!(report.checks.is_empty());
        let _ = std::fs::remove_file(&old);
        let _ = std::fs::remove_file(&new);
    }

    #[test]
    fn verdict_json_is_balanced_and_typed() {
        let path = write_tmp("verdict.json", &snapshot(100, 4.0));
        let out = std::env::temp_dir().join(format!("axqa-verdict-{}.json", std::process::id()));
        let report = run_diff(
            path.to_str().unwrap(),
            path.to_str().unwrap(),
            DiffConfig {
                out: Some(out.clone()),
                ..DiffConfig::default()
            },
        );
        report.write().unwrap();
        let text = std::fs::read_to_string(&out).unwrap();
        let doc = crate::json::parse(&text).unwrap();
        assert_eq!(
            doc.pointer("schema").unwrap().as_str(),
            Some("axqa-bench-diff/1")
        );
        assert_eq!(doc.pointer("verdict").unwrap().as_str(), Some("pass"));
        assert!(!doc
            .pointer("checks")
            .unwrap()
            .as_array()
            .unwrap()
            .is_empty());
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&out);
    }
}
