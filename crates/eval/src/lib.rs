// Count-carrying crate (ISSUE 1; DESIGN.md "Static analysis & invariants"):
// lossy casts and unchecked arithmetic on element/edge counts are denied
// outside tests, on top of the workspace lint table.
#![cfg_attr(
    not(test),
    deny(
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss,
        clippy::arithmetic_side_effects
    )
)]
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss
    )
)]

//! # axqa-eval — exact twig evaluation (ground truth)
//!
//! The experiments of §6 need, for every workload query, the *true*
//! nesting tree `NT(Q)` (to measure the ESD of an approximate answer) and
//! the *true* number of binding tuples (to measure selectivity-estimation
//! error). This crate evaluates twig queries exactly over a document:
//!
//! * [`DocIndex`] — pre-order ranks, subtree extents and per-label
//!   position lists supporting O(log n) descendant-with-label lookups
//!   (the classic structural-join index).
//! * [`PathMatcher`] — evaluation of the XPath subset (child/descendant
//!   steps, existential branch predicates) with set semantics.
//! * [`NestingTree`] — the paper's binding representation (§2, Fig. 2(c)):
//!   a tree of `(element, variable)` bindings preserving the
//!   ancestor/descendant relationships the query paths specify.
//! * [`evaluate`] / [`selectivity`] — full query evaluation with
//!   bottom-up pruning of bindings that complete no tuple, and
//!   binding-tuple counting (optional edges contribute `max(Σ, 1)`).

pub mod answer;
pub mod counting;
pub mod index;
pub mod matching;
pub mod nesting;

pub use answer::{AnswerNode, AnswerTree};
pub use counting::count_binding_tuples;
pub use index::DocIndex;
pub use matching::PathMatcher;
pub use nesting::{evaluate, selectivity, NestingTree, NtNodeId};
