//! Workload-driven twig-XSketch construction.
//!
//! Per the original XSKETCH/twig-XSKETCH papers (and §6.1 of this one):
//! start from the coarse label-split graph and greedily apply refinement
//! operations — node splits that localize structure — choosing at each
//! round the candidate that most reduces the selectivity-estimation
//! error over a *sample workload* of twig queries with known exact
//! counts. This workload evaluation inside the construction loop is the
//! cost Table 3 contrasts with TSBUILD's workload-independent
//! squared-error objective.
//!
//! Candidate kinds per round, proposed for the highest-potential nodes
//! (largest extent × structural diversity):
//!
//! * **value split** — partition a node's members at the median child
//!   count along its highest-variance outgoing direction (sharpens the
//!   edge histograms);
//! * **parent split** — separate members by their parent-label sets
//!   (moves edges toward B-stability, the XSKETCH `b-stabilize` op).

use crate::estimate::{xs_estimate_selectivity, XsEvalConfig};
use crate::sketch::XSketch;
use axqa_query::TwigQuery;
use axqa_synopsis::{StableSummary, SynNodeId};
use axqa_xml::fxhash::FxHashMap;

/// Build configuration.
#[derive(Debug, Clone)]
pub struct XsBuildConfig {
    /// Target synopsis size in bytes.
    pub budget_bytes: usize,
    /// Number of workload queries evaluated per candidate.
    pub sample_queries: usize,
    /// Candidate splits proposed per round.
    pub candidates_per_round: usize,
    /// Stop after this many rounds without improvement.
    pub patience: usize,
    /// Hard cap on refinement rounds (bounds build time; the paper's
    /// builder has no such cap and its construction times show it).
    pub max_rounds: usize,
}

impl XsBuildConfig {
    /// Defaults mirroring the original study's settings.
    pub fn with_budget(budget_bytes: usize) -> XsBuildConfig {
        XsBuildConfig {
            budget_bytes,
            sample_queries: 30,
            candidates_per_round: 6,
            patience: 12,
            max_rounds: 80,
        }
    }
}

/// Builds a twig-XSketch within the byte budget, guided by a sample
/// workload of `(query, exact selectivity)` pairs.
pub fn build_xsketch(
    stable: &StableSummary,
    workload: &[(TwigQuery, f64)],
    config: &XsBuildConfig,
) -> XSketch {
    let (mut partition, mut num_clusters) = XSketch::label_split_partition(stable);
    let parents = stable.parents();
    let sample: Vec<&(TwigQuery, f64)> =
        workload.iter().take(config.sample_queries.max(1)).collect();
    let sanity = sanity_bound(&sample);

    let materialize = |partition: &[u32], n: usize| -> XSketch {
        let structure =
            axqa_synopsis::SizeModel::XSKETCH.bytes(n, estimate_edges(stable, partition), 0);
        let buckets = config.budget_bytes.saturating_sub(structure)
            / axqa_synopsis::SizeModel::XSKETCH.bucket_bytes;
        XSketch::from_partition(stable, partition, n, buckets.max(n))
    };
    let score = |xs: &XSketch| -> f64 {
        let eval = XsEvalConfig::default();
        let mut total = 0.0;
        for (query, exact) in sample.iter().map(|p| (&p.0, p.1)) {
            let est = xs_estimate_selectivity(xs, query, &eval);
            total += (exact - est).abs() / est.max(sanity);
        }
        total / sample.len() as f64
    };

    let mut current = materialize(&partition, num_clusters);
    let mut best_err = score(&current);
    let mut stalls = 0usize;
    let mut rounds = 0usize;

    while current.size_bytes() < config.budget_bytes
        && stalls < config.patience
        && rounds < config.max_rounds
    {
        rounds += 1;
        let candidates = propose_splits(stable, &partition, num_clusters, &parents, config);
        if candidates.is_empty() {
            break;
        }
        let mut round_best: Option<(f64, Vec<u32>, usize, XSketch)> = None;
        for (cluster, part_members) in candidates {
            let (new_partition, new_n) =
                apply_split(&partition, num_clusters, cluster, &part_members);
            let xs = materialize(&new_partition, new_n);
            if xs.size_bytes() > config.budget_bytes {
                continue;
            }
            let err = score(&xs);
            if round_best.as_ref().is_none_or(|&(e, _, _, _)| err < e) {
                round_best = Some((err, new_partition, new_n, xs));
            }
        }
        let Some((err, new_partition, new_n, xs)) = round_best else {
            break; // every candidate would overflow the budget
        };
        // The round's best refinement is always applied (the XSKETCH
        // expansion strategy); the sample error only controls the early
        // exit after a run of non-improving rounds.
        partition = new_partition;
        num_clusters = new_n;
        current = xs;
        if err < best_err - 1e-12 {
            best_err = err;
            stalls = 0;
        } else {
            stalls += 1;
        }
    }
    current
}

fn sanity_bound(sample: &[&(TwigQuery, f64)]) -> f64 {
    let mut counts: Vec<f64> = sample.iter().map(|p| p.1).collect();
    counts.sort_by(f64::total_cmp);
    if counts.is_empty() {
        1.0
    } else {
        counts[counts.len() / 10].max(1.0)
    }
}

/// Edge count of the synopsis a partition induces (distinct
/// (cluster, child-cluster) pairs).
fn estimate_edges(stable: &StableSummary, partition: &[u32]) -> usize {
    let mut edges: std::collections::HashSet<(u32, u32)> = std::collections::HashSet::new();
    for (s, node) in stable.nodes().iter().enumerate() {
        let from = partition[s];
        for &(t, _) in &node.children {
            edges.insert((from, partition[t.index()]));
        }
    }
    edges.len()
}

/// Proposes `(cluster, members to split off)` candidates.
fn propose_splits(
    stable: &StableSummary,
    partition: &[u32],
    num_clusters: usize,
    parents: &[Vec<(SynNodeId, u32)>],
    config: &XsBuildConfig,
) -> Vec<(u32, Vec<u32>)> {
    let mut members: Vec<Vec<u32>> = vec![Vec::new(); num_clusters];
    for (s, &c) in partition.iter().enumerate() {
        members[c as usize].push(axqa_xml::dense_id(s));
    }
    // Rank clusters by refinement potential.
    let mut ranked: Vec<(u64, u32)> = members
        .iter()
        .enumerate()
        .filter(|(_, ms)| ms.len() >= 2)
        .map(|(c, ms)| {
            let extent: u64 = ms.iter().map(|&s| stable.node(SynNodeId(s)).extent).sum();
            (
                extent.saturating_mul(ms.len() as u64),
                axqa_xml::dense_id(c),
            )
        })
        .collect();
    ranked.sort_unstable_by(|a, b| b.cmp(a));

    let mut out: Vec<(u32, Vec<u32>)> = Vec::new();
    for &(_, cluster) in ranked.iter() {
        if out.len() >= config.candidates_per_round {
            break;
        }
        let ms = &members[cluster as usize];
        // Value split: median along the highest-variance direction.
        if let Some(part) = value_split(stable, partition, ms) {
            out.push((cluster, part));
        }
        if out.len() >= config.candidates_per_round {
            break;
        }
        // Parent split: separate the largest parent-label group.
        if let Some(part) = parent_split(stable, partition, ms, parents) {
            out.push((cluster, part));
        }
    }
    out
}

fn value_split(stable: &StableSummary, partition: &[u32], members: &[u32]) -> Option<Vec<u32>> {
    // Per-member total child count into each target cluster; find the
    // direction with the largest weighted variance.
    let mut per_target: FxHashMap<u32, (f64, f64, f64)> = FxHashMap::default(); // (n, Σk, Σk²)
    let mut ks: Vec<FxHashMap<u32, u64>> = Vec::with_capacity(members.len());
    for &s in members {
        let node = stable.node(SynNodeId(s));
        let mut k: FxHashMap<u32, u64> = FxHashMap::default();
        for &(t, c) in &node.children {
            let slot = k.entry(partition[t.index()]).or_insert(0);
            *slot = slot.saturating_add(u64::from(c));
        }
        let w = node.extent as f64;
        for (&t, &c) in &k {
            let e = per_target.entry(t).or_insert((0.0, 0.0, 0.0));
            e.0 += w;
            e.1 += w * c as f64;
            e.2 += w * c as f64 * c as f64;
        }
        ks.push(k);
    }
    let total_w: f64 = members
        .iter()
        .map(|&s| stable.node(SynNodeId(s)).extent as f64)
        .sum();
    // total_cmp plus the key tie-break makes the winner independent of
    // the map's iteration order even when variances tie exactly.
    let (&target, _) = per_target.iter().max_by(|a, b| {
        let var = |(_, &(_, sum, sum2)): &(&u32, &(f64, f64, f64))| sum2 - sum * sum / total_w;
        var(a).total_cmp(&var(b)).then_with(|| a.0.cmp(b.0))
    })?;
    let mut keyed: Vec<(u64, u32)> = members
        .iter()
        .zip(&ks)
        .map(|(&s, k)| (k.get(&target).copied().unwrap_or(0), s))
        .collect();
    keyed.sort_unstable();
    let mid = keyed.len() / 2;
    let mut cut = mid.max(1);
    while cut < keyed.len() && keyed[cut].0 == keyed[cut - 1].0 {
        cut += 1;
    }
    if cut >= keyed.len() {
        cut = 1;
        while cut < keyed.len() && keyed[cut].0 == keyed[0].0 {
            cut += 1;
        }
        if cut >= keyed.len() {
            return None; // all equal along every direction examined
        }
    }
    Some(keyed[..cut].iter().map(|&(_, s)| s).collect())
}

fn parent_split(
    _stable: &StableSummary,
    partition: &[u32],
    members: &[u32],
    parents: &[Vec<(SynNodeId, u32)>],
) -> Option<Vec<u32>> {
    let mut groups: FxHashMap<Vec<u32>, Vec<u32>> = FxHashMap::default();
    for &s in members {
        let mut parent_clusters: Vec<u32> = parents[s as usize]
            .iter()
            .map(|&(p, _)| partition[p.index()])
            .collect();
        parent_clusters.sort_unstable();
        parent_clusters.dedup();
        groups.entry(parent_clusters).or_default().push(s);
    }
    if groups.len() < 2 {
        return None;
    }
    groups
        .into_values()
        .max_by_key(|g| g.len())
        .filter(|g| g.len() < members.len())
}

fn apply_split(
    partition: &[u32],
    num_clusters: usize,
    cluster: u32,
    split_off: &[u32],
) -> (Vec<u32>, usize) {
    let mut new_partition = partition.to_vec();
    let new_id = axqa_xml::dense_id(num_clusters);
    for &s in split_off {
        debug_assert_eq!(partition[s as usize], cluster);
        new_partition[s as usize] = new_id;
    }
    (new_partition, num_clusters + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use axqa_eval::{selectivity, DocIndex};
    use axqa_query::parse_twig;
    use axqa_synopsis::build_stable;
    use axqa_xml::parse_document;

    fn doc_with_structure() -> axqa_xml::Document {
        // a's under r have b children; a's under d have c children —
        // the label-split graph confuses them.
        let mut src = String::from("<r>");
        for _ in 0..4 {
            src.push_str("<a><b/><b/></a>");
        }
        for _ in 0..4 {
            src.push_str("<d><a><c/></a></d>");
        }
        src.push_str("</r>");
        parse_document(&src).unwrap()
    }

    fn workload(doc: &axqa_xml::Document) -> Vec<(TwigQuery, f64)> {
        let index = DocIndex::build(doc);
        [
            "q1: q0 /a\nq2: q1 /b",
            "q1: q0 //d/a\nq2: q1 /c",
            "q1: q0 //a[b]",
        ]
        .iter()
        .map(|t| {
            let q = parse_twig(t).unwrap();
            let s = selectivity(doc, &index, &q);
            (q, s)
        })
        .collect()
    }

    #[test]
    fn refinement_improves_workload_error() {
        let doc = doc_with_structure();
        let stable = build_stable(&doc);
        let wl = workload(&doc);
        let coarse = {
            let (p, n) = XSketch::label_split_partition(&stable);
            XSketch::from_partition(&stable, &p, n, 8)
        };
        let refined = build_xsketch(&stable, &wl, &XsBuildConfig::with_budget(4096));
        let err = |xs: &XSketch| -> f64 {
            wl.iter()
                .map(|(q, exact)| {
                    let est = xs_estimate_selectivity(xs, q, &XsEvalConfig::default());
                    (exact - est).abs() / est.max(1.0)
                })
                .sum::<f64>()
                / wl.len() as f64
        };
        assert!(
            err(&refined) <= err(&coarse) + 1e-12,
            "refined {} vs coarse {}",
            err(&refined),
            err(&coarse)
        );
        assert!(refined.size_bytes() <= 4096);
    }

    #[test]
    fn tiny_budget_stays_at_label_split() {
        let doc = doc_with_structure();
        let stable = build_stable(&doc);
        let wl = workload(&doc);
        let xs = build_xsketch(&stable, &wl, &XsBuildConfig::with_budget(1));
        assert_eq!(xs.len(), doc.labels().len());
    }

    #[test]
    fn splits_are_label_respecting_partitions() {
        let doc = doc_with_structure();
        let stable = build_stable(&doc);
        let wl = workload(&doc);
        let xs = build_xsketch(&stable, &wl, &XsBuildConfig::with_budget(8192));
        // Every node's extent is non-empty and counts add up.
        let total: u64 = xs.nodes().iter().map(|n| n.count).sum();
        assert_eq!(total, doc.len() as u64);
    }
}
