//! XMark-style auction-site documents.
//!
//! Mirrors the XMark benchmark's structure at the element level: a
//! `site` with regions/categories/people/open_auctions/closed_auctions,
//! items whose descriptions contain *recursive* `parlist`/`listitem`
//! markup (the recursion that makes compressed synopses cyclic), people
//! with correlated optional profile blocks, and auctions with varying
//! bidder lists. Structural diversity is high, matching the paper's
//! Table 1 (XMark's stable summary is the largest fraction of document
//! size among the four datasets).

use crate::GenConfig;
use axqa_xml::{Document, DocumentBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates an XMark-style document.
pub fn generate(config: &GenConfig) -> Document {
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x9e3779b97f4a7c15);
    let mut b = DocumentBuilder::new("site");

    // Fixed region skeleton, items distributed round-robin.
    const REGIONS: [&str; 6] = [
        "africa",
        "asia",
        "australia",
        "europe",
        "namerica",
        "samerica",
    ];
    b.open("regions");
    let mut region_nodes = Vec::new();
    for region in REGIONS {
        region_nodes.push(b.open(region));
        b.close();
    }
    b.close();

    // Round-robin sections until the target is met: 40% items, 25%
    // people, 20% open auctions, 15% closed auctions.
    b.open("categories");
    while b.len() < config.target_elements / 25 {
        b.open("category");
        b.leaf("name");
        b.open("description");
        gen_text(&mut b, &mut rng, 2);
        b.close();
        b.close();
    }
    b.close();

    b.open("regions2"); // flattened item area (regions already emitted)
    while b.len() < config.target_elements * 2 / 5 {
        gen_item(&mut b, &mut rng);
    }
    b.close();

    b.open("people");
    while b.len() < config.target_elements * 13 / 20 {
        gen_person(&mut b, &mut rng);
    }
    b.close();

    b.open("open_auctions");
    while b.len() < config.target_elements * 17 / 20 {
        gen_open_auction(&mut b, &mut rng);
    }
    b.close();

    b.open("closed_auctions");
    while b.len() < config.target_elements {
        gen_closed_auction(&mut b, &mut rng);
    }
    b.close();

    b.finish()
}

fn gen_item(b: &mut DocumentBuilder, rng: &mut StdRng) {
    b.open("item");
    b.leaf("location");
    b.leaf_with_value("quantity", rng.gen_range(1..=10) as f64);
    b.leaf("name");
    b.open("payment");
    b.close();
    b.open("description");
    gen_text(b, rng, 0);
    b.close();
    b.open("shipping");
    b.close();
    // 0–3 incategory references.
    for _ in 0..rng.gen_range(0..=3) {
        b.leaf("incategory");
    }
    if rng.gen_bool(0.4) {
        b.open("mailbox");
        for _ in 0..rng.gen_range(1..=3) {
            b.open("mail");
            b.leaf("from");
            b.leaf("to");
            b.leaf("date");
            gen_text(b, rng, 1);
            b.close();
        }
        b.close();
    }
    b.close();
}

/// The recursive description markup: text | parlist(listitem+), where a
/// listitem may itself contain a parlist — geometric recursion depth.
fn gen_text(b: &mut DocumentBuilder, rng: &mut StdRng, depth: u32) {
    if depth >= 4 || rng.gen_bool(0.6) {
        b.leaf("text");
        return;
    }
    b.open("parlist");
    for _ in 0..rng.gen_range(1..=3) {
        b.open("listitem");
        gen_text(b, rng, depth + 1);
        b.close();
    }
    b.close();
}

fn gen_person(b: &mut DocumentBuilder, rng: &mut StdRng) {
    b.open("person");
    b.leaf("name");
    b.leaf("emailaddress");
    if rng.gen_bool(0.5) {
        b.leaf("phone");
    }
    if rng.gen_bool(0.4) {
        b.open("address");
        b.leaf("street");
        b.leaf("city");
        b.leaf("country");
        b.leaf("zipcode");
        b.close();
    }
    if rng.gen_bool(0.3) {
        b.leaf("homepage");
    }
    if rng.gen_bool(0.25) {
        b.leaf("creditcard");
    }
    // Profile correlates: interest count and education/gender presence.
    if rng.gen_bool(0.6) {
        b.open("profile");
        for _ in 0..rng.gen_range(0..=5) {
            b.leaf("interest");
        }
        if rng.gen_bool(0.5) {
            b.leaf("education");
        }
        if rng.gen_bool(0.5) {
            b.leaf("gender");
        }
        b.leaf("business");
        if rng.gen_bool(0.7) {
            b.leaf("age");
        }
        b.close();
    }
    if rng.gen_bool(0.35) {
        b.open("watches");
        for _ in 0..rng.gen_range(1..=4) {
            b.leaf("watch");
        }
        b.close();
    }
    b.close();
}

fn gen_open_auction(b: &mut DocumentBuilder, rng: &mut StdRng) {
    b.open("open_auction");
    b.leaf_with_value("initial", (rng.gen_range(100..=50_000) as f64) / 100.0);
    if rng.gen_bool(0.5) {
        b.leaf("reserve");
    }
    // Bidder list: geometric length.
    let mut bidders = 0;
    while bidders < 12 && rng.gen_bool(0.65) {
        b.open("bidder");
        b.leaf("date");
        b.leaf("time");
        b.leaf("personref");
        b.leaf_with_value("increase", (rng.gen_range(100..=5_000) as f64) / 100.0);
        b.close();
        bidders += 1;
    }
    b.leaf("current");
    if rng.gen_bool(0.3) {
        b.leaf("privacy");
    }
    b.leaf("itemref");
    b.leaf("seller");
    b.open("annotation");
    b.leaf("author");
    gen_text(b, rng, 1);
    b.close();
    b.leaf("quantity");
    b.leaf("type");
    b.leaf("interval");
    b.close();
}

fn gen_closed_auction(b: &mut DocumentBuilder, rng: &mut StdRng) {
    b.open("closed_auction");
    b.leaf("seller");
    b.leaf("buyer");
    b.leaf("itemref");
    b.leaf_with_value("price", (rng.gen_range(100..=100_000) as f64) / 100.0);
    b.leaf("date");
    b.leaf("quantity");
    b.leaf("type");
    if rng.gen_bool(0.5) {
        b.open("annotation");
        b.leaf("author");
        gen_text(b, rng, 1);
        b.close();
    }
    b.close();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_recursive_markup() {
        let doc = generate(&GenConfig::sized(20_000));
        // Find a parlist nested inside another parlist's listitem.
        let parlist = doc.labels().get("parlist").expect("parlist exists");
        let mut nested = false;
        for n in doc.node_ids() {
            if doc.label(n) != parlist {
                continue;
            }
            let mut up = doc.parent(n);
            while let Some(p) = up {
                if doc.label(p) == parlist {
                    nested = true;
                    break;
                }
                up = doc.parent(p);
            }
            if nested {
                break;
            }
        }
        assert!(nested, "expected nested parlist recursion");
    }

    #[test]
    fn has_expected_sections() {
        let doc = generate(&GenConfig::sized(8_000));
        for tag in [
            "site",
            "person",
            "open_auction",
            "closed_auction",
            "item",
            "bidder",
        ] {
            assert!(doc.labels().get(tag).is_some(), "missing {tag}");
        }
        assert_eq!(doc.label_name(doc.root()), "site");
    }
}
