// Examples/integration tests are demo code: panicking extractors are fine.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::arithmetic_side_effects
)]

//! §6.1: "our experiments with negative workloads have shown that
//! TreeSketches consistently produce empty answers as approximations."
//!
//! Verified here across datasets and budgets: every provably-empty query
//! yields an empty approximate answer (and estimate 0), at any level of
//! compression down to the label-split floor.

use axqa::datagen::workload::{negative_workload, WorkloadConfig};
use axqa::prelude::*;

#[test]
fn negative_queries_answer_empty_at_all_budgets() {
    for dataset in [Dataset::Imdb, Dataset::Dblp] {
        let doc = generate(
            dataset,
            &GenConfig {
                target_elements: 10_000,
                seed: 0x4E6,
            },
        );
        let stable = build_stable(&doc);
        let index = DocIndex::build(&doc);
        let negatives = negative_workload(
            &stable,
            &WorkloadConfig {
                count: 30,
                seed: 0x4E6 ^ 7,
                ..WorkloadConfig::default()
            },
        );
        // Confirm ground truth emptiness first.
        for query in &negatives {
            assert_eq!(
                selectivity(&doc, &index, query),
                0.0,
                "{}: not actually empty: {query}",
                dataset.name()
            );
        }
        let full = SizeModel::TREESKETCH.graph_bytes(stable.len(), stable.num_edges());
        for budget in [1usize, full / 8, full] {
            let sketch = ts_build(&stable, &BuildConfig::with_budget(budget)).sketch;
            for query in &negatives {
                let answer = eval_query(&sketch, query, &EvalConfig::default());
                assert!(
                    answer.is_none(),
                    "{} @ {budget}B: non-empty approximate answer for {query}",
                    dataset.name()
                );
                let estimate = axqa::core::selectivity::estimate_query_selectivity(
                    &sketch,
                    query,
                    &EvalConfig::default(),
                );
                assert_eq!(estimate, 0.0);
            }
        }
    }
}
