//! Exporters for a drained [`Snapshot`]: Chrome `trace_event` JSON for
//! `chrome://tracing`/Perfetto, and the flat `axqa-obs/2` metrics
//! document embedded in bench reports (DESIGN.md §9, §12).
//!
//! Both are hand-rolled JSON, same as the bench/lint reports — the
//! crate stays dependency-free.

use std::collections::BTreeMap;

use crate::recorder::{Snapshot, SpanRecord};

/// Escapes a string for embedding in a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the snapshot as Chrome `trace_event` JSON (`ph: B`/`E`
/// duration events). Open the file in `chrome://tracing` or
/// <https://ui.perfetto.dev> to see per-thread TSBUILD/EVALQUERY
/// timelines; span args (budget bytes, element counts) appear on the
/// `B` events.
pub fn chrome_trace(snapshot: &Snapshot) -> String {
    // Group spans per thread: Chrome requires B/E events of one tid to
    // nest properly, and threads are independent timelines anyway.
    let mut by_tid: BTreeMap<u64, Vec<&SpanRecord>> = BTreeMap::new();
    for span in &snapshot.spans {
        by_tid.entry(span.tid).or_default().push(span);
    }
    let mut events: Vec<String> = Vec::with_capacity(snapshot.spans.len() * 2);
    for (tid, mut spans) in by_tid {
        spans.sort_by_key(|s| (s.start_us, s.id));
        // Completed spans arrive as flat (start, end) intervals; replay
        // them against a stack to interleave B/E events in timestamp
        // order with proper nesting.
        let mut open: Vec<&SpanRecord> = Vec::new();
        for span in spans {
            while let Some(top) = open.last() {
                if top.end_us <= span.start_us {
                    events.push(end_event(snapshot.process_id, tid, top));
                    open.pop();
                } else {
                    break;
                }
            }
            events.push(begin_event(snapshot.process_id, tid, span));
            open.push(span);
        }
        while let Some(top) = open.pop() {
            events.push(end_event(snapshot.process_id, tid, top));
        }
    }
    let mut out = String::from("{\"traceEvents\": [\n");
    out.push_str(&events.join(",\n"));
    out.push_str("\n]}\n");
    out
}

fn begin_event(pid: u32, tid: u64, span: &SpanRecord) -> String {
    let mut event = format!(
        "{{\"name\": \"{}\", \"cat\": \"axqa\", \"ph\": \"B\", \"ts\": {}, \"pid\": {}, \"tid\": {}",
        escape_json(span.name),
        span.start_us,
        pid,
        tid
    );
    if let Some((key, value)) = span.arg {
        event.push_str(&format!(
            ", \"args\": {{\"{}\": {}}}",
            escape_json(key),
            value
        ));
    }
    event.push('}');
    event
}

fn end_event(pid: u32, tid: u64, span: &SpanRecord) -> String {
    format!(
        "{{\"name\": \"{}\", \"cat\": \"axqa\", \"ph\": \"E\", \"ts\": {}, \"pid\": {}, \"tid\": {}}}",
        escape_json(span.name),
        span.end_us,
        pid,
        tid
    )
}

/// Renders the snapshot as the flat `axqa-obs/2` metrics document:
/// counter totals, histogram summaries, and per-name span aggregates
/// (count / total / max microseconds, plus the allocation events,
/// bytes, and worst peak-live delta exclusively attributed to spans of
/// that name — all zero unless the binary installed
/// [`crate::alloc::CountingAlloc`]). This is what `harness bench
/// baseline` embeds in BENCH_core.json and writes to `--metrics PATH`.
pub fn metrics_json(snapshot: &Snapshot) -> String {
    let mut out = String::from("{\n  \"schema\": \"axqa-obs/2\",\n");
    out.push_str(&format!("  \"process_id\": {},\n", snapshot.process_id));

    out.push_str("  \"counters\": {");
    let counters: Vec<String> = snapshot
        .counters
        .iter()
        .map(|(name, value)| format!("\n    \"{}\": {}", escape_json(name), value))
        .collect();
    out.push_str(&counters.join(","));
    if !counters.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("},\n");

    out.push_str("  \"histograms\": {");
    let histograms: Vec<String> = snapshot
        .histograms
        .iter()
        .map(|(name, hist)| {
            let buckets: Vec<String> = hist.buckets.iter().map(u64::to_string).collect();
            format!(
                "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"max\": {}, \"buckets\": [{}]}}",
                escape_json(name),
                hist.count,
                hist.sum,
                hist.max,
                buckets.join(", ")
            )
        })
        .collect();
    out.push_str(&histograms.join(","));
    if !histograms.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("},\n");

    // Aggregate spans by name: the trace file has the full timeline,
    // the metrics document only the totals.
    #[derive(Default)]
    struct SpanAgg {
        count: u64,
        total_us: u64,
        max_us: u64,
        allocs: u64,
        alloc_bytes: u64,
        peak_live_bytes: u64,
    }
    let mut by_name: BTreeMap<&str, SpanAgg> = BTreeMap::new();
    for span in &snapshot.spans {
        let duration = span.end_us.saturating_sub(span.start_us);
        let entry = by_name.entry(span.name).or_default();
        entry.count += 1;
        entry.total_us = entry.total_us.saturating_add(duration);
        entry.max_us = entry.max_us.max(duration);
        entry.allocs = entry.allocs.saturating_add(span.alloc_count);
        entry.alloc_bytes = entry.alloc_bytes.saturating_add(span.alloc_bytes);
        entry.peak_live_bytes = entry.peak_live_bytes.max(span.peak_live_delta);
    }
    out.push_str("  \"spans\": {");
    let spans: Vec<String> = by_name
        .iter()
        .map(|(name, agg)| {
            format!(
                "\n    \"{}\": {{\"count\": {}, \"total_us\": {}, \"max_us\": {}, \
                 \"allocs\": {}, \"alloc_bytes\": {}, \"peak_live_bytes\": {}}}",
                escape_json(name),
                agg.count,
                agg.total_us,
                agg.max_us,
                agg.allocs,
                agg.alloc_bytes,
                agg.peak_live_bytes,
            )
        })
        .collect();
    out.push_str(&spans.join(","));
    if !spans.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("}\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_json_handles_specials() {
        assert_eq!(escape_json("plain"), "plain");
        assert_eq!(escape_json("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape_json("line\nbreak\ttab"), "line\\nbreak\\ttab");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }

    #[test]
    fn empty_snapshot_exports_are_valid_shapes() {
        let snapshot = Snapshot::default();
        let trace = chrome_trace(&snapshot);
        assert!(trace.starts_with("{\"traceEvents\": ["));
        assert!(trace.trim_end().ends_with("]}"));
        let metrics = metrics_json(&snapshot);
        assert!(metrics.contains("\"schema\": \"axqa-obs/2\""));
        assert!(metrics.contains("\"counters\": {}"));
        assert!(metrics.contains("\"spans\": {}"));
    }

    #[test]
    fn sibling_spans_close_before_the_next_opens() {
        let snapshot = Snapshot {
            process_id: 7,
            spans: vec![
                crate::SpanRecord {
                    name: "first",
                    id: 1,
                    parent: None,
                    tid: 0,
                    start_us: 10,
                    end_us: 20,
                    arg: None,
                    alloc_count: 0,
                    alloc_bytes: 0,
                    peak_live_delta: 0,
                },
                crate::SpanRecord {
                    name: "second",
                    id: 2,
                    parent: None,
                    tid: 0,
                    start_us: 30,
                    end_us: 40,
                    arg: None,
                    alloc_count: 0,
                    alloc_bytes: 0,
                    peak_live_delta: 0,
                },
            ],
            counters: Vec::new(),
            histograms: Vec::new(),
        };
        let trace = chrome_trace(&snapshot);
        let first_end = trace.find("\"ph\": \"E\", \"ts\": 20").expect("first E");
        let second_begin = trace.find("\"name\": \"second\"").expect("second B");
        assert!(first_end < second_begin, "E(first) must precede B(second)");
    }
}
