// Benchmarks are test-like code: panicking extractors are acceptable here.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::arithmetic_side_effects
)]

//! Table 3 — construction time: TSBUILD (stable → label-split floor) vs
//! the workload-driven twig-XSketch build (label-split → 10 KB).
//!
//! The paper reports minutes on 2004 hardware at full scale; here the
//! datasets are scaled down and the *ratio* between the techniques is
//! the reproduced shape (TreeSketch construction is the faster of the
//! two because it never evaluates a query workload).

/// Bench binaries install the counting allocator (DESIGN.md §12)
/// so recorded spans carry real allocation profiles.
#[global_allocator]
static ALLOC: axqa_obs::alloc::CountingAlloc = axqa_obs::alloc::CountingAlloc;

use axqa_bench::Fixture;
use axqa_core::{ts_build, BuildConfig};
use axqa_datagen::Dataset;
use axqa_xsketch::build::{build_xsketch, XsBuildConfig};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_construction");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(5));
    for dataset in [Dataset::Imdb, Dataset::XMark, Dataset::SProt] {
        let fixture = Fixture::new(dataset, 20_000, 0);
        let build_workload = fixture.build_workload(20);
        group.bench_function(format!("treesketch/{}", dataset.name()), |b| {
            b.iter(|| ts_build(&fixture.stable, &BuildConfig::with_budget(1)))
        });
        // Serial vs parallel CREATEPOOL scoring at the same budget: the
        // outputs are bit-identical, only the wall time differs.
        let mut serial = BuildConfig::with_budget(1);
        serial.threads = 1;
        group.bench_function(format!("treesketch_serial/{}", dataset.name()), |b| {
            b.iter(|| ts_build(&fixture.stable, &serial))
        });
        let mut parallel = BuildConfig::with_budget(1);
        parallel.threads = 0;
        group.bench_function(format!("treesketch_parallel/{}", dataset.name()), |b| {
            b.iter(|| ts_build(&fixture.stable, &parallel))
        });
        group.bench_function(format!("twig_xsketch/{}", dataset.name()), |b| {
            b.iter(|| {
                build_xsketch(
                    &fixture.stable,
                    &build_workload,
                    &XsBuildConfig::with_budget(10 * 1024),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_construction);
criterion_main!(benches);
