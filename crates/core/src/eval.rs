//! `EVALQUERY` and `EVALEMBED` (§4.3, Figures 7 and 8): approximate twig
//! answering over a TreeSketch.
//!
//! The algorithm processes query variables top-down. For every binding
//! node `uQ(u, q)` and child variable `qc` it enumerates the *embeddings*
//! of the main path of `path(q, qc)` in the synopsis starting from `u`,
//! estimates the per-element descendant count of each embedding as the
//! product of the traversed average edge counts, scales by the branch
//! predicates' selectivities, and aggregates counts per endpoint
//! (Fig. 7, lines 4–13). Branch selectivity uses the inclusion–exclusion
//! principle over per-embedding-endpoint fractions: with independence,
//! `s = 1 − Π(1 − k_l)` — the closed form of the paper's line 11 — and
//! `s = 1` as soon as some endpoint count reaches 1 (lines 8–9).
//!
//! Compressed synopses can be cyclic (recursive markup merged into one
//! cluster), so descendant-axis enumeration is bounded by a path-length
//! cap (defaulting to the synopsis height, the longest real downward
//! path) and prunes embeddings whose accumulated count drops below a
//! small ε (DESIGN.md §4.3).

use crate::sketch::{TreeSketch, TsNodeId};
use axqa_query::{Axis, QVar, ResolvedPath, ResolvedStep, TwigQuery};
use axqa_xml::fxhash::FxHashMap;
use axqa_xml::{LabelId, LabelTable};
use std::collections::hash_map::Entry;

/// Evaluation knobs.
#[derive(Debug, Clone)]
pub struct EvalConfig {
    /// Max synopsis edges a single descendant step may traverse; `None`
    /// uses the synopsis height + 1.
    pub max_descendant_depth: Option<u32>,
    /// Embeddings whose accumulated count falls below this are pruned.
    pub epsilon: f64,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            max_descendant_depth: None,
            epsilon: 1e-9,
        }
    }
}

/// One node of a result sketch: elements of TreeSketch node `ts` bound to
/// query variable `var`.
#[derive(Debug, Clone)]
pub struct RNode {
    /// Source synopsis node.
    pub ts: TsNodeId,
    /// Query variable the elements bind to.
    pub var: QVar,
    /// Label (copied from the synopsis node).
    pub label: LabelId,
    /// Estimated number of bindings (extent of this result node).
    pub ext: f64,
    /// Outgoing edges `(result node, average descendant count)`.
    pub edges: Vec<(u32, f64)>,
}

/// The result TreeSketch `T S_Q`: a synopsis of the nesting tree.
///
/// Nodes are keyed by `(synopsis node, query variable)` — at most
/// `O(|T S| · |Q|)` of them (§4.3) — and form a DAG because variables
/// strictly deepen along edges.
#[derive(Debug, Clone)]
pub struct ResultSketch {
    labels: LabelTable,
    nodes: Vec<RNode>,
    /// `bind[q]` — result nodes holding bindings of each variable.
    by_var: Vec<Vec<u32>>,
}

impl ResultSketch {
    /// The root binding `(root cluster, q0)` (§4.3: `q0` binds the
    /// document root).
    pub fn root(&self) -> u32 {
        0
    }

    /// All result nodes of the §4.3 result sketch (index 0 is the root).
    pub fn nodes(&self) -> &[RNode] {
        &self.nodes
    }

    /// Result nodes binding `var` (§4.3).
    pub fn bindings(&self, var: QVar) -> &[u32] {
        &self.by_var[var.index()]
    }

    /// The label table (shared vocabulary with the §3.2 synopsis).
    pub fn labels(&self) -> &LabelTable {
        &self.labels
    }

    /// Estimated total bindings of `var` (Σ ext over its nodes, §4.4).
    pub fn estimated_bindings(&self, var: QVar) -> f64 {
        self.by_var[var.index()]
            .iter()
            .map(|&i| self.nodes[i as usize].ext)
            .sum()
    }

    /// Renders the §4.3 result sketch readably for tests and examples.
    pub fn dump(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (i, node) in self.nodes.iter().enumerate() {
            let _ = write!(
                out,
                "r{} {}({:.3}) {}",
                i,
                self.labels.name(node.label),
                node.ext,
                node.var
            );
            for &(t, k) in &node.edges {
                let _ = write!(out, " -{k:.3}-> r{t}");
            }
            let _ = writeln!(out);
        }
        out
    }
}

/// Insertion-ordered weight accumulator: an `FxHashMap` keyed index
/// into a dense entry vector. Iteration follows first-insertion order,
/// so pooled reuse across queries cannot perturb accumulation order
/// (and therefore float results) the way reusing a raw hash map's
/// capacity-dependent iteration order would.
#[derive(Debug)]
struct WeightMap<K> {
    index: FxHashMap<K, u32>,
    entries: Vec<(K, f64)>,
}

impl<K> Default for WeightMap<K> {
    fn default() -> Self {
        WeightMap {
            index: FxHashMap::default(),
            entries: Vec::new(),
        }
    }
}

impl<K: std::hash::Hash + Eq + Copy> WeightMap<K> {
    fn add(&mut self, key: K, weight: f64) {
        match self.index.entry(key) {
            Entry::Occupied(slot) => {
                self.entries[*slot.get() as usize].1 += weight;
            }
            Entry::Vacant(slot) => {
                slot.insert(axqa_xml::dense_id(self.entries.len()));
                self.entries.push((key, weight));
            }
        }
    }

    fn clear(&mut self) {
        self.index.clear();
        self.entries.clear();
    }

    fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn entries(&self) -> &[(K, f64)] {
        &self.entries
    }
}

/// Reusable workspace for [`eval_query_with_scratch`]: the result-graph
/// buffers plus pools of the subset-automaton frontier/endpoint maps, so
/// a serving loop evaluating many twigs over one synopsis (§4.3) stops
/// paying per-query allocation once the buffers reach steady state.
#[derive(Debug, Default)]
pub struct EvalScratch {
    nodes: Vec<RNode>,
    by_var: Vec<Vec<u32>>,
    node_index: FxHashMap<(u32, u32), u32>,
    sorted: Vec<(TsNodeId, f64)>,
    keep: Vec<bool>,
    alive: Vec<bool>,
    remap: Vec<u32>,
    /// Pooled `(node, state-set) -> weight` frontier maps. The pattern
    /// walk is re-entrant (branch predicates recurse into
    /// `path_counts`), so maps are acquired/released rather than owned.
    state_pool: Vec<WeightMap<(TsNodeId, u64)>>,
    /// Pooled per-endpoint count maps (`path_counts` results).
    count_pool: Vec<WeightMap<TsNodeId>>,
    /// Pooled uncertain-advance buffers (`consume_edge` locals).
    uncertain_pool: Vec<Vec<(u64, f64)>>,
}

impl EvalScratch {
    /// Fresh, empty workspace for the §4.3 serving loop.
    pub fn new() -> EvalScratch {
        EvalScratch::default()
    }

    fn begin(&mut self, num_vars: usize) {
        self.nodes.clear();
        self.node_index.clear();
        for list in &mut self.by_var {
            list.clear();
        }
        self.by_var.resize_with(num_vars, Vec::new);
    }

    fn acquire_states(&mut self) -> WeightMap<(TsNodeId, u64)> {
        self.state_pool.pop().unwrap_or_default()
    }

    fn release_states(&mut self, mut map: WeightMap<(TsNodeId, u64)>) {
        map.clear();
        self.state_pool.push(map);
    }

    fn acquire_counts(&mut self) -> WeightMap<TsNodeId> {
        self.count_pool.pop().unwrap_or_default()
    }

    fn release_counts(&mut self, mut map: WeightMap<TsNodeId>) {
        map.clear();
        self.count_pool.push(map);
    }

    fn acquire_uncertain(&mut self) -> Vec<(u64, f64)> {
        self.uncertain_pool.pop().unwrap_or_default()
    }

    fn release_uncertain(&mut self, mut buf: Vec<(u64, f64)>) {
        buf.clear();
        self.uncertain_pool.push(buf);
    }
}

/// `EVALQUERY` (Fig. 7): evaluates `query` over `sketch`, returning the
/// result sketch, or `None` when a required variable ends up with no
/// bindings (lines 15–16: the approximate answer is empty).
///
/// ```
/// use axqa_xml::parse_document;
/// use axqa_synopsis::build_stable;
/// use axqa_core::{eval_query, EvalConfig, TreeSketch};
/// use axqa_query::{parse_twig, QVar};
///
/// let doc = parse_document("<r><a><k/></a><a><k/><k/></a></r>").unwrap();
/// let sketch = TreeSketch::from_stable(&build_stable(&doc));
/// let query = parse_twig("q1: q0 //a\nq2: q1 /k").unwrap();
/// let result = eval_query(&sketch, &query, &EvalConfig::default()).unwrap();
/// assert_eq!(result.estimated_bindings(QVar(2)), 3.0); // exact on stable
/// ```
pub fn eval_query(
    sketch: &TreeSketch,
    query: &TwigQuery,
    config: &EvalConfig,
) -> Option<ResultSketch> {
    eval_query_with_values(sketch, query, config, None)
}

/// [`eval_query`] with a value layer: steps carrying value predicates
/// (`[. > c]`) are scaled by the endpoint cluster's value selectivity.
/// Without a [`ValueIndex`] value predicates are ignored (the §4.3
/// structural
/// upper bound).
pub fn eval_query_with_values(
    sketch: &TreeSketch,
    query: &TwigQuery,
    config: &EvalConfig,
    values: Option<&crate::values::ValueIndex>,
) -> Option<ResultSketch> {
    let mut scratch = EvalScratch::new();
    eval_query_with_scratch(sketch, query, config, values, &mut scratch)
}

/// [`eval_query_with_values`] over a caller-owned [`EvalScratch`]: one
/// workspace amortizes the §4.3 evaluation buffers (result graph,
/// automaton frontiers, endpoint maps) across a whole query workload.
pub fn eval_query_with_scratch(
    sketch: &TreeSketch,
    query: &TwigQuery,
    config: &EvalConfig,
    values: Option<&crate::values::ValueIndex>,
    scratch: &mut EvalScratch,
) -> Option<ResultSketch> {
    let _span = axqa_obs::span_with("EVALQUERY", "vars", query.num_vars() as u64);
    let labels = sketch.labels();
    let resolved: Vec<ResolvedPath> = query
        .vars()
        .skip(1)
        .map(|v| query.node(v).path.resolve(labels))
        .collect();
    let max_depth = config
        .max_descendant_depth
        .unwrap_or_else(|| sketch.height().saturating_add(1));
    let walker = Walker {
        sketch,
        epsilon: config.epsilon,
        max_depth,
        values,
    };

    scratch.begin(query.num_vars());
    scratch.nodes.push(RNode {
        ts: sketch.root(),
        var: QVar::ROOT,
        label: sketch.node(sketch.root()).label,
        ext: 1.0,
        edges: Vec::new(),
    });
    scratch.by_var[0].push(0);
    scratch.node_index.insert((sketch.root().0, 0), 0);

    // Pre-order over variables: numeric order is parent-before-child.
    // Iteration is by index because the inner body appends bindings of
    // the strictly deeper variable `qc` (never `var`).
    for var in query.vars() {
        for qc in query.children(var) {
            let path = &resolved[qc.index() - 1];
            for bi in 0..scratch.by_var[var.index()].len() {
                let uq = scratch.by_var[var.index()][bi];
                let context = scratch.nodes[uq as usize].ts;
                let counts = walker.path_counts(context, &path.steps, scratch);
                let src_ext = scratch.nodes[uq as usize].ext;
                let mut sorted = std::mem::take(&mut scratch.sorted);
                sorted.clear();
                sorted.extend_from_slice(counts.entries());
                scratch.release_counts(counts);
                sorted.sort_unstable_by_key(|&(v, _)| v);
                for &(v, k) in &sorted {
                    if k <= config.epsilon {
                        continue;
                    }
                    let key = (v.0, qc.0);
                    let vq = match scratch.node_index.get(&key) {
                        Some(&vq) => vq,
                        None => {
                            let vq = axqa_xml::dense_id(scratch.nodes.len());
                            scratch.nodes.push(RNode {
                                ts: v,
                                var: qc,
                                label: sketch.node(v).label,
                                ext: 0.0,
                                edges: Vec::new(),
                            });
                            scratch.node_index.insert(key, vq);
                            scratch.by_var[qc.index()].push(vq);
                            vq
                        }
                    };
                    scratch.nodes[vq as usize].ext += src_ext * k;
                    // count(uQ, vQ) += k (Fig. 7 line 12).
                    let edges = &mut scratch.nodes[uq as usize].edges;
                    match edges.iter_mut().find(|(t, _)| *t == vq) {
                        Some((_, c)) => *c += k,
                        None => edges.push((vq, k)),
                    }
                }
                scratch.sorted = sorted;
            }
        }
    }

    // Lines 15–16 generalized: prune result nodes that contribute no
    // complete binding tuple (a binding with no match for some required
    // child variable). On a count-stable synopsis classes are
    // homogeneous, so this reproduces the exact nesting tree's
    // bottom-up pruning; the paper's global emptiness check is the
    // root-level special case.
    let mut keep = std::mem::take(&mut scratch.keep);
    keep.clear();
    keep.resize(scratch.nodes.len(), true);
    for i in (0..scratch.nodes.len()).rev() {
        let node = &scratch.nodes[i];
        for qc in query.children(node.var) {
            if query.node(qc).optional {
                continue;
            }
            let mass: f64 = node
                .edges
                .iter()
                .filter(|&&(t, _)| scratch.nodes[t as usize].var == qc && keep[t as usize])
                .map(|&(_, k)| k)
                .sum();
            if mass <= config.epsilon {
                keep[i] = false;
                break;
            }
        }
    }
    if !keep[0] {
        scratch.keep = keep;
        return None;
    }
    // Compact: keep only nodes that survive pruning *and* stay
    // reachable from the root through surviving nodes (a survivor can
    // hang under a pruned ancestor). Nodes are parent-before-child and
    // edges point forward, so one forward pass settles reachability.
    let mut alive = std::mem::take(&mut scratch.alive);
    alive.clear();
    alive.resize(scratch.nodes.len(), false);
    alive[0] = true;
    for i in 0..scratch.nodes.len() {
        if !alive[i] {
            continue;
        }
        for &(t, _) in &scratch.nodes[i].edges {
            if keep[t as usize] {
                alive[t as usize] = true;
            }
        }
    }
    let mut remap = std::mem::take(&mut scratch.remap);
    remap.clear();
    remap.resize(scratch.nodes.len(), u32::MAX);
    let mut compact: Vec<RNode> = Vec::new();
    for (i, node) in scratch.nodes.iter().enumerate() {
        if !alive[i] {
            continue;
        }
        remap[i] = axqa_xml::dense_id(compact.len());
        compact.push(RNode {
            ts: node.ts,
            var: node.var,
            label: node.label,
            ext: 0.0,
            edges: node
                .edges
                .iter()
                .filter(|&&(t, _)| alive[t as usize])
                .map(|&(t, k)| (t, k))
                .collect(),
        });
    }
    for node in &mut compact {
        for (t, _) in &mut node.edges {
            *t = remap[*t as usize];
        }
    }
    scratch.keep = keep;
    scratch.alive = alive;
    scratch.remap = remap;
    // Recompute binding extents top-down over the pruned graph.
    compact[0].ext = 1.0;
    for i in 0..compact.len() {
        let ext = compact[i].ext;
        for e in 0..compact[i].edges.len() {
            let (t, k) = compact[i].edges[e];
            compact[t as usize].ext += ext * k;
        }
    }
    let mut final_by_var: Vec<Vec<u32>> = vec![Vec::new(); query.num_vars()];
    for (i, node) in compact.iter().enumerate() {
        final_by_var[node.var.index()].push(axqa_xml::dense_id(i));
    }
    for var in query.vars().skip(1) {
        if query.effectively_required(var) && final_by_var[var.index()].is_empty() {
            return None;
        }
    }

    Some(ResultSketch {
        labels: labels.clone(),
        nodes: compact,
        by_var: final_by_var,
    })
}

/// Path walker implementing `EVALEMBED` aggregation.
struct Walker<'a> {
    sketch: &'a TreeSketch,
    epsilon: f64,
    max_depth: u32,
    values: Option<&'a crate::values::ValueIndex>,
}

/// Patterns longer than this cannot be tracked in the `u64` state-set
/// bitmask; such paths match nothing (far beyond any realistic twig).
const MAX_PATTERN_STATES: usize = 62;

/// Predicate-carrying state advances beyond this many per edge are
/// resolved pessimistically instead of enumerating `2^n` outcomes.
const MAX_UNCERTAIN_ADVANCES: usize = 12;

/// One subset-automaton pass over a step pattern: the immutable pattern
/// tables plus the accumulators every consumed edge writes into.
struct PatternRun<'p> {
    /// The step pattern being matched.
    steps: &'p [ResolvedStep],
    /// Bitmask of the accepting automaton position (`1 << steps.len()`).
    accept: u64,
    /// Surviving partial paths for the next frontier level.
    next: WeightMap<(TsNodeId, u64)>,
    /// Accepted path weight per endpoint.
    out: WeightMap<TsNodeId>,
    /// Embeddings reaching the accepting position (EVALEMBED work,
    /// accumulated locally and flushed to `evalquery.embeddings_expanded`
    /// once per pattern run — no per-edge counter traffic).
    expanded: u64,
}

impl Walker<'_> {
    /// Per-endpoint counts of `steps` from `from`, keyed by the final
    /// node of the path (Fig. 7 lines 5–8).
    ///
    /// Paths are enumerated with a weighted *subset automaton* over the
    /// step pattern: every synopsis path is consumed edge by edge while
    /// tracking the set of pattern positions it could be parsed up to,
    /// and its weight (the product of average edge counts) is credited
    /// to the endpoint exactly once when the accepting position is
    /// reached. Intermediate steps are therefore existential — a path
    /// with several ways to embed the pattern (e.g. `//a//b` across
    /// nested `a`s) still counts each endpoint element once, matching
    /// the exact evaluator's binding semantics and keeping estimates
    /// exact on count-stable synopses (Theorem 4.2).
    fn path_counts(
        &self,
        from: TsNodeId,
        steps: &[ResolvedStep],
        scratch: &mut EvalScratch,
    ) -> WeightMap<TsNodeId> {
        let mut out = scratch.acquire_counts();
        if steps.is_empty() {
            out.add(from, 1.0);
            return out;
        }
        let m = steps.len();
        if m > MAX_PATTERN_STATES {
            return out;
        }
        let accept: u64 = 1u64 << m;
        // Total path-length budget: one edge per child step, up to
        // `max_depth` filler edges per descendant step. On acyclic
        // synopses this never truncates (no downward path exceeds the
        // height); on compressed cyclic synopses it bounds the walk.
        let budget: u32 = steps
            .iter()
            .map(|s| match s.axis {
                Axis::Child => 1,
                Axis::Descendant => self.max_depth.max(1),
            })
            .sum();

        // Frontier of partial paths, merged by (node, state set).
        let mut frontier = scratch.acquire_states();
        frontier.add((from, 1), 1.0);
        let mut run = PatternRun {
            steps,
            accept,
            next: scratch.acquire_states(),
            out,
            expanded: 0,
        };
        let mut states: u64 = 0;
        for _ in 0..budget {
            if frontier.is_empty() {
                break;
            }
            states = states.saturating_add(frontier.len() as u64);
            for fi in 0..frontier.len() {
                let ((u, set), weight) = frontier.entries()[fi];
                for &(v, c) in &self.sketch.node(u).edges {
                    let base = weight * c;
                    if base <= self.epsilon {
                        continue;
                    }
                    self.consume_edge(v, set, base, &mut run, scratch);
                }
            }
            frontier.clear();
            std::mem::swap(&mut frontier, &mut run.next);
        }
        axqa_obs::counter("evalquery.automaton_states", states);
        axqa_obs::counter("evalquery.embeddings_expanded", run.expanded);
        let PatternRun { next, out, .. } = run;
        scratch.release_states(frontier);
        scratch.release_states(next);
        out
    }

    /// Advances the subset-automaton state `set` across one synopsis
    /// edge into `v`, crediting accepted paths to `run.out` and
    /// surviving partial paths to `run.next`.
    fn consume_edge(
        &self,
        v: TsNodeId,
        set: u64,
        base: f64,
        run: &mut PatternRun<'_>,
        scratch: &mut EvalScratch,
    ) {
        let label = self.sketch.node(v).label;
        let steps = run.steps;
        // `stay`: positions whose next step is a descendant axis keep
        // consuming filler edges. `certain`: advances that always
        // succeed. `uncertain`: advances gated by a fractional branch /
        // value selectivity — each splits the path flow in two.
        let mut stay: u64 = 0;
        let mut certain: u64 = 0;
        let mut uncertain = scratch.acquire_uncertain();
        for (i, step) in steps.iter().enumerate() {
            if set & (1u64 << i) == 0 {
                continue;
            }
            if step.axis == Axis::Descendant {
                stay |= 1u64 << i;
            }
            if step.label == Some(label) {
                let s = self.step_selectivity(v, step, scratch);
                let advanced = 1u64 << (i + 1);
                if s >= 1.0 {
                    certain |= advanced;
                } else if s > self.epsilon {
                    uncertain.push((advanced, s));
                }
            }
        }
        if uncertain.len() > MAX_UNCERTAIN_ADVANCES {
            // Degenerate pattern (many predicate-gated advances on one
            // edge): instead of enumerating 2^n joint outcomes, emit the
            // single all-succeed outcome weighted by the joint
            // probability. This under-weights paths that only needed
            // some of the advances, which is acceptable for a bound
            // this far outside realistic queries.
            let mut joint = 1.0f64;
            for &(bits, s) in &uncertain {
                certain |= bits;
                joint *= s;
            }
            scratch.release_uncertain(uncertain);
            self.emit(v, stay | certain, base * joint, run);
            return;
        }
        // Enumerate the joint success/failure outcomes of the
        // uncertain advances (independence across predicates, §4.3).
        let outcomes = 1usize << uncertain.len();
        for outcome in 0..outcomes {
            let mut new_set = stay | certain;
            let mut p = 1.0f64;
            for (j, &(bits, s)) in uncertain.iter().enumerate() {
                if outcome & (1usize << j) != 0 {
                    new_set |= bits;
                    p *= s;
                } else {
                    p *= 1.0 - s;
                }
            }
            self.emit(v, new_set, base * p, run);
        }
        scratch.release_uncertain(uncertain);
    }

    /// Records one partial-path outcome: credit acceptance, then keep
    /// the path alive for further extension.
    fn emit(&self, v: TsNodeId, set: u64, weight: f64, run: &mut PatternRun<'_>) {
        if weight <= self.epsilon {
            return;
        }
        if set & run.accept != 0 {
            run.out.add(v, weight);
            run.expanded = run.expanded.saturating_add(1);
        }
        // The accepting position has no outgoing transitions; drop it
        // from the live set before extending.
        let live = set & !run.accept;
        if live != 0 {
            run.next.add((v, live), weight);
        }
    }

    /// Product of the step's branch selectivities at `node` (independence
    /// across predicates, §4.3).
    fn step_selectivity(
        &self,
        node: TsNodeId,
        step: &ResolvedStep,
        scratch: &mut EvalScratch,
    ) -> f64 {
        let mut s = 1.0;
        if !step.value_preds.is_empty() {
            if let Some(values) = self.values {
                s *= values.selectivity(node, &step.value_preds);
                if s <= self.epsilon {
                    return 0.0;
                }
            }
        }
        for predicate in &step.predicates {
            s *= self.branch_selectivity(node, predicate, scratch);
            if s <= self.epsilon {
                return 0.0;
            }
        }
        s
    }

    /// `EVALEMBED` lines 2–13: selectivity of one branching predicate at
    /// `node`.
    fn branch_selectivity(
        &self,
        node: TsNodeId,
        predicate: &ResolvedPath,
        scratch: &mut EvalScratch,
    ) -> f64 {
        let counts = self.path_counts(node, &predicate.steps, scratch);
        let result = if counts.is_empty() {
            0.0
        } else if counts.entries().iter().any(|&(_, k)| k >= 1.0) {
            1.0 // lines 8–9: some embedding guarantees a match
        } else {
            // Line 11: inclusion–exclusion over independent per-endpoint
            // fractions = 1 − Π(1 − k_l).
            let miss: f64 = counts
                .entries()
                .iter()
                .map(|&(_, k)| 1.0 - k.clamp(0.0, 1.0))
                .product();
            (1.0 - miss).clamp(0.0, 1.0)
        };
        scratch.release_counts(counts);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sketch::{TreeSketch, TsNode};
    use axqa_query::parse_twig;
    use axqa_synopsis::build_stable;
    use axqa_xml::{parse_document, LabelTable};

    /// Hand-builds the synopsis of the paper's Figure 9(b):
    ///
    /// ```text
    /// r(1) -10-> A; A -5-> B, -0.2-> E, -2-> D;
    /// D -0.5-> F, -0.6-> G1, -0.7-> G2; F -1.5-> C; B -2-> F
    /// ```
    fn figure9_sketch() -> TreeSketch {
        let mut labels = LabelTable::new();
        let l = |labels: &mut LabelTable, s: &str| labels.intern(s);
        let (lr, la, lb, le, ld, lf, lg, lc) = (
            l(&mut labels, "r"),
            l(&mut labels, "a"),
            l(&mut labels, "b"),
            l(&mut labels, "e"),
            l(&mut labels, "d"),
            l(&mut labels, "f"),
            l(&mut labels, "g"),
            l(&mut labels, "c"),
        );
        // ids: 0 r, 1 A, 2 B, 3 E, 4 D, 5 F, 6 G1, 7 G2, 8 C
        let n = |label, count, edges: Vec<(u32, f64)>, depth| TsNode {
            label,
            count,
            edges: edges.into_iter().map(|(t, c)| (TsNodeId(t), c)).collect(),
            depth,
        };
        let nodes = vec![
            n(lr, 1, vec![(1, 10.0)], 4),
            n(la, 10, vec![(2, 5.0), (3, 0.2), (4, 2.0)], 3),
            n(lb, 50, vec![(5, 2.0)], 2),
            n(le, 2, vec![(5, 5.0)], 2),
            n(ld, 20, vec![(5, 0.5), (6, 0.6), (7, 0.7)], 2),
            n(lf, 100, vec![(8, 1.5)], 1),
            n(lg, 12, vec![], 0),
            n(lg, 14, vec![], 0),
            n(lc, 150, vec![], 0),
        ];
        TreeSketch::from_parts(labels, nodes, TsNodeId(0), 0.0)
    }

    #[test]
    fn figure9_walkthrough() {
        let ts = figure9_sketch();
        // q1: //a ; q3: q1 d[/g]//f  (Example 4.1's numbers).
        let query = parse_twig("q1: q0 //a\nq2: q1 /d[/g]//f").unwrap();
        let result = eval_query(&ts, &query, &EvalConfig::default()).unwrap();
        // rQ -10-> AQ.
        let root = &result.nodes()[result.root() as usize];
        assert_eq!(root.edges.len(), 1);
        assert!((root.edges[0].1 - 10.0).abs() < 1e-9);
        let aq = &result.nodes()[root.edges[0].0 as usize];
        assert_eq!(result.labels().name(aq.label), "a");
        assert!((aq.ext - 10.0).abs() < 1e-9);
        // Example 4.1: nt = 2·0.5 = 1; branch [/g]: embeddings G1 (0.6)
        // and G2 (0.7) → s = 0.6+0.7−0.42 = 0.88; count = 0.88.
        let fq_edge = aq
            .edges
            .iter()
            .find(|&&(t, _)| result.labels().name(result.nodes()[t as usize].label) == "f")
            .expect("edge to f bindings");
        assert!((fq_edge.1 - 0.88).abs() < 1e-9, "got {}", fq_edge.1);
    }

    #[test]
    fn branch_count_ge_one_saturates_selectivity() {
        let ts = figure9_sketch();
        // [//f] from d: embeddings: d/f with count 0.5 → but also no
        // other f path; 0.5 < 1 → selectivity 0.5. [/g] from a? none.
        // Use //b[//f]: from B count to F is 2 ≥ 1 → selectivity 1.
        let query = parse_twig("q1: q0 //b[//f]").unwrap();
        let result = eval_query(&ts, &query, &EvalConfig::default()).unwrap();
        let root = &result.nodes()[0];
        // //b from r: r→a→b product 10·5 = 50.
        assert!((root.edges[0].1 - 50.0).abs() < 1e-9);
    }

    #[test]
    fn descendant_axis_sums_over_paths() {
        let ts = figure9_sketch();
        // //f from root: embeddings r/a/b/f (10·5·2 = 100),
        // r/a/e/f (10·0.2·5 = 10), r/a/d/f (10·2·0.5 = 10) → 120 into F.
        let query = parse_twig("q1: q0 //f").unwrap();
        let result = eval_query(&ts, &query, &EvalConfig::default()).unwrap();
        let root = &result.nodes()[0];
        assert_eq!(root.edges.len(), 1);
        assert!((root.edges[0].1 - 120.0).abs() < 1e-9);
    }

    #[test]
    fn required_empty_binding_empties_answer() {
        let ts = figure9_sketch();
        let query = parse_twig("q1: q0 //zzz").unwrap();
        assert!(eval_query(&ts, &query, &EvalConfig::default()).is_none());
        let optional = parse_twig("q1: q0 //a\nq2: q1 ? //zzz").unwrap();
        assert!(eval_query(&ts, &optional, &EvalConfig::default()).is_some());
    }

    #[test]
    fn exact_on_stable_synopsis() {
        // On an uncompressed (count-stable) synopsis the estimates are
        // exact: compare bindings against the exact evaluator.
        let doc = parse_document(
            "<d><a><p><k/></p><p><k/><k/></p><n/></a>\
             <a><n/><p><k/></p><b><t/></b></a></d>",
        )
        .unwrap();
        let stable = build_stable(&doc);
        let ts = TreeSketch::from_stable(&stable);
        let query = parse_twig("q1: q0 //a[//b]\nq2: q1 //p\nq3: q2 //k").unwrap();
        let result = eval_query(&ts, &query, &EvalConfig::default()).unwrap();
        use axqa_eval::{evaluate, DocIndex};
        let index = DocIndex::build(&doc);
        let nt = evaluate(&doc, &index, &query).unwrap();
        for var in [QVar(1), QVar(2), QVar(3)] {
            let exact = nt.bindings(var).len() as f64;
            let approx = result.estimated_bindings(var);
            assert!(
                (exact - approx).abs() < 1e-9,
                "{var}: exact {exact} vs approx {approx}"
            );
        }
    }

    #[test]
    fn cyclic_synopsis_terminates() {
        // A self-loop with count > 1 would diverge without the depth cap.
        let mut labels = LabelTable::new();
        let lr = labels.intern("r");
        let ll = labels.intern("l");
        let nodes = vec![
            TsNode {
                label: lr,
                count: 1,
                edges: vec![(TsNodeId(1), 2.0)],
                depth: 5,
            },
            TsNode {
                label: ll,
                count: 10,
                edges: vec![(TsNodeId(1), 1.5)],
                depth: 4,
            },
        ];
        let ts = TreeSketch::from_parts(labels, nodes, TsNodeId(0), 1.0);
        let query = parse_twig("q1: q0 //l").unwrap();
        let result = eval_query(&ts, &query, &EvalConfig::default()).unwrap();
        let total = result.estimated_bindings(QVar(1));
        assert!(total.is_finite() && total > 0.0);
    }
}
