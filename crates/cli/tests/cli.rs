// Integration tests opt back into panicking extractors.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::arithmetic_side_effects
)]

//! End-to-end tests of the `axqa` binary: generate → stats → summarize
//! → estimate/preview/exact round trips through real files.

use std::path::PathBuf;
use std::process::{Command, Output};

fn axqa(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_axqa"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout(output: &Output) -> String {
    assert!(
        output.status.success(),
        "exit {:?}\nstderr: {}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8_lossy(&output.stdout).into_owned()
}

fn tmp(name: &str) -> PathBuf {
    let mut dir = std::env::temp_dir();
    dir.push(format!("axqa-cli-test-{}-{name}", std::process::id()));
    dir
}

#[test]
fn full_pipeline_through_files() {
    let doc_path = tmp("doc.xml");
    let sketch_path = tmp("sketch.ts");
    let doc = doc_path.to_str().unwrap();
    let sketch = sketch_path.to_str().unwrap();

    // generate
    let out = stdout(&axqa(&[
        "generate",
        "dblp",
        "--elements",
        "3000",
        "--seed",
        "7",
        "-o",
        doc,
    ]));
    assert!(out.contains("elements"));

    // stats
    let out = stdout(&axqa(&["stats", doc]));
    assert!(out.contains("stable summary"));

    // summarize
    let out = stdout(&axqa(&["summarize", doc, "--budget", "2KB", "-o", sketch]));
    assert!(out.contains("clusters"));

    // estimate vs exact on the same query
    let query = "q1: q0 //article ; q2: q1 /author";
    let estimate: f64 = stdout(&axqa(&["estimate", sketch, "-q", query]))
        .trim()
        .parse()
        .unwrap();
    let exact: f64 = stdout(&axqa(&["exact", doc, "-q", query]))
        .trim()
        .parse()
        .unwrap();
    assert!(exact > 0.0);
    let error = (exact - estimate).abs() / exact;
    assert!(
        error < 0.5,
        "estimate {estimate} too far from exact {exact}"
    );

    // preview (sketch dump + expansion)
    let out = stdout(&axqa(&["preview", sketch, "-q", query]));
    assert!(out.contains("q1:"));
    let out = stdout(&axqa(&["preview", sketch, "-q", query, "--expand", "50"]));
    assert!(out.contains("article"));

    // workload
    let out = stdout(&axqa(&["workload", doc, "-n", "5"]));
    assert_eq!(out.lines().count(), 5);
    for line in out.lines() {
        assert!(line.starts_with("q1:"), "bad workload line {line:?}");
    }

    let _ = std::fs::remove_file(doc_path);
    let _ = std::fs::remove_file(sketch_path);
}

#[test]
fn errors_are_reported() {
    let out = axqa(&["estimate", "/nonexistent.ts", "-q", "q1: q0 //a"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error"));

    let out = axqa(&["nonsense"]);
    assert!(!out.status.success());

    let out = axqa(&[]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn negative_workload_flag() {
    let doc_path = tmp("neg.xml");
    let doc = doc_path.to_str().unwrap();
    stdout(&axqa(&[
        "generate",
        "imdb",
        "--elements",
        "2000",
        "--seed",
        "3",
        "-o",
        doc,
    ]));
    let out = stdout(&axqa(&["workload", doc, "-n", "3", "--negative"]));
    assert_eq!(out.lines().count(), 3);
    let _ = std::fs::remove_file(doc_path);
}

#[test]
fn value_layer_roundtrip() {
    let doc_path = tmp("valdoc.xml");
    let sketch_path = tmp("valsketch.ts");
    let values_path = tmp("valsketch.vals");
    let (doc, sketch, values) = (
        doc_path.to_str().unwrap(),
        sketch_path.to_str().unwrap(),
        values_path.to_str().unwrap(),
    );
    stdout(&axqa(&[
        "generate",
        "dblp",
        "--elements",
        "4000",
        "--seed",
        "11",
        "-o",
        doc,
    ]));
    let out = stdout(&axqa(&[
        "summarize",
        doc,
        "--budget",
        "2KB",
        "-o",
        sketch,
        "--values",
        values,
    ]));
    assert!(out.contains("value layer"));

    let query = "q1: q0 //year[. > 1990]";
    let with_values: f64 = stdout(&axqa(&[
        "estimate", sketch, "-q", query, "--values", values,
    ]))
    .trim()
    .parse()
    .unwrap();
    let without: f64 = stdout(&axqa(&["estimate", sketch, "-q", query]))
        .trim()
        .parse()
        .unwrap();
    let exact: f64 = stdout(&axqa(&["exact", doc, "-q", query]))
        .trim()
        .parse()
        .unwrap();
    // Ignoring the predicate gives the structural upper bound; the value
    // layer gets close to exact.
    assert!(without > with_values);
    assert!(
        (exact - with_values).abs() / exact < 0.2,
        "exact {exact} vs {with_values}"
    );

    for p in [doc_path, sketch_path, values_path] {
        let _ = std::fs::remove_file(p);
    }
}
