// Integration tests opt back into panicking extractors (workspace lint
// table, DESIGN.md "Static analysis & invariants").
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! Golden-file test for the SARIF 2.1.0 exporter (ISSUE 6 satellite),
//! mirroring `obs/tests/golden_trace.rs`: rule metadata, result shape,
//! suppression of baselined findings, region omission for line-less
//! findings, and message escaping are pinned byte-for-byte against
//! `tests/golden/sarif.json`.

use axqa_lint::engine::Outcome;
use axqa_lint::sarif::render_sarif;
use axqa_lint::{Finding, Severity};

/// A hand-built outcome: the allocation-analysis rules plus the
/// original trio, and four findings — a fresh error with a line, a
/// baselined error (suppressed in SARIF), a line-less snapshot-diff
/// finding whose message needs JSON escaping, and a hot-path
/// allocation finding from the reachability fixpoint.
fn fixture() -> Outcome {
    Outcome {
        findings: vec![
            Finding {
                rule: "no-unwrap",
                severity: Severity::Error,
                file: "crates/core/src/build.rs".to_string(),
                line: 42,
                span: (1000, 1009),
                message: "`.unwrap(…)` in non-test code (return an error or match explicitly)"
                    .to_string(),
            },
            Finding {
                rule: "hot-path-alloc",
                severity: Severity::Error,
                file: "crates/core/src/cluster.rs".to_string(),
                line: 409,
                span: (0, 0),
                message: "hot-path fn `axqa_core::cluster::ClusterState::evaluate_merge` \
                          allocates directly (`Vec::new` line 412) — reuse a scratch/pool or \
                          add an [[alloc-ok]] grant with a reason to lint-baseline.toml"
                    .to_string(),
            },
            Finding {
                rule: "hashmap-iter-order",
                severity: Severity::Error,
                file: "crates/xsketch/src/build.rs".to_string(),
                line: 216,
                span: (0, 0),
                message: "iteration order of hashmap `k` can flow into an ordered result"
                    .to_string(),
            },
            Finding {
                rule: "api-surface",
                severity: Severity::Error,
                file: "crates/core/src/eval.rs".to_string(),
                line: 0,
                span: (0, 0),
                message: "public API removed: `pub fn eval \\ \"quoted\"`".to_string(),
            },
        ],
        baselined: vec![false, false, true, false],
        stale: Vec::new(),
        files_scanned: 77,
        rules: vec![
            (
                "no-unwrap",
                Severity::Error,
                "no `.unwrap()`, `.expect(…)` or `.unwrap_unchecked()` outside #[cfg(test)]",
            ),
            (
                "hashmap-iter-order",
                Severity::Error,
                "no order-dependent FxHashMap/HashMap iteration in deterministic-path crates",
            ),
            (
                "api-surface",
                Severity::Error,
                "public API matches lint/api-surface.txt",
            ),
            (
                "hot-path-alloc",
                Severity::Error,
                "no ungranted allocation reachable from the hot roots in lint/hot-paths.toml",
            ),
            (
                "alloc-surface",
                Severity::Error,
                "hot-cone allocation classification matches lint/alloc-surface.txt",
            ),
            (
                "dead-pub",
                Severity::Error,
                "no plain-pub fn with zero intra-workspace callers and no textual reference",
            ),
        ],
        wrote_baseline: false,
        wrote_api_surface: false,
        wrote_panic_surface: false,
        wrote_alloc_surface: false,
    }
}

#[test]
fn sarif_matches_golden_file() {
    let actual = render_sarif(&fixture());
    let golden = include_str!("golden/sarif.json");
    if actual != golden {
        // Leave the actual output somewhere inspectable so the golden
        // can be refreshed deliberately after an intended format change.
        let path = std::env::temp_dir().join("axqa_lint_golden_sarif_actual.json");
        std::fs::write(&path, &actual).unwrap();
        panic!(
            "render_sarif output diverged from tests/golden/sarif.json; \
             actual output written to {}",
            path.display()
        );
    }
}

#[test]
fn sarif_shape_is_well_formed() {
    let sarif = render_sarif(&fixture());
    // One run, schema + version up front.
    assert!(sarif.starts_with(
        "{\n  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \
         \"version\": \"2.1.0\","
    ));
    // Every registered rule appears in the driver metadata.
    for id in [
        "no-unwrap",
        "hashmap-iter-order",
        "api-surface",
        "hot-path-alloc",
        "alloc-surface",
        "dead-pub",
    ] {
        assert!(sarif.contains(&format!("\"id\": \"{id}\"")), "{id} missing");
    }
    // ruleIndex points into the driver's rules array.
    assert!(sarif.contains("\"ruleId\": \"hashmap-iter-order\", \"ruleIndex\": 1"));
    assert!(sarif.contains("\"ruleId\": \"hot-path-alloc\", \"ruleIndex\": 3"));
    // Exactly the baselined finding is suppressed.
    assert_eq!(
        sarif
            .matches("\"suppressions\": [{\"kind\": \"external\"}]")
            .count(),
        1
    );
    // The line-less finding has a location but no region.
    assert_eq!(sarif.matches("\"startLine\"").count(), 3);
    assert_eq!(sarif.matches("\"physicalLocation\"").count(), 4);
    // Message escaping survives.
    assert!(sarif.contains("pub fn eval \\\\ \\\"quoted\\\""));
    // Balanced braces/brackets — same well-formedness check the obs
    // golden test uses (no serde in the workspace to parse with).
    assert_eq!(sarif.matches('{').count(), sarif.matches('}').count());
    assert_eq!(sarif.matches('[').count(), sarif.matches(']').count());
}
