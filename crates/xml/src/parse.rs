//! Minimal XML parser for the structural subset the paper needs.
//!
//! Supported: elements (with attributes, which are skipped), self-closing
//! tags, character data (skipped — values are out of scope per §1/§2),
//! comments, processing instructions, an XML declaration, CDATA sections
//! and a DOCTYPE line (all skipped). Namespaces are treated as part of the
//! tag string. Anything structurally ill-formed is an [`XmlError`].

use crate::error::XmlError;
use crate::tree::{Document, DocumentBuilder, NodeId};

/// Parses `input` into a [`Document`] holding the element structure.
///
/// ```
/// use axqa_xml::parse_document;
///
/// let doc = parse_document("<bib><book id='1'>text</book></bib>").unwrap();
/// assert_eq!(doc.len(), 2); // values and attributes carry no structure
/// assert_eq!(doc.label_name(doc.root()), "bib");
/// ```
pub fn parse_document(input: &str) -> Result<Document, XmlError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let mut builder: Option<DocumentBuilder> = None;
    // Tags currently open, for mismatch diagnostics.
    let mut open: Vec<String> = Vec::new();
    let mut root_closed = false;

    // Start of the text run since the last markup event (numeric leaf
    // text becomes the element's value; everything else is skipped).
    let mut text_start: Option<usize> = None;

    while pos < bytes.len() {
        if bytes[pos] != b'<' {
            // Character data: remembered only to check for a numeric
            // leaf value at the next closing tag.
            if text_start.is_none() {
                text_start = Some(pos);
            }
            pos += 1;
            continue;
        }
        if input[pos..].starts_with("<!--") {
            pos = skip_until(input, pos + 4, "-->", "unterminated comment")?;
        } else if input[pos..].starts_with("<![CDATA[") {
            pos = skip_until(input, pos + 9, "]]>", "unterminated CDATA section")?;
        } else if input[pos..].starts_with("<!") {
            // DOCTYPE or other declaration: skip to the matching '>'.
            pos = skip_until(input, pos + 2, ">", "unterminated declaration")?;
        } else if input[pos..].starts_with("<?") {
            pos = skip_until(input, pos + 2, "?>", "unterminated processing instruction")?;
        } else if input[pos..].starts_with("</") {
            let (tag, end) = read_name(input, pos + 2)?;
            let close_at = find_gt(input, end)?;
            match open.pop() {
                Some(expected) if expected == tag => {
                    let Some(b) = builder.as_mut() else {
                        return Err(XmlError::Malformed {
                            message: "closing tag before any element".into(),
                            offset: pos,
                        });
                    };
                    // Numeric text directly inside a leaf becomes its
                    // value (the value-content extension).
                    if let Some(start) = text_start {
                        if b.current_is_leaf() {
                            if let Ok(v) = input[start..pos].trim().parse::<f64>() {
                                b.set_current_value(v);
                            }
                        }
                    }
                    if open.is_empty() {
                        root_closed = true;
                    } else {
                        b.close();
                    }
                }
                Some(expected) => {
                    return Err(XmlError::MismatchedTag {
                        expected,
                        found: tag,
                        offset: pos,
                    });
                }
                None => {
                    return Err(XmlError::Malformed {
                        message: format!("closing tag </{tag}> with no open element"),
                        offset: pos,
                    });
                }
            }
            pos = close_at + 1;
        } else {
            // Opening or self-closing tag.
            let (tag, after_name) = read_name(input, pos + 1)?;
            let gt = find_gt(input, after_name)?;
            let self_closing = bytes[gt - 1] == b'/';
            if root_closed {
                return Err(XmlError::MultipleRoots { offset: pos });
            }
            match builder.as_mut() {
                None => {
                    let b = DocumentBuilder::new(&tag);
                    builder = Some(b);
                    if self_closing {
                        root_closed = true;
                    } else {
                        open.push(tag);
                    }
                }
                Some(b) => {
                    if open.is_empty() {
                        return Err(XmlError::MultipleRoots { offset: pos });
                    }
                    if self_closing {
                        b.leaf(&tag);
                    } else {
                        b.open(&tag);
                        open.push(tag);
                    }
                }
            }
            pos = gt + 1;
        }
        text_start = None;
    }

    match builder {
        None => Err(XmlError::EmptyDocument),
        Some(b) => {
            if let Some(tag) = open.pop() {
                return Err(XmlError::UnexpectedEof {
                    open_tag: Some(tag),
                });
            }
            Ok(b.finish())
        }
    }
}

/// Skips forward from `from` to just past the next occurrence of `needle`.
fn skip_until(input: &str, from: usize, needle: &str, what: &str) -> Result<usize, XmlError> {
    match input[from..].find(needle) {
        Some(i) => Ok(from + i + needle.len()),
        None => Err(XmlError::Malformed {
            message: what.to_owned(),
            offset: from,
        }),
    }
}

/// Reads a tag name starting at `from`; returns (name, position after it).
fn read_name(input: &str, from: usize) -> Result<(String, usize), XmlError> {
    let bytes = input.as_bytes();
    let mut end = from;
    while end < bytes.len() {
        let b = bytes[end];
        let is_name = b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':');
        if !is_name {
            break;
        }
        end += 1;
    }
    if end == from {
        return Err(XmlError::Malformed {
            message: "expected tag name".to_owned(),
            offset: from,
        });
    }
    Ok((input[from..end].to_owned(), end))
}

/// Finds the closing `>` of a tag, respecting quoted attribute values.
fn find_gt(input: &str, from: usize) -> Result<usize, XmlError> {
    let bytes = input.as_bytes();
    let mut pos = from;
    let mut quote: Option<u8> = None;
    while pos < bytes.len() {
        let b = bytes[pos];
        match quote {
            Some(q) => {
                if b == q {
                    quote = None;
                }
            }
            None => match b {
                b'"' | b'\'' => quote = Some(b),
                b'>' => return Ok(pos),
                b'<' => {
                    return Err(XmlError::Malformed {
                        message: "'<' inside tag".to_owned(),
                        offset: pos,
                    });
                }
                _ => {}
            },
        }
        pos += 1;
    }
    Err(XmlError::UnexpectedEof { open_tag: None })
}

/// Convenience: parse and return the root id alongside the document.
pub fn parse_with_root(input: &str) -> Result<(Document, NodeId), XmlError> {
    let doc = parse_document(input)?;
    let root = doc.root();
    Ok((doc, root))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_nesting() {
        let doc = parse_document("<a><b><c/></b><b/></a>").unwrap();
        assert_eq!(doc.len(), 4);
        assert_eq!(doc.label_name(doc.root()), "a");
        let kids: Vec<_> = doc
            .children(doc.root())
            .map(|n| doc.label_name(n).to_owned())
            .collect();
        assert_eq!(kids, vec!["b", "b"]);
    }

    #[test]
    fn skips_text_attributes_comments_pis() {
        let src = r#"<?xml version="1.0"?>
<!DOCTYPE bib>
<bib year="2004">
  <!-- a comment with <b> inside -->
  <paper id="1">Approximate <em>XML</em> answers</paper>
  <![CDATA[<not><elements>]]>
</bib>"#;
        let doc = parse_document(src).unwrap();
        // bib, paper, em
        assert_eq!(doc.len(), 3);
        assert_eq!(doc.label_name(doc.root()), "bib");
    }

    #[test]
    fn self_closing_root() {
        let doc = parse_document("<only/>").unwrap();
        assert_eq!(doc.len(), 1);
        assert!(doc.is_leaf(doc.root()));
    }

    #[test]
    fn quoted_gt_in_attribute() {
        let doc = parse_document(r#"<a title="x > y"><b/></a>"#).unwrap();
        assert_eq!(doc.len(), 2);
    }

    #[test]
    fn mismatched_tag_is_reported() {
        let err = parse_document("<a><b></a></b>").unwrap_err();
        match err {
            XmlError::MismatchedTag {
                expected, found, ..
            } => {
                assert_eq!(expected, "b");
                assert_eq!(found, "a");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn unclosed_element_is_reported() {
        let err = parse_document("<a><b>").unwrap_err();
        assert_eq!(
            err,
            XmlError::UnexpectedEof {
                open_tag: Some("b".into())
            }
        );
    }

    #[test]
    fn multiple_roots_rejected() {
        let err = parse_document("<a/><b/>").unwrap_err();
        assert!(matches!(err, XmlError::MultipleRoots { .. }));
    }

    #[test]
    fn empty_input_rejected() {
        assert_eq!(
            parse_document("  \n ").unwrap_err(),
            XmlError::EmptyDocument
        );
    }

    #[test]
    fn stray_close_rejected() {
        assert!(matches!(
            parse_document("</a>"),
            Err(XmlError::Malformed { .. })
        ));
    }

    #[test]
    fn namespaced_tags_kept_verbatim() {
        let doc = parse_document("<ns:a><ns:b/></ns:a>").unwrap();
        assert_eq!(doc.label_name(doc.root()), "ns:a");
    }
}

#[cfg(test)]
mod value_tests {
    use super::*;
    use crate::write::write_document;

    #[test]
    fn numeric_leaf_text_becomes_value() {
        let doc = parse_document("<p><year>2004</year><title>XML answers</title></p>").unwrap();
        let year = doc
            .node_ids()
            .find(|&n| doc.label_name(n) == "year")
            .unwrap();
        let title = doc
            .node_ids()
            .find(|&n| doc.label_name(n) == "title")
            .unwrap();
        assert_eq!(doc.value(year), Some(2004.0));
        assert_eq!(doc.value(title), None); // non-numeric text skipped
    }

    #[test]
    fn values_roundtrip_through_writer() {
        let src = "<r><price>19.5</price><qty>3</qty><note/></r>";
        let doc = parse_document(src).unwrap();
        assert_eq!(write_document(&doc), src);
        let reparsed = parse_document(&write_document(&doc)).unwrap();
        assert_eq!(reparsed.num_values(), 2);
    }

    #[test]
    fn internal_text_never_becomes_a_value() {
        // Mixed content around a child: the parent is not a leaf.
        let doc = parse_document("<a>12<b/>34</a>").unwrap();
        assert_eq!(doc.value(doc.root()), None);
    }

    #[test]
    fn negative_and_float_values() {
        let doc = parse_document("<r><t>-2.75</t></r>").unwrap();
        let t = doc.node_ids().find(|&n| doc.label_name(n) == "t").unwrap();
        assert_eq!(doc.value(t), Some(-2.75));
    }
}
