#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

//! # axqa-lint — the repository's static-analysis engine
//!
//! `cargo xtask lint` grew out of a line-oriented script (PR 1) into
//! this crate: a token-level linter with a rule registry,
//! workspace-scope rules (crate layering, public-API surface snapshot,
//! panic-reachability surface), call-graph analyses over a lightweight
//! fn-item parser, determinism dataflow rules, a ratcheting baseline,
//! and SARIF 2.1.0 export. See DESIGN.md §8 and §10 for the
//! architecture.
//!
//! The engine is deterministic and nearly dependency-free — its one
//! dependency is the layer-0 `axqa-obs` facade, so the lint phases
//! (`lint.tokenize`, `lint.parse`, `lint.callgraph`, `lint.rules`,
//! `lint.fixpoint`) show up in `lint-metrics.json` like any other
//! phase of the system:
//!
//! * [`token`] tokenizes Rust sources (strings, raw strings, char
//!   literals, comments) and masks `#[cfg(test)]` regions on tokens,
//!   so rules neither miss violations split across lines nor
//!   false-positive inside string literals;
//! * [`rules`] holds the per-file rules, each a type implementing
//!   [`Rule`];
//! * [`parse`] extracts per-file [`parse::FnItem`]s (qualified path,
//!   visibility, `# Panics` docs, body token range) from the token
//!   stream;
//! * [`callgraph`] builds the intra-workspace call graph
//!   (suffix-qualified name resolution, conservative method calls) and
//!   collects direct panic sites;
//! * [`reach`] runs the panic-reachability fixpoint, ratchets the
//!   public classification against `lint/panic-surface.txt`, and
//!   enforces `# Panics` docs on directly panicking public fns;
//! * [`allocsite`] detects direct allocation sites (constructors on
//!   heap-owning types, owned-result methods, growth calls, and
//!   macro-opaque invocations) in function bodies;
//! * [`hotpath`] runs the allocation-reachability fixpoint from the
//!   hot roots declared in `lint/hot-paths.toml`, honors `[[alloc-ok]]`
//!   grants from the baseline, and ratchets the classification against
//!   `lint/alloc-surface.txt` (DESIGN.md §11);
//! * [`deadpub`] reports plain-`pub` functions with zero
//!   intra-workspace callers and no textual references;
//! * [`determinism`] flags order-dependent hashmap iteration and
//!   non-total float comparisons in the deterministic-path crates;
//! * [`sarif`] renders a run as a SARIF 2.1.0 log for GitHub code
//!   scanning;
//! * [`layering`] parses the workspace manifests and enforces the
//!   DESIGN.md §1 crate-layer DAG (no cycles, no upward edges);
//! * [`api_surface`] snapshots `pub fn` / `pub struct` signatures into
//!   `lint/api-surface.txt` and fails on unacknowledged churn;
//! * [`baseline`] implements the `lint-baseline.toml` ratchet:
//!   grandfathered findings pass, new findings fail, and
//!   `--update-baseline` shrinks the file as violations are fixed;
//! * [`engine`] collects sources, runs the registry, applies the
//!   baseline and renders human text or `--format json`
//!   (schema `axqa-lint/1`).

pub mod allocsite;
pub mod api_surface;
pub mod baseline;
pub mod callgraph;
pub mod deadpub;
pub mod determinism;
pub mod engine;
pub mod hotpath;
pub mod layering;
pub mod parse;
pub mod reach;
pub mod rules;
pub mod sarif;
pub mod token;

use std::cell::OnceCell;

use token::Token;

/// How bad a finding is. Everything shipped today is [`Severity::Error`];
/// the distinction exists so future advisory rules can surface without
/// failing the gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Reported, never fails the gate.
    Warning,
    /// Fails the gate unless baselined.
    Error,
}

impl Severity {
    /// Stable lowercase name used in the JSON output.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One rule violation, structured so it can render as text or JSON and
/// be matched against the baseline.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule id (stable, kebab-case).
    pub rule: &'static str,
    /// Severity of the owning rule.
    pub severity: Severity,
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line (0 when the finding has no line, e.g. a removed
    /// API-surface entry).
    pub line: u32,
    /// Byte span in the file (`0..0` when not applicable).
    pub span: (usize, usize),
    /// Human-readable message.
    pub message: String,
}

/// Whether a rule sees one file at a time or the whole workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// Called once per collected source file.
    File,
    /// Called once with the whole [`Workspace`].
    Workspace,
}

/// One collected source file with its token stream and test mask.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path, forward slashes (`crates/core/src/eval.rs`).
    pub rel: String,
    /// Package name of the owning crate (`axqa-core`, `xtask`, or
    /// `axqa` for the umbrella `src/`).
    pub crate_name: String,
    /// True for binary-target roots (`src/main.rs`, `src/bin/*.rs`):
    /// diagnostics printed from a binary are legitimate.
    pub is_bin: bool,
    /// The file contents.
    pub text: String,
    /// Token stream of `text`.
    pub tokens: Vec<Token>,
    /// `in_test[i]` — token `i` sits inside a `#[cfg(test)]` item.
    pub in_test: Vec<bool>,
}

impl SourceFile {
    /// Tokenizes `text` and computes the test mask.
    pub fn new(rel: String, crate_name: String, is_bin: bool, text: String) -> SourceFile {
        let tokens = token::tokenize(&text);
        let in_test = token::test_mask(&text, &tokens);
        SourceFile {
            rel,
            crate_name,
            is_bin,
            text,
            tokens,
            in_test,
        }
    }
}

/// Workspace context handed to [`Scope::Workspace`] rules.
#[derive(Debug)]
pub struct Workspace {
    /// Every collected source file, sorted by path.
    pub files: Vec<SourceFile>,
    /// `(package name, internal [dependencies] edges)` per workspace
    /// crate, from the crate manifests (dev-dependencies excluded —
    /// cargo already forbids dev-cycles that break builds, and tests
    /// may reach upward for fixtures).
    pub dep_edges: Vec<(String, Vec<String>)>,
    /// Contents of `lint/api-surface.txt` if present.
    pub api_surface_snapshot: Option<String>,
    /// Contents of `lint/panic-surface.txt` if present.
    pub panic_surface_snapshot: Option<String>,
    /// Contents of `lint/alloc-surface.txt` if present.
    pub alloc_surface_snapshot: Option<String>,
    /// Contents of `lint/hot-paths.toml` (the alloc-analysis roots)
    /// if present.
    pub hot_paths: Option<String>,
    /// `[[alloc-ok]]` grants parsed from `lint-baseline.toml` — the
    /// hot-path analysis consumes these *before* seeding its fixpoint,
    /// unlike `[[allow]]` entries which apply to finished findings.
    pub alloc_grants: Vec<baseline::AllocGrant>,
    /// Lazily built call graph, shared by every workspace rule (the
    /// engine builds it once per run instead of once per rule).
    pub graph: OnceCell<callgraph::CallGraph>,
}

impl Workspace {
    /// The workspace call graph, built on first use (under a
    /// `lint.callgraph` span) and shared across rules.
    pub fn callgraph(&self) -> &callgraph::CallGraph {
        self.graph.get_or_init(|| {
            let _span = axqa_obs::span("lint.callgraph");
            callgraph::build(&self.files)
        })
    }
}

/// A lint rule: an id, a severity, a scope, and a checker.
///
/// Per-file rules implement [`Rule::check_file`]; workspace rules
/// implement [`Rule::check_workspace`]. The engine owns iteration
/// order, so rules stay pure: findings in, findings out.
pub trait Rule {
    /// Stable kebab-case id (baseline keys and JSON use it).
    fn id(&self) -> &'static str;
    /// One-line description for `--format json` and docs.
    fn describe(&self) -> &'static str;
    /// Severity of this rule's findings.
    fn severity(&self) -> Severity {
        Severity::Error
    }
    /// Per-file or workspace scope.
    fn scope(&self) -> Scope {
        Scope::File
    }
    /// Per-file check; default no-op for workspace rules.
    fn check_file(&self, _file: &SourceFile, _findings: &mut Vec<Finding>) {}
    /// Workspace check; default no-op for per-file rules.
    fn check_workspace(&self, _workspace: &Workspace, _findings: &mut Vec<Finding>) {}
}

/// The registry: every rule the engine runs, in reporting order.
pub fn registry() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(rules::CountCast),
        Box::new(rules::FloatEq),
        Box::new(rules::PaperDoc),
        Box::new(rules::NoUnwrap),
        Box::new(rules::ForbiddenApi),
        Box::new(determinism::HashMapIterOrder),
        Box::new(determinism::FloatTotalOrder),
        Box::new(layering::CrateLayering),
        Box::new(api_surface::ApiSurface),
        Box::new(reach::PanicSurface),
        Box::new(reach::PanicDoc),
        Box::new(hotpath::HotPathAlloc),
        Box::new(hotpath::AllocSurface),
        Box::new(deadpub::DeadPub),
    ]
}
