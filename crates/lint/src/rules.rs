//! The per-file token rules, ported from the PR 1 line scanner onto the
//! token stream (DESIGN.md §8). Every rule skips `#[cfg(test)]` tokens
//! via the file's test mask and is immune to string-literal and
//! comment false positives by construction.

use crate::token::{next_code, prev_code, Token, TokenKind};
use crate::{Finding, Rule, SourceFile};

/// Identifier fragments that mark a quantity as count-like.
const COUNT_NEEDLES: [&str; 4] = ["count", "card", "sel", "freq"];

fn finding(rule: &'static str, file: &SourceFile, token: &Token, message: String) -> Finding {
    Finding {
        rule,
        severity: crate::Severity::Error,
        file: file.rel.clone(),
        line: token.line,
        span: (token.start, token.end),
        message,
    }
}

/// The `a.b.c` identifier chain ending at token `i` (inclusive), or
/// `None` if token `i` is not an identifier. Mirrors the old scanner's
/// "trailing identifier" but across lines: walks `Ident (. Ident)*`
/// backwards from `i`.
fn ident_chain(file: &SourceFile, i: usize) -> Option<(usize, String)> {
    if file.tokens[i].kind != TokenKind::Ident {
        return None;
    }
    let mut first = i;
    while let Some(dot) = prev_code(&file.tokens, first) {
        if file.tokens[dot].text(&file.text) != "." {
            break;
        }
        let Some(prev) = prev_code(&file.tokens, dot) else {
            break;
        };
        if file.tokens[prev].kind != TokenKind::Ident {
            break;
        }
        first = prev;
    }
    let mut chain = String::new();
    let mut j = first;
    loop {
        if !chain.is_empty() {
            chain.push('.');
        }
        chain.push_str(file.tokens[j].text(&file.text));
        if j == i {
            break;
        }
        // Step forward over the `.` to the next segment.
        let dot = next_code(&file.tokens, j)?;
        j = next_code(&file.tokens, dot)?;
    }
    Some((first, chain))
}

// ---------------------------------------------------------------------
// Rule 1: count-cast — all crates.
// ---------------------------------------------------------------------

/// No `as u32` / `as usize` on count-like identifiers, in any crate:
/// a silently truncating cast of a `count`/`card`/`sel`/`freq` value
/// corrupts every downstream estimate. Use `u32::try_from` or
/// `axqa_xml::dense_id`.
pub struct CountCast;

impl Rule for CountCast {
    fn id(&self) -> &'static str {
        "count-cast"
    }
    fn describe(&self) -> &'static str {
        "no `as u32`/`as usize` on count-like identifiers (count/card/sel/freq); use try_from/dense_id"
    }
    fn check_file(&self, file: &SourceFile, findings: &mut Vec<Finding>) {
        for (i, token) in file.tokens.iter().enumerate() {
            if file.in_test[i] || token.kind != TokenKind::Ident || token.text(&file.text) != "as" {
                continue;
            }
            let Some(target) = next_code(&file.tokens, i) else {
                continue;
            };
            let target_text = file.tokens[target].text(&file.text);
            if target_text != "u32" && target_text != "usize" {
                continue;
            }
            let Some(prev) = prev_code(&file.tokens, i) else {
                continue;
            };
            let Some((_, chain)) = ident_chain(file, prev) else {
                continue;
            };
            // Judge the final segment (the field/binding actually being
            // cast) so receiver chains don't contribute — `self` must
            // not match `sel`.
            let last = chain.rsplit('.').next().unwrap_or_default();
            let lower = last.to_ascii_lowercase();
            if COUNT_NEEDLES.iter().any(|needle| lower.contains(needle)) {
                findings.push(finding(
                    self.id(),
                    file,
                    token,
                    format!(
                        "`{chain} as {target_text}` — lossy cast of a count-like \
                         quantity (use try_from/dense_id)"
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Rule 2: float-eq — the distance crate only.
// ---------------------------------------------------------------------

/// No float `==`/`!=` in `crates/distance/`: the error-metric crate
/// compares with tolerances, never exactly.
pub struct FloatEq;

/// True for number tokens of float type: a decimal point, an exponent,
/// or an explicit `f32`/`f64` suffix (radix-prefixed integers excluded).
fn is_float_literal(text: &str) -> bool {
    if text.ends_with("f64") || text.ends_with("f32") {
        return true;
    }
    if text.starts_with("0x") || text.starts_with("0o") || text.starts_with("0b") {
        return false;
    }
    text.contains('.') || text.contains('e') || text.contains('E')
}

impl Rule for FloatEq {
    fn id(&self) -> &'static str {
        "float-eq"
    }
    fn describe(&self) -> &'static str {
        "no float `==`/`!=` in crates/distance/ (compare with a tolerance)"
    }
    fn check_file(&self, file: &SourceFile, findings: &mut Vec<Finding>) {
        if file.crate_name != "axqa-distance" {
            return;
        }
        for (i, token) in file.tokens.iter().enumerate() {
            if file.in_test[i] || token.kind != TokenKind::Punct {
                continue;
            }
            let op = token.text(&file.text);
            if op != "==" && op != "!=" {
                continue;
            }
            let float_side = [prev_code(&file.tokens, i), next_code(&file.tokens, i)]
                .into_iter()
                .flatten()
                .any(|j| {
                    file.tokens[j].kind == TokenKind::Number
                        && is_float_literal(file.tokens[j].text(&file.text))
                });
            if float_side {
                findings.push(finding(
                    self.id(),
                    file,
                    token,
                    "float equality comparison in distance/ (compare with a tolerance)".to_string(),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Rule 3: paper-doc — core build/eval entry points cite the paper.
// ---------------------------------------------------------------------

/// Every plain `pub fn` in `core/src/build.rs` and `core/src/eval.rs`
/// carries a doc comment citing the paper (a `§` section or a `Fig.`
/// reference), so the algorithmic surface stays anchored to its source.
pub struct PaperDoc;

impl Rule for PaperDoc {
    fn id(&self) -> &'static str {
        "paper-doc"
    }
    fn describe(&self) -> &'static str {
        "pub fns in core/src/{build,eval}.rs cite the paper (§ or Fig.) in their doc comment"
    }
    fn check_file(&self, file: &SourceFile, findings: &mut Vec<Finding>) {
        if !file.rel.ends_with("core/src/build.rs") && !file.rel.ends_with("core/src/eval.rs") {
            return;
        }
        for (i, token) in file.tokens.iter().enumerate() {
            if file.in_test[i] || token.kind != TokenKind::Ident || token.text(&file.text) != "pub"
            {
                continue;
            }
            // Plain `pub` only: `pub(crate)` etc. is not public API.
            let Some(mut j) = next_code(&file.tokens, i) else {
                continue;
            };
            if file.tokens[j].text(&file.text) == "(" {
                continue;
            }
            // Skip qualifiers up to `fn`; bail on non-fn items.
            let mut is_fn = false;
            for _ in 0..4 {
                let text = file.tokens[j].text(&file.text);
                if text == "fn" {
                    is_fn = true;
                    break;
                }
                if !matches!(text, "const" | "unsafe" | "async" | "extern")
                    && file.tokens[j].kind != TokenKind::Literal
                {
                    break;
                }
                match next_code(&file.tokens, j) {
                    Some(next) => j = next,
                    None => break,
                }
            }
            if !is_fn {
                continue;
            }
            if !preceding_docs_cite_paper(file, i) {
                findings.push(finding(
                    self.id(),
                    file,
                    token,
                    "pub fn without a paper citation (§ or Fig.) in its doc comment".to_string(),
                ));
            }
        }
    }
}

/// Walks backwards from the `pub` token over attributes and doc
/// comments; true if any doc comment in that run cites the paper.
fn preceding_docs_cite_paper(file: &SourceFile, pub_index: usize) -> bool {
    let mut j = pub_index;
    while j > 0 {
        j -= 1;
        let token = &file.tokens[j];
        match token.kind {
            TokenKind::DocComment => {
                let text = token.text(&file.text);
                if text.contains('§') || text.contains("Fig.") {
                    return true;
                }
            }
            TokenKind::Comment => {}
            _ => {
                // Attributes between docs and the fn are fine: skip one
                // `#[…]` group (we're walking backwards, so from `]`
                // back to `#`).
                if token.text(&file.text) == "]" {
                    let mut depth = 0i64;
                    while j > 0 {
                        match file.tokens[j].text(&file.text) {
                            "]" => depth += 1,
                            "[" => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        j -= 1;
                    }
                    // Expect the `#` before the `[`.
                    if j > 0 && file.tokens[j - 1].text(&file.text) == "#" {
                        j -= 1;
                        continue;
                    }
                    return false;
                }
                return false;
            }
        }
    }
    false
}

// ---------------------------------------------------------------------
// Rule 4: no-unwrap — everywhere outside tests.
// ---------------------------------------------------------------------

/// No `.unwrap()` in non-test code, anywhere: library code returns
/// typed errors, binaries match explicitly.
pub struct NoUnwrap;

impl Rule for NoUnwrap {
    fn id(&self) -> &'static str {
        "no-unwrap"
    }
    fn describe(&self) -> &'static str {
        "no `.unwrap()`, `.expect(…)` or `.unwrap_unchecked()` outside #[cfg(test)] \
         (return an error or match explicitly)"
    }
    fn check_file(&self, file: &SourceFile, findings: &mut Vec<Finding>) {
        for (i, token) in file.tokens.iter().enumerate() {
            if file.in_test[i] || token.kind != TokenKind::Ident {
                continue;
            }
            let name = token.text(&file.text);
            if !matches!(name, "unwrap" | "expect" | "unwrap_unchecked") {
                continue;
            }
            // Tokens carry no whitespace, so `.` adjacency holds even
            // when rustfmt breaks the receiver chain across lines.
            let dotted =
                prev_code(&file.tokens, i).is_some_and(|j| file.tokens[j].text(&file.text) == ".");
            if !dotted {
                continue;
            }
            let open = next_code(&file.tokens, i);
            let called = match name {
                // `expect` takes a message; any call form counts.
                "expect" => open.is_some_and(|j| file.tokens[j].text(&file.text) == "("),
                // `unwrap` / `unwrap_unchecked` take no arguments —
                // requiring `()` skips unrelated same-named methods.
                _ => {
                    open.is_some_and(|j| file.tokens[j].text(&file.text) == "(")
                        && open
                            .and_then(|j| next_code(&file.tokens, j))
                            .is_some_and(|j| file.tokens[j].text(&file.text) == ")")
                }
            };
            if called {
                findings.push(finding(
                    self.id(),
                    file,
                    token,
                    format!("`.{name}(…)` in non-test code (return an error or match explicitly)"),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Rule 5: forbidden-api — print macros in libraries, process::exit
// anywhere.
// ---------------------------------------------------------------------

/// Library code must not print: diagnostics route through return values
/// (`Result`, rendered `String`s) so callers decide what reaches a
/// terminal. Binaries may print, but nothing may call
/// `std::process::exit` — `main` returns `ExitCode`, and `exit` skips
/// destructors mid-unwind. And nothing outside `crates/obs` may touch
/// `std::alloc` or implement `GlobalAlloc`: the counting allocator
/// (DESIGN.md §12) is the single installation point for allocation
/// accounting, and a second allocator wrapper would silently bypass it.
pub struct ForbiddenApi;

const PRINT_MACROS: [&str; 4] = ["println", "eprintln", "print", "eprint"];

impl Rule for ForbiddenApi {
    fn id(&self) -> &'static str {
        "forbidden-api"
    }
    fn describe(&self) -> &'static str {
        "no print macros or raw Instant/SystemTime::now in library code (time via axqa-obs); \
         no std::process::exit anywhere (return ExitCode); no std::alloc/GlobalAlloc outside \
         crates/obs (allocate through the counting allocator)"
    }
    fn check_file(&self, file: &SourceFile, findings: &mut Vec<Finding>) {
        for (i, token) in file.tokens.iter().enumerate() {
            if file.in_test[i] || token.kind != TokenKind::Ident {
                continue;
            }
            let text = token.text(&file.text);
            if !file.is_bin && PRINT_MACROS.contains(&text) {
                let is_macro = next_code(&file.tokens, i)
                    .is_some_and(|j| file.tokens[j].text(&file.text) == "!");
                // `writeln!` etc. take a target; only the bare stdout
                // macros are banned. A path prefix (`std::println!`)
                // still ends on this ident, so check we are not a path
                // *segment* prefix like `print` in `print_tree`.
                if is_macro {
                    findings.push(finding(
                        self.id(),
                        file,
                        token,
                        format!(
                            "`{text}!` in library code — route diagnostics through \
                             return values (render to a String or return Result)"
                        ),
                    ));
                }
            }
            if text == "exit" && path_is_process_exit(file, i) {
                let called = next_code(&file.tokens, i)
                    .is_some_and(|j| file.tokens[j].text(&file.text) == "(");
                if called {
                    findings.push(finding(
                        self.id(),
                        file,
                        token,
                        "`std::process::exit` — return ExitCode/Result from main \
                         instead (exit skips destructors)"
                            .to_string(),
                    ));
                }
            }
            // Raw allocator access bypasses the allocation accounting
            // the same way raw clocks bypass the timing layer: axqa-obs
            // owns the one GlobalAlloc impl (DESIGN.md §12), everything
            // else installs it via `axqa_obs::alloc::CountingAlloc`.
            // Applies to binaries too — a bin-local allocator wrapper
            // would shadow the counting one.
            if file.crate_name != "axqa-obs" {
                if text == "alloc" && path_is_std_alloc(file, i) {
                    findings.push(finding(
                        self.id(),
                        file,
                        token,
                        "`std::alloc` outside crates/obs — allocation accounting is \
                         owned by axqa_obs::alloc (DESIGN.md §12)"
                            .to_string(),
                    ));
                }
                if text == "GlobalAlloc" {
                    findings.push(finding(
                        self.id(),
                        file,
                        token,
                        "`GlobalAlloc` outside crates/obs — install \
                         axqa_obs::alloc::CountingAlloc instead of wrapping the \
                         allocator again (DESIGN.md §12)"
                            .to_string(),
                    ));
                }
            }
            // Raw clock reads in library crates bypass the observability
            // layer: all timing flows through axqa-obs (Stopwatch or the
            // recorder's monotonic epoch, DESIGN.md §9) so traces and
            // bench reports share one clock. Binaries may still read the
            // clock directly; axqa-obs is the clock's one owner.
            if text == "now" && !file.is_bin && file.crate_name != "axqa-obs" {
                if let Some(clock) = raw_timing_owner(file, i) {
                    let called = next_code(&file.tokens, i)
                        .is_some_and(|j| file.tokens[j].text(&file.text) == "(");
                    if called {
                        findings.push(finding(
                            self.id(),
                            file,
                            token,
                            format!(
                                "`{clock}::now()` in library code — time through \
                                 axqa_obs::Stopwatch / spans so traces and reports \
                                 share the recorder's clock (DESIGN.md §9)"
                            ),
                        ));
                    }
                }
            }
        }
    }
}

/// True when the `exit` ident at `i` is reached via a `process::`
/// path segment (`std::process::exit`, `process::exit`).
fn path_is_process_exit(file: &SourceFile, i: usize) -> bool {
    let Some(sep) = prev_code(&file.tokens, i) else {
        return false;
    };
    if file.tokens[sep].text(&file.text) != "::" {
        return false;
    }
    prev_code(&file.tokens, sep).is_some_and(|j| file.tokens[j].text(&file.text) == "process")
}

/// True when the `alloc` ident at `i` is the module in a `std::alloc`
/// path (`std::alloc::System`, `use std::alloc::GlobalAlloc`). A bare
/// `alloc::` path or `Vec::alloc`-style method is not matched — the
/// rule targets the allocator module, not the common word.
fn path_is_std_alloc(file: &SourceFile, i: usize) -> bool {
    let Some(sep) = prev_code(&file.tokens, i) else {
        return false;
    };
    if file.tokens[sep].text(&file.text) != "::" {
        return false;
    }
    prev_code(&file.tokens, sep).is_some_and(|j| file.tokens[j].text(&file.text) == "std")
}

/// When the `now` ident at `i` is reached via an `Instant::` or
/// `SystemTime::` path segment, returns the clock type's name.
fn raw_timing_owner(file: &SourceFile, i: usize) -> Option<&'static str> {
    let sep = prev_code(&file.tokens, i)?;
    if file.tokens[sep].text(&file.text) != "::" {
        return None;
    }
    match file.tokens[prev_code(&file.tokens, sep)?].text(&file.text) {
        "Instant" => Some("Instant"),
        "SystemTime" => Some("SystemTime"),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(
        rule: &dyn Rule,
        rel: &str,
        crate_name: &str,
        is_bin: bool,
        src: &str,
    ) -> Vec<Finding> {
        let file = SourceFile::new(rel.into(), crate_name.into(), is_bin, src.into());
        let mut findings = Vec::new();
        rule.check_file(&file, &mut findings);
        findings
    }

    #[test]
    fn count_cast_flags_direct_and_multiline_casts() {
        let src = "fn f(elem_count: u64) -> u32 {\n    let x = elem_count as u32;\n    x\n}\n";
        let v = check(
            &CountCast,
            "crates/core/src/cluster.rs",
            "axqa-core",
            false,
            src,
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("lossy cast"));
        // The line-based scanner missed casts split across lines.
        let multiline = "fn f(c: C) -> u32 { let x = c.elem_count\n        as u32; x }\n";
        let v = check(
            &CountCast,
            "crates/core/src/cluster.rs",
            "axqa-core",
            false,
            multiline,
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("c.elem_count as u32"));
    }

    #[test]
    fn count_cast_ignores_strings_self_and_tests() {
        let in_string = "fn f() -> &'static str { \"count as u32\" }\n";
        assert!(check(&CountCast, "a.rs", "axqa-core", false, in_string).is_empty());
        let receiver = "fn f(s: &S) -> usize { s.selector.len as usize }\n";
        assert!(check(&CountCast, "a.rs", "axqa-core", false, receiver).is_empty());
        let self_ok = "fn f(&self) -> usize { self.width as usize }\n";
        assert!(check(&CountCast, "a.rs", "axqa-core", false, self_ok).is_empty());
        let test_code =
            "#[cfg(test)]\nmod tests {\n fn t(count: usize) { let _ = count as u32; }\n}\n";
        assert!(check(&CountCast, "a.rs", "axqa-core", false, test_code).is_empty());
    }

    #[test]
    fn float_eq_only_in_distance_and_only_floats() {
        let code = "fn f(x: f64) -> bool { x == 0.5 }\n";
        assert_eq!(
            check(
                &FloatEq,
                "crates/distance/src/esd.rs",
                "axqa-distance",
                false,
                code
            )
            .len(),
            1
        );
        assert!(check(
            &FloatEq,
            "crates/core/src/eval.rs",
            "axqa-core",
            false,
            code
        )
        .is_empty());
        let ints = "fn f(x: u32) -> bool { x == 5 }\n";
        assert!(check(
            &FloatEq,
            "crates/distance/src/esd.rs",
            "axqa-distance",
            false,
            ints
        )
        .is_empty());
        let suffixed = "fn f(x: f32) -> bool { x != 1f32 }\n";
        assert_eq!(
            check(
                &FloatEq,
                "crates/distance/src/esd.rs",
                "axqa-distance",
                false,
                suffixed
            )
            .len(),
            1
        );
    }

    #[test]
    fn paper_doc_requires_citation_on_build_and_eval() {
        let undocumented = "pub fn ts_build() {}\n";
        assert_eq!(
            check(
                &PaperDoc,
                "crates/core/src/build.rs",
                "axqa-core",
                false,
                undocumented
            )
            .len(),
            1
        );
        let documented = "/// TSBUILD (Fig. 5).\npub fn ts_build() {}\n";
        assert!(check(
            &PaperDoc,
            "crates/core/src/build.rs",
            "axqa-core",
            false,
            documented
        )
        .is_empty());
        let section = "/// See §4.3.\n#[inline]\npub fn eval() {}\n";
        assert!(check(
            &PaperDoc,
            "crates/core/src/eval.rs",
            "axqa-core",
            false,
            section
        )
        .is_empty());
        // Other files are exempt; pub(crate) and pub struct are exempt.
        assert!(check(
            &PaperDoc,
            "crates/xml/src/tree.rs",
            "axqa-xml",
            false,
            undocumented
        )
        .is_empty());
        let scoped = "pub(crate) fn helper() {}\npub struct S;\n";
        assert!(check(
            &PaperDoc,
            "crates/core/src/build.rs",
            "axqa-core",
            false,
            scoped
        )
        .is_empty());
    }

    #[test]
    fn unwrap_flagged_outside_tests_only() {
        let src = "fn g(o: Option<u32>) -> u32 { o.unwrap() }\n";
        assert_eq!(check(&NoUnwrap, "a.rs", "axqa-core", false, src).len(), 1);
        let test_src = "#[cfg(test)]\nmod tests { fn t() { Some(1).unwrap(); } }\n";
        assert!(check(&NoUnwrap, "a.rs", "axqa-core", false, test_src).is_empty());
        // `unwrap_or_else` is not `.unwrap()`.
        let or_else = "fn g(o: Option<u32>) -> u32 { o.unwrap_or_else(|| 0) }\n";
        assert!(check(&NoUnwrap, "a.rs", "axqa-core", false, or_else).is_empty());
    }

    #[test]
    fn expect_flagged_across_rustfmt_multiline_chains() {
        // Exactly the shape rustfmt emits for a long receiver chain.
        let multiline = "fn g(v: &[u32]) -> u32 {\n\
                         \x20   v.iter()\n\
                         \x20       .map(|x| x.checked_mul(2))\n\
                         \x20       .next()\n\
                         \x20       .flatten()\n\
                         \x20       .expect(\"nonempty input\")\n\
                         }\n";
        let findings = check(&NoUnwrap, "a.rs", "axqa-core", false, multiline);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("expect"));
        assert_eq!(findings[0].line, 6);

        // Multiline `.unwrap()` after a broken call is also caught.
        let unwrap_ml = "fn g(o: Option<u32>) -> u32 {\n\
                         \x20   o.map(|x| x)\n\
                         \x20       .unwrap()\n\
                         }\n";
        assert_eq!(
            check(&NoUnwrap, "a.rs", "axqa-core", false, unwrap_ml).len(),
            1
        );
    }

    #[test]
    fn unwrap_unchecked_flagged_and_expect_in_tests_exempt() {
        let unchecked = "fn g(o: Option<u32>) -> u32 {\n\
                         \x20   unsafe { o.unwrap_unchecked() }\n\
                         }\n";
        let findings = check(&NoUnwrap, "a.rs", "axqa-core", false, unchecked);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("unwrap_unchecked"));

        let test_src = "#[cfg(test)]\nmod tests { fn t() { Some(1).expect(\"present\"); } }\n";
        assert!(check(&NoUnwrap, "a.rs", "axqa-core", false, test_src).is_empty());

        // A user method merely named `unwrap` with arguments is not std's.
        let named = "fn g(w: W) -> u32 { w.unwrap(3) }\n";
        assert!(check(&NoUnwrap, "a.rs", "axqa-core", false, named).is_empty());
    }

    #[test]
    fn forbidden_api_prints_in_lib_exit_everywhere() {
        let lib_print = "fn f() { println!(\"x\"); }\n";
        assert_eq!(
            check(
                &ForbiddenApi,
                "crates/harness/src/lib.rs",
                "axqa-harness",
                false,
                lib_print
            )
            .len(),
            1
        );
        // Binaries may print…
        assert!(check(
            &ForbiddenApi,
            "crates/cli/src/main.rs",
            "axqa-cli",
            true,
            lib_print
        )
        .is_empty());
        // …but nothing may exit.
        let exits = "fn f() { std::process::exit(2); }\n";
        assert_eq!(
            check(
                &ForbiddenApi,
                "crates/cli/src/main.rs",
                "axqa-cli",
                true,
                exits
            )
            .len(),
            1
        );
        let bare = "fn f() { process::exit(2); }\n";
        assert_eq!(
            check(
                &ForbiddenApi,
                "crates/cli/src/main.rs",
                "axqa-cli",
                true,
                bare
            )
            .len(),
            1
        );
        // writeln!/print_tree idents are fine; exit as a plain ident is fine.
        let ok = "fn print_tree(w: &mut W) { writeln!(w, \"x\").ok(); exit_state(); }\n";
        assert!(check(
            &ForbiddenApi,
            "crates/harness/src/lib.rs",
            "axqa-harness",
            false,
            ok
        )
        .is_empty());
    }

    #[test]
    fn forbidden_api_raw_clock_reads_in_libraries() {
        // Library crates must route timing through axqa-obs…
        let instant = "fn f() { let t = std::time::Instant::now(); drop(t); }\n";
        let v = check(
            &ForbiddenApi,
            "crates/harness/src/bench.rs",
            "axqa-harness",
            false,
            instant,
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("Instant::now()"));
        let system = "fn f() { let t = SystemTime::now(); drop(t); }\n";
        assert_eq!(
            check(
                &ForbiddenApi,
                "crates/core/src/build.rs",
                "axqa-core",
                false,
                system
            )
            .len(),
            1
        );
        // …but axqa-obs owns the clock, and binaries may read it.
        assert!(check(
            &ForbiddenApi,
            "crates/obs/src/recorder.rs",
            "axqa-obs",
            false,
            instant
        )
        .is_empty());
        assert!(check(
            &ForbiddenApi,
            "crates/harness/src/main.rs",
            "axqa-harness",
            true,
            instant
        )
        .is_empty());
        // `now` as a plain ident or another type's method is fine.
        let ok = "fn f(now: u64, w: &Watch) { let _ = now + w.now(); Clock::now(); }\n";
        assert!(check(
            &ForbiddenApi,
            "crates/core/src/build.rs",
            "axqa-core",
            false,
            ok
        )
        .is_empty());
        // Tests inside library files may read the clock.
        let test_code = "#[cfg(test)]\nmod tests { fn t() { let _ = Instant::now(); } }\n";
        assert!(check(
            &ForbiddenApi,
            "crates/core/src/build.rs",
            "axqa-core",
            false,
            test_code
        )
        .is_empty());
    }

    #[test]
    fn forbidden_api_allocator_access_outside_obs() {
        // `std::alloc` paths are banned in libraries and binaries alike…
        let use_alloc = "use std::alloc::{GlobalAlloc, Layout};\n";
        let v = check(
            &ForbiddenApi,
            "crates/core/src/cluster.rs",
            "axqa-core",
            false,
            use_alloc,
        );
        assert_eq!(v.len(), 2, "{v:?}"); // the path and the trait name
        assert!(v[0].message.contains("std::alloc"));
        let direct = "fn f(l: Layout) { let p = unsafe { std::alloc::alloc(l) }; drop(p); }\n";
        let v = check(
            &ForbiddenApi,
            "crates/harness/src/main.rs",
            "axqa-harness",
            true,
            direct,
        );
        assert_eq!(v.len(), 1, "{v:?}");
        // …as is a second GlobalAlloc impl anywhere outside obs.
        let wrapper = "struct MyAlloc;\nunsafe impl GlobalAlloc for MyAlloc {}\n";
        let v = check(
            &ForbiddenApi,
            "crates/bench/src/lib.rs",
            "axqa-bench",
            false,
            wrapper,
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("GlobalAlloc"));
        // axqa-obs owns the allocator; other `alloc` idents are fine.
        assert!(check(
            &ForbiddenApi,
            "crates/obs/src/alloc.rs",
            "axqa-obs",
            false,
            use_alloc
        )
        .is_empty());
        let ok = "fn f(a: &Arena) { a.alloc(4); my::alloc::helper(); }\n";
        assert!(check(
            &ForbiddenApi,
            "crates/core/src/build.rs",
            "axqa-core",
            false,
            ok
        )
        .is_empty());
        // Test code may build throwaway allocator fixtures.
        let test_code = "#[cfg(test)]\nmod tests { use std::alloc::GlobalAlloc; fn t() {} }\n";
        assert!(check(
            &ForbiddenApi,
            "crates/core/src/build.rs",
            "axqa-core",
            false,
            test_code
        )
        .is_empty());
    }
}
