#!/bin/sh
# Paper-scale experiment runs (single-core friendly ordering).
# Usage: scripts/paper_scale.sh [results-dir]
set -x
OUT="${1:-results/scale1}"
BIN=./target/release/harness
mkdir -p "$OUT"
$BIN table1 --scale 1 --csv "$OUT" > "$OUT/table1.log" 2>&1
$BIN fig12 --scale 1 --queries 300 --no-xsketch --csv "$OUT" > "$OUT/fig12_ts.log" 2>&1
$BIN fig13 --scale 0.5 --queries 200 --csv "$OUT" > "$OUT/fig13.log" 2>&1
$BIN family --scale 1 --csv "$OUT" > "$OUT/family.log" 2>&1
$BIN values --scale 1 --csv "$OUT" > "$OUT/values.log" 2>&1
echo PAPER_SCALE_DONE
