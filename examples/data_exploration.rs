// Examples/integration tests are demo code: panicking extractors are fine.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::arithmetic_side_effects
)]

//! The paper's motivating scenario (§1): interactive exploration of a
//! large XML repository with approximate previews.
//!
//! ```text
//! cargo run --release --example data_exploration
//! ```
//!
//! Simulates an analyst session over an auction-site dataset: a 10 KB
//! TreeSketch answers a sequence of exploratory twig queries instantly;
//! for each preview we report the estimated result size, and then — as
//! if the analyst had decided the preview looked interesting — the exact
//! answer and the time both took.

use axqa::prelude::*;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A mid-size XMark-style auction document.
    let doc = generate(
        Dataset::XMark,
        &GenConfig {
            target_elements: 150_000,
            seed: 2026,
        },
    );
    let stats = DocStats::compute(&doc);
    println!(
        "repository: {} elements, {:.1} MB serialized, {} distinct tags",
        stats.elements,
        stats.file_bytes as f64 / (1024.0 * 1024.0),
        stats.distinct_labels
    );

    // Offline: build the synopsis once.
    let t = Instant::now();
    let stable = build_stable(&doc);
    let sketch = ts_build(&stable, &BuildConfig::with_budget(10 * 1024)).sketch;
    println!(
        "10KB TreeSketch built in {:.2}s ({} clusters from {} stable classes)\n",
        t.elapsed().as_secs_f64(),
        sketch.len(),
        stable.len()
    );

    let index = DocIndex::build(&doc);
    let session = [
        // What does bidding activity look like?
        (
            "open auctions with bidders",
            "q1: q0 //open_auction[bidder]\nq2: q1 /bidder",
        ),
        // Do sellers annotate their auctions?
        (
            "annotated closed auctions",
            "q1: q0 //closed_auction[annotation]\nq2: q1 /annotation//text",
        ),
        // Are people with profiles also watching auctions?
        (
            "profiled people who watch",
            "q1: q0 //person[profile]\nq2: q1 //watch\nq3: q1 ? //interest",
        ),
        // Items with deeply nested descriptions.
        (
            "items with nested lists",
            "q1: q0 //item//parlist[listitem]\nq2: q1 //text",
        ),
    ];

    for (title, twig) in session {
        let query = parse_twig(twig)?;
        let t = Instant::now();
        let estimate = axqa::core::selectivity::estimate_query_selectivity(
            &sketch,
            &query,
            &EvalConfig::default(),
        );
        let preview_time = t.elapsed();
        let t = Instant::now();
        let exact = selectivity(&doc, &index, &query);
        let exact_time = t.elapsed();
        println!("query: {title}");
        println!("  preview : {estimate:>12.1} binding tuples   ({preview_time:.2?})");
        println!("  exact   : {exact:>12.1} binding tuples   ({exact_time:.2?})");
        let error = (exact - estimate).abs() / exact.max(1.0) * 100.0;
        println!("  error   : {error:>11.1}%\n");
    }
    Ok(())
}
