//! Weighted summaries: the DAG representation ESD is evaluated over.
//!
//! The paper computes ESD "by first building the stable summaries of T1
//! and T2 on the fly and then evaluating the metric on the stable
//! synopses" — a stable summary preserves path structure and edge
//! distributions while deduplicating identical subtrees. A
//! [`WeightedSummary`] generalizes this to *fractional* child
//! multiplicities so that approximate result sketches (whose edges carry
//! average counts) live in the same space as exact nesting trees.

use axqa_core::eval::ResultSketch;
use axqa_eval::{NestingTree, NtNodeId};
use axqa_query::QVar;
use axqa_xml::fxhash::FxHashMap;
use axqa_xml::{Document, LabelId, LabelTable};

/// One node of a weighted summary.
#[derive(Debug, Clone)]
pub struct WNode {
    /// Element label.
    pub label: LabelId,
    /// Query variable of the bindings this node represents, if any.
    pub var: Option<QVar>,
    /// `(child, multiplicity)` — multiplicity may be fractional for
    /// approximate answers. Children always have *smaller* indices
    /// (children-before-parents construction), keeping the graph a DAG.
    pub edges: Vec<(u32, f64)>,
    /// Expected subtree size: `1 + Σ mult · size(child)` — the paper's
    /// `|e|` in the empty-set transformation of §5.
    pub size: f64,
}

/// Dedup table: (label, query var, child signature) → summary node.
type SignatureTable = FxHashMap<(u32, u32, Vec<(u32, u64)>), u32>;

/// A weighted summary: DAG of deduplicated weighted subtrees.
#[derive(Debug, Clone)]
pub struct WeightedSummary {
    labels: LabelTable,
    nodes: Vec<WNode>,
    root: u32,
}

impl WeightedSummary {
    /// The root node id.
    pub fn root(&self) -> u32 {
        self.root
    }

    /// All nodes.
    pub fn nodes(&self) -> &[WNode] {
        &self.nodes
    }

    /// The node with id `id`.
    pub fn node(&self, id: u32) -> &WNode {
        &self.nodes[id as usize]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Never empty (there is always a root).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The label table.
    pub fn labels(&self) -> &LabelTable {
        &self.labels
    }

    /// Expected size of the whole summarized tree.
    pub fn total_size(&self) -> f64 {
        self.nodes[self.root as usize].size
    }

    /// Builds the weighted summary of a plain document — its count-stable
    /// summary with `var = None` everywhere.
    pub fn from_document(doc: &Document) -> WeightedSummary {
        let stable = axqa_synopsis::build_stable(doc);
        let mut nodes: Vec<WNode> = Vec::with_capacity(stable.len());
        for node in stable.nodes() {
            let edges: Vec<(u32, f64)> = node
                .children
                .iter()
                .map(|&(t, k)| (t.0, k as f64))
                .collect();
            let size = 1.0
                + edges
                    .iter()
                    .map(|&(t, m)| m * nodes[t as usize].size)
                    .sum::<f64>();
            nodes.push(WNode {
                label: node.label,
                var: None,
                edges,
                size,
            });
        }
        WeightedSummary {
            labels: stable.labels().clone(),
            root: stable.root().0,
            nodes,
        }
    }

    /// Builds the weighted summary of an exact nesting tree: identical
    /// `(label, var, child signature)` binding subtrees are deduplicated
    /// bottom-up, exactly like `BUILDSTABLE`.
    pub fn from_nesting_tree(doc: &Document, nt: &NestingTree) -> WeightedSummary {
        let mut nodes: Vec<WNode> = Vec::new();
        // (label, var, signature) → node id.
        let mut table: SignatureTable = FxHashMap::default();
        let mut class_of: FxHashMap<u32, u32> = FxHashMap::default();

        // Post-order over the nesting tree (children have larger NT ids,
        // so reverse id order is bottom-up).
        let order: Vec<NtNodeId> = collect_post_order(nt);
        for id in order {
            let mut signature: Vec<(u32, u64)> = Vec::new();
            for &child in nt.children(id) {
                let class = class_of[&child.0];
                signature.push((class, 0));
            }
            signature.sort_unstable_by_key(|&(c, _)| c);
            let mut collapsed: Vec<(u32, u64)> = Vec::new();
            for &(class, _) in &signature {
                match collapsed.last_mut() {
                    Some(last) if last.0 == class => last.1 = last.1.saturating_add(1),
                    _ => collapsed.push((class, 1)),
                }
            }
            let label = doc.label(nt.element(id));
            let var = nt.var(id);
            let key = (label.0, var.0, collapsed);
            let class = match table.get(&key) {
                Some(&c) => c,
                None => {
                    let c = axqa_xml::dense_id(nodes.len());
                    let edges: Vec<(u32, f64)> =
                        key.2.iter().map(|&(t, m)| (t, m as f64)).collect();
                    let size = 1.0
                        + edges
                            .iter()
                            .map(|&(t, m)| m * nodes[t as usize].size)
                            .sum::<f64>();
                    nodes.push(WNode {
                        label,
                        var: Some(var),
                        edges,
                        size,
                    });
                    table.insert(key, c);
                    c
                }
            };
            class_of.insert(id.0, class);
        }
        WeightedSummary {
            labels: doc.labels().clone(),
            root: class_of[&nt.root().0],
            nodes,
        }
    }

    /// Builds the weighted summary of a concrete answer tree (exact or
    /// sampled): identical `(label, var, child signature)` subtrees are
    /// deduplicated bottom-up, like `BUILDSTABLE`.
    pub fn from_answer_tree(tree: &axqa_eval::AnswerTree) -> WeightedSummary {
        let answer_nodes = tree.nodes();
        let mut nodes: Vec<WNode> = Vec::new();
        let mut table: SignatureTable = FxHashMap::default();
        let mut class_of = vec![u32::MAX; answer_nodes.len()];
        // Children have larger indices, so reverse order is bottom-up.
        for i in (0..answer_nodes.len()).rev() {
            let node = &answer_nodes[i];
            let mut signature: Vec<(u32, u64)> = Vec::new();
            for &child in &node.children {
                signature.push((class_of[child as usize], 0));
            }
            signature.sort_unstable_by_key(|&(c, _)| c);
            let mut collapsed: Vec<(u32, u64)> = Vec::new();
            for &(class, _) in &signature {
                match collapsed.last_mut() {
                    Some(last) if last.0 == class => last.1 = last.1.saturating_add(1),
                    _ => collapsed.push((class, 1)),
                }
            }
            let key = (node.label.0, node.var.0, collapsed);
            let class = match table.get(&key) {
                Some(&c) => c,
                None => {
                    let c = axqa_xml::dense_id(nodes.len());
                    let edges: Vec<(u32, f64)> =
                        key.2.iter().map(|&(t, m)| (t, m as f64)).collect();
                    let size = 1.0
                        + edges
                            .iter()
                            .map(|&(t, m)| m * nodes[t as usize].size)
                            .sum::<f64>();
                    nodes.push(WNode {
                        label: node.label,
                        var: Some(node.var),
                        edges,
                        size,
                    });
                    table.insert(key, c);
                    c
                }
            };
            class_of[i] = class;
        }
        WeightedSummary {
            labels: tree.labels().clone(),
            root: class_of[0],
            nodes,
        }
    }

    /// Builds the weighted summary of an approximate result sketch. The
    /// sketch is already a DAG keyed by `(synopsis node, variable)`;
    /// nodes are re-indexed children-before-parents and edge averages
    /// become fractional multiplicities.
    pub fn from_result_sketch(sketch: &ResultSketch) -> WeightedSummary {
        let rnodes = sketch.nodes();
        // Result nodes are created parents-first; reversing gives a
        // children-before-parents order.
        let n = rnodes.len();
        let last = axqa_xml::dense_id(n).saturating_sub(1);
        let remap = |i: u32| last.saturating_sub(i);
        let mut nodes: Vec<WNode> = Vec::with_capacity(n);
        for i in (0..n).rev() {
            let r = &rnodes[i];
            let mut edges: Vec<(u32, f64)> = r.edges.iter().map(|&(t, m)| (remap(t), m)).collect();
            edges.sort_unstable_by_key(|&(t, _)| t);
            let size = 1.0
                + edges
                    .iter()
                    .map(|&(t, m)| m * nodes[t as usize].size)
                    .sum::<f64>();
            nodes.push(WNode {
                label: r.label,
                var: Some(r.var),
                edges,
                size,
            });
        }
        WeightedSummary {
            labels: sketch.labels().clone(),
            root: remap(0),
            nodes,
        }
    }
}

fn collect_post_order(nt: &NestingTree) -> Vec<NtNodeId> {
    // NT children have strictly larger ids than their parent, so a
    // reverse id scan is already post-order for our purposes.
    (0..axqa_xml::dense_id(nt.len()))
        .rev()
        .map(NtNodeId)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use axqa_core::eval::{eval_query, EvalConfig};
    use axqa_core::TreeSketch;
    use axqa_eval::{evaluate, DocIndex};
    use axqa_query::parse_twig;
    use axqa_synopsis::build_stable;
    use axqa_xml::parse_document;

    #[test]
    fn document_summary_sizes() {
        let doc = parse_document("<r><a><b/><b/></a><a><b/><b/></a></r>").unwrap();
        let ws = WeightedSummary::from_document(&doc);
        // Classes: b, a(2b), r.
        assert_eq!(ws.len(), 3);
        assert_eq!(ws.total_size(), 7.0);
        assert!(ws.nodes().iter().all(|n| n.var.is_none()));
    }

    #[test]
    fn nesting_tree_summary_dedups_identical_subtrees() {
        let doc =
            parse_document("<d><a><p><k/></p></a><a><p><k/></p></a><a><p><k/><k/></p></a></d>")
                .unwrap();
        let index = DocIndex::build(&doc);
        let query = parse_twig("q1: q0 //a\nq2: q1 //p\nq3: q2 //k").unwrap();
        let nt = evaluate(&doc, &index, &query).unwrap();
        let ws = WeightedSummary::from_nesting_tree(&doc, &nt);
        // Classes: k(q3), p-with-1k(q2), p-with-2k(q2), a over each p
        // shape (2), root = 6; the two identical a-subtrees collapsed.
        assert_eq!(ws.len(), 6);
        // Total size = 1 root + 3 a + 3 p + 4 k = 11 binding nodes.
        assert_eq!(ws.total_size(), 11.0);
    }

    #[test]
    fn result_sketch_summary_matches_nesting_tree_on_stable_synopsis() {
        let doc =
            parse_document("<d><a><p><k/></p></a><a><p><k/></p></a><a><p><k/><k/></p></a></d>")
                .unwrap();
        let query = parse_twig("q1: q0 //a\nq2: q1 //p\nq3: q2 //k").unwrap();
        let ts = TreeSketch::from_stable(&build_stable(&doc));
        let rs = eval_query(&ts, &query, &EvalConfig::default()).unwrap();
        let ws = WeightedSummary::from_result_sketch(&rs);
        // Expected size equals the exact nesting-tree size.
        assert!((ws.total_size() - 11.0).abs() < 1e-9, "{}", ws.total_size());
        // DAG invariant: edges point to smaller indices.
        for (i, node) in ws.nodes().iter().enumerate() {
            for &(t, _) in &node.edges {
                assert!((t as usize) < i);
            }
        }
    }
}
