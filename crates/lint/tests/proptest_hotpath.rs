// Integration tests may panic on impossible cases.
#![allow(clippy::unwrap_used, clippy::expect_used)]
//! Property tests for the alloc-reachability analysis
//! (`crates/lint/src/hotpath.rs`).
//!
//! The committed `lint/alloc-surface.txt` must be a pure function of the
//! workspace *contents* — never of the order files happen to be visited
//! in. The engine sorts collected files by path, but nothing downstream
//! is allowed to depend on that: `hotpath::analyze` sorts its own file
//! index and `hotpath::surface` sorts its output. These properties pin
//! that down by rendering the surface for a generated workspace under a
//! random permutation of the file list and demanding byte-identical
//! output, with grants and cross-crate calls in play.

use axqa_lint::baseline::AllocGrant;
use axqa_lint::{hotpath, SourceFile, Workspace};
use proptest::prelude::*;

/// Statements that are direct allocation sites, labelled with the
/// `what` a matching grant would use.
const ALLOC_STMTS: &[(&str, &str)] = &[
    ("let v: Vec<u32> = Vec::new();", "Vec::new"),
    (
        "let s = xs.iter().copied().collect::<Vec<u32>>();",
        ".collect",
    ),
    ("let t = vec![0u8; 4];", "vec!"),
    ("out.resize(8, 0);", ".resize"),
];

/// Statements the detector must ignore.
const PLAIN_STMTS: &[&str] = &[
    "let x = a.wrapping_add(b);",
    "if a > b { return a; }",
    "let y = a.min(b);",
    "out.push(a);",
];

/// One generated function: its statement picks (index into
/// [`ALLOC_STMTS`] when `< ALLOC_STMTS.len()`, else a plain statement)
/// and the indices of the functions it calls.
#[derive(Debug, Clone)]
struct GenFn {
    stmts: Vec<u8>,
    calls: Vec<u8>,
}

/// A generated workspace: functions distributed round-robin over
/// `num_files` files across two crates, plus an optional grant.
#[derive(Debug, Clone)]
struct GenWorkspace {
    fns: Vec<GenFn>,
    num_files: usize,
    grant: Option<(u8, u8, usize)>,
}

fn render_fn(i: usize, spec: &GenFn, num_fns: usize) -> String {
    let mut body = String::new();
    for &pick in &spec.stmts {
        let pick = pick as usize;
        if pick < ALLOC_STMTS.len() {
            body.push_str(&format!("    {}\n", ALLOC_STMTS[pick].0));
        } else {
            body.push_str(&format!("    {}\n", PLAIN_STMTS[pick % PLAIN_STMTS.len()]));
        }
    }
    for &callee in &spec.calls {
        body.push_str(&format!(
            "    hot_fn_{}(xs, a, b, out);\n",
            callee as usize % num_fns
        ));
    }
    format!(
        "pub fn hot_fn_{i}(xs: &[u32], a: u32, b: u32, out: &mut Vec<u32>) -> u32 {{\n\
         {body}    a\n}}\n\n"
    )
}

/// Builds the workspace with files in the order given by `perm`
/// (a permutation of `0..num_files`).
fn build(spec: &GenWorkspace, perm: &[usize]) -> Workspace {
    let num_fns = spec.fns.len();
    let mut texts: Vec<String> = vec![String::new(); spec.num_files];
    for (i, f) in spec.fns.iter().enumerate() {
        texts[i % spec.num_files].push_str(&render_fn(i, f, num_fns));
    }
    let file_of = |fi: usize| -> SourceFile {
        // Odd files live in a second crate that the first depends on,
        // so cross-crate edges survive dependency pruning in exactly
        // one direction.
        let (rel, crate_name) = if fi.is_multiple_of(2) {
            (format!("crates/core/src/gen{fi}.rs"), "axqa-core")
        } else {
            (format!("crates/eval/src/gen{fi}.rs"), "axqa-eval")
        };
        SourceFile::new(rel, crate_name.to_string(), false, texts[fi].clone())
    };
    let alloc_grants = spec
        .grant
        .iter()
        .map(|&(fi, what, count)| AllocGrant {
            path: format!("hot_fn_{}", fi as usize % num_fns),
            what: ALLOC_STMTS[what as usize % ALLOC_STMTS.len()].1.to_string(),
            count,
            reason: "generated".to_string(),
        })
        .collect();
    Workspace {
        files: perm.iter().map(|&fi| file_of(fi)).collect(),
        dep_edges: vec![
            ("axqa-core".to_string(), vec!["axqa-eval".to_string()]),
            ("axqa-eval".to_string(), Vec::new()),
        ],
        api_surface_snapshot: None,
        panic_surface_snapshot: None,
        alloc_surface_snapshot: None,
        hot_paths: Some("[[root]]\npath = \"hot_fn_0\"\nreason = \"generated root\"\n".to_string()),
        alloc_grants,
        graph: std::cell::OnceCell::new(),
    }
}

fn gen_workspace() -> impl Strategy<Value = GenWorkspace> {
    let gen_fn = (
        proptest::collection::vec(0u8..8, 0..5),
        proptest::collection::vec(0u8..16, 0..4),
    )
        .prop_map(|(stmts, calls)| GenFn { stmts, calls });
    (
        proptest::collection::vec(gen_fn, 2..10),
        2usize..5,
        (any::<bool>(), 0u8..16, 0u8..4, 0usize..4),
    )
        .prop_map(
            |(fns, num_files, (granted, fi, what, count))| GenWorkspace {
                fns,
                num_files,
                grant: granted.then_some((fi, what, count)),
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // The rendered alloc surface is identical for every file-visit
    // order, including with a grant consuming some of the sites.
    #[test]
    fn surface_is_file_order_independent(
        spec in gen_workspace(),
        seed in any::<u64>(),
    ) {
        let sorted: Vec<usize> = (0..spec.num_files).collect();
        let reference = hotpath::render_surface(&build(&spec, &sorted));

        // Deterministic permutation from the seed (avoid a second
        // proptest-level shuffle dimension blowing up the case count).
        let mut perm = sorted.clone();
        let mut state = seed | 1;
        for i in (1..perm.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            perm.swap(i, (state >> 33) as usize % (i + 1));
        }
        let shuffled = hotpath::render_surface(&build(&spec, &perm));
        prop_assert_eq!(&reference, &shuffled, "perm {:?}", perm);
    }

    // Rebuilding the same workspace twice renders the same surface —
    // no per-process hash seeding or other hidden state leaks in.
    #[test]
    fn surface_is_rebuild_stable(spec in gen_workspace()) {
        let order: Vec<usize> = (0..spec.num_files).collect();
        let a = hotpath::render_surface(&build(&spec, &order));
        let b = hotpath::render_surface(&build(&spec, &order));
        prop_assert_eq!(a, b);
    }
}
