// Benchmarks are test-like code: panicking extractors are acceptable here.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::arithmetic_side_effects
)]

//! Figure 11 — the approximate-answer + ESD pipeline per technique:
//! evaluate a twig over a 10 KB synopsis, summarize the answer, compare
//! against the precomputed true nesting tree with ESD.

/// Bench binaries install the counting allocator (DESIGN.md §12)
/// so recorded spans carry real allocation profiles.
#[global_allocator]
static ALLOC: axqa_obs::alloc::CountingAlloc = axqa_obs::alloc::CountingAlloc;

use axqa_bench::Fixture;
use axqa_core::{eval_query, ts_build, BuildConfig, EvalConfig};
use axqa_datagen::Dataset;
use axqa_distance::{esd_summaries, EsdConfig, WeightedSummary};
use axqa_eval::evaluate;
use axqa_xsketch::answer::{sample_answer, SampleConfig};
use axqa_xsketch::build::{build_xsketch, XsBuildConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_fig11(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_esd");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(5));
    for dataset in [Dataset::Imdb, Dataset::SProt] {
        let fixture = Fixture::new(dataset, 15_000, 20);
        let ts = ts_build(&fixture.stable, &BuildConfig::with_budget(10 * 1024)).sketch;
        let build_workload = fixture.build_workload(15);
        let xs = build_xsketch(
            &fixture.stable,
            &build_workload,
            &XsBuildConfig::with_budget(10 * 1024),
        );
        // Precompute the truth summaries (budget-independent).
        let truths: Vec<WeightedSummary> = fixture
            .workload
            .iter()
            .map(|q| {
                let nt = evaluate(&fixture.doc, &fixture.index, q).expect("positive");
                WeightedSummary::from_nesting_tree(&fixture.doc, &nt)
            })
            .collect();
        let esd = EsdConfig::default();

        group.bench_function(format!("treesketch_answer_esd/{}", dataset.name()), |b| {
            b.iter(|| {
                let mut total = 0.0;
                for (query, truth) in fixture.workload.iter().zip(&truths) {
                    if let Some(result) = eval_query(&ts, query, &EvalConfig::default()) {
                        let approx = WeightedSummary::from_result_sketch(&result);
                        total += esd_summaries(truth, &approx, &esd);
                    }
                }
                total
            })
        });
        group.bench_function(format!("xsketch_sampled_esd/{}", dataset.name()), |b| {
            b.iter(|| {
                let mut total = 0.0;
                let mut rng = StdRng::seed_from_u64(9);
                for (query, truth) in fixture.workload.iter().zip(&truths) {
                    if let Some(tree) =
                        sample_answer(&xs, query, &SampleConfig::default(), &mut rng)
                    {
                        let approx = WeightedSummary::from_answer_tree(&tree);
                        total += esd_summaries(truth, &approx, &esd);
                    }
                }
                total
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig11);
criterion_main!(benches);
