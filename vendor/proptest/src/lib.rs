//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this crate
//! re-implements the slice of proptest's API that the workspace's
//! property tests use: the `proptest!` macro, `Strategy` with
//! `prop_map` / `prop_recursive`, `prop::collection::vec`, `any`,
//! range and tuple strategies, a string strategy for `&str`
//! "patterns", and the `prop_assert*` macros.
//!
//! Differences from real proptest, by design:
//! - no shrinking: a failing case panics with the generated input's
//!   `Debug` rendering (inputs are deterministic per test name, so a
//!   failure reproduces exactly on re-run);
//! - string strategies ignore the regex language and generate
//!   adversarial printable text instead;
//! - `ProptestConfig` only honours `cases`.

use std::cell::RefCell;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Mirror of proptest's `Config`, honouring only `cases`.
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 32 }
        }
    }

    /// Deterministic per-test RNG: the seed is a hash of the test
    /// name, so every run generates the identical case sequence.
    pub struct TestRng {
        pub inner: StdRng,
    }

    impl TestRng {
        pub fn deterministic(test_name: &str) -> Self {
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in test_name.bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                inner: StdRng::seed_from_u64(hash),
            }
        }
    }
}

use test_runner::TestRng;

pub mod strategy {
    use super::*;
    use rand::Rng;

    /// Generation-only mirror of proptest's `Strategy`.
    pub trait Strategy {
        type Value;

        /// Generate one value. `depth` is the remaining recursion
        /// budget for strategies built with [`Strategy::prop_recursive`];
        /// non-recursive strategies pass it through unchanged.
        fn generate(&self, rng: &mut TestRng, depth: u32) -> Self::Value;

        fn prop_map<O, F>(self, map: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map {
                source: self,
                map,
            }
        }

        fn prop_filter<F>(self, _whence: &'static str, filter: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                source: self,
                filter,
            }
        }

        fn prop_recursive<F, S>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
        {
            let leaf: Rc<dyn Strategy<Value = Self::Value>> = Rc::new(self);
            type Slot<T> = Rc<RefCell<Option<Rc<dyn Strategy<Value = T>>>>>;
            let slot: Slot<Self::Value> = Rc::new(RefCell::new(None));
            let inner = BoxedStrategy {
                gen: Rc::new({
                    let leaf = leaf.clone();
                    let slot = slot.clone();
                    move |rng: &mut TestRng, depth_left: u32| {
                        if depth_left == 0 {
                            leaf.generate(rng, 0)
                        } else {
                            let expanded = slot
                                .borrow()
                                .clone()
                                .expect("recursive strategy used before initialization");
                            expanded.generate(rng, depth_left - 1)
                        }
                    }
                }),
            };
            let expanded: Rc<dyn Strategy<Value = Self::Value>> = Rc::new(recurse(inner));
            *slot.borrow_mut() = Some(expanded.clone());
            BoxedStrategy {
                gen: Rc::new(move |rng, _| expanded.generate(rng, depth)),
            }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            let this = Rc::new(self);
            BoxedStrategy {
                gen: Rc::new(move |rng, depth| this.generate(rng, depth)),
            }
        }
    }

    /// Type-erased strategy, cheap to clone.
    pub struct BoxedStrategy<T> {
        pub(crate) gen: Rc<dyn Fn(&mut TestRng, u32) -> T>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                gen: self.gen.clone(),
            }
        }
    }

    impl<T: 'static> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng, depth: u32) -> T {
            (self.gen)(rng, depth)
        }
    }

    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng, depth: u32) -> O {
            (self.map)(self.source.generate(rng, depth))
        }
    }

    pub struct Filter<S, F> {
        source: S,
        filter: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng, depth: u32) -> S::Value {
            // Bounded rejection sampling; give up and accept rather
            // than loop forever on a too-strict filter.
            for _ in 0..1000 {
                let candidate = self.source.generate(rng, depth);
                if (self.filter)(&candidate) {
                    return candidate;
                }
            }
            self.source.generate(rng, depth)
        }
    }

    /// `Just`: constant strategy.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng, _depth: u32) -> T {
            self.0.clone()
        }
    }

    impl<T: rand::One + 'static> Strategy for Range<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng, _depth: u32) -> T {
            rng.inner.gen_range(self.clone())
        }
    }

    impl<T: rand::SampleUniform + 'static> Strategy for RangeInclusive<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng, _depth: u32) -> T {
            rng.inner.gen_range(self.clone())
        }
    }

    /// String "pattern" strategy. The regex language is NOT
    /// implemented; any `&str` pattern yields adversarial printable
    /// text with plenty of XML metacharacters, which is what the
    /// workspace's parser-fuzzing tests are after.
    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng, _depth: u32) -> String {
            const POOL: &[char] = &[
                '<', '>', '&', '"', '\'', '/', '=', ' ', '\t', '\n', 'a', 'b', 'z', 'A', 'Z',
                '0', '9', '_', '-', '.', ';', '!', '?', '[', ']', 'é', 'λ', '中', '🦀',
            ];
            let len = rng.inner.gen_range(0usize..64);
            (0..len)
                .map(|_| {
                    if rng.inner.gen_bool(0.8) {
                        POOL[rng.inner.gen_range(0usize..POOL.len())]
                    } else {
                        // Arbitrary non-control scalar value.
                        loop {
                            let raw = rng.inner.gen_range(0x20u32..0xFFFF);
                            if let Some(c) = char::from_u32(raw) {
                                if !c.is_control() {
                                    break c;
                                }
                            }
                        }
                    }
                })
                .collect()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng, depth: u32) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng, depth),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;

    /// Mirror of proptest's `Arbitrary` for the primitives the
    /// workspace generates with `any::<T>()`.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng, _depth: u32) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    macro_rules! impl_arbitrary_uniform {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.inner.gen_range(<$t>::MIN..=<$t>::MAX)
                }
            }
        )*};
    }

    impl_arbitrary_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.inner.gen_bool(0.5)
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Finite, sign-symmetric, wide dynamic range.
            let magnitude: f64 = rng.inner.gen_range(0.0..1e6);
            if rng.inner.gen_bool(0.5) {
                magnitude
            } else {
                -magnitude
            }
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Mirror of proptest's `SizeRange` (inclusive bounds).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        pub min: usize,
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                min: r.start,
                max: r.end.saturating_sub(1),
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng, depth: u32) -> Vec<S::Value> {
            let len = rng.inner.gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.generate(rng, depth)).collect()
        }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Mirror of proptest's `proptest!` macro: runs each test body over
/// `config.cases` deterministically generated inputs. No shrinking —
/// the panic message carries the offending case index, and the
/// deterministic per-test seed makes every failure reproducible.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $config; $($rest)*);
    };
    (@impl $config:expr; $(#[test] fn $name:ident($($pat:pat in $strategy:expr),* $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                for _case in 0..config.cases {
                    $(
                        let $pat = $crate::strategy::Strategy::generate(
                            &($strategy),
                            &mut rng,
                            0,
                        );
                    )*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::test_runner::Config::default(); $($rest)*);
    };
}

/// `prop_assert!` without shrinking: plain `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn recursive_strategy_terminates() {
        #[derive(Debug, Clone)]
        struct Node {
            children: Vec<Node>,
        }
        fn size(n: &Node) -> usize {
            1 + n.children.iter().map(size).sum::<usize>()
        }
        let leaf = (0u8..3).prop_map(|_| Node { children: vec![] });
        let strat = leaf.prop_recursive(3, 9, 3, |inner| {
            prop::collection::vec(inner, 0..3).prop_map(|children| Node { children })
        });
        let mut rng = crate::test_runner::TestRng::deterministic("recursive");
        for _ in 0..200 {
            let tree = Strategy::generate(&strat, &mut rng, 0);
            // Depth 3 with branching <= 2 bounds the size at
            // 1+2+4+8 = 15 internal slots... keep a loose bound.
            assert!(size(&tree) <= 40);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_patterns(x in 0u8..5, (a, b) in (0u8..3, any::<bool>())) {
            prop_assert!(x < 5);
            prop_assert!(a < 3);
            prop_assert_eq!(b, b);
        }
    }
}
