// Tests opt back into panicking extractors; library code returns errors
// (workspace lint table, DESIGN.md "Static analysis & invariants").
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss
    )
)]

//! Shared fixtures for the Criterion benchmarks.
//!
//! Each bench target corresponds to one paper table/figure (see
//! DESIGN.md §5); fixtures are generated once per benchmark at a
//! laptop-friendly scale and reused across measurements.

use axqa_datagen::workload::{positive_workload, WorkloadConfig};
use axqa_datagen::{generate, Dataset, GenConfig};
use axqa_eval::{selectivity, DocIndex};
use axqa_query::TwigQuery;
use axqa_synopsis::{build_stable, StableSummary};
use axqa_xml::Document;

/// A prepared benchmark fixture.
pub struct Fixture {
    /// Which dataset.
    pub dataset: Dataset,
    /// The document.
    pub doc: Document,
    /// Its stable summary.
    pub stable: StableSummary,
    /// Evaluation index.
    pub index: DocIndex,
    /// Positive workload.
    pub workload: Vec<TwigQuery>,
    /// Exact counts for the workload.
    pub exact: Vec<f64>,
}

impl Fixture {
    /// Builds a fixture with `elements` elements and `queries` queries.
    pub fn new(dataset: Dataset, elements: usize, queries: usize) -> Fixture {
        let doc = generate(
            dataset,
            &GenConfig {
                target_elements: elements,
                seed: 0xBE7C4,
            },
        );
        let stable = build_stable(&doc);
        let index = DocIndex::build(&doc);
        let workload = positive_workload(
            &stable,
            &WorkloadConfig {
                count: queries,
                seed: 0xBE7C4 ^ 1,
                ..WorkloadConfig::default()
            },
        );
        let exact = workload
            .iter()
            .map(|q| selectivity(&doc, &index, q))
            .collect();
        Fixture {
            dataset,
            doc,
            stable,
            index,
            workload,
            exact,
        }
    }

    /// Exact-count pairs for driving the twig-XSketch builder.
    pub fn build_workload(&self, count: usize) -> Vec<(TwigQuery, f64)> {
        let queries = positive_workload(
            &self.stable,
            &WorkloadConfig {
                count,
                seed: 0xB111D,
                ..WorkloadConfig::default()
            },
        );
        queries
            .into_iter()
            .map(|q| {
                let s = selectivity(&self.doc, &self.index, &q);
                (q, s)
            })
            .collect()
    }
}
