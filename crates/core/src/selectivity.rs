//! Selectivity estimation over result sketches (§4.4).
//!
//! One bottom-up pass over the result TreeSketch computes, per result
//! node, the average number of binding tuples contributed by each of its
//! elements: a required child variable multiplies by the sum of
//! `count(uQ, vQ) · tuples(vQ)` over the variable's edges, an optional
//! one by `max(sum, 1)` — matching the exact counting semantics of
//! `axqa_eval::NestingTree::binding_tuples`. The estimate is the root's
//! value (the root binds exactly the document root).

use crate::eval::ResultSketch;
use axqa_query::TwigQuery;

/// Estimated number of binding tuples of the query summarized by
/// `result`.
pub fn estimate_selectivity(result: &ResultSketch, query: &TwigQuery) -> f64 {
    let nodes = result.nodes();
    let mut tuples = vec![0.0f64; nodes.len()];
    // Result nodes are created parents-first, so a reverse scan is
    // bottom-up (edges always point to later nodes).
    for i in (0..nodes.len()).rev() {
        let node = &nodes[i];
        let mut product = 1.0f64;
        for qc in query.children(node.var) {
            let sum: f64 = node
                .edges
                .iter()
                .filter(|&&(t, _)| nodes[t as usize].var == qc)
                .map(|&(t, k)| k * tuples[t as usize])
                .sum();
            product *= if query.node(qc).optional {
                sum.max(1.0)
            } else {
                sum
            };
        }
        tuples[i] = product;
    }
    tuples[result.root() as usize]
}

/// Convenience: evaluate + estimate in one call; 0.0 for empty answers.
pub fn estimate_query_selectivity(
    sketch: &crate::sketch::TreeSketch,
    query: &TwigQuery,
    config: &crate::eval::EvalConfig,
) -> f64 {
    match crate::eval::eval_query(sketch, query, config) {
        Some(result) => estimate_selectivity(&result, query),
        None => 0.0,
    }
}

/// Fallible variant of [`estimate_query_selectivity`]: rejects an empty
/// synopsis with [`crate::error::AxqaError::EmptySynopsis`] instead of
/// silently estimating zero.
pub fn try_estimate_query_selectivity(
    sketch: &crate::sketch::TreeSketch,
    query: &TwigQuery,
    config: &crate::eval::EvalConfig,
) -> Result<f64, crate::error::AxqaError> {
    if sketch.is_empty() {
        return Err(crate::error::AxqaError::EmptySynopsis {
            context: "estimate_query_selectivity",
        });
    }
    Ok(estimate_query_selectivity(sketch, query, config))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval_query, EvalConfig};
    use crate::sketch::TreeSketch;
    use axqa_eval::{selectivity as exact_selectivity, DocIndex};
    use axqa_query::parse_twig;
    use axqa_synopsis::build_stable;
    use axqa_xml::parse_document;

    fn check_exact(src: &str, twig: &str) {
        let doc = parse_document(src).unwrap();
        let index = DocIndex::build(&doc);
        let query = parse_twig(twig).unwrap();
        let exact = exact_selectivity(&doc, &index, &query);
        let ts = TreeSketch::from_stable(&build_stable(&doc));
        let estimate = estimate_query_selectivity(&ts, &query, &EvalConfig::default());
        assert!(
            (exact - estimate).abs() < 1e-9 * exact.max(1.0),
            "{twig}: exact {exact} vs estimate {estimate}"
        );
    }

    #[test]
    fn exact_on_stable_synopses() {
        let doc = "<d><a><p><k/></p><p><k/><k/></p><n/></a>\
                   <a><n/><p><k/></p><b><t/></b></a>\
                   <a><n/><p><k/></p><b><t/></b></a></d>";
        check_exact(doc, "q1: q0 //a\nq2: q1 //p\nq3: q2 //k");
        check_exact(doc, "q1: q0 //a[//b]\nq2: q1 //p");
        check_exact(doc, "q1: q0 //a\nq2: q1 ? //b");
        check_exact(doc, "q1: q0 //p[/k]\nq2: q1 /k");
        check_exact(doc, "q1: q0 //a[//b][//n]\nq2: q1 //k");
    }

    #[test]
    fn figure3_selectivity_is_ten_for_both_documents() {
        // §3.1: the twig //A/B/C has selectivity 10 on both T1 and T2.
        for src in [
            "<r><a><b><c/></b><b><c/><c/><c/><c/></b></a>\
             <a><b><c/></b><b><c/><c/><c/><c/></b></a></r>",
            "<r><a><b><c/></b><b><c/></b></a>\
             <a><b><c/><c/><c/><c/></b><b><c/><c/><c/><c/></b></a></r>",
        ] {
            check_exact(src, "q1: q0 //a\nq2: q1 /b\nq3: q2 /c");
            let doc = parse_document(src).unwrap();
            let index = DocIndex::build(&doc);
            let query = parse_twig("q1: q0 //a\nq2: q1 /b\nq3: q2 /c").unwrap();
            assert_eq!(exact_selectivity(&doc, &index, &query), 10.0);
        }
    }

    #[test]
    fn empty_answer_estimates_zero() {
        let doc = parse_document("<r><a/></r>").unwrap();
        let ts = TreeSketch::from_stable(&build_stable(&doc));
        let query = parse_twig("q1: q0 //nope").unwrap();
        assert_eq!(
            estimate_query_selectivity(&ts, &query, &EvalConfig::default()),
            0.0
        );
    }

    #[test]
    fn optional_edges_clamp_at_one() {
        let doc = parse_document("<r><a/><a/><a/></r>").unwrap();
        let ts = TreeSketch::from_stable(&build_stable(&doc));
        let query = parse_twig("q1: q0 //a\nq2: q1 ? //zzz").unwrap();
        let result = eval_query(&ts, &query, &EvalConfig::default()).unwrap();
        assert_eq!(estimate_selectivity(&result, &query), 3.0);
    }
}
