//! The twig-XSketch synopsis structure.
//!
//! A graph synopsis (§3.1) whose nodes carry element counts and joint
//! edge histograms, and whose edges carry backward/forward stability
//! flags:
//!
//! * edge `(u, v)` is **B-stable** iff every element of `extent(v)` has
//!   its parent in `extent(u)`;
//! * edge `(u, v)` is **F-stable** iff every element of `extent(u)` has
//!   at least one child in `extent(v)`.
//!
//! Both flags are computed exactly from the count-stable skeleton: in a
//! tree every element has exactly one parent, so the number of `v`
//! elements with a parent in `u` is `Σ_{s∈u} n_s · K(s, v)`.

use crate::histogram::EdgeHistogram;
use axqa_synopsis::{SizeModel, StableSummary, SynNodeId};
use axqa_xml::fxhash::FxHashMap;
use axqa_xml::{LabelId, LabelTable};

/// Identifier of a twig-XSketch node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct XsNodeId(pub u32);

impl XsNodeId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One outgoing edge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct XEdge {
    /// Target node.
    pub target: XsNodeId,
    /// Average child count (histogram mean, cached).
    pub avg: f64,
    /// Backward stability.
    pub b_stable: bool,
    /// Forward stability.
    pub f_stable: bool,
}

/// One twig-XSketch node.
#[derive(Debug, Clone)]
pub struct XNode {
    /// Common label.
    pub label: LabelId,
    /// Extent size.
    pub count: u64,
    /// Outgoing edges, sorted by target.
    pub edges: Vec<XEdge>,
    /// Joint child-count histogram over `edges` (dims parallel).
    pub histogram: EdgeHistogram,
    /// Longest downward distance to a leaf node.
    pub depth: u32,
}

/// A twig-XSketch synopsis.
#[derive(Debug, Clone)]
pub struct XSketch {
    labels: LabelTable,
    nodes: Vec<XNode>,
    root: XsNodeId,
}

impl XSketch {
    /// The root node.
    pub fn root(&self) -> XsNodeId {
        self.root
    }

    /// All nodes.
    pub fn nodes(&self) -> &[XNode] {
        &self.nodes
    }

    /// The node with id `id`.
    pub fn node(&self, id: XsNodeId) -> &XNode {
        &self.nodes[id.index()]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Never empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The label table.
    pub fn labels(&self) -> &LabelTable {
        &self.labels
    }

    /// Total edges.
    pub fn num_edges(&self) -> usize {
        self.nodes.iter().map(|n| n.edges.len()).sum()
    }

    /// Total histogram buckets.
    pub fn num_buckets(&self) -> usize {
        self.nodes.iter().map(|n| n.histogram.num_buckets()).sum()
    }

    /// Size under the twig-XSketch byte model.
    pub fn size_bytes(&self) -> usize {
        SizeModel::XSKETCH.bytes(self.len(), self.num_edges(), self.num_buckets())
    }

    /// Max node depth (bounds descendant enumeration).
    pub fn height(&self) -> u32 {
        self.nodes.iter().map(|n| n.depth).max().unwrap_or(0)
    }

    /// Materializes a twig-XSketch from a partition of the stable
    /// skeleton. `partition[s]` is the cluster of stable node `s`
    /// (cluster ids must be dense `0..num_clusters`); `bucket_budget` is
    /// the total number of histogram buckets to distribute (heaviest
    /// vectors globally first).
    ///
    /// # Panics
    ///
    /// If `partition` maps no stable node to some cluster id in
    /// `0..num_clusters` (every cluster must have members).
    pub fn from_partition(
        stable: &StableSummary,
        partition: &[u32],
        num_clusters: usize,
        bucket_budget: usize,
    ) -> XSketch {
        // Gather per-cluster members.
        let mut members: Vec<Vec<u32>> = vec![Vec::new(); num_clusters];
        for (s, &c) in partition.iter().enumerate() {
            members[c as usize].push(axqa_xml::dense_id(s));
        }
        // Per-cluster target sets and per-member count vectors.
        struct Raw {
            label: LabelId,
            count: u64,
            targets: Vec<u32>,
            vectors: Vec<(Vec<u32>, f64)>,
            depth: u32,
        }
        let mut raw: Vec<Raw> = Vec::with_capacity(num_clusters);
        // Elements of each cluster (for B-stability).
        let mut cluster_elems = vec![0u64; num_clusters];
        for (s, &c) in partition.iter().enumerate() {
            cluster_elems[c as usize] = cluster_elems[c as usize]
                .saturating_add(stable.node(SynNodeId(axqa_xml::dense_id(s))).extent);
        }
        // Incoming "child slots" per (parent cluster, child cluster).
        let mut into: FxHashMap<(u32, u32), f64> = FxHashMap::default();

        for (ci, ms) in members.iter().enumerate() {
            assert!(!ms.is_empty(), "cluster {ci} has no members");
            let first = stable.node(SynNodeId(ms[0]));
            let label = first.label;
            let mut target_set: Vec<u32> = Vec::new();
            for &s in ms {
                for &(t, _) in &stable.node(SynNodeId(s)).children {
                    target_set.push(partition[t.index()]);
                }
            }
            target_set.sort_unstable();
            target_set.dedup();
            let index_of: FxHashMap<u32, usize> = target_set
                .iter()
                .enumerate()
                .map(|(i, &t)| (t, i))
                .collect();
            let mut vectors: Vec<(Vec<u32>, f64)> = Vec::with_capacity(ms.len());
            let mut count = 0u64;
            let mut depth = 0u32;
            for &s in ms {
                let node = stable.node(SynNodeId(s));
                debug_assert_eq!(node.label, label, "label-respecting partition");
                count = count.saturating_add(node.extent);
                depth = depth.max(node.depth);
                let mut vector = vec![0u32; target_set.len()];
                for &(t, k) in &node.children {
                    let dim = index_of[&partition[t.index()]];
                    vector[dim] = vector[dim].saturating_add(k);
                }
                for (dim, &t) in target_set.iter().enumerate() {
                    if vector[dim] > 0 {
                        *into.entry((axqa_xml::dense_id(ci), t)).or_insert(0.0) +=
                            node.extent as f64 * vector[dim] as f64;
                    }
                }
                vectors.push((vector, node.extent as f64));
            }
            // Merge identical vectors.
            vectors.sort_unstable_by(|a, b| a.0.cmp(&b.0));
            let mut merged: Vec<(Vec<u32>, f64)> = Vec::with_capacity(vectors.len());
            for (v, w) in vectors {
                match merged.last_mut() {
                    Some((lv, lw)) if *lv == v => *lw += w,
                    _ => merged.push((v, w)),
                }
            }
            raw.push(Raw {
                label,
                count,
                targets: target_set,
                vectors: merged,
                depth,
            });
        }

        // Distribute the bucket budget: every node gets at least one
        // bucket; remaining slots go to the globally heaviest vectors.
        let mut allocation = vec![1usize; num_clusters];
        let mut spent: usize = allocation.iter().sum();
        let mut heap: Vec<(f64, usize, usize)> = Vec::new(); // (weight, node, next bucket index)
        for (ci, r) in raw.iter().enumerate() {
            // Vectors sorted by weight descending for allocation.
            let mut weights: Vec<f64> = r.vectors.iter().map(|&(_, w)| w).collect();
            weights.sort_by(|a, b| b.total_cmp(a));
            if weights.len() > 1 {
                heap.push((weights[1], ci, 2));
            }
        }
        heap.sort_by(|a, b| a.0.total_cmp(&b.0));
        while spent < bucket_budget {
            let Some((_, ci, next)) = heap.pop() else {
                break;
            };
            allocation[ci] += 1;
            spent += 1;
            let r = &raw[ci];
            if next < r.vectors.len() + 1 {
                let mut weights: Vec<f64> = r.vectors.iter().map(|&(_, w)| w).collect();
                weights.sort_by(|a, b| b.total_cmp(a));
                if next < weights.len() {
                    let w = weights[next];
                    let pos = heap.partition_point(|&(hw, _, _)| hw < w);
                    heap.insert(pos, (w, ci, next + 1));
                }
            }
        }

        // Materialize nodes.
        let mut nodes: Vec<XNode> = Vec::with_capacity(num_clusters);
        for (ci, r) in raw.iter().enumerate() {
            let histogram = EdgeHistogram::build(&r.vectors, allocation[ci]);
            let edges: Vec<XEdge> = r
                .targets
                .iter()
                .enumerate()
                .map(|(dim, &t)| {
                    let slots = into
                        .get(&(axqa_xml::dense_id(ci), t))
                        .copied()
                        .unwrap_or(0.0);
                    XEdge {
                        target: XsNodeId(t),
                        avg: histogram.mean(dim),
                        b_stable: (slots - cluster_elems[t as usize] as f64).abs() < 0.5,
                        f_stable: r.vectors.iter().all(|(v, _)| v[dim] >= 1),
                    }
                })
                .collect();
            nodes.push(XNode {
                label: r.label,
                count: r.count,
                edges,
                histogram,
                depth: r.depth,
            });
        }
        let root = XsNodeId(partition[stable.root().index()]);
        XSketch {
            labels: stable.labels().clone(),
            nodes,
            root,
        }
    }

    /// The label-split partition: one cluster per tag.
    pub fn label_split_partition(stable: &StableSummary) -> (Vec<u32>, usize) {
        let mut ids: FxHashMap<u32, u32> = FxHashMap::default();
        let mut partition = Vec::with_capacity(stable.len());
        for node in stable.nodes() {
            let next = axqa_xml::dense_id(ids.len());
            let id = *ids.entry(node.label.0).or_insert(next);
            partition.push(id);
        }
        (partition, ids.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axqa_synopsis::build_stable;
    use axqa_xml::parse_document;

    /// Figure 3's T1/T2 documents collapse to the same label-split
    /// twig-XSketch with the same edge histograms.
    fn t1() -> axqa_xml::Document {
        parse_document(
            "<r><a><b><c/></b><b><c/><c/><c/><c/></b></a>\
             <a><b><c/></b><b><c/><c/><c/><c/></b></a></r>",
        )
        .unwrap()
    }

    #[test]
    fn figure3_label_split_histograms() {
        let doc = t1();
        let stable = build_stable(&doc);
        let (partition, n) = XSketch::label_split_partition(&stable);
        let xs = XSketch::from_partition(&stable, &partition, n, 100);
        assert_eq!(xs.len(), 4); // r, a, b, c
        let b_label = doc.labels().get("b").unwrap();
        let b = xs
            .nodes()
            .iter()
            .position(|node| node.label == b_label)
            .unwrap();
        let b = xs.node(XsNodeId(b as u32));
        assert_eq!(b.count, 4);
        // Fig. 3(d): H_B(c): {1 → 1/2, 4 → 1/2}.
        assert_eq!(b.histogram.buckets.len(), 2);
        let fractions: Vec<f64> = b.histogram.buckets.iter().map(|&(_, f)| f).collect();
        assert!(fractions.iter().all(|&f| (f - 0.5).abs() < 1e-12));
        assert!((b.histogram.mean(0) - 2.5).abs() < 1e-12);
        // All label-split edges of this doc are B/F-stable (Fig. 3(c)).
        for node in xs.nodes() {
            for edge in &node.edges {
                assert!(edge.b_stable, "{:?}", edge);
                assert!(edge.f_stable, "{:?}", edge);
            }
        }
    }

    #[test]
    fn stability_flags_detect_instability() {
        // Some a's have no b child → edge a→b not F-stable; some b's sit
        // under r, not a → edge a→b not B-stable.
        let doc = parse_document("<r><a><b/></a><a/><b/></r>").unwrap();
        let stable = build_stable(&doc);
        let (partition, n) = XSketch::label_split_partition(&stable);
        let xs = XSketch::from_partition(&stable, &partition, n, 100);
        let a_label = doc.labels().get("a").unwrap();
        let b_label = doc.labels().get("b").unwrap();
        let a = xs
            .nodes()
            .iter()
            .find(|node| node.label == a_label)
            .unwrap();
        let ab = a
            .edges
            .iter()
            .find(|e| xs.node(e.target).label == b_label)
            .unwrap();
        assert!(!ab.f_stable);
        assert!(!ab.b_stable);
    }

    #[test]
    fn size_accounting() {
        let doc = t1();
        let stable = build_stable(&doc);
        let (partition, n) = XSketch::label_split_partition(&stable);
        let xs = XSketch::from_partition(&stable, &partition, n, 100);
        let expect = SizeModel::XSKETCH.bytes(xs.len(), xs.num_edges(), xs.num_buckets());
        assert_eq!(xs.size_bytes(), expect);
    }

    #[test]
    fn bucket_budget_is_respected() {
        let doc = parse_document(
            "<r><b><c/></b><b><c/><c/></b><b><c/><c/><c/></b>\
             <b><c/><c/><c/><c/></b><b><c/><c/><c/><c/><c/></b></r>",
        )
        .unwrap();
        let stable = build_stable(&doc);
        let (partition, n) = XSketch::label_split_partition(&stable);
        // Budget of 3 buckets total for 3 nodes: 1 each; b's 5 distinct
        // vectors collapse into 1 exact + residual.
        let xs = XSketch::from_partition(&stable, &partition, n, 3);
        let b_label = doc.labels().get("b").unwrap();
        let b = xs
            .nodes()
            .iter()
            .find(|node| node.label == b_label)
            .unwrap();
        assert_eq!(b.histogram.buckets.len(), 1);
        assert!(b.histogram.residual.is_some());
        // Mean still exact: (1+2+3+4+5)/5 = 3.
        assert!((b.histogram.mean(0) - 3.0).abs() < 1e-12);
    }
}
