// Benchmarks are test-like code: panicking extractors are acceptable here.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::arithmetic_side_effects
)]

//! Disabled-overhead smoke bench for the observability layer (ISSUE 4
//! acceptance): with no recorder installed, every `axqa_obs` call is a
//! branch on a relaxed atomic, so the instrumented EVALQUERY workload
//! must run within noise (< 2%) of what it cost before instrumentation.
//! The `obs_primitives` group prices the primitives themselves in both
//! states for the PR description.

/// Bench binaries install the counting allocator (DESIGN.md §12)
/// so recorded spans carry real allocation profiles.
#[global_allocator]
static ALLOC: axqa_obs::alloc::CountingAlloc = axqa_obs::alloc::CountingAlloc;

use axqa_bench::Fixture;
use axqa_core::{eval_query, ts_build, BuildConfig, EvalConfig};
use axqa_datagen::Dataset;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_disabled_overhead(c: &mut Criterion) {
    let fixture = Fixture::new(Dataset::XMark, 30_000, 50);
    let sketch = ts_build(&fixture.stable, &BuildConfig::with_budget(20 * 1024)).sketch;
    let config = EvalConfig::default();

    // The acceptance measurement: the full EVALQUERY workload with all
    // instrumentation live in the binary but no recorder installed.
    let mut group = c.benchmark_group("obs_disabled");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(5));
    group.bench_function("evalquery_workload_no_recorder", |b| {
        assert!(!axqa_obs::enabled(), "no recorder may be installed here");
        b.iter(|| {
            fixture
                .workload
                .iter()
                .filter_map(|q| eval_query(&sketch, q, &config))
                .count()
        })
    });
    // The same workload with a recorder drained per iteration, for the
    // enabled-path price (not part of the < 2% criterion).
    group.bench_function("evalquery_workload_recording", |b| {
        let recorder = axqa_obs::Recorder::new();
        recorder.install();
        b.iter(|| {
            let n = fixture
                .workload
                .iter()
                .filter_map(|q| eval_query(&sketch, q, &config))
                .count();
            black_box(recorder.drain());
            n
        });
        axqa_obs::uninstall();
    });
    group.finish();

    // Primitive costs: one disabled call is the relaxed-load branch.
    let mut group = c.benchmark_group("obs_primitives");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("disabled_span", |b| {
        b.iter(|| black_box(axqa_obs::span(black_box("bench.span"))))
    });
    group.bench_function("disabled_counter", |b| {
        b.iter(|| axqa_obs::counter(black_box("bench.counter"), black_box(1)))
    });
    group.bench_function("enabled_span", |b| {
        let recorder = axqa_obs::Recorder::new();
        recorder.install();
        b.iter(|| black_box(axqa_obs::span(black_box("bench.span"))));
        axqa_obs::uninstall();
        black_box(recorder.drain());
    });
    group.bench_function("enabled_counter", |b| {
        let recorder = axqa_obs::Recorder::new();
        recorder.install();
        b.iter(|| axqa_obs::counter(black_box("bench.counter"), black_box(1)));
        axqa_obs::uninstall();
        black_box(recorder.drain());
    });
    group.finish();
}

criterion_group!(benches, bench_disabled_overhead);
criterion_main!(benches);
