//! Exact path matching with set semantics.
//!
//! [`PathMatcher`] evaluates a [`ResolvedPath`] relative to a context
//! element: each step maps the current frontier to the children or
//! descendants carrying the step's label, keeps only elements whose
//! branching predicates are satisfiable, and de-duplicates (an element is
//! bound once no matter how many embeddings reach it). Predicate
//! satisfaction is memoized per `(element, predicate)` within a matcher,
//! which makes the existential checks cheap across the many contexts one
//! query evaluation probes.

use crate::index::DocIndex;
use axqa_query::{Axis, ResolvedPath, ResolvedStep};
use axqa_xml::fxhash::FxHashMap;
use axqa_xml::{Document, NodeId};

/// Evaluator for resolved path expressions over one document.
pub struct PathMatcher<'a> {
    doc: &'a Document,
    index: &'a DocIndex,
    /// Memo of predicate existence checks: (element, predicate identity).
    exists_memo: FxHashMap<(NodeId, usize), bool>,
}

impl<'a> PathMatcher<'a> {
    /// Creates a matcher; the memo lives as long as the matcher.
    pub fn new(doc: &'a Document, index: &'a DocIndex) -> Self {
        PathMatcher {
            doc,
            index,
            exists_memo: FxHashMap::default(),
        }
    }

    /// The document this matcher evaluates over.
    pub fn document(&self) -> &'a Document {
        self.doc
    }

    /// The index this matcher evaluates with.
    pub fn index(&self) -> &'a DocIndex {
        self.index
    }

    /// All elements matching `path` relative to `context`, in document
    /// order, without duplicates.
    pub fn matches(&mut self, context: NodeId, path: &ResolvedPath) -> Vec<NodeId> {
        let mut frontier = vec![context];
        for step in &path.steps {
            if frontier.is_empty() {
                return frontier;
            }
            frontier = self.advance(&frontier, step);
        }
        frontier
    }

    /// Whether at least one element matches `path` relative to `context`.
    pub fn exists(&mut self, context: NodeId, path: &ResolvedPath) -> bool {
        self.exists_steps(context, &path.steps)
    }

    /// Advances a document-ordered frontier across one step, returning a
    /// document-ordered, duplicate-free result.
    fn advance(&mut self, frontier: &[NodeId], step: &ResolvedStep) -> Vec<NodeId> {
        let Some(label) = step.label else {
            return Vec::new();
        };
        let mut out: Vec<NodeId> = Vec::new();
        match step.axis {
            Axis::Child => {
                for &context in frontier {
                    for child in self.doc.children(context) {
                        if self.doc.label(child) == label {
                            out.push(child);
                        }
                    }
                }
                // A document-ordered frontier yields children sorted per
                // context but possibly interleaved across contexts
                // (nested contexts); sort by rank and dedup. Contexts are
                // distinct so children via the child axis are distinct,
                // but nested frontiers can both reach the same node only
                // via descendant steps — dedup is still cheap insurance.
                out.sort_unstable_by_key(|&n| self.index.rank(n));
                out.dedup();
            }
            Axis::Descendant => {
                for &context in frontier {
                    out.extend(
                        self.index
                            .descendants_with_label(context, label)
                            .iter()
                            .map(|&r| self.index.node_at(r)),
                    );
                }
                out.sort_unstable_by_key(|&n| self.index.rank(n));
                out.dedup();
            }
        }
        if !step.value_preds.is_empty() {
            out.retain(|&n| {
                let value = self.doc.value(n);
                step.value_preds.iter().all(|p| p.test(value))
            });
        }
        if !step.predicates.is_empty() {
            out.retain(|&n| step.predicates.iter().all(|p| self.exists_memoized(n, p)));
        }
        out
    }

    fn exists_steps(&mut self, context: NodeId, steps: &[ResolvedStep]) -> bool {
        let Some((step, rest)) = steps.split_first() else {
            return true;
        };
        let Some(label) = step.label else {
            return false;
        };
        match step.axis {
            Axis::Child => {
                let children: Vec<NodeId> = self
                    .doc
                    .children(context)
                    .filter(|&c| self.doc.label(c) == label)
                    .collect();
                for child in children {
                    if self.step_satisfied(child, step) && self.exists_steps(child, rest) {
                        return true;
                    }
                }
                false
            }
            Axis::Descendant => {
                let candidates: Vec<NodeId> = self
                    .index
                    .descendants_with_label(context, label)
                    .iter()
                    .map(|&r| self.index.node_at(r))
                    .collect();
                for cand in candidates {
                    if self.step_satisfied(cand, step) && self.exists_steps(cand, rest) {
                        return true;
                    }
                }
                false
            }
        }
    }

    fn step_satisfied(&mut self, element: NodeId, step: &ResolvedStep) -> bool {
        let value = self.doc.value(element);
        step.value_preds.iter().all(|p| p.test(value))
            && step
                .predicates
                .iter()
                .all(|p| self.exists_memoized(element, p))
    }

    fn exists_memoized(&mut self, element: NodeId, predicate: &ResolvedPath) -> bool {
        // Identity of the predicate object is stable for the lifetime of
        // the query being evaluated; use its address as the memo key.
        let key = (element, predicate as *const ResolvedPath as usize);
        if let Some(&cached) = self.exists_memo.get(&key) {
            return cached;
        }
        let result = self.exists_steps(element, &predicate.steps);
        self.exists_memo.insert(key, result);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axqa_query::parse_path;
    use axqa_xml::parse_document;

    fn setup(src: &str) -> (Document, DocIndex) {
        let doc = parse_document(src).unwrap();
        let index = DocIndex::build(&doc);
        (doc, index)
    }

    fn match_labels(src: &str, path: &str) -> Vec<String> {
        let (doc, index) = setup(src);
        let resolved = parse_path(path).unwrap().resolve(doc.labels());
        let mut matcher = PathMatcher::new(&doc, &index);
        matcher
            .matches(doc.root(), &resolved)
            .into_iter()
            .map(|n| format!("{}#{}", doc.label_name(n), n.0))
            .collect()
    }

    #[test]
    fn child_axis() {
        let hits = match_labels("<r><a/><b/><a/></r>", "/a");
        assert_eq!(hits, vec!["a#1", "a#3"]);
    }

    #[test]
    fn descendant_axis_finds_nested() {
        let hits = match_labels("<r><a><a><b/></a></a></r>", "//a");
        assert_eq!(hits, vec!["a#1", "a#2"]);
    }

    #[test]
    fn descendant_then_child_dedups() {
        // Both a's contain the same nested b only once each; nested a's
        // share descendants.
        let hits = match_labels("<r><a><a><b/></a></a></r>", "//a//b");
        assert_eq!(hits, vec!["b#3"]);
    }

    #[test]
    fn predicates_filter() {
        let hits = match_labels("<r><a><b/></a><a><c/></a></r>", "//a[b]");
        assert_eq!(hits, vec!["a#1"]);
        let hits = match_labels("<r><a><x><b/></x></a><a><b/></a></r>", "//a[//b]");
        assert_eq!(hits, vec!["a#1", "a#4"]);
        let hits = match_labels("<r><a><x><b/></x></a><a><b/></a></r>", "//a[/b]");
        assert_eq!(hits, vec!["a#4"]);
    }

    #[test]
    fn nested_predicates() {
        let src = "<r><a><b><c/></b></a><a><b/></a></r>";
        let hits = match_labels(src, "//a[b[c]]");
        assert_eq!(hits, vec!["a#1"]);
    }

    #[test]
    fn unresolved_label_matches_nothing() {
        let hits = match_labels("<r><a/></r>", "//nosuch");
        assert!(hits.is_empty());
        let hits = match_labels("<r><a/></r>", "//a[nosuch]");
        assert!(hits.is_empty());
    }

    #[test]
    fn exists_agrees_with_matches() {
        let (doc, index) = setup("<r><a><b/></a><c><a/></c></r>");
        for path_text in ["//a", "/a/b", "//a[b]", "//c//a", "//c/b"] {
            let resolved = parse_path(path_text).unwrap().resolve(doc.labels());
            let mut matcher = PathMatcher::new(&doc, &index);
            let found = matcher.matches(doc.root(), &resolved);
            assert_eq!(
                matcher.exists(doc.root(), &resolved),
                !found.is_empty(),
                "{path_text}"
            );
        }
    }

    #[test]
    fn figure1_query_paths() {
        // Paths from the paper's Figure 2 over the Figure 1 document
        // shape: authors with books, their papers, keywords.
        let src = "<d>\
            <a><p><y/><t/><k/></p><p><y/><t/><k/><k/></p><n/></a>\
            <a><n/><p><y/><t/><k/></p><b><t/></b></a>\
            <a><n/><p><y/><t/><k/></p><b><t/></b></a>\
            </d>";
        let (doc, index) = setup(src);
        let mut matcher = PathMatcher::new(&doc, &index);
        let a_with_b = parse_path("//a[//b]").unwrap().resolve(doc.labels());
        let hits = matcher.matches(doc.root(), &a_with_b);
        assert_eq!(hits.len(), 2); // a2 and a3 have book descendants
    }
}

#[cfg(test)]
mod value_tests {
    use super::*;
    use crate::index::DocIndex;
    use axqa_query::parse_path;
    use axqa_xml::parse_document;

    #[test]
    fn value_predicates_filter_matches() {
        let doc = parse_document(
            "<bib><p><year>1992</year></p><p><year>2004</year></p><p><title/></p></bib>",
        )
        .unwrap();
        let index = DocIndex::build(&doc);
        let mut matcher = PathMatcher::new(&doc, &index);
        let after_2000 = parse_path("//year[. > 2000]")
            .unwrap()
            .resolve(doc.labels());
        assert_eq!(matcher.matches(doc.root(), &after_2000).len(), 1);
        let any_year = parse_path("//year").unwrap().resolve(doc.labels());
        assert_eq!(matcher.matches(doc.root(), &any_year).len(), 2);
        // Elements without values never satisfy a value predicate.
        let impossible = parse_path("//title[. = 0]").unwrap().resolve(doc.labels());
        assert!(matcher.matches(doc.root(), &impossible).is_empty());
    }

    #[test]
    fn value_predicates_inside_branch_predicates() {
        let doc = parse_document(
            "<bib><p><year>1992</year><k/></p><p><year>2004</year><k/><k/></p></bib>",
        )
        .unwrap();
        let index = DocIndex::build(&doc);
        let mut matcher = PathMatcher::new(&doc, &index);
        // Papers published after 2000.
        let path = parse_path("//p[year[. > 2000]]/k")
            .unwrap()
            .resolve(doc.labels());
        assert_eq!(matcher.matches(doc.root(), &path).len(), 2);
    }

    #[test]
    fn range_predicates() {
        let doc = parse_document("<r><v>1</v><v>5</v><v>7</v><v>12</v></r>").unwrap();
        let index = DocIndex::build(&doc);
        let mut matcher = PathMatcher::new(&doc, &index);
        let path = parse_path("/v[. >= 5][. < 12]")
            .unwrap()
            .resolve(doc.labels());
        assert_eq!(matcher.matches(doc.root(), &path).len(), 2); // 5 and 7
    }
}
