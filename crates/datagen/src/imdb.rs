//! IMDB-style movie documents.
//!
//! Movie records with heavy-tailed cast sizes (few blockbusters with
//! huge casts, many small titles), optional sub-elements, and a person
//! directory — moderate structural diversity, between DBLP's regularity
//! and Swiss-Prot's variance.

use crate::GenConfig;
use axqa_xml::{Document, DocumentBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates an IMDB-style document.
pub fn generate(config: &GenConfig) -> Document {
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x1237_5bcd);
    let mut b = DocumentBuilder::new("imdb");

    b.open("movies");
    while b.len() < config.target_elements * 7 / 10 {
        gen_movie(&mut b, &mut rng);
    }
    b.close();

    b.open("people");
    while b.len() < config.target_elements {
        gen_person(&mut b, &mut rng);
    }
    b.close();

    b.finish()
}

/// Approximate Zipf: heavy-tailed integer in `1..=max`.
fn zipf(rng: &mut StdRng, max: u32) -> u32 {
    let u: f64 = rng.gen_range(0.0..1.0f64);
    // Inverse-power transform; exponent ≈ 1.3 gives a credible cast
    // distribution.
    let x = (1.0 - u).powf(-1.0 / 1.3);
    u32::try_from(axqa_xml::f64_to_u64(x.round()))
        .unwrap_or(u32::MAX)
        .clamp(1, max)
}

fn gen_movie(b: &mut DocumentBuilder, rng: &mut StdRng) {
    b.open("movie");
    b.leaf("title");
    b.leaf_with_value("year", rng.gen_range(1920..=2004) as f64);
    b.open("genres");
    for _ in 0..rng.gen_range(1..=4) {
        b.leaf("genre");
    }
    b.close();
    b.open("cast");
    let cast = zipf(rng, 40);
    for _ in 0..cast {
        b.open("actor");
        b.leaf("name");
        if rng.gen_bool(0.3) {
            b.leaf("role");
        }
        b.close();
    }
    b.close();
    if rng.gen_bool(0.85) {
        b.open("directors");
        for _ in 0..rng.gen_range(1..=2) {
            b.leaf("director");
        }
        b.close();
    }
    if rng.gen_bool(0.5) {
        b.open("ratings");
        b.leaf("votes");
        b.leaf("rank");
        b.close();
    }
    if rng.gen_bool(0.25) {
        b.open("trivia");
        for _ in 0..rng.gen_range(1..=3) {
            b.leaf("fact");
        }
        b.close();
    }
    if rng.gen_bool(0.4) {
        b.leaf("runtime");
    }
    b.close();
}

fn gen_person(b: &mut DocumentBuilder, rng: &mut StdRng) {
    b.open("person");
    b.leaf("name");
    if rng.gen_bool(0.6) {
        b.leaf_with_value("birthdate", rng.gen_range(1900..=1990) as f64);
    }
    if rng.gen_bool(0.3) {
        b.leaf("birthplace");
    }
    b.open("filmography");
    let credits = zipf(rng, 25);
    for _ in 0..credits {
        b.leaf("credit");
    }
    b.close();
    b.close();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cast_sizes_are_heavy_tailed() {
        let doc = generate(&GenConfig::sized(30_000));
        let cast = doc.labels().get("cast").unwrap();
        let mut sizes: Vec<usize> = doc
            .node_ids()
            .filter(|&n| doc.label(n) == cast)
            .map(|n| doc.child_count(n))
            .collect();
        sizes.sort_unstable();
        let median = sizes[sizes.len() / 2];
        let max = *sizes.last().unwrap();
        assert!(median <= 3, "median cast {median}");
        assert!(max >= 15, "max cast {max}");
    }

    #[test]
    fn shape() {
        let doc = generate(&GenConfig::sized(5_000));
        assert_eq!(doc.label_name(doc.root()), "imdb");
        for tag in ["movie", "actor", "person", "genre"] {
            assert!(doc.labels().get(tag).is_some(), "missing {tag}");
        }
    }
}
