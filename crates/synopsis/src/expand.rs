//! `Expand` (Lemma 3.1): materializing an XML tree from a count-stable
//! summary.
//!
//! Count stability loses sibling *order* (two interleavings of the same
//! child multiset collapse to one class), so the reconstructed tree is
//! isomorphic to the original as an **unordered** tree: same label, same
//! multiset of child subtrees, recursively. Tests verify isomorphism via
//! the stable summary itself (two trees are unordered-isomorphic iff
//! their stable summaries agree up to renumbering — we compare canonical
//! forms).

use crate::stable::{StableSummary, SynNodeId};
use axqa_xml::{Document, NodeId};

/// Materializes the document described by a count-stable summary.
///
/// The result has exactly `summary.total_elements()` nodes. Sibling
/// order is canonical (children emitted in child-class id order), not
/// the source document's.
pub fn expand(summary: &StableSummary) -> Document {
    let root_class = summary.root();
    let root_label = summary.labels().name(summary.node(root_class).label);
    let mut doc = Document::new(root_label);
    // Pre-intern every label so ids line up with the summary's table.
    for (_, name) in summary.labels().iter() {
        doc.intern(name);
    }
    let root = doc.root();
    expand_children(summary, root_class, &mut doc, root);
    doc
}

fn expand_children(summary: &StableSummary, class: SynNodeId, doc: &mut Document, element: NodeId) {
    // Iterative worklist to avoid deep recursion on tall documents.
    let mut work: Vec<(SynNodeId, NodeId)> = vec![(class, element)];
    while let Some((class, element)) = work.pop() {
        for &(child_class, k) in &summary.node(class).children {
            let label = summary.node(child_class).label;
            for _ in 0..k {
                let child = doc.add_child(element, label);
                work.push((child_class, child));
            }
        }
    }
}

/// The number of elements `expand` would materialize for the subtree of
/// one class (per extent element), without materializing it.
pub fn expanded_subtree_size(summary: &StableSummary, class: SynNodeId) -> u64 {
    // Classes are DAG-ordered (children before parents), so one forward
    // scan suffices; compute sizes for all and index.
    let mut sizes = vec![0u64; summary.len()];
    for i in 0..summary.len() {
        let node = summary.node(SynNodeId(axqa_xml::dense_id(i)));
        let mut size = 1u64;
        for &(child, k) in &node.children {
            size = size.saturating_add((k as u64).saturating_mul(sizes[child.index()]));
        }
        sizes[i] = size;
    }
    sizes[class.index()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stable::build_stable;
    use axqa_xml::parse_document;

    /// Canonical form of a summary: nodes sorted by (depth, label,
    /// signature) recursively — equal forms ⟺ unordered-isomorphic docs.
    fn canonical(summary: &StableSummary) -> String {
        // Compute a canonical string per class bottom-up.
        let mut forms: Vec<String> = vec![String::new(); summary.len()];
        for i in 0..summary.len() {
            let node = summary.node(SynNodeId(axqa_xml::dense_id(i)));
            let mut child_forms: Vec<String> = node
                .children
                .iter()
                .map(|&(c, k)| format!("{}x{}", k, forms[c.index()]))
                .collect();
            child_forms.sort();
            forms[i] = format!(
                "{}({})[{}]",
                summary.labels().name(node.label),
                node.extent,
                child_forms.join(",")
            );
        }
        forms[summary.root().index()].clone()
    }

    #[test]
    fn expand_roundtrips_structure() {
        for src in [
            "<a/>",
            "<r><a><b/><b/></a><a><b/><b/></a></r>",
            "<r><a><b><c/></b><b><c/><c/><c/><c/></b></a><a><b><c/></b><b><c/><c/><c/><c/></b></a></r>",
            "<r><l><l><l/></l></l></r>",
        ] {
            let doc = parse_document(src).unwrap();
            let summary = build_stable(&doc);
            let expanded = expand(&summary);
            assert_eq!(expanded.len(), doc.len(), "size mismatch for {src}");
            let summary2 = build_stable(&expanded);
            assert_eq!(
                canonical(&summary),
                canonical(&summary2),
                "not isomorphic for {src}"
            );
        }
    }

    #[test]
    fn expand_ignores_sibling_order() {
        let d1 = parse_document("<r><a/><b/><a/></r>").unwrap();
        let d2 = parse_document("<r><a/><a/><b/></r>").unwrap();
        let s1 = build_stable(&d1);
        let s2 = build_stable(&d2);
        assert_eq!(canonical(&s1), canonical(&s2));
    }

    #[test]
    fn expanded_sizes_without_materializing() {
        let doc = parse_document("<r><a><b/><b/></a><a><b/><b/></a></r>").unwrap();
        let summary = build_stable(&doc);
        assert_eq!(
            expanded_subtree_size(&summary, summary.root()),
            doc.len() as u64
        );
        let b = doc.labels().get("b").unwrap();
        let b_class = summary.classes_with_label(b).next().unwrap();
        assert_eq!(expanded_subtree_size(&summary, b_class), 1);
    }
}
