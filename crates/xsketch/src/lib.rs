// Count-carrying crate (ISSUE 1; DESIGN.md "Static analysis & invariants"):
// lossy casts and unchecked arithmetic on element/edge counts are denied
// outside tests, on top of the workspace lint table.
#![cfg_attr(
    not(test),
    deny(
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss,
        clippy::arithmetic_side_effects
    )
)]
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss
    )
)]

//! # axqa-xsketch — the twig-XSketch baseline (§3.1, §6.1)
//!
//! Twig-XSketches (Polyzotis–Garofalakis–Ioannidis, ICDE 2004) are the
//! summarization technique the paper compares TreeSketches against: a
//! graph synopsis augmented with per-edge backward/forward *stability*
//! flags and per-node *edge histograms* capturing the joint distribution
//! of child counts across a node's outgoing edges. Construction is
//! *workload-driven*: starting from the coarse label-split graph, the
//! builder repeatedly applies the refinement (node split) that most
//! improves selectivity estimates over a sample query workload — the
//! expensive evaluation loop Table 3 contrasts with TSBUILD's
//! workload-independent squared-error metric.
//!
//! Reimplemented from the published descriptions (the original code base
//! is not available):
//!
//! * [`histogram`] — bounded-bucket joint edge histograms with exact
//!   head buckets and an averaged residual bucket.
//! * [`sketch`] — the synopsis structure and its byte accounting
//!   (`SizeModel::XSKETCH`: nodes 8 B, edges 9 B, buckets 12 B).
//! * [`build`] — the workload-driven refinement builder.
//! * [`estimate`] — histogram-based twig selectivity estimation.
//! * [`answer`] — the §6.1 approximate-answer generator: samples child
//!   counts from the edge histograms to synthesize a concrete
//!   [`axqa_eval::AnswerTree`].

pub mod answer;
pub mod build;
pub mod estimate;
pub mod histogram;
pub mod sketch;

pub use answer::sample_answer;
pub use build::{build_xsketch, XsBuildConfig};
pub use estimate::xs_estimate_selectivity;
pub use histogram::EdgeHistogram;
pub use sketch::{XEdge, XNode, XSketch, XsNodeId};
