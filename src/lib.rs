// Tests opt back into panicking extractors (workspace lint table,
// DESIGN.md "Static analysis & invariants").
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss
    )
)]

//! # axqa — Approximate XML Query Answers (TreeSketch)
//!
//! A from-scratch Rust reproduction of *"Approximate XML Query Answers"*
//! (Polyzotis, Garofalakis, Ioannidis — SIGMOD 2004): TreeSketch
//! synopses for fast approximate answers and selectivity estimates over
//! tree-structured XML, with every substrate the paper depends on.
//!
//! This umbrella crate re-exports the workspace so downstream users (and
//! the repository-level examples and integration tests) can depend on a
//! single crate:
//!
//! * [`xml`] — node-labeled XML trees, parser, writer ([`axqa_xml`]).
//! * [`query`] — twig queries and the XPath subset ([`axqa_query`]).
//! * [`eval`] — exact evaluation: nesting trees and binding-tuple
//!   counts ([`axqa_eval`]).
//! * [`synopsis`] — graph synopses, `BUILDSTABLE`, `Expand`
//!   ([`axqa_synopsis`]).
//! * [`core`] — TreeSketches: `TSBUILD`, `EVALQUERY`, selectivity
//!   estimation ([`axqa_core`]).
//! * [`xsketch`] — the twig-XSketch baseline ([`axqa_xsketch`]).
//! * [`distance`] — the ESD error metric, MAC/EMD set distances,
//!   tree-edit distance ([`axqa_distance`]).
//! * [`datagen`] — synthetic datasets and twig workloads
//!   ([`axqa_datagen`]).
//!
//! ## Quickstart
//!
//! ```
//! use axqa::prelude::*;
//!
//! // Parse a document, summarize it, answer a twig approximately.
//! let doc = parse_document("<bib><a><p><k/></p></a><a><p><k/><k/></p></a></bib>")?;
//! let stable = build_stable(&doc);
//! let budget = BuildConfig::with_budget(1024);
//! let sketch = ts_build(&stable, &budget).sketch;
//! let query = parse_twig("q1: q0 //a\nq2: q1 //k")?;
//! let estimate = estimate_query_selectivity(&sketch, &query, &EvalConfig::default());
//! assert!(estimate > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use axqa_core as core;
pub use axqa_datagen as datagen;
pub use axqa_distance as distance;
pub use axqa_eval as eval;
pub use axqa_query as query;
pub use axqa_synopsis as synopsis;
pub use axqa_xml as xml;
pub use axqa_xsketch as xsketch;

/// The most common imports in one place.
pub mod prelude {
    pub use axqa_core::selectivity::estimate_query_selectivity;
    pub use axqa_core::{
        estimate_selectivity, eval_query, eval_query_with_values, ts_build, BuildConfig,
        EvalConfig, TreeSketch, ValueIndex,
    };
    pub use axqa_datagen::{generate, Dataset, GenConfig};
    pub use axqa_distance::{esd_answer, esd_documents, EsdConfig};
    pub use axqa_eval::{evaluate, selectivity, DocIndex, NestingTree};
    pub use axqa_query::{parse_path, parse_twig, PathExpr, QVar, TwigQuery, ValueOp, ValuePred};
    pub use axqa_synopsis::{build_stable, expand, SizeModel, StableSummary};
    pub use axqa_xml::{parse_document, write_document, DocStats, Document};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn umbrella_reexports_work_together() {
        let doc = parse_document("<r><a><b/></a><a><b/><b/></a></r>").unwrap();
        let stable = build_stable(&doc);
        let sketch = ts_build(&stable, &BuildConfig::with_budget(4096)).sketch;
        let query = parse_twig("q1: q0 //a\nq2: q1 /b").unwrap();
        let index = DocIndex::build(&doc);
        let exact = selectivity(&doc, &index, &query);
        let approx = estimate_query_selectivity(&sketch, &query, &EvalConfig::default());
        assert_eq!(exact, 3.0);
        assert!((exact - approx).abs() < 1e-9);
    }
}
