// Examples/integration tests are demo code: panicking extractors are fine.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::arithmetic_side_effects
)]

//! End-to-end pipeline tests on each synthetic dataset: generation →
//! stable summary → TSBUILD → approximate answering, asserting the
//! paper's qualitative claims at test-friendly scales.

use axqa::datagen::workload::{positive_workload, WorkloadConfig};
use axqa::distance::{esd_answer, esd_empty_answer, EsdConfig};
use axqa::prelude::*;

fn prepare(
    dataset: Dataset,
    elements: usize,
    queries: usize,
) -> (Document, StableSummary, DocIndex, Vec<TwigQuery>) {
    let doc = generate(
        dataset,
        &GenConfig {
            target_elements: elements,
            seed: 0xE2E,
        },
    );
    let stable = build_stable(&doc);
    let index = DocIndex::build(&doc);
    let workload = positive_workload(
        &stable,
        &WorkloadConfig {
            count: queries,
            seed: 0xE2E ^ 1,
            ..WorkloadConfig::default()
        },
    );
    (doc, stable, index, workload)
}

fn avg_rel_error(
    doc: &Document,
    index: &DocIndex,
    workload: &[TwigQuery],
    sketch: &TreeSketch,
) -> f64 {
    let exact: Vec<f64> = workload
        .iter()
        .map(|q| selectivity(doc, index, q))
        .collect();
    let mut sorted = exact.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let sanity = sorted[sorted.len() / 10].max(1.0);
    workload
        .iter()
        .zip(&exact)
        .map(|(q, &truth)| {
            let est = axqa::core::selectivity::estimate_query_selectivity(
                sketch,
                q,
                &EvalConfig::default(),
            );
            (truth - est).abs() / est.max(sanity)
        })
        .sum::<f64>()
        / workload.len() as f64
}

#[test]
fn error_decreases_with_budget_on_every_dataset() {
    for dataset in Dataset::ALL {
        let (doc, stable, index, workload) = prepare(dataset, 12_000, 40);
        let full = SizeModel::TREESKETCH.graph_bytes(stable.len(), stable.num_edges());
        let tight = ts_build(&stable, &BuildConfig::with_budget(full / 16)).sketch;
        let roomy = ts_build(&stable, &BuildConfig::with_budget(full / 2)).sketch;
        let exact_ts = TreeSketch::from_stable(&stable);
        let e_tight = avg_rel_error(&doc, &index, &workload, &tight);
        let e_roomy = avg_rel_error(&doc, &index, &workload, &roomy);
        let e_exact = avg_rel_error(&doc, &index, &workload, &exact_ts);
        assert!(
            e_exact < 1e-9,
            "{}: exact synopsis not exact (err {e_exact})",
            dataset.name()
        );
        assert!(
            e_roomy <= e_tight + 1e-9,
            "{}: tighter budget should not beat roomier ({e_tight} vs {e_roomy})",
            dataset.name()
        );
    }
}

#[test]
fn esd_of_answers_decreases_with_budget() {
    let (doc, stable, index, workload) = prepare(Dataset::SProt, 10_000, 15);
    let full = SizeModel::TREESKETCH.graph_bytes(stable.len(), stable.num_edges());
    let esd_config = EsdConfig::default();
    let avg_esd = |sketch: &TreeSketch| -> f64 {
        workload
            .iter()
            .map(|q| {
                let truth = evaluate(&doc, &index, q).expect("positive");
                match eval_query(sketch, q, &EvalConfig::default()) {
                    Some(result) => esd_answer(&doc, &truth, &result, &esd_config),
                    None => esd_empty_answer(&doc, &truth, &esd_config),
                }
            })
            .sum::<f64>()
            / workload.len() as f64
    };
    let tight = ts_build(&stable, &BuildConfig::with_budget(full / 16)).sketch;
    let exact_ts = TreeSketch::from_stable(&stable);
    let e_tight = avg_esd(&tight);
    let e_exact = avg_esd(&exact_ts);
    assert!(e_exact < 1e-6, "exact answers have ESD 0, got {e_exact}");
    assert!(e_tight > e_exact, "compression must cost ESD ({e_tight})");
}

#[test]
fn exact_sketch_reproduces_every_binding_count() {
    let (doc, stable, index, workload) = prepare(Dataset::XMark, 10_000, 30);
    let sketch = TreeSketch::from_stable(&stable);
    for query in &workload {
        let exact = selectivity(&doc, &index, query);
        let result = eval_query(&sketch, query, &EvalConfig::default()).expect("positive");
        let approx = estimate_selectivity(&result, query);
        assert!(
            (exact - approx).abs() < 1e-6 * exact.max(1.0),
            "query {query}: exact {exact} vs {approx}"
        );
        // Per-variable binding counts agree too.
        let nt = evaluate(&doc, &index, query).unwrap();
        for var in query.vars().skip(1) {
            let nt_count = nt.bindings(var).len() as f64;
            let rs_count = result.estimated_bindings(var);
            assert!(
                (nt_count - rs_count).abs() < 1e-6 * nt_count.max(1.0),
                "query {query} var {var}: {nt_count} vs {rs_count}"
            );
        }
    }
}

#[test]
fn budgets_are_respected_across_the_sweep() {
    let (_, stable, _, _) = prepare(Dataset::Imdb, 15_000, 0);
    let model = SizeModel::TREESKETCH;
    let floor = {
        // Label-split graph size.
        let labels = stable
            .nodes()
            .iter()
            .map(|n| n.label)
            .collect::<std::collections::HashSet<_>>();
        labels.len()
    };
    for budget_kb in [2usize, 4, 8, 16] {
        let report = ts_build(&stable, &BuildConfig::with_budget(budget_kb * 1024));
        assert_eq!(report.final_bytes, report.sketch.size_bytes(&model));
        if report.reached_budget {
            assert!(report.final_bytes <= budget_kb * 1024);
        } else {
            assert_eq!(report.sketch.len(), floor, "floor is the label-split graph");
        }
        assert_eq!(
            report.sketch.total_elements(),
            stable.total_elements(),
            "merging must preserve element counts"
        );
    }
}

#[test]
fn direct_counting_matches_nesting_tree_on_real_workloads() {
    for dataset in [Dataset::XMark, Dataset::SProt] {
        let (doc, _, index, workload) = prepare(dataset, 8_000, 25);
        for query in &workload {
            let via_nt = selectivity(&doc, &index, query);
            let direct = axqa::eval::count_binding_tuples(&doc, &index, query);
            assert!(
                (via_nt - direct).abs() < 1e-9 * via_nt.max(1.0),
                "{}: {query}: {via_nt} vs {direct}",
                dataset.name()
            );
        }
    }
}
