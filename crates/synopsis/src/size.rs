//! Byte accounting for synopsis space budgets.
//!
//! The paper states every budget in kilobytes (10 KB … 50 KB summaries of
//! multi-MB documents) without fixing a storage layout. We fix one and
//! use it for *both* techniques so comparisons stay fair (DESIGN.md
//! §4.1):
//!
//! * a synopsis **node** costs 8 bytes — label id (4) + element count (4);
//! * a synopsis **edge** costs 8 bytes — target id (4) + average child
//!   count as `f32` (4); twig-XSketch edges cost one extra byte for the
//!   B/F stability flags;
//! * a twig-XSketch **histogram bucket** costs 12 bytes — bucket key (4)
//!   + frequency (4) + value (4).

/// Byte costs of synopsis components.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeModel {
    /// Bytes per synopsis node.
    pub node_bytes: usize,
    /// Bytes per synopsis edge.
    pub edge_bytes: usize,
    /// Bytes per histogram bucket (twig-XSketch only).
    pub bucket_bytes: usize,
}

impl SizeModel {
    /// Model for TreeSketch synopses.
    pub const TREESKETCH: SizeModel = SizeModel {
        node_bytes: 8,
        edge_bytes: 8,
        bucket_bytes: 0,
    };

    /// Model for twig-XSketch synopses.
    pub const XSKETCH: SizeModel = SizeModel {
        node_bytes: 8,
        edge_bytes: 9,
        bucket_bytes: 12,
    };

    /// Size in bytes of a synopsis with the given component counts.
    pub const fn bytes(&self, nodes: usize, edges: usize, buckets: usize) -> usize {
        nodes * self.node_bytes + edges * self.edge_bytes + buckets * self.bucket_bytes
    }

    /// Convenience: size in bytes of a plain node/edge synopsis.
    pub const fn graph_bytes(&self, nodes: usize, edges: usize) -> usize {
        self.bytes(nodes, edges, 0)
    }
}

impl Default for SizeModel {
    fn default() -> Self {
        SizeModel::TREESKETCH
    }
}

/// Kilobytes → bytes for budget arithmetic (the paper's KB are 1024 B).
pub const fn kb(kilobytes: usize) -> usize {
    kilobytes * 1024
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn treesketch_accounting() {
        let m = SizeModel::TREESKETCH;
        assert_eq!(m.graph_bytes(10, 20), 10 * 8 + 20 * 8);
        assert_eq!(m.bytes(10, 20, 99), m.graph_bytes(10, 20));
    }

    #[test]
    fn xsketch_accounting_includes_buckets() {
        let m = SizeModel::XSKETCH;
        assert_eq!(m.bytes(2, 3, 4), 2 * 8 + 3 * 9 + 4 * 12);
    }

    #[test]
    fn kb_is_1024() {
        assert_eq!(kb(10), 10_240);
    }
}
