// Tests opt back into panicking extractors (workspace lint table,
// DESIGN.md "Static analysis & invariants").
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

//! # axqa-obs — dependency-free tracing and metrics (DESIGN.md §9)
//!
//! A zero-cost-when-disabled observability layer for the TreeSketch
//! pipeline: thread-safe [`Recorder`] with spans (monotonic start/stop,
//! parent tracking, per-thread buffers merged at drain), named
//! counters, and fixed-bucket histograms, plus two exporters —
//! Chrome `trace_event` JSON ([`export::chrome_trace`], loadable in
//! `chrome://tracing`/Perfetto) and a flat metrics snapshot
//! ([`export::metrics_json`], schema `axqa-obs/1`).
//!
//! Instrumentation sites call the free functions [`span`], [`counter`]
//! and [`observe`]. When no recorder is installed each call compiles to
//! a single branch on a relaxed atomic load and returns immediately —
//! the disabled-overhead smoke bench (`crates/bench/benches/
//! obs_overhead.rs`) asserts this stays within noise of uninstrumented
//! code. When a recorder is installed, events accumulate in per-thread
//! buffers (no contention on the hot path) and merge into the shared
//! recorder when a top-level span closes, a buffer fills, or a thread
//! exits; [`Recorder::drain`] collects the merged totals.
//!
//! Span names follow the paper's algorithm names so traces read like
//! the pseudo-code: `TSBUILD` (Fig. 5), `CREATEPOOL` (Fig. 6),
//! `EVALQUERY` (Fig. 7), `BUILDSTABLE` (Fig. 4).
//!
//! ```
//! let recorder = axqa_obs::Recorder::new();
//! recorder.install();
//! {
//!     let _span = axqa_obs::span_with("TSBUILD", "budget_bytes", 1024);
//!     axqa_obs::counter("tsbuild.merges", 3);
//! }
//! axqa_obs::uninstall();
//! let snapshot = recorder.drain();
//! assert_eq!(snapshot.counter("tsbuild.merges"), 3);
//! assert_eq!(snapshot.span_count("TSBUILD"), 1);
//! let trace = axqa_obs::export::chrome_trace(&snapshot);
//! assert!(trace.contains("\"ph\": \"B\""));
//! ```
//!
//! This crate is the workspace's single monotonic-clock authority: the
//! `forbidden-api` lint rule bans raw `Instant::now`/`SystemTime::now`
//! in every other library crate, which route wall-clock timing through
//! [`Stopwatch`] instead. It is also the single allocation-accounting
//! authority: binaries install [`alloc::CountingAlloc`] as the global
//! allocator (`std::alloc`/`GlobalAlloc` are lint-banned elsewhere),
//! and every span then carries the allocation count / bytes /
//! peak-live delta of the work it timed — see [`SpanRecord`] and
//! DESIGN.md §12.

pub mod alloc;
pub mod export;
mod recorder;

pub use recorder::{
    monotonic_micros, uninstall, Histogram, Recorder, Snapshot, SpanGuard, SpanRecord,
    HISTOGRAM_BUCKETS,
};

use std::time::{Duration, Instant};

/// Whether a recorder is currently installed — one relaxed atomic load,
/// the entire cost of disabled instrumentation.
#[inline]
pub fn enabled() -> bool {
    recorder::gate_enabled()
}

/// Opens a span named `name`; the span closes (and records its stop
/// time) when the returned guard drops. Bind the guard (`let _span =
/// …`) — `let _ = …` drops it immediately, recording an empty span.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard::disabled();
    }
    recorder::begin_span(name, None)
}

/// [`span`] carrying one numeric argument (e.g. the byte budget or a
/// cluster count), exported into the Chrome trace's `args` object.
#[inline]
pub fn span_with(name: &'static str, key: &'static str, value: u64) -> SpanGuard {
    if !enabled() {
        return SpanGuard::disabled();
    }
    recorder::begin_span(name, Some((key, value)))
}

/// Adds `delta` to the named counter (saturating).
#[inline]
pub fn counter(name: &'static str, delta: u64) {
    if enabled() {
        recorder::add_counter(name, delta);
    }
}

/// Records one observation into the named fixed-bucket histogram.
#[inline]
pub fn observe(name: &'static str, value: u64) {
    if enabled() {
        recorder::record_value(name, value);
    }
}

/// Flushes the calling thread's buffered events into the installed
/// recorder.
///
/// Buffers flush eagerly when a top-level span closes and once more
/// when the thread exits — but a joined scope can return *before* the
/// worker's thread-local destructors have run, so events recorded
/// after the worker's last span (end-of-lane counters like
/// `parallel.busy_us`) would race with the joining thread's `drain`.
/// Worker closures that record such tail events must call this before
/// returning.
pub fn flush() {
    recorder::flush_current_thread();
}

/// Monotonic stopwatch — the sanctioned wall-clock timing primitive for
/// library crates (the `forbidden-api` rule bans raw `Instant::now`
/// outside this crate so all timing flows through the recorder's clock).
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Stopwatch {
        Stopwatch {
            started: Instant::now(),
        }
    }

    /// Time elapsed since [`Stopwatch::start`].
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Elapsed milliseconds as a float (bench-report convention).
    pub fn elapsed_ms(&self) -> f64 {
        self.elapsed().as_secs_f64() * 1_000.0
    }

    /// Elapsed whole microseconds, saturating — the unit the
    /// `parallel.*` utilization counters are kept in (DESIGN.md §12).
    pub fn elapsed_us(&self) -> u64 {
        u64::try_from(self.elapsed().as_micros()).unwrap_or(u64::MAX)
    }
}

/// Process-wide observability state (recorder gate, alloc tracking) is
/// shared by unit tests across modules; they all serialize on this.
#[cfg(test)]
pub(crate) static TEST_GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    use crate::TEST_GATE as GATE;

    #[test]
    fn disabled_instrumentation_records_nothing() {
        let _gate = GATE
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let recorder = Recorder::new();
        // Not installed: everything is a no-op.
        {
            let _span = span("noop");
            counter("noop.counter", 5);
            observe("noop.hist", 9);
        }
        let snapshot = recorder.drain();
        assert!(snapshot.spans.is_empty());
        assert!(snapshot.counters.is_empty());
        assert!(snapshot.histograms.is_empty());
        assert!(!enabled());
    }

    #[test]
    fn spans_nest_with_parent_tracking() {
        let _gate = GATE
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let recorder = Recorder::new();
        recorder.install();
        {
            let _outer = span_with("outer", "budget_bytes", 64);
            {
                let _inner = span("inner");
            }
            let _sibling = span("sibling");
        }
        uninstall();
        let snapshot = recorder.drain();
        assert_eq!(snapshot.spans.len(), 3);
        let outer = snapshot
            .spans
            .iter()
            .find(|s| s.name == "outer")
            .expect("outer span");
        assert_eq!(outer.parent, None);
        assert_eq!(outer.arg, Some(("budget_bytes", 64)));
        for child in ["inner", "sibling"] {
            let span = snapshot.spans.iter().find(|s| s.name == child).unwrap();
            assert_eq!(span.parent, Some(outer.id), "{child}");
            assert_eq!(span.tid, outer.tid);
            assert!(span.start_us >= outer.start_us);
            assert!(span.end_us <= outer.end_us);
        }
    }

    #[test]
    fn concurrent_recording_merges_thread_buffers_at_drain() {
        let _gate = GATE
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let recorder = Recorder::new();
        recorder.install();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let _span = span("worker");
                    for _ in 0..100 {
                        counter("work.items", 1);
                    }
                    observe("work.batch", 100);
                });
            }
        });
        uninstall();
        let snapshot = recorder.drain();
        assert_eq!(snapshot.counter("work.items"), 400);
        assert_eq!(snapshot.span_count("worker"), 4);
        // Every worker ran on its own thread: 4 distinct thread ids.
        let tids: std::collections::HashSet<u64> = snapshot
            .spans
            .iter()
            .filter(|s| s.name == "worker")
            .map(|s| s.tid)
            .collect();
        assert_eq!(tids.len(), 4);
        let (_, hist) = &snapshot.histograms[0];
        assert_eq!(hist.count, 4);
        assert_eq!(hist.sum, 400);
        assert_eq!(hist.max, 100);
    }

    #[test]
    fn counters_saturate_and_histograms_bucket_by_magnitude() {
        let _gate = GATE
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let recorder = Recorder::new();
        recorder.install();
        counter("sat", u64::MAX);
        counter("sat", u64::MAX);
        observe("h", 0);
        observe("h", 1);
        observe("h", 2);
        observe("h", 3);
        observe("h", u64::MAX);
        uninstall();
        let snapshot = recorder.drain();
        assert_eq!(snapshot.counter("sat"), u64::MAX);
        let hist = &snapshot
            .histograms
            .iter()
            .find(|(n, _)| n == "h")
            .expect("histogram h")
            .1;
        assert_eq!(hist.count, 5);
        assert_eq!(hist.buckets[0], 1); // the zero value
        assert_eq!(hist.buckets[1], 1); // value 1 in [1, 2)
        assert_eq!(hist.buckets[2], 2); // values 2 and 3 in [2, 4)
        assert_eq!(hist.buckets[HISTOGRAM_BUCKETS - 1], 1); // u64::MAX overflow bucket
        assert_eq!(hist.max, u64::MAX);
    }

    #[test]
    fn stopwatch_measures_monotonic_time() {
        let watch = Stopwatch::start();
        std::thread::sleep(Duration::from_millis(2));
        assert!(watch.elapsed() >= Duration::from_millis(2));
        assert!(watch.elapsed_ms() >= 2.0);
        let earlier = monotonic_micros();
        assert!(monotonic_micros() >= earlier);
    }
}
