//! Line-oriented text serialization for count-stable summaries.
//!
//! Format (one record per line, `#` comments allowed):
//!
//! ```text
//! stable v1
//! labels <n>
//! label <id> <name>
//! nodes <n> elements <total>
//! node <id> <label-id> <extent>
//! edge <from> <to> <k>
//! ```
//!
//! The element → class assignment is not serialized (it is as large as
//! the document); deserialized summaries support everything except
//! [`StableSummary::class_of`]-style lookups, which callers that need
//! them should recompute via `build_stable`.

use crate::stable::{StableNode, StableSummary, SynNodeId};
use axqa_xml::{LabelId, LabelTable};
use std::fmt::Write as _;

/// Serializes a summary (without the per-element assignment).
pub fn to_text(summary: &StableSummary) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "stable v1");
    let _ = writeln!(out, "labels {}", summary.labels().len());
    for (id, name) in summary.labels().iter() {
        let _ = writeln!(out, "label {} {}", id.0, name);
    }
    let _ = writeln!(
        out,
        "nodes {} elements {}",
        summary.len(),
        summary.total_elements()
    );
    for (i, node) in summary.nodes().iter().enumerate() {
        let _ = writeln!(out, "node {} {} {}", i, node.label.0, node.extent);
        for &(child, k) in &node.children {
            let _ = writeln!(out, "edge {} {} {}", i, child.0, k);
        }
    }
    out
}

/// Deserialization errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StableIoError {
    /// What went wrong.
    pub message: String,
    /// 1-based line number.
    pub line: usize,
}

impl std::fmt::Display for StableIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "stable summary parse error on line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for StableIoError {}

fn io_err(message: impl Into<String>, line: usize) -> StableIoError {
    StableIoError {
        message: message.into(),
        line,
    }
}

/// Parses the text format back into a summary (without assignment).
pub fn from_text(text: &str) -> Result<StableSummary, StableIoError> {
    let mut labels = LabelTable::new();
    let mut nodes: Vec<StableNode> = Vec::new();
    let mut total_elements = 0u64;
    let mut seen_header = false;

    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let Some(tag) = parts.next() else {
            continue; // unreachable: the line is non-empty after trim
        };
        match tag {
            "stable" => {
                if parts.next() != Some("v1") {
                    return Err(io_err("unsupported version", line));
                }
                seen_header = true;
            }
            "labels" => {}
            "label" => {
                let _id: u32 = next_num(&mut parts, line)?;
                let name = parts
                    .next()
                    .ok_or_else(|| io_err("label needs a name", line))?;
                labels.intern(name);
            }
            "nodes" => {
                let n: usize = next_num(&mut parts, line)? as usize;
                nodes.reserve(n);
                if parts.next() == Some("elements") {
                    total_elements = next_num(&mut parts, line)? as u64;
                }
            }
            "node" => {
                let id: u32 = next_num(&mut parts, line)?;
                if id as usize != nodes.len() {
                    return Err(io_err("node ids must be dense and in order", line));
                }
                let label: u32 = next_num(&mut parts, line)?;
                let extent: u64 = next_num(&mut parts, line)? as u64;
                if label as usize >= labels.len() {
                    return Err(io_err("node references unknown label", line));
                }
                nodes.push(StableNode {
                    label: LabelId(label),
                    extent,
                    children: Vec::new(),
                    depth: 0,
                });
            }
            "edge" => {
                let from: u32 = next_num(&mut parts, line)?;
                let to: u32 = next_num(&mut parts, line)?;
                let k: u32 = next_num(&mut parts, line)?;
                let from = from as usize;
                if from >= nodes.len() || to as usize >= nodes.len() {
                    return Err(io_err("edge references unknown node", line));
                }
                nodes[from].children.push((SynNodeId(to), k));
            }
            other => return Err(io_err(format!("unknown record {other:?}"), line)),
        }
    }
    if !seen_header {
        return Err(io_err("missing 'stable v1' header", 1));
    }
    if nodes.is_empty() {
        return Err(io_err("summary has no nodes", 1));
    }
    // Recompute depths (edges point at smaller ids per the format).
    let mut depths = vec![0u32; nodes.len()];
    for i in 0..nodes.len() {
        nodes[i].children.sort_unstable_by_key(|&(t, _)| t);
        depths[i] = nodes[i]
            .children
            .iter()
            .map(|&(t, _)| depths[t.index()].saturating_add(1))
            .max()
            .unwrap_or(0);
        nodes[i].depth = depths[i];
    }
    StableSummary::from_parts(labels, nodes, total_elements).map_err(|message| io_err(message, 1))
}

fn next_num<'a>(
    parts: &mut impl Iterator<Item = &'a str>,
    line: usize,
) -> Result<u32, StableIoError> {
    parts
        .next()
        .ok_or_else(|| io_err("missing numeric field", line))?
        .parse()
        .map_err(|_| io_err("bad numeric field", line))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stable::build_stable;
    use axqa_xml::parse_document;

    #[test]
    fn roundtrip() {
        let doc =
            parse_document("<r><a><b><c/></b><b><c/><c/><c/><c/></b></a><a><b><c/></b></a></r>")
                .unwrap();
        let summary = build_stable(&doc);
        let text = to_text(&summary);
        let back = from_text(&text).unwrap();
        assert_eq!(back.len(), summary.len());
        assert_eq!(back.num_edges(), summary.num_edges());
        assert_eq!(back.total_elements(), summary.total_elements());
        assert_eq!(back.root(), summary.root());
        for (a, b) in back.nodes().iter().zip(summary.nodes()) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.extent, b.extent);
            assert_eq!(a.children, b.children);
            assert_eq!(a.depth, b.depth);
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_text("").is_err());
        assert!(from_text("stable v2\n").is_err());
        assert!(from_text("stable v1\nnode 0 0 1\n").is_err()); // unknown label
        assert!(from_text("stable v1\nwhat 1 2\n").is_err());
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let doc = parse_document("<r><a/></r>").unwrap();
        let text = format!("# header comment\n\n{}", to_text(&build_stable(&doc)));
        assert!(from_text(&text).is_ok());
    }
}
