// Integration tests opt back into panicking extractors (workspace lint
// table, DESIGN.md "Static analysis & invariants").
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! Golden-file test for the Chrome `trace_event` exporter (ISSUE 4
//! satellite): name escaping, `ph: B`/`E` pairing, and `pid`/`tid`
//! fields are pinned byte-for-byte against `tests/golden/trace.json`,
//! and the `axqa-obs/2` metrics document shape (including the per-span
//! allocation aggregates from ISSUE 9) is asserted alongside.

use axqa_obs::export::{chrome_trace, metrics_json};
use axqa_obs::{Histogram, Snapshot, SpanRecord};

/// A hand-built snapshot with fixed ids and timestamps: a TSBUILD span
/// on thread 0 containing CREATEPOOL and the merge loop, plus a
/// worker-scoring span on thread 1 whose name needs JSON escaping.
fn fixture() -> Snapshot {
    let mut hist = Histogram::default();
    hist.record(3);
    hist.record(200);
    Snapshot {
        process_id: 4242,
        spans: vec![
            SpanRecord {
                name: "TSBUILD",
                id: 1,
                parent: None,
                tid: 0,
                start_us: 100,
                end_us: 900,
                arg: Some(("budget_bytes", 10_240)),
                alloc_count: 5,
                alloc_bytes: 4096,
                peak_live_delta: 2048,
            },
            SpanRecord {
                name: "CREATEPOOL",
                id: 2,
                parent: Some(1),
                tid: 0,
                start_us: 120,
                end_us: 400,
                arg: Some(("clusters", 16)),
                alloc_count: 2,
                alloc_bytes: 1024,
                peak_live_delta: 512,
            },
            SpanRecord {
                name: "score \"w\\0\"",
                id: 3,
                parent: None,
                tid: 1,
                start_us: 130,
                end_us: 390,
                arg: None,
                alloc_count: 0,
                alloc_bytes: 0,
                peak_live_delta: 0,
            },
            SpanRecord {
                name: "TSBUILD.merge_loop",
                id: 4,
                parent: Some(1),
                tid: 0,
                start_us: 410,
                end_us: 880,
                arg: None,
                alloc_count: 0,
                alloc_bytes: 0,
                peak_live_delta: 0,
            },
        ],
        counters: vec![
            ("evalquery.automaton_states".to_string(), 57),
            ("tsbuild.merges".to_string(), 12),
        ],
        histograms: vec![("pool.candidates".to_string(), hist)],
    }
}

#[test]
fn chrome_trace_matches_golden_file() {
    let actual = chrome_trace(&fixture());
    let golden = include_str!("golden/trace.json");
    if actual != golden {
        // Leave the actual output somewhere inspectable so the golden
        // can be refreshed deliberately after an intended format change.
        let path = std::env::temp_dir().join("axqa_obs_golden_trace_actual.json");
        std::fs::write(&path, &actual).unwrap();
        panic!(
            "chrome_trace output diverged from tests/golden/trace.json; \
             actual output written to {}",
            path.display()
        );
    }
}

#[test]
fn chrome_trace_pairs_begin_and_end_events() {
    let trace = chrome_trace(&fixture());
    assert_eq!(trace.matches("\"ph\": \"B\"").count(), 4);
    assert_eq!(trace.matches("\"ph\": \"E\"").count(), 4);
    // Every event names the process and a thread.
    assert_eq!(trace.matches("\"pid\": 4242").count(), 8);
    assert_eq!(trace.matches("\"tid\": 0").count(), 6);
    assert_eq!(trace.matches("\"tid\": 1").count(), 2);
    // The worker span's quotes and backslash are escaped for JSON.
    assert!(trace.contains("score \\\"w\\\\0\\\""));
    // Span args ride on the B event.
    assert!(trace.contains("\"args\": {\"budget_bytes\": 10240}"));
}

#[test]
fn metrics_json_has_the_axqa_obs_2_shape() {
    let metrics = metrics_json(&fixture());
    assert!(metrics.contains("\"schema\": \"axqa-obs/2\""));
    assert!(metrics.contains("\"process_id\": 4242"));
    assert!(metrics.contains("\"tsbuild.merges\": 12"));
    assert!(metrics.contains("\"evalquery.automaton_states\": 57"));
    assert!(metrics.contains("\"pool.candidates\": {\"count\": 2, \"sum\": 203, \"max\": 200,"));
    // Span aggregates carry the exclusive allocation profile: TSBUILD
    // appears once, 800us total, 5 allocation events.
    assert!(metrics.contains(
        "\"TSBUILD\": {\"count\": 1, \"total_us\": 800, \"max_us\": 800, \
         \"allocs\": 5, \"alloc_bytes\": 4096, \"peak_live_bytes\": 2048}"
    ));
    // The merge loop's alloc-free claim shows up as literal zeros.
    assert!(metrics.contains(
        "\"TSBUILD.merge_loop\": {\"count\": 1, \"total_us\": 470, \"max_us\": 470, \
         \"allocs\": 0, \"alloc_bytes\": 0, \"peak_live_bytes\": 0}"
    ));
    // Balanced braces/brackets — same well-formedness check the bench
    // report test uses (no serde in the workspace to parse with).
    assert_eq!(metrics.matches('{').count(), metrics.matches('}').count());
    assert_eq!(metrics.matches('[').count(), metrics.matches(']').count());
}
