//! SARIF 2.1.0 export.
//!
//! `cargo xtask lint --format sarif` (or `--sarif PATH` alongside any
//! other format) renders the run as a Static Analysis Results
//! Interchange Format log, hand-rolled like the Chrome-trace exporter
//! in axqa-obs — no serde, stable key order, trailing newline.
//!
//! Shape notes, for readers diffing against the spec:
//!
//! * one `run` with `tool.driver.rules` carrying every registered rule
//!   (id + short description + default level), so viewers can render
//!   rule metadata even for rules with zero results;
//! * each finding becomes a `result` with `ruleId`/`ruleIndex`,
//!   `message.text`, and one physical location; findings with no line
//!   (e.g. a removed API-surface entry) omit the `region`;
//! * baselined findings carry `suppressions: [{"kind": "external"}]`
//!   — GitHub code scanning hides suppressed results by default, so
//!   only *new* findings annotate pull requests, matching the
//!   ratchet's text/JSON semantics.

use crate::engine::{json_string, Outcome};
use crate::Severity;

/// The schema URI embedded in every log.
pub const SCHEMA_URI: &str = "https://json.schemastore.org/sarif-2.1.0.json";

fn level(severity: Severity) -> &'static str {
    match severity {
        Severity::Warning => "warning",
        Severity::Error => "error",
    }
}

/// Renders an [`Outcome`] as a SARIF 2.1.0 log.
pub fn render_sarif(outcome: &Outcome) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"$schema\": {},\n", json_string(SCHEMA_URI)));
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");

    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"axqa-lint\",\n");
    out.push_str("          \"informationUri\": \"https://github.com/axqa/axqa\",\n");
    out.push_str("          \"rules\": [\n");
    let rule_count = outcome.rules.len();
    for (i, (id, severity, describe)) in outcome.rules.iter().enumerate() {
        out.push_str(&format!(
            "            {{\"id\": {}, \"shortDescription\": {{\"text\": {}}}, \
             \"defaultConfiguration\": {{\"level\": {}}}}}{}\n",
            json_string(id),
            json_string(describe),
            json_string(level(*severity)),
            if i.saturating_add(1) < rule_count {
                ","
            } else {
                ""
            }
        ));
    }
    out.push_str("          ]\n        }\n      },\n");

    out.push_str("      \"results\": [\n");
    let total = outcome.findings.len();
    for (i, (finding, covered)) in outcome.findings.iter().zip(&outcome.baselined).enumerate() {
        let rule_index = outcome
            .rules
            .iter()
            .position(|(id, _, _)| *id == finding.rule)
            .unwrap_or(0);
        let region = if finding.line > 0 {
            format!(", \"region\": {{\"startLine\": {}}}", finding.line)
        } else {
            String::new()
        };
        let suppressions = if *covered {
            ", \"suppressions\": [{\"kind\": \"external\"}]"
        } else {
            ""
        };
        out.push_str(&format!(
            "        {{\"ruleId\": {}, \"ruleIndex\": {rule_index}, \"level\": {}, \
             \"message\": {{\"text\": {}}}, \"locations\": [{{\"physicalLocation\": \
             {{\"artifactLocation\": {{\"uri\": {}}}{region}}}}}]{suppressions}}}{}\n",
            json_string(finding.rule),
            json_string(level(finding.severity)),
            json_string(&finding.message),
            json_string(&finding.file),
            if i.saturating_add(1) < total { "," } else { "" }
        ));
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Finding;

    fn outcome(findings: Vec<Finding>, baselined: Vec<bool>) -> Outcome {
        Outcome {
            findings,
            baselined,
            stale: Vec::new(),
            files_scanned: 2,
            rules: vec![
                ("no-unwrap", Severity::Error, "no unwraps"),
                ("paper-doc", Severity::Error, "paper anchors"),
            ],
            wrote_baseline: false,
            wrote_api_surface: false,
            wrote_panic_surface: false,
            wrote_alloc_surface: false,
        }
    }

    fn sample(rule: &'static str, line: u32) -> Finding {
        Finding {
            rule,
            severity: Severity::Error,
            file: "crates/core/src/build.rs".to_string(),
            line,
            span: (0, 0),
            message: "msg with \"quotes\"".to_string(),
        }
    }

    #[test]
    fn emits_schema_version_and_rule_metadata() {
        let sarif = render_sarif(&outcome(Vec::new(), Vec::new()));
        assert!(sarif.contains("\"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\""));
        assert!(sarif.contains("\"version\": \"2.1.0\""));
        assert!(sarif.contains("\"id\": \"no-unwrap\""));
        assert!(sarif.contains("\"level\": \"error\""));
    }

    #[test]
    fn results_carry_rule_index_location_and_escaping() {
        let sarif = render_sarif(&outcome(vec![sample("paper-doc", 7)], vec![false]));
        assert!(sarif.contains("\"ruleId\": \"paper-doc\""));
        assert!(sarif.contains("\"ruleIndex\": 1"));
        assert!(sarif.contains("\"startLine\": 7"));
        assert!(sarif.contains("msg with \\\"quotes\\\""));
        assert!(!sarif.contains("suppressions"));
    }

    #[test]
    fn baselined_findings_are_suppressed_and_zero_line_omits_region() {
        let sarif = render_sarif(&outcome(vec![sample("no-unwrap", 0)], vec![true]));
        assert!(sarif.contains("\"suppressions\": [{\"kind\": \"external\"}]"));
        assert!(!sarif.contains("startLine"));
    }
}
