//! Allocation-reachability over the [`crate::callgraph`] (DESIGN.md
//! §11).
//!
//! Hot roots — the merge-loop kernels, the pooled EVALQUERY loop, the
//! parallel-map worker bodies — are declared in the committed
//! `lint/hot-paths.toml`. A worklist fixpoint classifies every
//! function on a root's call cone as
//!
//! * `alloc-free` — no ungranted allocation site reachable;
//! * `allocates-directly` — the function's own body has an ungranted
//!   site ([`crate::allocsite`]);
//! * `alloc-reaching` — allocation only through a callee.
//!
//! Deliberate allocations (scratch-pool growth, cold error paths,
//! output construction) are granted per site via `[[alloc-ok]]` tables
//! in `lint-baseline.toml`; a granted site neither seeds the fixpoint
//! nor appears in findings, so a kernel whose only allocations are
//! granted classifies `alloc-free`. Every grant carries a required
//! `reason`, and grants that cover more sites than currently exist are
//! themselves findings — the grant set ratchets like everything else.
//!
//! Two soundness refinements over the raw call graph:
//!
//! * **Dependency pruning** — the conservative method-call matching
//!   (`x.resolve(…)` matches every workspace fn named `resolve`) is
//!   filtered by the manifest dependency closure: a call edge from
//!   crate A into crate B survives only when A actually depends on B
//!   (or A == B). Without this, a method name shared with, say, this
//!   lint crate would poison the kernels' cones.
//! * **Macro opacity** — unknown macro invocations count as direct
//!   allocation sites (see [`crate::allocsite`]), so macro-hidden
//!   allocations fail closed.
//!
//! The per-cone classification is snapshotted to
//! `lint/alloc-surface.txt` and ratcheted exactly like the panic
//! surface: any churn is a finding until regenerated with
//! `--update-alloc-surface`.

use crate::allocsite::{self, AllocSite};
use crate::baseline::BASELINE_PATH;
use crate::reach::SurfaceLine;
use crate::{Finding, Rule, Scope, Severity, Workspace};

/// Path of the committed hot-roots config, relative to the workspace
/// root.
pub const CONFIG_PATH: &str = "lint/hot-paths.toml";

/// Path of the committed snapshot, relative to the workspace root.
pub const SNAPSHOT_PATH: &str = "lint/alloc-surface.txt";

/// Classification of one function on a hot cone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocClass {
    /// No ungranted allocation reachable.
    Free,
    /// Own body has an ungranted allocation site.
    Direct,
    /// Reaches an ungranted allocation through a callee.
    Reaching,
}

impl AllocClass {
    /// Stable name used in the snapshot file.
    pub fn name(self) -> &'static str {
        match self {
            AllocClass::Free => "alloc-free",
            AllocClass::Direct => "allocates-directly",
            AllocClass::Reaching => "alloc-reaching",
        }
    }
}

/// One declared hot root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HotRoot {
    /// Qualified path suffix (`ClusterState::evaluate_merge`).
    pub path: String,
    /// Why this is a hot path (documentation only).
    pub reason: String,
}

/// Parses `lint/hot-paths.toml`: comments and `[[root]]` tables with
/// string `path`/`reason` keys. Unknown keys are hard errors, same
/// policy as the baseline.
pub fn parse_config(text: &str) -> Result<Vec<HotRoot>, String> {
    let mut roots: Vec<HotRoot> = Vec::new();
    let mut current: Option<(Option<String>, Option<String>)> = None;
    let finish = |current: &mut Option<(Option<String>, Option<String>)>,
                  roots: &mut Vec<HotRoot>,
                  lineno: usize|
     -> Result<(), String> {
        if let Some((path, reason)) = current.take() {
            let missing =
                |key: &str| format!("{CONFIG_PATH}:{lineno}: [[root]] entry missing `{key}`");
            roots.push(HotRoot {
                path: path.ok_or_else(|| missing("path"))?,
                reason: reason.ok_or_else(|| missing("reason"))?,
            });
        }
        Ok(())
    };
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx.saturating_add(1);
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[root]]" {
            finish(&mut current, &mut roots, lineno)?;
            current = Some((None, None));
            continue;
        }
        if line.starts_with('[') {
            return Err(format!(
                "{CONFIG_PATH}:{lineno}: unknown table `{line}` (expected [[root]])"
            ));
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("{CONFIG_PATH}:{lineno}: expected `key = value`"));
        };
        let entry = current
            .as_mut()
            .ok_or_else(|| format!("{CONFIG_PATH}:{lineno}: key outside a [[root]] table"))?;
        let value = value.trim();
        let string = || -> Result<String, String> {
            value
                .strip_prefix('"')
                .and_then(|v| v.strip_suffix('"'))
                .filter(|v| !v.contains('"') && !v.contains('\\'))
                .map(str::to_string)
                .ok_or_else(|| format!("{CONFIG_PATH}:{lineno}: expected a double-quoted string"))
        };
        match key.trim() {
            "path" => entry.0 = Some(string()?),
            "reason" => entry.1 = Some(string()?),
            other => {
                return Err(format!(
                    "{CONFIG_PATH}:{lineno}: unknown [[root]] key `{other}`"
                ));
            }
        }
    }
    let end = text.lines().count();
    finish(&mut current, &mut roots, end)?;
    Ok(roots)
}

/// True when qualified path `display` ends with suffix `pattern` at a
/// `::` boundary (`a::B::c` matches `B::c` and `c`, not `bc`).
fn path_matches(display: &str, pattern: &str) -> bool {
    display == pattern
        || display
            .strip_suffix(pattern)
            .is_some_and(|head| head.ends_with("::"))
}

/// The completed analysis over one workspace.
#[derive(Debug)]
pub struct Analysis {
    /// `ungranted[i]` — item `i`'s direct sites minus alloc-ok grants.
    pub ungranted: Vec<Vec<AllocSite>>,
    /// `reaching[i]` — item `i` can reach an ungranted site.
    pub reaching: Vec<bool>,
    /// `cone[i]` — item `i` is a hot root or callable from one.
    pub cone: Vec<bool>,
    /// Item indices matched per configured root (parallel to the
    /// `roots` slice handed to [`analyze`]).
    pub root_items: Vec<Vec<usize>>,
    /// Dependency-pruned forward edges (indices into `graph.items`).
    pub calls: Vec<Vec<usize>>,
    /// `grant_used[g]` — sites covered by grant `g` (parallel to
    /// `workspace.alloc_grants`).
    pub grant_used: Vec<usize>,
}

impl Analysis {
    /// Classification of item `i`.
    pub fn class_of(&self, i: usize) -> AllocClass {
        if !self.ungranted[i].is_empty() {
            AllocClass::Direct
        } else if self.reaching[i] {
            AllocClass::Reaching
        } else {
            AllocClass::Free
        }
    }
}

/// Transitive dependency closure per crate, from the manifest edges.
fn dep_closure(dep_edges: &[(String, Vec<String>)]) -> Vec<(String, Vec<String>)> {
    let mut out = Vec::with_capacity(dep_edges.len());
    for (name, _) in dep_edges {
        let mut seen: Vec<String> = vec![name.clone()];
        let mut stack: Vec<String> = vec![name.clone()];
        while let Some(cur) = stack.pop() {
            if let Some((_, deps)) = dep_edges.iter().find(|(n, _)| *n == cur) {
                for dep in deps {
                    if !seen.contains(dep) {
                        seen.push(dep.clone());
                        stack.push(dep.clone());
                    }
                }
            }
        }
        out.push((name.clone(), seen));
    }
    out
}

/// Runs site detection, grant matching, and the reachability fixpoint.
pub fn analyze(workspace: &Workspace, roots: &[HotRoot]) -> Analysis {
    let graph = workspace.callgraph();
    let n = graph.items.len();

    // File lookup by workspace-relative path (files may arrive in any
    // order; sort an index instead of assuming).
    let mut by_rel: Vec<(&str, usize)> = workspace
        .files
        .iter()
        .enumerate()
        .map(|(f, file)| (file.rel.as_str(), f))
        .collect();
    by_rel.sort_unstable();

    // Direct sites per item.
    let mut sites: Vec<Vec<AllocSite>> = vec![Vec::new(); n];
    for (i, item) in graph.items.iter().enumerate() {
        if item.is_test {
            continue;
        }
        let Some((start, end)) = item.body else {
            continue;
        };
        let Ok(pos) = by_rel.binary_search_by(|(rel, _)| rel.cmp(&item.file.as_str())) else {
            continue;
        };
        sites[i] = allocsite::scan(&workspace.files[by_rel[pos].1], start, end);
    }

    // Apply alloc-ok grants: each grant covers up to `count` matching
    // sites across the items its path suffix matches, in item order.
    let mut grant_used: Vec<usize> = vec![0; workspace.alloc_grants.len()];
    let mut ungranted = sites;
    for (g, grant) in workspace.alloc_grants.iter().enumerate() {
        let mut budget = grant.count;
        for (i, item) in graph.items.iter().enumerate() {
            if budget == 0 {
                break;
            }
            if !path_matches(&item.display_path(), &grant.path) {
                continue;
            }
            ungranted[i].retain(|site| {
                if budget > 0 && site.what == grant.what {
                    budget = budget.saturating_sub(1);
                    false
                } else {
                    true
                }
            });
        }
        grant_used[g] = grant.count.saturating_sub(budget);
    }

    // Dependency-pruned edges: the conservative method matching stays
    // within what the manifests allow.
    let closure = dep_closure(&workspace.dep_edges);
    let allowed = |caller: usize, callee: usize| -> bool {
        let from = &graph.items[caller].crate_name;
        let to = &graph.items[callee].crate_name;
        from == to
            || closure
                .iter()
                .find(|(name, _)| name == from)
                .is_some_and(|(_, deps)| deps.contains(to))
    };
    let calls: Vec<Vec<usize>> = graph
        .calls
        .iter()
        .enumerate()
        .map(|(caller, callees)| {
            callees
                .iter()
                .copied()
                .filter(|&callee| allowed(caller, callee))
                .collect()
        })
        .collect();

    let _span = axqa_obs::span("lint.fixpoint");

    // Backward fixpoint: which items reach an ungranted site.
    let mut reaching: Vec<bool> = (0..n)
        .map(|i| !graph.items[i].is_test && !ungranted[i].is_empty())
        .collect();
    let mut callers: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (caller, callees) in calls.iter().enumerate() {
        if graph.items[caller].is_test {
            continue;
        }
        for &callee in callees {
            callers[callee].push(caller);
        }
    }
    let mut worklist: Vec<usize> = (0..n).filter(|&i| reaching[i]).collect();
    while let Some(i) = worklist.pop() {
        for &caller in &callers[i] {
            if !reaching[caller] {
                reaching[caller] = true;
                worklist.push(caller);
            }
        }
    }

    // Roots and their forward cones.
    let mut root_items: Vec<Vec<usize>> = Vec::with_capacity(roots.len());
    let mut cone = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    for root in roots {
        let matched: Vec<usize> = graph
            .items
            .iter()
            .enumerate()
            .filter(|(_, item)| !item.is_test && path_matches(&item.display_path(), &root.path))
            .map(|(i, _)| i)
            .collect();
        for &i in &matched {
            if !cone[i] {
                cone[i] = true;
                stack.push(i);
            }
        }
        root_items.push(matched);
    }
    while let Some(i) = stack.pop() {
        for &callee in &calls[i] {
            if !cone[callee] && !graph.items[callee].is_test {
                cone[callee] = true;
                stack.push(callee);
            }
        }
    }

    Analysis {
        ungranted,
        reaching,
        cone,
        root_items,
        calls,
        grant_used,
    }
}

/// Computes the classified hot-cone surface, sorted and deduplicated.
pub fn surface(workspace: &Workspace, roots: &[HotRoot]) -> Vec<(SurfaceLine, u32)> {
    let analysis = analyze(workspace, roots);
    let graph = workspace.callgraph();
    let mut out: Vec<(SurfaceLine, u32)> = Vec::new();
    for (i, item) in graph.items.iter().enumerate() {
        if !analysis.cone[i] {
            continue;
        }
        out.push((
            SurfaceLine {
                file: item.file.clone(),
                path: item.display_path(),
                class: analysis.class_of(i).name().to_string(),
            },
            item.line,
        ));
    }
    out.sort();
    out.dedup_by(|a, b| a.0 == b.0);
    out
}

/// Renders the snapshot file contents for `--update-alloc-surface`.
/// With a missing or unparseable config the body is empty — the
/// `hot-path-alloc` rule reports the config problem itself.
pub fn render_surface(workspace: &Workspace) -> String {
    let mut out = String::from(
        "# Allocation surface of the hot-path cones (generated by\n\
         # `cargo xtask lint --update-alloc-surface`). One line per fn reachable\n\
         # from a lint/hot-paths.toml root: <file> <qualified path> <classification>.\n\
         # Classifications: alloc-free | allocates-directly | alloc-reaching.\n\
         # [[alloc-ok]] grants in lint-baseline.toml are applied before\n\
         # classification, so granted deliberate allocations read alloc-free.\n\
         # The alloc-surface rule fails on any diff against this file.\n",
    );
    let roots = match workspace.hot_paths.as_deref().map(parse_config) {
        Some(Ok(roots)) => roots,
        Some(Err(_)) | None => return out,
    };
    for (line, _) in surface(workspace, &roots) {
        out.push_str(&line.file);
        out.push(' ');
        out.push_str(&line.path);
        out.push(' ');
        out.push_str(&line.class);
        out.push('\n');
    }
    out
}

/// Parses a committed snapshot back into sorted lines.
fn parse_snapshot(text: &str) -> Vec<SurfaceLine> {
    let mut lines: Vec<SurfaceLine> = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| {
            let mut parts = l.split(' ');
            let file = parts.next()?.to_string();
            let path = parts.next()?.to_string();
            let class = parts.next()?.to_string();
            Some(SurfaceLine { file, path, class })
        })
        .collect();
    lines.sort();
    lines
}

/// The hot-path allocation rule: config errors, allocating cone
/// members, and grant hygiene.
pub struct HotPathAlloc;

impl Rule for HotPathAlloc {
    fn id(&self) -> &'static str {
        "hot-path-alloc"
    }
    fn describe(&self) -> &'static str {
        "no ungranted allocation reachable from the hot roots in lint/hot-paths.toml \
         (fix the allocation or add a reasoned [[alloc-ok]] grant)"
    }
    fn scope(&self) -> Scope {
        Scope::Workspace
    }
    fn check_workspace(&self, workspace: &Workspace, findings: &mut Vec<Finding>) {
        let Some(config_text) = &workspace.hot_paths else {
            findings.push(Finding {
                rule: self.id(),
                severity: Severity::Error,
                file: CONFIG_PATH.to_string(),
                line: 0,
                span: (0, 0),
                message: format!(
                    "missing hot-paths config — declare the hot roots in {CONFIG_PATH} \
                     ([[root]] tables with `path` and `reason`)"
                ),
            });
            return;
        };
        let roots = match parse_config(config_text) {
            Ok(roots) => roots,
            Err(message) => {
                findings.push(Finding {
                    rule: self.id(),
                    severity: Severity::Error,
                    file: CONFIG_PATH.to_string(),
                    line: 0,
                    span: (0, 0),
                    message,
                });
                return;
            }
        };
        let analysis = analyze(workspace, &roots);
        let graph = workspace.callgraph();

        for (root, items) in roots.iter().zip(&analysis.root_items) {
            if items.is_empty() {
                findings.push(Finding {
                    rule: self.id(),
                    severity: Severity::Error,
                    file: CONFIG_PATH.to_string(),
                    line: 0,
                    span: (0, 0),
                    message: format!(
                        "hot root `{}` matches no workspace function — fix {CONFIG_PATH}",
                        root.path
                    ),
                });
            }
        }

        for (i, item) in graph.items.iter().enumerate() {
            if !analysis.cone[i] {
                continue;
            }
            match analysis.class_of(i) {
                AllocClass::Free => {}
                AllocClass::Direct => {
                    let mut labels: Vec<String> = analysis.ungranted[i]
                        .iter()
                        .take(4)
                        .map(|s| format!("`{}` line {}", s.what, s.line))
                        .collect();
                    if analysis.ungranted[i].len() > 4 {
                        labels.push(format!("+{} more", analysis.ungranted[i].len() - 4));
                    }
                    findings.push(Finding {
                        rule: self.id(),
                        severity: Severity::Error,
                        file: item.file.clone(),
                        line: item.line,
                        span: (0, 0),
                        message: format!(
                            "hot-path fn `{}` allocates directly ({}) — reuse a scratch/pool \
                             or add an [[alloc-ok]] grant with a reason to {BASELINE_PATH}",
                            item.display_path(),
                            labels.join(", ")
                        ),
                    });
                }
                AllocClass::Reaching => {
                    let via = analysis.calls[i]
                        .iter()
                        .find(|&&c| analysis.reaching[c])
                        .map(|&c| graph.items[c].display_path())
                        .unwrap_or_else(|| "an opaque callee".to_string());
                    findings.push(Finding {
                        rule: self.id(),
                        severity: Severity::Error,
                        file: item.file.clone(),
                        line: item.line,
                        span: (0, 0),
                        message: format!(
                            "hot-path fn `{}` reaches an allocation via `{via}` — fix the \
                             callee or grant its sites in {BASELINE_PATH}",
                            item.display_path()
                        ),
                    });
                }
            }
        }

        for (grant, &used) in workspace.alloc_grants.iter().zip(&analysis.grant_used) {
            if used < grant.count {
                findings.push(Finding {
                    rule: self.id(),
                    severity: Severity::Error,
                    file: BASELINE_PATH.to_string(),
                    line: 0,
                    span: (0, 0),
                    message: format!(
                        "alloc-ok grant for `{}` `{}` covers {} site(s) but only {used} \
                         matched — shrink or remove the grant",
                        grant.path, grant.what, grant.count
                    ),
                });
            }
        }
    }
}

/// The alloc-surface ratchet rule: the classified hot cone must match
/// the committed snapshot.
pub struct AllocSurface;

impl Rule for AllocSurface {
    fn id(&self) -> &'static str {
        "alloc-surface"
    }
    fn describe(&self) -> &'static str {
        "hot-cone allocation classification matches the committed \
         lint/alloc-surface.txt snapshot"
    }
    fn scope(&self) -> Scope {
        Scope::Workspace
    }
    fn check_workspace(&self, workspace: &Workspace, findings: &mut Vec<Finding>) {
        // Config problems are hot-path-alloc findings; the ratchet
        // compares whatever surface the config yields.
        let roots = match workspace.hot_paths.as_deref().map(parse_config) {
            Some(Ok(roots)) => roots,
            Some(Err(_)) | None => return,
        };
        let current = surface(workspace, &roots);
        let Some(snapshot_text) = &workspace.alloc_surface_snapshot else {
            findings.push(Finding {
                rule: self.id(),
                severity: Severity::Error,
                file: SNAPSHOT_PATH.to_string(),
                line: 0,
                span: (0, 0),
                message: format!(
                    "missing alloc-surface snapshot — run `cargo xtask lint \
                     --update-alloc-surface` to create {SNAPSHOT_PATH}"
                ),
            });
            return;
        };
        let mut snapshot = parse_snapshot(snapshot_text);

        for (line, item_line) in &current {
            if let Some(pos) = snapshot.iter().position(|s| s == line) {
                snapshot.remove(pos);
            } else {
                let previous = snapshot
                    .iter()
                    .find(|s| s.file == line.file && s.path == line.path)
                    .map(|s| s.class.clone());
                let detail = match previous {
                    Some(old) => format!("was `{old}`, now `{}`", line.class),
                    None => format!("new on the hot cone, `{}`", line.class),
                };
                findings.push(Finding {
                    rule: self.id(),
                    severity: Severity::Error,
                    file: line.file.clone(),
                    line: (*item_line).max(1),
                    span: (0, 0),
                    message: format!(
                        "alloc surface changed for `{}` ({detail}) — review, then run \
                         `cargo xtask lint --update-alloc-surface`",
                        line.path
                    ),
                });
            }
        }
        for line in snapshot {
            if current
                .iter()
                .any(|(c, _)| c.file == line.file && c.path == line.path)
            {
                continue;
            }
            findings.push(Finding {
                rule: self.id(),
                severity: Severity::Error,
                file: line.file.clone(),
                line: 0,
                span: (0, 0),
                message: format!(
                    "fn `{}` left the hot cone but is still in the alloc-surface snapshot — \
                     review, then run `cargo xtask lint --update-alloc-surface`",
                    line.path
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::AllocGrant;
    use crate::SourceFile;

    fn files(sources: &[(&str, &str)]) -> Vec<SourceFile> {
        sources
            .iter()
            .map(|(rel, text)| {
                let crate_name = if rel.starts_with("crates/other/") {
                    "axqa-other"
                } else {
                    "axqa-core"
                };
                SourceFile::new(
                    rel.to_string(),
                    crate_name.to_string(),
                    false,
                    text.to_string(),
                )
            })
            .collect()
    }

    fn workspace_with(
        sources: &[(&str, &str)],
        hot_paths: Option<&str>,
        snapshot: Option<&str>,
        grants: Vec<AllocGrant>,
    ) -> Workspace {
        Workspace {
            files: files(sources),
            dep_edges: vec![
                ("axqa-core".to_string(), Vec::new()),
                ("axqa-other".to_string(), Vec::new()),
            ],
            api_surface_snapshot: None,
            panic_surface_snapshot: None,
            alloc_surface_snapshot: snapshot.map(str::to_string),
            hot_paths: hot_paths.map(str::to_string),
            alloc_grants: grants,
            graph: std::cell::OnceCell::new(),
        }
    }

    fn root_config(path: &str) -> String {
        format!("[[root]]\npath = \"{path}\"\nreason = \"test kernel\"\n")
    }

    const KERNEL_SRC: &str = "pub fn kernel(n: usize) -> usize { helper(n) }\n\
                              fn helper(n: usize) -> usize { let v: Vec<u32> = Vec::new(); v.len() + n }\n\
                              pub fn unrelated() { let b = Box::new(1); drop(b); }\n";

    #[test]
    fn classification_propagates_up_the_cone() {
        let ws = workspace_with(
            &[("crates/core/src/a.rs", KERNEL_SRC)],
            None,
            None,
            Vec::new(),
        );
        let roots = parse_config(&root_config("kernel")).unwrap();
        let analysis = analyze(&ws, &roots);
        let graph = ws.callgraph();
        let of = |n: &str| graph.items.iter().position(|i| i.name == n).unwrap();
        assert_eq!(analysis.class_of(of("kernel")), AllocClass::Reaching);
        assert_eq!(analysis.class_of(of("helper")), AllocClass::Direct);
        assert!(analysis.cone[of("kernel")] && analysis.cone[of("helper")]);
        // Off-cone fns are not surfaced even though they allocate.
        assert!(!analysis.cone[of("unrelated")]);
    }

    #[test]
    fn grants_neutralize_sites_and_track_usage() {
        let grant = AllocGrant {
            path: "helper".to_string(),
            what: "Vec::new".to_string(),
            count: 1,
            reason: "test".to_string(),
        };
        let ws = workspace_with(
            &[("crates/core/src/a.rs", KERNEL_SRC)],
            Some(&root_config("kernel")),
            None,
            vec![grant],
        );
        let roots = parse_config(ws.hot_paths.as_deref().unwrap()).unwrap();
        let analysis = analyze(&ws, &roots);
        let graph = ws.callgraph();
        let of = |n: &str| graph.items.iter().position(|i| i.name == n).unwrap();
        assert_eq!(analysis.class_of(of("helper")), AllocClass::Free);
        assert_eq!(analysis.class_of(of("kernel")), AllocClass::Free);
        assert_eq!(analysis.grant_used, vec![1]);
    }

    #[test]
    fn over_counted_grants_are_findings() {
        let grant = AllocGrant {
            path: "helper".to_string(),
            what: "Vec::new".to_string(),
            count: 3,
            reason: "test".to_string(),
        };
        let ws = workspace_with(
            &[("crates/core/src/a.rs", KERNEL_SRC)],
            Some(&root_config("kernel")),
            Some(""),
            vec![grant],
        );
        let mut findings = Vec::new();
        HotPathAlloc.check_workspace(&ws, &mut findings);
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("covers 3 site(s) but only 1")),
            "{findings:?}"
        );
    }

    #[test]
    fn dependency_pruning_cuts_cross_crate_method_matches() {
        // `x.helper()` conservatively matches axqa-other's `helper`,
        // but axqa-core does not depend on axqa-other, so the edge is
        // pruned and the kernel stays alloc-free.
        let ws = workspace_with(
            &[
                (
                    "crates/core/src/a.rs",
                    "pub fn kernel(x: &S) -> usize { x.helper() }\n",
                ),
                (
                    "crates/other/src/b.rs",
                    "pub fn helper() -> Vec<u32> { Vec::new() }\n",
                ),
            ],
            None,
            None,
            Vec::new(),
        );
        let roots = parse_config(&root_config("kernel")).unwrap();
        let analysis = analyze(&ws, &roots);
        let graph = ws.callgraph();
        let kernel = graph.items.iter().position(|i| i.name == "kernel").unwrap();
        assert_eq!(analysis.class_of(kernel), AllocClass::Free);
    }

    #[test]
    fn unmatched_roots_and_missing_config_report() {
        let ws = workspace_with(
            &[("crates/core/src/a.rs", "pub fn f() {}\n")],
            Some(&root_config("no_such_fn")),
            Some(""),
            Vec::new(),
        );
        let mut findings = Vec::new();
        HotPathAlloc.check_workspace(&ws, &mut findings);
        assert!(
            findings.iter().any(|f| f
                .message
                .contains("`no_such_fn` matches no workspace function")),
            "{findings:?}"
        );

        let ws = workspace_with(
            &[("crates/core/src/a.rs", "pub fn f() {}\n")],
            None,
            None,
            Vec::new(),
        );
        let mut findings = Vec::new();
        HotPathAlloc.check_workspace(&ws, &mut findings);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("missing hot-paths config"));
    }

    #[test]
    fn surface_ratchet_reports_reclassification_and_departure() {
        let snapshot = "# header\n\
                        crates/core/src/a.rs axqa_core::a::kernel alloc-free\n\
                        crates/core/src/a.rs axqa_core::a::gone alloc-free\n";
        let ws = workspace_with(
            &[(
                "crates/core/src/a.rs",
                "pub fn kernel() -> Vec<u32> { Vec::new() }\n",
            )],
            Some(&root_config("kernel")),
            Some(snapshot),
            Vec::new(),
        );
        let mut findings = Vec::new();
        AllocSurface.check_workspace(&ws, &mut findings);
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings.iter().any(|f| f
            .message
            .contains("was `alloc-free`, now `allocates-directly`")));
        assert!(findings
            .iter()
            .any(|f| f.message.contains("`axqa_core::a::gone` left the hot cone")));
    }

    #[test]
    fn matching_snapshot_is_clean_and_missing_snapshot_reports() {
        let src = "pub fn kernel() -> usize { 1 }\n";
        let config = root_config("kernel");
        let ws = workspace_with(
            &[("crates/core/src/a.rs", src)],
            Some(&config),
            None,
            Vec::new(),
        );
        let rendered = render_surface(&ws);
        assert!(rendered.contains("axqa_core::a::kernel alloc-free"));

        let ws = workspace_with(
            &[("crates/core/src/a.rs", src)],
            Some(&config),
            Some(&rendered),
            Vec::new(),
        );
        let mut findings = Vec::new();
        AllocSurface.check_workspace(&ws, &mut findings);
        assert!(findings.is_empty(), "{findings:?}");

        let ws = workspace_with(
            &[("crates/core/src/a.rs", src)],
            Some(&config),
            None,
            Vec::new(),
        );
        let mut findings = Vec::new();
        AllocSurface.check_workspace(&ws, &mut findings);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("--update-alloc-surface"));
    }

    #[test]
    fn config_parser_rejects_malformed_input() {
        assert!(parse_config("[[root]]\npath = \"x\"\n").is_err()); // missing reason
        assert!(parse_config("path = \"x\"\n").is_err()); // key outside table
        assert!(parse_config("[[root]]\npath = x\n").is_err()); // unquoted
        assert!(parse_config("[[root]]\nnope = \"x\"\n").is_err()); // unknown key
        assert!(parse_config("[other]\n").is_err()); // unknown table
        let roots = parse_config("# c\n\n[[root]]\npath = \"a::b\"\nreason = \"r\"\n").unwrap();
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].path, "a::b");
    }

    #[test]
    fn path_matching_respects_module_boundaries() {
        assert!(path_matches(
            "axqa_core::cluster::ClusterState::apply_merge",
            "apply_merge"
        ));
        assert!(path_matches(
            "axqa_core::cluster::ClusterState::apply_merge",
            "ClusterState::apply_merge"
        ));
        assert!(!path_matches(
            "axqa_core::cluster::reapply_merge",
            "apply_merge"
        ));
        assert!(path_matches("apply_merge", "apply_merge"));
    }
}
