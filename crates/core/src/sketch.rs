//! The TreeSketch synopsis data structure (§3.2, Definition 3.2).

use axqa_synopsis::{SizeModel, StableSummary};
use axqa_xml::{LabelId, LabelTable};
use std::fmt;

/// Identifier of a TreeSketch node (an element cluster).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TsNodeId(pub u32);

impl TsNodeId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TsNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// One node of a TreeSketch.
#[derive(Debug, Clone, PartialEq)]
pub struct TsNode {
    /// Common label of the cluster's elements.
    pub label: LabelId,
    /// `count(u)` — extent size.
    pub count: u64,
    /// Outgoing edges `(v, count(u, v))`: *average* children in `v` per
    /// element of `u`, sorted by target id.
    pub edges: Vec<(TsNodeId, f64)>,
    /// Longest downward distance to a leaf cluster (the paper's node
    /// depth, used by `CREATEPOOL`).
    pub depth: u32,
}

impl TsNode {
    /// The average child count into `target`, 0.0 without an edge.
    pub fn count_to(&self, target: TsNodeId) -> f64 {
        self.edges
            .binary_search_by_key(&target, |&(t, _)| t)
            .map(|i| self.edges[i].1)
            .unwrap_or(0.0)
    }
}

/// A TreeSketch synopsis: the paper's `T S`.
///
/// The interpretation (§3.2): *all elements in the extent of `u` have
/// `count(u, v)` child elements in the extent of `v`* — trivially exact
/// when the underlying partition is count-stable, an approximation
/// otherwise, with approximation quality measured by [`TreeSketch::squared_error`].
#[derive(Debug, Clone)]
pub struct TreeSketch {
    labels: LabelTable,
    nodes: Vec<TsNode>,
    root: TsNodeId,
    /// The clustering squared error `sq(T S)` at construction time.
    squared_error: f64,
}

impl TreeSketch {
    /// Assembles a TreeSketch from parts (used by the builders).
    pub(crate) fn from_parts(
        labels: LabelTable,
        nodes: Vec<TsNode>,
        root: TsNodeId,
        squared_error: f64,
    ) -> TreeSketch {
        TreeSketch {
            labels,
            nodes,
            root,
            squared_error,
        }
    }

    /// The *exact* TreeSketch of a document: one cluster per count-stable
    /// class, every edge annotated with its (exact) `k`. Squared error 0.
    pub fn from_stable(summary: &StableSummary) -> TreeSketch {
        let nodes = summary
            .nodes()
            .iter()
            .map(|n| TsNode {
                label: n.label,
                count: n.extent,
                edges: n
                    .children
                    .iter()
                    .map(|&(t, k)| (TsNodeId(t.0), k as f64))
                    .collect(),
                depth: n.depth,
            })
            .collect();
        TreeSketch {
            labels: summary.labels().clone(),
            nodes,
            root: TsNodeId(summary.root().0),
            squared_error: 0.0,
        }
    }

    /// The root cluster (contains exactly the document root).
    pub fn root(&self) -> TsNodeId {
        self.root
    }

    /// All nodes, indexed by [`TsNodeId`].
    pub fn nodes(&self) -> &[TsNode] {
        &self.nodes
    }

    /// The node with id `id`.
    pub fn node(&self, id: TsNodeId) -> &TsNode {
        &self.nodes[id.index()]
    }

    /// Number of clusters.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// A TreeSketch always has at least the root cluster.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Total number of edges.
    pub fn num_edges(&self) -> usize {
        self.nodes.iter().map(|n| n.edges.len()).sum()
    }

    /// The label table.
    pub fn labels(&self) -> &LabelTable {
        &self.labels
    }

    /// The clustering squared error `sq(T S)` (§3.2): summed over all
    /// clusters and outgoing directions, the variance of exact child
    /// counts around the stored averages. 0 ⟺ count-stable.
    pub fn squared_error(&self) -> f64 {
        self.squared_error
    }

    /// Synopsis size under `model` (see `axqa_synopsis::SizeModel`).
    pub fn size_bytes(&self, model: &SizeModel) -> usize {
        model.graph_bytes(self.len(), self.num_edges())
    }

    /// Maximum node depth — used to bound embedding enumeration over
    /// possibly-cyclic compressed synopses.
    pub fn height(&self) -> u32 {
        self.nodes.iter().map(|n| n.depth).max().unwrap_or(0)
    }

    /// Clusters carrying `label`.
    pub fn nodes_with_label(&self, label: LabelId) -> impl Iterator<Item = TsNodeId> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(move |(_, n)| n.label == label)
            .map(|(i, _)| TsNodeId(axqa_xml::dense_id(i)))
    }

    /// Sum of `count(u)` over all clusters = number of summarized
    /// elements.
    pub fn total_elements(&self) -> u64 {
        self.nodes.iter().map(|n| n.count).sum()
    }

    /// Renders the synopsis as a readable multi-line string (tests and
    /// examples).
    pub fn dump(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (i, node) in self.nodes.iter().enumerate() {
            let _ = write!(
                out,
                "t{} {}({})",
                i,
                self.labels.name(node.label),
                node.count
            );
            for &(t, avg) in &node.edges {
                let _ = write!(out, " -{avg:.3}-> t{}", t.0);
            }
            let _ = writeln!(out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axqa_synopsis::build_stable;
    use axqa_xml::parse_document;

    #[test]
    fn from_stable_is_exact() {
        let doc = parse_document(
            "<r><a><b><c/></b><b><c/><c/><c/><c/></b></a>\
             <a><b><c/></b><b><c/><c/><c/><c/></b></a></r>",
        )
        .unwrap();
        let summary = build_stable(&doc);
        let ts = TreeSketch::from_stable(&summary);
        assert_eq!(ts.len(), summary.len());
        assert_eq!(ts.num_edges(), summary.num_edges());
        assert_eq!(ts.squared_error(), 0.0);
        assert_eq!(ts.total_elements(), doc.len() as u64);
        assert_eq!(ts.root().0, summary.root().0);
        // Edge counts are the stable ks.
        let root = ts.node(ts.root());
        assert_eq!(root.edges.len(), 1);
        assert_eq!(root.edges[0].1, 2.0);
    }

    #[test]
    fn size_accounting() {
        let doc = parse_document("<r><a/><a/><b/></r>").unwrap();
        let ts = TreeSketch::from_stable(&build_stable(&doc));
        // Nodes: a, b, r = 3. Edges: r→a, r→b = 2.
        let model = SizeModel::TREESKETCH;
        assert_eq!(ts.size_bytes(&model), 3 * 8 + 2 * 8);
    }

    #[test]
    fn count_to_missing_edge_is_zero() {
        let doc = parse_document("<r><a/></r>").unwrap();
        let ts = TreeSketch::from_stable(&build_stable(&doc));
        let root = ts.node(ts.root());
        assert_eq!(root.count_to(ts.root()), 0.0);
    }

    #[test]
    fn dump_is_readable() {
        let doc = parse_document("<r><a/><a/></r>").unwrap();
        let ts = TreeSketch::from_stable(&build_stable(&doc));
        let text = ts.dump();
        assert!(text.contains("r(1)"));
        assert!(text.contains("a(2)"));
        assert!(text.contains("-2.000->"));
    }
}
