//! The experiments: one function per paper table/figure.

use crate::pipeline::{relative_error, PipelineConfig, Prepared};
use crate::report::{fmt_f, fmt_kb, fmt_secs, Table};
use axqa_core::build::ts_build_sweep;
use axqa_core::{
    estimate_selectivity, eval_query, eval_query_with_scratch, ts_build, BuildConfig, EvalConfig,
    EvalScratch, TreeSketch,
};
use axqa_datagen::workload::{negative_workload, positive_workload, WorkloadConfig};
use axqa_datagen::Dataset;
use axqa_distance::{esd_summaries, EsdConfig, WeightedSummary};
use axqa_eval::selectivity as exact_selectivity;
use axqa_obs::Stopwatch;
use axqa_synopsis::size::kb;
use axqa_synopsis::SizeModel;
use axqa_xml::DocStats;
use axqa_xsketch::answer::{sample_answer, SampleConfig};
use axqa_xsketch::build::{build_xsketch, XsBuildConfig};
use axqa_xsketch::estimate::{xs_estimate_selectivity, XsEvalConfig};
use axqa_xsketch::XSketch;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Experiment-level configuration.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Shared pipeline knobs (scale, query count, seed, threads).
    pub pipeline: PipelineConfig,
    /// Synopsis budgets in KB (the paper sweeps 10–50).
    pub budgets_kb: Vec<usize>,
    /// Include the twig-XSketch baseline (slow to build by design).
    pub with_xsketch: bool,
    /// Cap on queries used for the (expensive) ESD measurements.
    pub esd_queries: usize,
    /// CSV output directory, if any.
    pub csv_dir: Option<std::path::PathBuf>,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            pipeline: PipelineConfig::default(),
            budgets_kb: vec![10, 20, 30, 40, 50],
            with_xsketch: true,
            esd_queries: 100,
            csv_dir: None,
        }
    }
}

impl ExperimentConfig {
    fn save(&self, table: &mut Table, name: &str) {
        if let Some(dir) = &self.csv_dir {
            if let Err(error) = table.save_csv(dir, name) {
                table.note(format!("could not write {name}.csv: {error}"));
            }
        }
    }
}

/// The three TX datasets of the comparison experiments.
pub const TX_DATASETS: [Dataset; 3] = [Dataset::XMark, Dataset::Imdb, Dataset::SProt];

// ---------------------------------------------------------------------
// Table 1 — dataset characteristics
// ---------------------------------------------------------------------

/// Table 1: elements, serialized size and stable-summary size per
/// dataset (TX and large variants).
pub fn table1(config: &ExperimentConfig) -> Table {
    let _span = axqa_obs::span("experiment.table1");
    let mut table = Table::new(
        "Table 1: data set characteristics",
        &["Data Set", "Elements", "File Size", "Stable Synopsis"],
    );
    let model = SizeModel::TREESKETCH;
    let mut add = |dataset: Dataset, large: bool, suffix: &str| {
        let base = if large {
            dataset.large_elements()
        } else {
            dataset.tx_elements()
        };
        if base == 0 {
            return;
        }
        let target = usize::try_from(axqa_xml::f64_to_u64(
            ((base as f64) * config.pipeline.scale).max(2_000.0),
        ))
        .unwrap_or(usize::MAX);
        let doc = axqa_datagen::generate(
            dataset,
            &axqa_datagen::GenConfig {
                target_elements: target,
                seed: config.pipeline.seed,
            },
        );
        let stats = DocStats::compute(&doc);
        let stable = axqa_synopsis::build_stable(&doc);
        table.row(vec![
            format!("{}{}", dataset.name(), suffix),
            stats.elements.to_string(),
            format!("{:.1}MB", stats.file_bytes as f64 / (1024.0 * 1024.0)),
            fmt_kb(model.graph_bytes(stable.len(), stable.num_edges())),
        ]);
    };
    for dataset in TX_DATASETS {
        add(dataset, false, "-TX");
    }
    for dataset in Dataset::ALL {
        add(dataset, true, "");
    }
    config.save(&mut table, "table1");
    table
}

// ---------------------------------------------------------------------
// Table 2 — workload characteristics
// ---------------------------------------------------------------------

/// Table 2: average binding tuples per query, for the TX and large
/// workloads.
pub fn table2(config: &ExperimentConfig) -> Table {
    let _span = axqa_obs::span("experiment.table2");
    let mut table = Table::new(
        "Table 2: workload characteristics",
        &["Data Set", "Queries", "Avg Binding Tuples"],
    );
    for (dataset, large, suffix) in [
        (Dataset::Imdb, false, "-TX"),
        (Dataset::XMark, false, "-TX"),
        (Dataset::SProt, false, "-TX"),
        (Dataset::Imdb, true, ""),
        (Dataset::XMark, true, ""),
        (Dataset::SProt, true, ""),
        (Dataset::Dblp, true, ""),
    ] {
        let prepared = Prepared::new(
            dataset,
            large,
            &PipelineConfig {
                need_nesting: false,
                ..config.pipeline.clone()
            },
        );
        table.row(vec![
            format!("{}{}", dataset.name(), suffix),
            prepared.workload.len().to_string(),
            fmt_f(prepared.avg_binding_tuples()),
        ]);
    }
    config.save(&mut table, "table2");
    table
}

// ---------------------------------------------------------------------
// Table 3 — construction times
// ---------------------------------------------------------------------

/// Table 3: construction time of TSBUILD (stable summary → label-split
/// floor, the paper's worst case) vs the workload-driven twig-XSketch
/// build (label-split → 10 KB).
pub fn table3(config: &ExperimentConfig) -> Table {
    let _span = axqa_obs::span("experiment.table3");
    let mut table = Table::new(
        "Table 3: construction times",
        &["Data Set", "TreeSketch", "Twig-XSketch", "Stable Nodes"],
    );
    for dataset in TX_DATASETS {
        let prepared = Prepared::new(dataset, false, &config.pipeline);
        // TreeSketch: compress all the way down (budget below the
        // label-split floor).
        let start = Stopwatch::start();
        let report = ts_build(&prepared.stable, &BuildConfig::with_budget(1));
        let ts_time = start.elapsed();
        let _ = report;
        // Twig-XSketch: refine the label-split graph to 10 KB using a
        // build workload with exact counts.
        let xs_time = if config.with_xsketch {
            let build_workload = xsketch_build_workload(&prepared, config);
            let start = Stopwatch::start();
            let _ = build_xsketch(
                &prepared.stable,
                &build_workload,
                &XsBuildConfig::with_budget(kb(10)),
            );
            Some(start.elapsed())
        } else {
            None
        };
        table.row(vec![
            format!("{}-TX", dataset.name()),
            fmt_secs(ts_time),
            xs_time.map_or("-".into(), fmt_secs),
            prepared.stable.len().to_string(),
        ]);
    }
    config.save(&mut table, "table3");
    table
}

/// Exact-count workload used to drive the twig-XSketch builder (fresh
/// seed, so the evaluation workload is held out).
fn xsketch_build_workload(
    prepared: &Prepared,
    config: &ExperimentConfig,
) -> Vec<(axqa_query::TwigQuery, f64)> {
    let queries = positive_workload(
        &prepared.stable,
        &WorkloadConfig {
            count: 30,
            seed: config.pipeline.seed ^ 0xB111D,
            ..WorkloadConfig::default()
        },
    );
    queries
        .into_iter()
        .map(|q| {
            let s = exact_selectivity(&prepared.doc, &prepared.index, &q);
            (q, s)
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figure 11 — average ESD of approximate answers vs budget
// ---------------------------------------------------------------------

/// Figure 11: per TX dataset, average ESD of TreeSketch answers and
/// twig-XSketch sampled answers across budgets.
///
/// # Panics
///
/// If a prepared workload contains a query with no nesting tree — the
/// workload construction keeps only positive queries, so this is
/// unreachable for [`Prepared`] inputs.
pub fn fig11(config: &ExperimentConfig) -> Vec<Table> {
    let _span = axqa_obs::span("experiment.fig11");
    let esd_config = EsdConfig::default();
    let mut tables = Vec::new();
    for dataset in TX_DATASETS {
        let prepared = Prepared::new(dataset, false, &config.pipeline);
        let n_esd = config.esd_queries.min(prepared.workload.len());
        // Truth summaries are budget-independent: compute once.
        let truths: Vec<WeightedSummary> = parallel_map(config, n_esd, |i| {
            let nt = match prepared.nesting[i].as_ref() {
                Some(nt) => nt,
                None => unreachable!("workload keeps only positive queries"),
            };
            WeightedSummary::from_nesting_tree(&prepared.doc, nt)
        });
        let build_workload = if config.with_xsketch {
            xsketch_build_workload(&prepared, config)
        } else {
            Vec::new()
        };

        let mut table = Table::new(
            format!("Figure 11: avg ESD, {}-TX", dataset.name()),
            &["Budget", "TreeSketch", "TwigXSketch"],
        );
        let budget_bytes: Vec<usize> = config.budgets_kb.iter().map(|&b| kb(b)).collect();
        let sweep = ts_build_sweep(
            &prepared.stable,
            &budget_bytes,
            &BuildConfig::with_budget(0),
        );
        // Flattened (budget × query) fan-out: queries of every budget
        // feed one pool, so a slow budget cannot idle the workers.
        let n_budgets = config.budgets_kb.len();
        let ts_esd: Vec<f64> = parallel_map_eval(config, n_budgets * n_esd, |scratch, idx| {
            let (bi, i) = (idx / n_esd, idx % n_esd);
            esd_of_treesketch_answer(&prepared, &sweep[bi], i, &truths[i], &esd_config, scratch)
        });
        let xs_all: Vec<XSketch> = if config.with_xsketch {
            xsketches_per_budget(config, &prepared.stable, &build_workload)
        } else {
            Vec::new()
        };
        let xs_esd: Vec<f64> = if config.with_xsketch {
            parallel_map(config, n_budgets * n_esd, |idx| {
                let (bi, i) = (idx / n_esd, idx % n_esd);
                esd_of_xsketch_answer(&prepared, &xs_all[bi], i, &truths[i], &esd_config, config)
            })
        } else {
            Vec::new()
        };
        for (bi, &budget_kb) in config.budgets_kb.iter().enumerate() {
            let xs_cell = if config.with_xsketch {
                fmt_f(mean(&xs_esd[bi * n_esd..(bi + 1) * n_esd]))
            } else {
                "-".into()
            };
            table.row(vec![
                format!("{budget_kb}KB"),
                fmt_f(mean(&ts_esd[bi * n_esd..(bi + 1) * n_esd])),
                xs_cell,
            ]);
        }
        config.save(
            &mut table,
            &format!("fig11_{}", dataset.name().to_lowercase()),
        );
        tables.push(table);
    }
    tables
}

fn esd_of_treesketch_answer(
    prepared: &Prepared,
    ts: &TreeSketch,
    i: usize,
    truth: &WeightedSummary,
    esd_config: &EsdConfig,
    scratch: &mut EvalScratch,
) -> f64 {
    match eval_query_with_scratch(
        ts,
        &prepared.workload[i],
        &EvalConfig::default(),
        None,
        scratch,
    ) {
        Some(result) => {
            let approx = WeightedSummary::from_result_sketch(&result);
            esd_summaries(truth, &approx, esd_config)
        }
        None => {
            let nt = match prepared.nesting[i].as_ref() {
                Some(nt) => nt,
                None => unreachable!("workload keeps only positive queries"),
            };
            axqa_distance::esd_empty_answer(&prepared.doc, nt, esd_config)
        }
    }
}

fn esd_of_xsketch_answer(
    prepared: &Prepared,
    xs: &XSketch,
    i: usize,
    truth: &WeightedSummary,
    esd_config: &EsdConfig,
    config: &ExperimentConfig,
) -> f64 {
    let mut rng = StdRng::seed_from_u64(config.pipeline.seed ^ (i as u64).wrapping_mul(0x9E37));
    match sample_answer(
        xs,
        &prepared.workload[i],
        &SampleConfig::default(),
        &mut rng,
    ) {
        Some(tree) => {
            let approx = WeightedSummary::from_answer_tree(&tree);
            esd_summaries(truth, &approx, esd_config)
        }
        None => {
            let nt = match prepared.nesting[i].as_ref() {
                Some(nt) => nt,
                None => unreachable!("workload keeps only positive queries"),
            };
            axqa_distance::esd_empty_answer(&prepared.doc, nt, esd_config)
        }
    }
}

// ---------------------------------------------------------------------
// Figure 12 — selectivity estimation error vs budget (TX datasets)
// ---------------------------------------------------------------------

/// Figure 12: per TX dataset, average relative selectivity error of
/// both techniques across budgets.
pub fn fig12(config: &ExperimentConfig) -> Vec<Table> {
    let _span = axqa_obs::span("experiment.fig12");
    let mut tables = Vec::new();
    let pipeline = PipelineConfig {
        need_nesting: false,
        ..config.pipeline.clone()
    };
    for dataset in TX_DATASETS {
        let prepared = Prepared::new(dataset, false, &pipeline);
        let sanity = prepared.sanity_bound();
        let build_workload = if config.with_xsketch {
            xsketch_build_workload(&prepared, config)
        } else {
            Vec::new()
        };
        let mut table = Table::new(
            format!("Figure 12: avg rel error (%), {}-TX", dataset.name()),
            &["Budget", "TreeSketch", "TwigXSketch"],
        );
        let n = prepared.workload.len();
        let budget_bytes: Vec<usize> = config.budgets_kb.iter().map(|&b| kb(b)).collect();
        let sweep = ts_build_sweep(
            &prepared.stable,
            &budget_bytes,
            &BuildConfig::with_budget(0),
        );
        // Same flattening as fig11: one (budget × query) fan-out per
        // technique instead of a serial loop over budgets.
        let n_budgets = config.budgets_kb.len();
        let ts_err: Vec<f64> = parallel_map_eval(config, n_budgets * n, |scratch, idx| {
            let (bi, i) = (idx / n, idx % n);
            let query = &prepared.workload[i];
            let est = match eval_query_with_scratch(
                &sweep[bi],
                query,
                &EvalConfig::default(),
                None,
                scratch,
            ) {
                Some(result) => estimate_selectivity(&result, query),
                None => 0.0,
            };
            relative_error(prepared.exact[i], est, sanity)
        });
        let xs_all: Vec<XSketch> = if config.with_xsketch {
            xsketches_per_budget(config, &prepared.stable, &build_workload)
        } else {
            Vec::new()
        };
        let xs_err: Vec<f64> = if config.with_xsketch {
            parallel_map(config, n_budgets * n, |idx| {
                let (bi, i) = (idx / n, idx % n);
                let est = xs_estimate_selectivity(
                    &xs_all[bi],
                    &prepared.workload[i],
                    &XsEvalConfig::default(),
                );
                relative_error(prepared.exact[i], est, sanity)
            })
        } else {
            Vec::new()
        };
        for (bi, &budget_kb) in config.budgets_kb.iter().enumerate() {
            let xs_cell = if config.with_xsketch {
                format!("{:.1}", mean(&xs_err[bi * n..(bi + 1) * n]) * 100.0)
            } else {
                "-".into()
            };
            table.row(vec![
                format!("{budget_kb}KB"),
                format!("{:.1}", mean(&ts_err[bi * n..(bi + 1) * n]) * 100.0),
                xs_cell,
            ]);
        }
        config.save(
            &mut table,
            &format!("fig12_{}", dataset.name().to_lowercase()),
        );
        tables.push(table);
    }
    tables
}

// ---------------------------------------------------------------------
// Figure 13 — TreeSketch scaling on the large datasets
// ---------------------------------------------------------------------

/// Figure 13: TreeSketch estimation error on IMDB / XMark / SwissProt /
/// DBLP (large scale) across budgets; also reports construction time
/// (the §6.2 scaling discussion).
pub fn fig13(config: &ExperimentConfig) -> Table {
    let _span = axqa_obs::span("experiment.fig13");
    let mut table = Table::new(
        "Figure 13: TreeSketch selectivity error (%) on large data sets",
        &["Data Set", "Build", "10KB", "20KB", "30KB", "40KB", "50KB"],
    );
    let pipeline = PipelineConfig {
        need_nesting: false,
        ..config.pipeline.clone()
    };
    for dataset in Dataset::ALL {
        let prepared = Prepared::new(dataset, true, &pipeline);
        let sanity = prepared.sanity_bound();
        let n = prepared.workload.len();
        let start = Stopwatch::start();
        // One compression sweep serves all budgets (greedy merging is
        // prefix-stable), and its wall time is the reported build cost.
        let fig13_budgets = [10usize, 20, 30, 40, 50];
        let budget_bytes: Vec<usize> = fig13_budgets.iter().map(|&b| kb(b)).collect();
        let sweep = ts_build_sweep(
            &prepared.stable,
            &budget_bytes,
            &BuildConfig::with_budget(0),
        );
        let build_time = start.elapsed();
        // Flattened (budget × query) fan-out over all five budgets.
        let values: Vec<f64> =
            parallel_map_eval(config, fig13_budgets.len() * n, |scratch, idx| {
                let (bi, i) = (idx / n, idx % n);
                let query = &prepared.workload[i];
                let est = match eval_query_with_scratch(
                    &sweep[bi],
                    query,
                    &EvalConfig::default(),
                    None,
                    scratch,
                ) {
                    Some(result) => estimate_selectivity(&result, query),
                    None => 0.0,
                };
                relative_error(prepared.exact[i], est, sanity)
            });
        let mut errs: Vec<String> = Vec::new();
        for bi in 0..fig13_budgets.len() {
            errs.push(format!(
                "{:.1}",
                mean(&values[bi * n..(bi + 1) * n]) * 100.0
            ));
        }
        let mut row = vec![dataset.name().to_string(), fmt_secs(build_time)];
        row.extend(errs);
        table.row(row);
    }
    config.save(&mut table, "fig13");
    table
}

// ---------------------------------------------------------------------
// §6.1 — negative workloads
// ---------------------------------------------------------------------

/// Negative workloads: TreeSketches should "consistently produce empty
/// answers as approximations".
pub fn negative(config: &ExperimentConfig) -> Table {
    let _span = axqa_obs::span("experiment.negative");
    let mut table = Table::new(
        "Negative workloads: fraction answered empty (TreeSketch, 10KB)",
        &["Data Set", "Queries", "Empty Answers", "Avg |Estimate|"],
    );
    for dataset in TX_DATASETS {
        let prepared = Prepared::new(dataset, false, &config.pipeline);
        let negatives = negative_workload(
            &prepared.stable,
            &WorkloadConfig {
                count: config.pipeline.queries.min(200),
                seed: config.pipeline.seed ^ 0x4E6,
                ..WorkloadConfig::default()
            },
        );
        let ts = ts_build(&prepared.stable, &BuildConfig::with_budget(kb(10))).sketch;
        let mut empty = 0usize;
        let mut estimate_sum = 0.0f64;
        let mut scratch = EvalScratch::new();
        for query in &negatives {
            match eval_query_with_scratch(&ts, query, &EvalConfig::default(), None, &mut scratch) {
                None => empty += 1,
                Some(result) => estimate_sum += estimate_selectivity(&result, query),
            }
        }
        table.row(vec![
            format!("{}-TX", dataset.name()),
            negatives.len().to_string(),
            format!("{empty}/{}", negatives.len()),
            fmt_f(estimate_sum / negatives.len() as f64),
        ]);
    }
    config.save(&mut table, "negative");
    table
}

// ---------------------------------------------------------------------
// Ablation — bottom-up vs top-down construction (§4.2 claim)
// ---------------------------------------------------------------------

/// Squared error of bottom-up TSBUILD vs the top-down splitter at equal
/// budgets.
pub fn ablation_topdown(config: &ExperimentConfig) -> Table {
    let _span = axqa_obs::span("experiment.ablation_topdown");
    let mut table = Table::new(
        "Ablation: bottom-up (TSBUILD) vs top-down squared error",
        &["Data Set", "Budget", "Bottom-up sq", "Top-down sq"],
    );
    for dataset in TX_DATASETS {
        let prepared = Prepared::new(dataset, false, &config.pipeline);
        for &budget_kb in &config.budgets_kb {
            let bottom = ts_build(&prepared.stable, &BuildConfig::with_budget(kb(budget_kb)));
            let top = axqa_core::topdown_build(
                &prepared.stable,
                &BuildConfig::with_budget(kb(budget_kb)),
            );
            table.row(vec![
                format!("{}-TX", dataset.name()),
                format!("{budget_kb}KB"),
                fmt_f(bottom.squared_error),
                fmt_f(top.squared_error()),
            ]);
        }
    }
    config.save(&mut table, "ablation_topdown");
    table
}

// ---------------------------------------------------------------------
// Value-predicate extension (the paper's future work)
// ---------------------------------------------------------------------

/// Estimation error for twigs with value predicates (`[. op c]`) across
/// budgets, with and without the value layer — the extension experiment
/// (no paper counterpart; §1 declares values future work).
pub fn values(config: &ExperimentConfig) -> Table {
    let _span = axqa_obs::span("experiment.values");
    use axqa_core::eval_query_with_values;
    use axqa_core::ValueIndex;
    use axqa_query::{parse_path, PathExpr, QVar, TwigQuery, ValueOp, ValuePred};

    let mut table = Table::new(
        "Value predicates: avg rel error (%) with/without the value layer",
        &["Data Set", "Budget", "With values", "Structural only"],
    );
    for (dataset, paths) in [
        (Dataset::Dblp, ["//year", "//article/year", "//book/year"]),
        (
            Dataset::Imdb,
            ["//movie/year", "//year", "//person/birthdate"],
        ),
    ] {
        let prepared = Prepared::new(
            dataset,
            false,
            &PipelineConfig {
                queries: 0,
                ..config.pipeline.clone()
            },
        );
        // Value-predicate workload: sweep thresholds over each path.
        let ops = [ValueOp::Gt, ValueOp::Le, ValueOp::Ge];
        let mut workload: Vec<TwigQuery> = Vec::new();
        for path_text in paths {
            for (i, &op) in ops.iter().enumerate() {
                for threshold in [1940.0, 1970.0, 1985.0, 1995.0, 2000.0] {
                    let base: PathExpr = match parse_path(path_text) {
                        Ok(p) => p,
                        Err(_) => continue,
                    };
                    let mut q = TwigQuery::new();
                    q.add(
                        QVar::ROOT,
                        base.with_value_pred(ValuePred {
                            op,
                            constant: threshold + i as f64,
                        }),
                    );
                    workload.push(q);
                }
            }
        }
        let exact: Vec<f64> = workload
            .iter()
            .map(|q| exact_selectivity(&prepared.doc, &prepared.index, q))
            .collect();
        let sanity = {
            let mut sorted = exact.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            sorted[sorted.len() / 10].max(1.0)
        };
        for &budget_kb in &config.budgets_kb {
            let report = ts_build(&prepared.stable, &BuildConfig::with_budget(kb(budget_kb)));
            let values = ValueIndex::build(
                &prepared.doc,
                &prepared.stable,
                &report.sketch,
                &report.stable_assignment,
                64,
            );
            let mut with_err = 0.0;
            let mut without_err = 0.0;
            for (query, &truth) in workload.iter().zip(&exact) {
                let with = eval_query_with_values(
                    &report.sketch,
                    query,
                    &EvalConfig::default(),
                    Some(&values),
                )
                .map_or(0.0, |r| estimate_selectivity(&r, query));
                let without = eval_query(&report.sketch, query, &EvalConfig::default())
                    .map_or(0.0, |r| estimate_selectivity(&r, query));
                with_err += relative_error(truth, with, sanity);
                without_err += relative_error(truth, without, sanity);
            }
            let n = workload.len() as f64;
            table.row(vec![
                dataset.name().to_string(),
                format!("{budget_kb}KB"),
                format!("{:.1}", with_err / n * 100.0),
                format!("{:.1}", without_err / n * 100.0),
            ]);
        }
    }
    config.save(&mut table, "values");
    table
}

// ---------------------------------------------------------------------
// Synopsis family — the §3.1 node-partitioning landscape
// ---------------------------------------------------------------------

/// Sizes of the §3.1 synopsis family on each dataset: label-split
/// (A(0)), A(2), the 1-index (incoming-path equivalence) and the
/// count-stable summary (outgoing-subtree equivalence). Illustrates why
/// backward path indexes cannot replace count stability: they measure
/// different things and their sizes are incomparable.
pub fn family(config: &ExperimentConfig) -> Table {
    let _span = axqa_obs::span("experiment.family");
    let mut table = Table::new(
        "Synopsis family: classes (bytes) per partition",
        &["Data Set", "A(0)", "A(2)", "1-index", "Count-stable"],
    );
    let model = SizeModel::TREESKETCH;
    for dataset in Dataset::ALL {
        let prepared = Prepared::new(
            dataset,
            false,
            &PipelineConfig {
                queries: 0,
                ..config.pipeline.clone()
            },
        );
        let doc = &prepared.doc;
        let fmt = |classes: usize, edges: usize| {
            format!(
                "{} ({})",
                classes,
                fmt_kb(model.graph_bytes(classes, edges))
            )
        };
        let a0 = axqa_synopsis::ak_index(doc, 0);
        let a2 = axqa_synopsis::ak_index(doc, 2);
        let one = axqa_synopsis::one_index(doc);
        table.row(vec![
            dataset.name().to_string(),
            fmt(a0.num_classes, a0.num_edges(doc)),
            fmt(a2.num_classes, a2.num_edges(doc)),
            fmt(one.num_classes, one.num_edges(doc)),
            fmt(prepared.stable.len(), prepared.stable.num_edges()),
        ]);
    }
    config.save(&mut table, "family");
    table
}

// ---------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------

fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Index-parallel map with the configured worker count (delegates to
/// the shared scoped-thread pool primitive in [`crate::pipeline`]).
fn parallel_map<T, F>(config: &ExperimentConfig, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    crate::pipeline::parallel_map_indexed(config.pipeline.effective_threads().max(1), n, f)
}

/// [`parallel_map`] with a per-worker [`EvalScratch`], so the EVALQUERY
/// serving loops reuse one workspace per thread instead of allocating
/// per query.
fn parallel_map_eval<T, F>(config: &ExperimentConfig, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(&mut EvalScratch, usize) -> T + Sync,
{
    crate::pipeline::parallel_map_indexed_with(
        config.pipeline.effective_threads().max(1),
        n,
        EvalScratch::new,
        f,
    )
}

/// Builds the twig-XSketch baseline at every budget, one budget per
/// worker (each build is independent, so budgets fan out).
fn xsketches_per_budget(
    config: &ExperimentConfig,
    stable: &axqa_synopsis::StableSummary,
    build_workload: &[(axqa_query::TwigQuery, f64)],
) -> Vec<XSketch> {
    parallel_map(config, config.budgets_kb.len(), |bi| {
        build_xsketch(
            stable,
            build_workload,
            &XsBuildConfig::with_budget(kb(config.budgets_kb[bi])),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ExperimentConfig {
        ExperimentConfig {
            pipeline: PipelineConfig {
                scale: 0.03,
                queries: 12,
                seed: 5,
                threads: 2,
                need_nesting: true,
            },
            budgets_kb: vec![4, 8],
            with_xsketch: true,
            esd_queries: 6,
            csv_dir: None,
        }
    }

    #[test]
    fn fig12_runs_and_improves_with_budget() {
        let tables = fig12(&tiny_config());
        assert_eq!(tables.len(), 3);
        for t in &tables {
            let text = t.render();
            assert!(text.contains("4KB") && text.contains("8KB"), "{text}");
        }
    }

    #[test]
    fn negative_answers_are_empty() {
        let table = negative(&tiny_config());
        let text = table.render();
        // All three datasets answered (3 rows + header + rule).
        assert_eq!(text.lines().count(), 6, "{text}");
    }
}

#[cfg(test)]
mod smoke_tests {
    use super::*;

    fn cfg() -> ExperimentConfig {
        ExperimentConfig {
            pipeline: PipelineConfig {
                scale: 0.02,
                queries: 8,
                seed: 77,
                threads: 1,
                need_nesting: true,
            },
            budgets_kb: vec![2, 6],
            with_xsketch: false,
            esd_queries: 4,
            csv_dir: None,
        }
    }

    #[test]
    fn table1_has_all_rows() {
        let t = table1(&cfg());
        // 3 TX rows + 4 large rows + header + rule + title.
        assert_eq!(t.render().lines().count(), 10);
    }

    #[test]
    fn table3_reports_times() {
        let text = table3(&cfg()).render();
        assert!(text.contains("XMark-TX"));
        assert!(text.contains('s'));
    }

    #[test]
    fn fig11_without_baseline() {
        let tables = fig11(&cfg());
        assert_eq!(tables.len(), 3);
        for t in tables {
            let text = t.render();
            assert!(text.contains("2KB") && text.contains("6KB"));
            assert!(text.contains('-'), "baseline column shows '-'");
        }
    }

    #[test]
    fn fig13_covers_all_datasets() {
        let text = fig13(&cfg()).render();
        for name in ["IMDB", "XMark", "SwissProt", "DBLP"] {
            assert!(text.contains(name), "{text}");
        }
    }

    #[test]
    fn family_and_values_run() {
        let family_text = family(&cfg()).render();
        assert!(family_text.contains("1-index"));
        let values_text = values(&cfg()).render();
        assert!(values_text.contains("DBLP"));
    }

    #[test]
    fn csv_export_writes_files() {
        let dir = std::env::temp_dir().join(format!("axqa-csv-{}", std::process::id()));
        let config = ExperimentConfig {
            csv_dir: Some(dir.clone()),
            ..cfg()
        };
        let _ = table1(&config);
        assert!(dir.join("table1.csv").exists());
        let content = std::fs::read_to_string(dir.join("table1.csv")).unwrap();
        assert!(content.starts_with("Data Set,"));
        let _ = std::fs::remove_dir_all(dir);
    }
}
