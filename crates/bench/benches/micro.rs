// Benchmarks are test-like code: panicking extractors are acceptable here.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::arithmetic_side_effects
)]

//! Micro-benchmarks of the substrates: parsing, indexing, BUILDSTABLE,
//! exact twig evaluation and ESD.

/// Bench binaries install the counting allocator (DESIGN.md §12)
/// so recorded spans carry real allocation profiles.
#[global_allocator]
static ALLOC: axqa_obs::alloc::CountingAlloc = axqa_obs::alloc::CountingAlloc;

use axqa_bench::Fixture;
use axqa_datagen::Dataset;
use axqa_distance::{esd_documents, EsdConfig};
use axqa_eval::{evaluate, DocIndex};
use axqa_synopsis::build_stable;
use axqa_xml::{parse_document, write_document};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_micro(c: &mut Criterion) {
    let fixture = Fixture::new(Dataset::XMark, 30_000, 20);
    let serialized = write_document(&fixture.doc);

    let mut group = c.benchmark_group("micro");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(5));
    group.throughput(Throughput::Bytes(serialized.len() as u64));
    group.bench_function("parse_document", |b| {
        b.iter(|| parse_document(&serialized).unwrap())
    });
    group.throughput(Throughput::Elements(fixture.doc.len() as u64));
    group.bench_function("build_stable", |b| b.iter(|| build_stable(&fixture.doc)));
    group.bench_function("doc_index", |b| b.iter(|| DocIndex::build(&fixture.doc)));
    group.bench_function("exact_twig_workload", |b| {
        b.iter(|| {
            fixture
                .workload
                .iter()
                .filter_map(|q| evaluate(&fixture.doc, &fixture.index, q))
                .count()
        })
    });
    group.finish();

    // ESD between structurally different mid-size documents.
    let mut group = c.benchmark_group("micro_esd");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(5));
    let other = Fixture::new(Dataset::XMark, 8_000, 0);
    group.bench_function("esd_documents_xmark", |b| {
        b.iter(|| esd_documents(&fixture.doc, &other.doc, &EsdConfig::default()))
    });
    group.finish();
}

criterion_group!(benches, bench_micro);
criterion_main!(benches);
