//! The lazy stale-skipping merge queue driving the TSBUILD merge loop
//! (DESIGN.md §13).
//!
//! The eager loop re-ran `evaluate_merge` on *every* stale pop — in the
//! committed baseline that was 729k re-evaluations against 476k scored
//! pool candidates, i.e. most scoring work re-derived ratios for pairs
//! whose inputs had not changed since the last derivation. The queue
//! kills that duplication with a **score memo** keyed by the resolved
//! ordered pair and validated by the endpoints' merge-generation stamps
//! ([`crate::cluster::ClusterState::merge_gen_of`]):
//!
//! * a stale pop whose resolved pair was already scored at the current
//!   stamps is re-pushed with the memoized ratio — no `evaluate_merge`
//!   (`tsbuild.stale_skipped`);
//! * a stale pop whose pair is adjacent to an applied merge (its stamps
//!   moved, or it was never scored under this identity) is re-scored
//!   and memoized (`tsbuild.reevals`; `tsbuild.adjacent_rescored` when
//!   an existing memo entry was invalidated);
//! * a pop whose endpoints merged *together* resolves to a self-pair
//!   and is discarded outright, with no scoring at all.
//!
//! **Exact-preservation argument.** Every stale pop still re-pushes a
//! candidate (memoized or re-scored), so the heap's length trajectory —
//! and with it the `Lh` drain guard and pool-rebuild boundaries — is
//! identical to the eager loop's. The memo invariant (equal stamps ⇒
//! bitwise-equal `evaluate_merge` result) makes the re-pushed candidate
//! bit-identical to the one the eager loop would have pushed, and the
//! candidates' total order (`f64::total_cmp` on the ratio, ties on the
//! pair ids) then forces the identical pop sequence. The merge
//! sequence, `squared_error`, and final sketch bytes are therefore
//! bitwise equal to the eager reference at every budget and thread
//! count — `tests/proptest_lazy_queue.rs` pins exactly that.

use crate::cluster::{ClusterState, ScoreScratch};
use axqa_xml::fxhash::FxHashMap;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Heap entry: a candidate merge with the metrics it was ranked by.
#[derive(Debug, Clone, Copy)]
pub struct MergeCandidate {
    /// Marginal-gain ratio `errd / sized` the heap is ordered by.
    pub ratio: f64,
    /// First cluster id, as evaluated (`evaluate_merge` is not
    /// argument-symmetric at the bit level).
    pub a: u32,
    /// Second cluster id.
    pub b: u32,
    /// Stats version of `a` at push time (freshness check).
    pub version_a: u64,
    /// Stats version of `b` at push time.
    pub version_b: u64,
}

impl MergeCandidate {
    /// Total order all heaps rank by: ratio via `f64::total_cmp` (a NaN
    /// ratio from a degenerate 0/0 merge delta sorts *last*, never
    /// scrambling the heap), ties broken on the pair ids so the order —
    /// and with it the parallel/serial merge of bounded pools — is
    /// deterministic.
    pub fn order_key(&self, other: &Self) -> Ordering {
        self.ratio
            .total_cmp(&other.ratio)
            .then_with(|| self.a.cmp(&other.a))
            .then_with(|| self.b.cmp(&other.b))
    }
}

impl PartialEq for MergeCandidate {
    fn eq(&self, other: &Self) -> bool {
        self.order_key(other) == Ordering::Equal
    }
}
impl Eq for MergeCandidate {}
impl PartialOrd for MergeCandidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for MergeCandidate {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the min ratio on top.
        other.order_key(self)
    }
}

/// What the queue did while serving one pool (flushed to the
/// `tsbuild.*` counters by the build loop).
#[derive(Debug, Clone, Copy, Default)]
pub struct QueueStats {
    /// `evaluate_merge` calls performed for stale pops.
    pub reevals: u64,
    /// Stale pops served from the score memo without re-evaluation.
    pub stale_skipped: u64,
    /// Re-evaluations that *invalidated* an existing memo entry — pops
    /// adjacent to an applied merge (their stamps moved under them).
    pub adjacent_rescored: u64,
}

/// A memoized score: the ratio of a resolved pair, valid while both
/// endpoints' merge-generation stamps are unchanged.
#[derive(Debug, Clone, Copy)]
struct ScoredEntry {
    ctx_a: u64,
    ctx_b: u64,
    ratio: f64,
}

/// Ordered-pair memo key (`evaluate_merge(a, b)` ≠ `evaluate_merge(b,
/// a)` at the bit level, so the key keeps the evaluation order).
#[inline]
fn pair_key(a: u32, b: u32) -> u64 {
    (u64::from(a) << 32) | u64::from(b)
}

/// The lazy priority queue serving one merge-loop round: a min-ratio
/// heap of generation-stamped candidates plus the score memo.
///
/// Construct it with [`MergeQueue::from_pool`] *before* opening the
/// `TSBUILD.merge_loop` span (memo seeding allocates); afterwards the
/// pop/skip/re-push cycle is allocation-free except for `evaluate_merge`
/// scratch growth and memo inserts, both attributed to the
/// `TSBUILD.merge_loop.score` stretch span.
#[derive(Debug)]
pub struct MergeQueue {
    heap: BinaryHeap<MergeCandidate>,
    memo: FxHashMap<u64, ScoredEntry>,
    stats: QueueStats,
}

impl MergeQueue {
    /// Builds the queue from a CREATEPOOL candidate pool. The pool was
    /// scored against the current state (no merges happen between
    /// scoring and queue construction), so every candidate seeds the
    /// memo at the endpoints' current merge-generation stamps.
    pub fn from_pool(pool: Vec<MergeCandidate>, state: &ClusterState<'_>) -> MergeQueue {
        let mut memo: FxHashMap<u64, ScoredEntry> = FxHashMap::default();
        memo.reserve(pool.len());
        for cand in &pool {
            memo.insert(
                pair_key(cand.a, cand.b),
                ScoredEntry {
                    ctx_a: state.merge_gen_of(cand.a),
                    ctx_b: state.merge_gen_of(cand.b),
                    ratio: cand.ratio,
                },
            );
        }
        MergeQueue {
            heap: pool.into(),
            memo,
            stats: QueueStats::default(),
        }
    }

    /// Candidates currently queued.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is drained.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> QueueStats {
        self.stats
    }

    /// Pops until a *fresh* applicable merge surfaces and returns its
    /// resolved pair, or `None` once the heap has drained to `lower`
    /// (the paper's `Lh` pool-regeneration threshold).
    ///
    /// Stale entries are handled without changing the heap-length
    /// trajectory of the eager loop: self-pairs (endpoints merged
    /// together) are dropped exactly as before, every other stale pop
    /// re-pushes a candidate that is bit-identical to the one an eager
    /// re-evaluation would push — from the memo when the endpoints'
    /// merge-generation stamps are unchanged, from `evaluate_merge`
    /// otherwise.
    pub fn next_merge(
        &mut self,
        state: &mut ClusterState<'_>,
        scratch: &mut ScoreScratch,
        lower: usize,
    ) -> Option<(u32, u32)> {
        // Contiguous runs of stale re-scorings share one stretch span
        // (per-candidate spans at ~half a million pops would dwarf the
        // work being measured); the span closes when a fresh merge is
        // handed back for application.
        let mut score_span: Option<axqa_obs::SpanGuard> = None;
        loop {
            if self.heap.len() <= lower {
                return None;
            }
            let cand = self.heap.pop()?;
            // Path-halving keeps the forwarding chases short: ~13 pops
            // per merge on the reference build all re-chase the same
            // chains, and halving amortizes them toward length one.
            let a = state.resolve_compress(cand.a);
            let b = state.resolve_compress(cand.b);
            if a == b {
                continue; // both sides already merged together: discard
            }
            let fresh = a == cand.a
                && b == cand.b
                && state.version_of(a) == cand.version_a
                && state.version_of(b) == cand.version_b;
            if fresh {
                return Some((a, b));
            }
            // Re-rank with current metrics (the paper's replacement +
            // affected-set recomputation): from the memo when this pair
            // was already scored at the current stamps, else lazily.
            let key = pair_key(a, b);
            let ctx_a = state.merge_gen_of(a);
            let ctx_b = state.merge_gen_of(b);
            let (memoized, existed) = match self.memo.get(&key) {
                Some(entry) if entry.ctx_a == ctx_a && entry.ctx_b == ctx_b => {
                    (Some(entry.ratio), true)
                }
                Some(_) => (None, true),
                None => (None, false),
            };
            let ratio = if let Some(ratio) = memoized {
                self.stats.stale_skipped = self.stats.stale_skipped.saturating_add(1);
                ratio
            } else {
                if score_span.is_none() {
                    score_span = Some(axqa_obs::span("TSBUILD.merge_loop.score"));
                }
                if existed {
                    self.stats.adjacent_rescored = self.stats.adjacent_rescored.saturating_add(1);
                }
                self.stats.reevals = self.stats.reevals.saturating_add(1);
                let delta = state.evaluate_merge(a, b, scratch);
                let ratio = delta.ratio();
                self.memo.insert(
                    key,
                    ScoredEntry {
                        ctx_a,
                        ctx_b,
                        ratio,
                    },
                );
                ratio
            };
            self.heap.push(MergeCandidate {
                ratio,
                a,
                b,
                version_a: state.version_of(a),
                version_b: state.version_of(b),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axqa_synopsis::{build_stable, SizeModel};
    use axqa_xml::parse_document;

    /// Three distinct a-classes (1, 2, 3 b-children) plus r and b.
    fn three_a_state(
        stable: &axqa_synopsis::StableSummary,
    ) -> (ClusterState<'_>, Vec<u32>, ScoreScratch) {
        let state = ClusterState::new(stable, SizeModel::TREESKETCH);
        let a_label = stable.labels().get("a").unwrap();
        let a_ids: Vec<u32> = state
            .alive_ids()
            .filter(|&id| state.cluster(id).label == a_label)
            .collect();
        assert_eq!(a_ids.len(), 3);
        (state, a_ids, ScoreScratch::new())
    }

    fn scored(
        state: &ClusterState<'_>,
        scratch: &mut ScoreScratch,
        a: u32,
        b: u32,
    ) -> MergeCandidate {
        let delta = state.evaluate_merge(a, b, scratch);
        MergeCandidate {
            ratio: delta.ratio(),
            a,
            b,
            version_a: state.version_of(a),
            version_b: state.version_of(b),
        }
    }

    /// The ISSUE 10 satellite unit test: a stale entry whose endpoints
    /// were merged away (into each other) is discarded without calling
    /// `evaluate_merge` — the reevals counter is the proxy, since every
    /// evaluation increments it.
    #[test]
    fn dead_pair_is_discarded_without_rescoring() {
        let doc = parse_document("<r><a><b/></a><a><b/><b/></a><a><b/><b/><b/></a></r>").unwrap();
        let stable = build_stable(&doc);
        let (mut state, a_ids, mut scratch) = three_a_state(&stable);
        let (x, y) = (a_ids[0], a_ids[1]);
        let pool = vec![scored(&state, &mut scratch, x, y)];
        let mut queue = MergeQueue::from_pool(pool, &state);

        // The endpoints merge together behind the queue's back.
        state.apply_merge(x, y);

        assert_eq!(queue.next_merge(&mut state, &mut scratch, 0), None);
        assert!(queue.is_empty(), "self-pair must be dropped, not re-pushed");
        let stats = queue.stats();
        assert_eq!(stats.reevals, 0, "no evaluate_merge for a dead pair");
        assert_eq!(stats.stale_skipped, 0);
        assert_eq!(stats.adjacent_rescored, 0);
    }

    /// Two stale entries forwarding to the same live pair: one is
    /// re-scored, the other is served from the memo (a bit-identical
    /// re-push), and both fresh candidates surface for application.
    #[test]
    fn duplicate_forwarded_pairs_hit_the_memo() {
        let doc = parse_document("<r><a><b/></a><a><b/><b/></a><a><b/><b/><b/></a></r>").unwrap();
        let stable = build_stable(&doc);
        let (mut state, a_ids, mut scratch) = three_a_state(&stable);
        let (x, y, z) = (a_ids[0], a_ids[1], a_ids[2]);
        let pool = vec![
            scored(&state, &mut scratch, x, z),
            scored(&state, &mut scratch, y, z),
        ];
        let mut queue = MergeQueue::from_pool(pool, &state);

        let c = state.apply_merge(x, y); // both entries now forward to (c, z)

        // Drain without applying: both stale entries resolve to (c, z),
        // so whichever pops first is re-scored and memoized and the
        // other is a memo hit — in either interleaving with the fresh
        // re-pushes (which are bitwise identical to each other, so both
        // surface as Some((c, z))).
        assert_eq!(queue.next_merge(&mut state, &mut scratch, 0), Some((c, z)));
        assert_eq!(queue.next_merge(&mut state, &mut scratch, 0), Some((c, z)));
        assert!(queue.is_empty());
        let stats = queue.stats();
        assert_eq!(stats.reevals, 1, "one forwarded pop re-scores (c, z)");
        assert_eq!(stats.stale_skipped, 1, "the other pop is a memo hit");
        assert_eq!(stats.adjacent_rescored, 0, "(c, z) had no memo entry");
    }

    /// An entry whose endpoint stamps moved (a merge applied next to it)
    /// invalidates its memo entry and is re-scored, counted as
    /// adjacent_rescored.
    #[test]
    fn adjacent_entries_are_rescored_not_served_stale() {
        // Two p-parents over distinct a-classes make the a-merge bump
        // the parents' generations; a queued parent-pair entry is then
        // adjacent to the applied merge.
        let doc = parse_document(
            "<r><p><a><b/></a></p><p><a><b/><b/></a></p>\
             <q><a><b/><b/><b/></a><a><b/><b/><b/><b/></a></q></r>",
        )
        .unwrap();
        let stable = build_stable(&doc);
        let mut state = ClusterState::new(&stable, SizeModel::TREESKETCH);
        let mut scratch = ScoreScratch::new();
        let p_label = stable.labels().get("p").unwrap();
        let p_ids: Vec<u32> = state
            .alive_ids()
            .filter(|&id| state.cluster(id).label == p_label)
            .collect();
        assert_eq!(p_ids.len(), 2);
        // The a-class under each p (its only child edge).
        let a_ids: Vec<u32> = p_ids.iter().map(|&p| state.cluster(p).stats[0].0).collect();
        assert_ne!(a_ids[0], a_ids[1]);
        let pool = vec![scored(&state, &mut scratch, p_ids[0], p_ids[1])];
        let gen_before = (state.merge_gen_of(p_ids[0]), state.merge_gen_of(p_ids[1]));
        let mut queue = MergeQueue::from_pool(pool, &state);

        // Merge the two a-children of the p-parents: the parents' stats
        // change, so the queued (p0, p1) entry is stale and adjacent.
        state.apply_merge(a_ids[0], a_ids[1]);
        assert_ne!(
            (state.merge_gen_of(p_ids[0]), state.merge_gen_of(p_ids[1])),
            gen_before,
            "parents of a merged pair must change merge generation"
        );

        let next = queue.next_merge(&mut state, &mut scratch, 0);
        assert_eq!(next, Some((p_ids[0], p_ids[1])));
        let stats = queue.stats();
        assert_eq!(stats.reevals, 1);
        assert_eq!(stats.adjacent_rescored, 1, "stale memo entry was replaced");
        assert_eq!(stats.stale_skipped, 0);
    }
}
