//! `bench baseline` — wall-clock baseline for the three hot paths:
//! stable-summary construction, TSBUILD compression at the paper's
//! budgets (serial vs parallel candidate scoring), and EVALQUERY over
//! the workload. Writes a `BENCH_core.json` snapshot (medians over N
//! runs plus machine info) so perf regressions are visible in review
//! diffs without a CI-enforced threshold.

use axqa_core::{
    estimate_selectivity, eval_query_with_scratch, ts_build, BuildConfig, EvalConfig, EvalScratch,
};
use axqa_datagen::workload::{positive_workload, WorkloadConfig};
use axqa_datagen::{generate, Dataset, GenConfig};
use axqa_query::TwigQuery;
use axqa_synopsis::size::kb;
use axqa_synopsis::{build_stable, StableSummary};

/// Knobs for the baseline run.
#[derive(Debug, Clone)]
pub struct BaselineConfig {
    /// Dataset generator to benchmark on.
    pub dataset: Dataset,
    /// Target element count of the generated document.
    pub elements: usize,
    /// Workload size for the EVALQUERY timing.
    pub queries: usize,
    /// Timed repetitions per measurement (median is reported).
    pub runs: usize,
    /// TSBUILD budgets in KB (the paper sweeps 10–50).
    pub budgets_kb: Vec<usize>,
    /// Worker threads for the parallel TSBUILD variant (0 = all cores).
    pub threads: usize,
    /// RNG seed for the document and workload.
    pub seed: u64,
    /// Output path of the JSON snapshot.
    pub out: std::path::PathBuf,
    /// Optional Chrome `trace_event` output (`--trace PATH`), loadable
    /// in `chrome://tracing`/Perfetto.
    pub trace_out: Option<std::path::PathBuf>,
    /// Optional standalone `axqa-obs/2` metrics output
    /// (`--metrics PATH`); the same document is embedded in the
    /// baseline JSON either way.
    pub metrics_out: Option<std::path::PathBuf>,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        BaselineConfig {
            dataset: Dataset::XMark,
            elements: 60_000,
            queries: 200,
            runs: 3,
            budgets_kb: vec![10, 20, 30, 40, 50],
            threads: 0,
            seed: 0x5EED,
            out: std::path::PathBuf::from("BENCH_core.json"),
            trace_out: None,
            metrics_out: None,
        }
    }
}

impl BaselineConfig {
    /// Checks invariants the flag types cannot express: a median needs
    /// at least one timed run, and the sweep needs real work to time.
    /// The CLI rejects the config (usage error, nonzero exit) on `Err`.
    pub fn validate(&self) -> Result<(), String> {
        if self.runs == 0 {
            return Err("--runs must be at least 1 (medians need at least one sample)".into());
        }
        if self.budgets_kb.is_empty() {
            return Err("--budgets must list at least one budget in KB".into());
        }
        if self.elements == 0 {
            return Err("--elements must be at least 1".into());
        }
        if self.queries == 0 {
            return Err("--queries must be at least 1".into());
        }
        Ok(())
    }
}

/// Parses a dataset name as accepted on the command line.
pub fn parse_dataset(name: &str) -> Option<Dataset> {
    match name.to_ascii_lowercase().as_str() {
        "xmark" => Some(Dataset::XMark),
        "imdb" => Some(Dataset::Imdb),
        "sprot" | "swissprot" => Some(Dataset::SProt),
        "dblp" => Some(Dataset::Dblp),
        _ => None,
    }
}

/// One TSBUILD budget's timings.
#[derive(Debug, Clone)]
pub struct TsBuildRow {
    /// Budget in KB.
    pub budget_kb: usize,
    /// Median wall time with `threads = 1` (today's serial path).
    pub serial_ms: f64,
    /// Median wall time with the configured thread count.
    pub parallel_ms: f64,
    /// Thread count the parallel variant actually used.
    pub threads: usize,
    /// `serial_ms / parallel_ms` — NaN (JSON `null`) when the parallel
    /// variant ran with one thread: a 1-thread run compares serial
    /// against itself and a ≈1 "speedup" would be a measurement
    /// artifact, not a result (README "Benchmarks" caveat).
    pub speedup: f64,
}

/// The full baseline snapshot (see [`BaselineReport::to_json`]).
#[derive(Debug, Clone)]
pub struct BaselineReport {
    /// The configuration that produced it.
    pub config: BaselineConfig,
    /// Median stable-summary construction time.
    pub stable_build_ms: f64,
    /// Per-budget TSBUILD timings.
    pub ts_build: Vec<TsBuildRow>,
    /// Number of workload queries evaluated.
    pub eval_queries: usize,
    /// Median total EVALQUERY wall time over the workload.
    pub eval_total_ms: f64,
    /// Derived per-query cost in microseconds.
    pub eval_per_query_us: f64,
    /// p50 of individual query times (µs) across all timed runs.
    pub eval_per_query_us_p50: f64,
    /// p95 of individual query times (µs) across all timed runs — the
    /// tail the mean hides.
    pub eval_per_query_us_p95: f64,
    /// Threads the parallel TSBUILD variant actually ran with
    /// (machine-info provenance: `threads` in the config block is the
    /// *requested* count, 0 meaning "all cores").
    pub threads_used: usize,
    /// Host CPU count at measurement time.
    pub cpus: usize,
    /// Whether the process's global allocator is the counting one —
    /// when `false`, every allocation figure in the report is zero
    /// because nothing was tallied, and the `allocation` block says so.
    pub alloc_tracked: bool,
    /// Drained observability snapshot of the whole run (embedded as the
    /// `metrics` block, schema `axqa-obs/2`).
    pub metrics: axqa_obs::Snapshot,
}

fn median_ms(samples: &mut [f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Nearest-rank percentile (`num/den`, e.g. 95/100) over an already
/// sorted sample vector; integer rank arithmetic keeps the index exact.
fn percentile(sorted: &[f64], num: usize, den: usize) -> f64 {
    if sorted.is_empty() {
        0.0
    } else {
        sorted[(sorted.len() - 1) * num / den]
    }
}

/// Total recorded duration of all spans named `name`, in microseconds.
fn span_total_us(metrics: &axqa_obs::Snapshot, name: &str) -> u64 {
    metrics
        .spans
        .iter()
        .filter(|span| span.name == name)
        .map(|span| span.end_us.saturating_sub(span.start_us))
        .sum()
}

fn time_ms<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let watch = axqa_obs::Stopwatch::start();
    let value = f();
    (watch.elapsed_ms(), value)
}

/// Runs one measurement `runs` times and reports the median.
fn measure(runs: usize, mut f: impl FnMut() -> f64) -> f64 {
    let mut samples: Vec<f64> = (0..runs.max(1)).map(|_| f()).collect();
    median_ms(&mut samples)
}

/// Runs the full baseline: document generation (untimed), stable build,
/// TSBUILD serial vs parallel at every budget, and EVALQUERY over the
/// workload against the first-budget sketch.
pub fn run_baseline(config: &BaselineConfig) -> BaselineReport {
    // The baseline drives its own recorder: all TSBUILD/EVALQUERY spans
    // and counters of the run land in the embedded `metrics` block and
    // the optional `--trace` timeline.
    let recorder = axqa_obs::Recorder::new();
    recorder.install();
    let doc = generate(
        config.dataset,
        &GenConfig {
            target_elements: config.elements,
            seed: config.seed,
        },
    );
    let stable_build_ms = measure(config.runs, || time_ms(|| build_stable(&doc)).0);
    let stable = build_stable(&doc);
    let workload = positive_workload(
        &stable,
        &WorkloadConfig {
            count: config.queries,
            seed: config.seed ^ 0xA11CE,
            ..WorkloadConfig::default()
        },
    );

    let mut ts_rows = Vec::new();
    for &budget_kb in &config.budgets_kb {
        ts_rows.push(bench_ts_build(config, &stable, budget_kb));
    }

    let eval = bench_eval_query(config, &stable, &workload);
    axqa_obs::uninstall();
    let threads_used = ts_rows.iter().map(|row| row.threads).max().unwrap_or(1);
    BaselineReport {
        config: config.clone(),
        stable_build_ms,
        ts_build: ts_rows,
        eval_queries: workload.len(),
        eval_total_ms: eval.total_ms,
        eval_per_query_us: eval.per_query_us,
        eval_per_query_us_p50: eval.p50_us,
        eval_per_query_us_p95: eval.p95_us,
        threads_used,
        cpus: std::thread::available_parallelism().map_or(1, |n| n.get()),
        alloc_tracked: axqa_obs::alloc::counting_allocator_active(),
        metrics: recorder.drain(),
    }
}

fn bench_ts_build(config: &BaselineConfig, stable: &StableSummary, budget_kb: usize) -> TsBuildRow {
    let mut serial_config = BuildConfig::with_budget(kb(budget_kb));
    serial_config.threads = 1;
    let mut parallel_config = BuildConfig::with_budget(kb(budget_kb));
    parallel_config.threads = config.threads;
    let threads = parallel_config.effective_threads();
    let serial_ms = measure(config.runs, || {
        time_ms(|| ts_build(stable, &serial_config)).0
    });
    let parallel_ms = measure(config.runs, || {
        time_ms(|| ts_build(stable, &parallel_config)).0
    });
    TsBuildRow {
        budget_kb,
        serial_ms,
        parallel_ms,
        threads,
        // Single-threaded "parallel" runs have no parallelism to
        // measure; json_f renders the NaN as null.
        speedup: if threads <= 1 {
            f64::NAN
        } else {
            serial_ms / parallel_ms.max(1e-9)
        },
    }
}

/// EVALQUERY serving-loop timings: median total plus the per-query
/// distribution (p50/p95 across all timed runs).
struct EvalBench {
    total_ms: f64,
    per_query_us: f64,
    p50_us: f64,
    p95_us: f64,
}

fn bench_eval_query(
    config: &BaselineConfig,
    stable: &StableSummary,
    workload: &[TwigQuery],
) -> EvalBench {
    let first_budget = config.budgets_kb.first().copied().unwrap_or(10);
    let ts = ts_build(stable, &BuildConfig::with_budget(kb(first_budget))).sketch;
    let eval_config = EvalConfig::default();
    // One scratch serves the whole workload — the steady-state serving
    // configuration the baseline is meant to measure.
    let mut scratch = EvalScratch::new();
    let mut samples: Vec<f64> = Vec::with_capacity(config.runs.max(1) * workload.len());
    let total_ms = measure(config.runs, || {
        time_ms(|| {
            let mut acc = 0.0f64;
            for query in workload {
                let watch = axqa_obs::Stopwatch::start();
                if let Some(result) =
                    eval_query_with_scratch(&ts, query, &eval_config, None, &mut scratch)
                {
                    acc += estimate_selectivity(&result, query);
                }
                samples.push(watch.elapsed_ms() * 1_000.0);
            }
            std::hint::black_box(acc)
        })
        .0
    });
    let per_query_us = if workload.is_empty() {
        0.0
    } else {
        total_ms * 1_000.0 / workload.len() as f64
    };
    samples.sort_by(f64::total_cmp);
    EvalBench {
        total_ms,
        per_query_us,
        p50_us: percentile(&samples, 50, 100),
        p95_us: percentile(&samples, 95, 100),
    }
}

fn json_f(value: f64) -> String {
    if value.is_finite() {
        format!("{value:.3}")
    } else {
        "null".to_string()
    }
}

/// Span names whose allocation profile the baseline reports per phase.
/// `TSBUILD.finalize` is deliberately absent: that span lives on the
/// sweep/snapshot path (`finalize_snapshots`), not the bench path.
const ALLOC_PHASE_SPANS: &[&str] = &[
    "BUILDSTABLE",
    "TSBUILD",
    "CREATEPOOL",
    "CREATEPOOL.score",
    "TSBUILD.merge_loop",
    "TSBUILD.merge_loop.score",
    "TSBUILD.merge_loop.apply",
    "TSBUILD.to_sketch",
    "EVALQUERY",
];

impl BaselineReport {
    /// Percentage of the parallel regions' thread-capacity that was
    /// spent busy: `100 · busy_us / capacity_us` (0 when no parallel
    /// region ran).
    pub fn utilization_pct(&self) -> f64 {
        let busy = self.metrics.counter("parallel.busy_us");
        let capacity = self.metrics.counter("parallel.capacity_us");
        if capacity == 0 {
            0.0
        } else {
            100.0 * busy as f64 / capacity as f64
        }
    }

    /// Serializes the snapshot as the `axqa-bench-baseline/3` JSON
    /// document (hand-rolled — the workspace carries no serde). v3 adds
    /// the `allocation` and `parallel` blocks and drops the dead
    /// `finalize_us` phase (the `TSBUILD.finalize` span is sweep-only
    /// and never fires on the bench path); v2 added the
    /// `ts_build_phases` span breakdown and the per-query p50/p95.
    pub fn to_json(&self) -> String {
        let budgets: Vec<String> = self
            .config
            .budgets_kb
            .iter()
            .map(ToString::to_string)
            .collect();
        let ts_rows: Vec<String> = self
            .ts_build
            .iter()
            .map(|row| {
                format!(
                    concat!(
                        "    {{\"budget_kb\": {}, \"serial_ms\": {}, ",
                        "\"parallel_ms\": {}, \"threads\": {}, \"speedup\": {}}}"
                    ),
                    row.budget_kb,
                    json_f(row.serial_ms),
                    json_f(row.parallel_ms),
                    row.threads,
                    json_f(row.speedup),
                )
            })
            .collect();
        let alloc_phases: Vec<String> = ALLOC_PHASE_SPANS
            .iter()
            .map(|name| {
                format!(
                    "    \"{}\": {{\"allocs\": {}, \"alloc_bytes\": {}}}",
                    name,
                    self.metrics.span_alloc_count(name),
                    self.metrics.span_alloc_bytes(name),
                )
            })
            .collect();
        format!(
            r#"{{
  "schema": "axqa-bench-baseline/3",
  "machine": {{"os": "{os}", "arch": "{arch}", "cpus": {cpus}, "threads_used": {threads_used}}},
  "config": {{
    "dataset": "{dataset}",
    "elements": {elements},
    "queries": {queries},
    "runs": {runs},
    "budgets_kb": [{budgets}],
    "threads": {threads},
    "seed": {seed}
  }},
  "stable_build_ms": {stable},
  "ts_build": [
{ts_rows}
  ],
  "ts_build_phases": {{
    "ts_build_us": {ph_total},
    "create_pool_us": {ph_pool},
    "merge_loop_us": {ph_merge},
    "merge_loop_score_us": {ph_score},
    "merge_loop_apply_us": {ph_apply},
    "to_sketch_us": {ph_sketch}
  }},
  "allocation": {{
    "tracked": {alloc_tracked},
    "phases": {{
{alloc_phases}
    }}
  }},
  "parallel": {{
    "regions": {par_regions},
    "busy_us": {par_busy},
    "wall_us": {par_wall},
    "capacity_us": {par_capacity},
    "utilization_pct": {par_util}
  }},
  "eval_query": {{"queries": {eq}, "total_ms": {et}, "per_query_us": {epq}, "per_query_us_p50": {p50}, "per_query_us_p95": {p95}}},
  "metrics": {metrics}}}
"#,
            os = std::env::consts::OS,
            arch = std::env::consts::ARCH,
            cpus = self.cpus,
            threads_used = self.threads_used,
            dataset = self.config.dataset.name(),
            elements = self.config.elements,
            queries = self.config.queries,
            runs = self.config.runs,
            budgets = budgets.join(", "),
            threads = self.config.threads,
            seed = self.config.seed,
            stable = json_f(self.stable_build_ms),
            ts_rows = ts_rows.join(",\n"),
            ph_total = span_total_us(&self.metrics, "TSBUILD"),
            ph_pool = span_total_us(&self.metrics, "CREATEPOOL"),
            ph_merge = span_total_us(&self.metrics, "TSBUILD.merge_loop"),
            ph_score = span_total_us(&self.metrics, "TSBUILD.merge_loop.score"),
            ph_apply = span_total_us(&self.metrics, "TSBUILD.merge_loop.apply"),
            ph_sketch = span_total_us(&self.metrics, "TSBUILD.to_sketch"),
            alloc_tracked = self.alloc_tracked,
            alloc_phases = alloc_phases.join(",\n"),
            par_regions = self.metrics.counter("parallel.regions"),
            par_busy = self.metrics.counter("parallel.busy_us"),
            par_wall = self.metrics.counter("parallel.wall_us"),
            par_capacity = self.metrics.counter("parallel.capacity_us"),
            par_util = json_f(self.utilization_pct()),
            eq = self.eval_queries,
            et = json_f(self.eval_total_ms),
            epq = json_f(self.eval_per_query_us),
            p50 = json_f(self.eval_per_query_us_p50),
            p95 = json_f(self.eval_per_query_us_p95),
            metrics = axqa_obs::export::metrics_json(&self.metrics).trim_end(),
        )
    }

    /// Writes the JSON snapshot to `config.out`, plus the Chrome trace
    /// and standalone metrics documents when `--trace`/`--metrics`
    /// were given.
    pub fn write(&self) -> std::io::Result<()> {
        std::fs::write(&self.config.out, self.to_json())?;
        if let Some(path) = &self.config.trace_out {
            std::fs::write(path, axqa_obs::export::chrome_trace(&self.metrics))?;
        }
        if let Some(path) = &self.config.metrics_out {
            std::fs::write(path, axqa_obs::export::metrics_json(&self.metrics))?;
        }
        Ok(())
    }

    /// Human-readable summary for stdout.
    pub fn render(&self) -> String {
        let mut out = format!(
            "bench baseline — {} (~{} elements, {} runs)\n  stable build: {} ms\n",
            self.config.dataset.name(),
            self.config.elements,
            self.config.runs,
            json_f(self.stable_build_ms),
        );
        for row in &self.ts_build {
            out.push_str(&format!(
                "  ts_build {}KB: serial {} ms, parallel({}) {} ms, speedup {}\n",
                row.budget_kb,
                json_f(row.serial_ms),
                row.threads,
                json_f(row.parallel_ms),
                json_f(row.speedup),
            ));
        }
        out.push_str(&format!(
            "  eval_query: {} queries, total {} ms ({} us/query, p50 {} us, p95 {} us)\n",
            self.eval_queries,
            json_f(self.eval_total_ms),
            json_f(self.eval_per_query_us),
            json_f(self.eval_per_query_us_p50),
            json_f(self.eval_per_query_us_p95),
        ));
        out.push_str(&format!(
            "  ts_build phases: create_pool {} us, merge_loop {} us (score {} us, apply {} us)\n",
            span_total_us(&self.metrics, "CREATEPOOL"),
            span_total_us(&self.metrics, "TSBUILD.merge_loop"),
            span_total_us(&self.metrics, "TSBUILD.merge_loop.score"),
            span_total_us(&self.metrics, "TSBUILD.merge_loop.apply"),
        ));
        if self.alloc_tracked {
            out.push_str(&format!(
                "  allocation: merge_loop.score {} events, EVALQUERY {} events \
                 ({} bytes)\n",
                self.metrics.span_alloc_count("TSBUILD.merge_loop.score"),
                self.metrics.span_alloc_count("EVALQUERY"),
                self.metrics.span_alloc_bytes("EVALQUERY"),
            ));
        } else {
            out.push_str(
                "  allocation: untracked (binary did not install the counting allocator)\n",
            );
        }
        if self.metrics.counter("parallel.regions") > 0 {
            out.push_str(&format!(
                "  parallel: {} regions, utilization {}% ({} us busy / {} us capacity)\n",
                self.metrics.counter("parallel.regions"),
                json_f(self.utilization_pct()),
                self.metrics.counter("parallel.busy_us"),
                self.metrics.counter("parallel.capacity_us"),
            ));
        }
        // Provenance honesty: a speedup≈1 on a starved host is a
        // measurement artifact, not a perf regression — say so instead
        // of letting the snapshot mislead a review diff.
        if self.cpus == 1 {
            out.push_str(
                "  warning: single-CPU host — serial vs parallel TSBUILD cannot \
                 diverge here; speedup columns are not meaningful\n",
            );
        } else if self.threads_used <= 1 {
            out.push_str(
                "  warning: parallel variant ran with 1 thread — speedup columns \
                 compare serial against itself\n",
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `run_baseline` installs the process-global recorder; serialize
    /// the tests that do so.
    static RECORDER_GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn tiny() -> BaselineConfig {
        BaselineConfig {
            elements: 2_000,
            queries: 10,
            runs: 1,
            budgets_kb: vec![2, 4],
            out: std::env::temp_dir().join(format!("axqa-bench-{}.json", std::process::id())),
            ..BaselineConfig::default()
        }
    }

    #[test]
    fn baseline_emits_wellformed_snapshot() {
        let _gate = RECORDER_GATE
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let config = tiny();
        let report = run_baseline(&config);
        assert_eq!(report.ts_build.len(), 2);
        assert!(report.stable_build_ms >= 0.0);
        assert!(report.eval_queries > 0);
        let json = report.to_json();
        for key in [
            "\"schema\": \"axqa-bench-baseline/3\"",
            "\"machine\"",
            "\"cpus\"",
            "\"threads_used\"",
            "\"stable_build_ms\"",
            "\"ts_build\"",
            "\"ts_build_phases\"",
            "\"create_pool_us\"",
            "\"merge_loop_us\"",
            "\"merge_loop_score_us\"",
            "\"merge_loop_apply_us\"",
            "\"allocation\"",
            "\"tracked\"",
            "\"TSBUILD.merge_loop.score\": {\"allocs\"",
            "\"parallel\"",
            "\"utilization_pct\"",
            "\"eval_query\"",
            "\"per_query_us_p50\"",
            "\"per_query_us_p95\"",
            "\"speedup\"",
            "\"metrics\"",
            "\"schema\": \"axqa-obs/2\"",
            "\"tsbuild.merges\"",
            "\"TSBUILD\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // v3 dropped the dead sweep-only phase from the bench document.
        assert!(!json.contains("\"finalize_us\""));
        // The embedded snapshot saw the run's work.
        assert!(report.metrics.counter("tsbuild.merges") > 0);
        assert!(report.metrics.span_count("EVALQUERY") > 0);
        assert!(report.metrics.span_count("BUILDSTABLE") > 0);
        // The scratch-reuse discipline held: after CREATEPOOL warms the
        // per-worker workspaces, candidate scoring reuses them instead
        // of growing fresh arrays.
        assert!(report.metrics.counter("tsbuild.scratch_reuses") > 0);
        assert!(report.metrics.counter("tsbuild.stat_bsearch") > 0);
        // The lazy merge queue converted stale re-pushes into memo hits.
        assert!(report.metrics.counter("tsbuild.stale_skipped") > 0);
        assert!(report.eval_per_query_us_p95 >= report.eval_per_query_us_p50);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        report.write().unwrap();
        let on_disk = std::fs::read_to_string(&config.out).unwrap();
        assert_eq!(on_disk, json);
        let _ = std::fs::remove_file(&config.out);
    }

    #[test]
    fn single_threaded_baseline_emits_null_speedup() {
        let _gate = RECORDER_GATE
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut config = tiny();
        config.threads = 1;
        let report = run_baseline(&config);
        assert_eq!(report.threads_used, 1);
        for row in &report.ts_build {
            assert_eq!(row.threads, 1);
            assert!(row.speedup.is_nan(), "1-thread speedup must be null");
        }
        let json = report.to_json();
        assert!(json.contains("\"speedup\": null"), "{json}");
    }

    #[test]
    fn baseline_writes_trace_and_metrics_files() {
        let _gate = RECORDER_GATE
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let pid = std::process::id();
        let mut config = tiny();
        config.out = std::env::temp_dir().join(format!("axqa-bench-traced-{pid}.json"));
        config.trace_out = Some(std::env::temp_dir().join(format!("axqa-trace-{pid}.json")));
        config.metrics_out = Some(std::env::temp_dir().join(format!("axqa-metrics-{pid}.json")));
        let report = run_baseline(&config);
        report.write().unwrap();
        let trace = std::fs::read_to_string(config.trace_out.as_ref().unwrap()).unwrap();
        assert!(trace.starts_with("{\"traceEvents\": ["));
        for name in [
            "\"TSBUILD\"",
            "\"CREATEPOOL\"",
            "\"EVALQUERY\"",
            "\"BUILDSTABLE\"",
        ] {
            assert!(trace.contains(name), "trace missing {name}");
        }
        assert_eq!(
            trace.matches("\"ph\": \"B\"").count(),
            trace.matches("\"ph\": \"E\"").count()
        );
        let metrics = std::fs::read_to_string(config.metrics_out.as_ref().unwrap()).unwrap();
        assert!(metrics.contains("\"schema\": \"axqa-obs/2\""));
        for path in [
            &config.out,
            config.trace_out.as_ref().unwrap(),
            config.metrics_out.as_ref().unwrap(),
        ] {
            let _ = std::fs::remove_file(path);
        }
    }

    #[test]
    fn validate_rejects_degenerate_configs() {
        assert!(tiny().validate().is_ok());
        let zero_runs = BaselineConfig { runs: 0, ..tiny() };
        assert!(zero_runs.validate().unwrap_err().contains("--runs"));
        let no_budgets = BaselineConfig {
            budgets_kb: Vec::new(),
            ..tiny()
        };
        assert!(no_budgets.validate().unwrap_err().contains("--budgets"));
        let zero_elements = BaselineConfig {
            elements: 0,
            ..tiny()
        };
        assert!(zero_elements.validate().is_err());
        let zero_queries = BaselineConfig {
            queries: 0,
            ..tiny()
        };
        assert!(zero_queries.validate().is_err());
    }

    #[test]
    fn dataset_names_parse() {
        assert_eq!(parse_dataset("xmark"), Some(Dataset::XMark));
        assert_eq!(parse_dataset("SwissProt"), Some(Dataset::SProt));
        assert_eq!(parse_dataset("nope"), None);
    }

    #[test]
    fn median_is_order_insensitive() {
        let mut a = [3.0, 1.0, 2.0];
        assert_eq!(median_ms(&mut a), 2.0);
        let mut b: [f64; 0] = [];
        assert_eq!(median_ms(&mut b), 0.0);
    }
}
