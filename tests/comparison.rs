// Examples/integration tests are demo code: panicking extractors are fine.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::arithmetic_side_effects
)]

//! The paper's headline comparison (§6.2), as a deterministic test:
//! at equal byte budgets, TreeSketches produce approximate answers with
//! lower ESD and selectivity estimates with lower error than
//! twig-XSketches, and are cheaper to construct.

use axqa::datagen::workload::{positive_workload, WorkloadConfig};
use axqa::distance::{esd_answer, esd_answer_tree, esd_empty_answer, EsdConfig};
use axqa::prelude::*;
use axqa::xsketch::answer::{sample_answer, SampleConfig};
use axqa::xsketch::build::{build_xsketch, XsBuildConfig};
use axqa::xsketch::estimate::{xs_estimate_selectivity, XsEvalConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Setup {
    doc: Document,
    index: DocIndex,
    workload: Vec<TwigQuery>,
    exact: Vec<f64>,
    ts: TreeSketch,
    xs: axqa::xsketch::XSketch,
}

fn prepare(dataset: Dataset, elements: usize, budget: usize) -> Setup {
    let doc = generate(
        dataset,
        &GenConfig {
            target_elements: elements,
            seed: 0xC04,
        },
    );
    let stable = build_stable(&doc);
    let index = DocIndex::build(&doc);
    let workload = positive_workload(
        &stable,
        &WorkloadConfig {
            count: 40,
            seed: 0xC04 ^ 1,
            ..WorkloadConfig::default()
        },
    );
    let exact: Vec<f64> = workload
        .iter()
        .map(|q| selectivity(&doc, &index, q))
        .collect();
    let build_queries: Vec<(TwigQuery, f64)> = positive_workload(
        &stable,
        &WorkloadConfig {
            count: 20,
            seed: 0xC04 ^ 2,
            ..WorkloadConfig::default()
        },
    )
    .into_iter()
    .map(|q| {
        let s = selectivity(&doc, &index, &q);
        (q, s)
    })
    .collect();
    let ts = ts_build(&stable, &BuildConfig::with_budget(budget)).sketch;
    let xs = build_xsketch(&stable, &build_queries, &XsBuildConfig::with_budget(budget));
    Setup {
        doc,
        index,
        workload,
        exact,
        ts,
        xs,
    }
}

#[test]
fn treesketch_beats_xsketch_on_esd_and_selectivity() {
    // SwissProt-style data: high structural diversity, where 5 KB is a
    // genuinely lossy budget at 25 K elements (the stable summary is
    // ~40 KB). At looser budgets both techniques approach exactness and
    // the comparison degenerates.
    let setup = prepare(Dataset::SProt, 25_000, 5 * 1024);
    let esd_config = EsdConfig::default();

    let mut ts_esd = 0.0;
    let mut xs_esd = 0.0;
    let mut ts_err = 0.0;
    let mut xs_err = 0.0;
    let mut sorted = setup.exact.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let sanity = sorted[sorted.len() / 10].max(1.0);

    for (i, query) in setup.workload.iter().enumerate() {
        let truth = evaluate(&setup.doc, &setup.index, query).expect("positive");
        // ESD of answers.
        ts_esd += match eval_query(&setup.ts, query, &EvalConfig::default()) {
            Some(result) => esd_answer(&setup.doc, &truth, &result, &esd_config),
            None => esd_empty_answer(&setup.doc, &truth, &esd_config),
        };
        let mut rng = StdRng::seed_from_u64(i as u64);
        xs_esd += match sample_answer(&setup.xs, query, &SampleConfig::default(), &mut rng) {
            Some(tree) => esd_answer_tree(&setup.doc, &truth, &tree, &esd_config),
            None => esd_empty_answer(&setup.doc, &truth, &esd_config),
        };
        // Selectivity error.
        let ts_est = axqa::core::selectivity::estimate_query_selectivity(
            &setup.ts,
            query,
            &EvalConfig::default(),
        );
        let xs_est = xs_estimate_selectivity(&setup.xs, query, &XsEvalConfig::default());
        ts_err += (setup.exact[i] - ts_est).abs() / ts_est.max(sanity);
        xs_err += (setup.exact[i] - xs_est).abs() / xs_est.max(sanity);
    }

    assert!(
        ts_esd < xs_esd,
        "TreeSketch avg ESD {} must beat twig-XSketch {}",
        ts_esd / setup.workload.len() as f64,
        xs_esd / setup.workload.len() as f64,
    );
    assert!(
        ts_err <= xs_err + 1e-9,
        "TreeSketch avg error {} must not lose to twig-XSketch {}",
        ts_err / setup.workload.len() as f64,
        xs_err / setup.workload.len() as f64,
    );
}

#[test]
fn construction_is_cheaper_for_treesketch() {
    // Table 3's shape: TSBUILD (squared-error objective) is faster than
    // the workload-driven twig-XSketch refinement at the same budget.
    let doc = generate(
        Dataset::SProt,
        &GenConfig {
            target_elements: 20_000,
            seed: 3,
        },
    );
    let stable = build_stable(&doc);
    let index = DocIndex::build(&doc);
    let build_queries: Vec<(TwigQuery, f64)> = positive_workload(
        &stable,
        &WorkloadConfig {
            count: 20,
            seed: 4,
            ..WorkloadConfig::default()
        },
    )
    .into_iter()
    .map(|q| {
        let s = selectivity(&doc, &index, &q);
        (q, s)
    })
    .collect();

    let start = std::time::Instant::now();
    let _ = ts_build(&stable, &BuildConfig::with_budget(8 * 1024));
    let ts_time = start.elapsed();
    let start = std::time::Instant::now();
    let _ = build_xsketch(
        &stable,
        &build_queries,
        &XsBuildConfig::with_budget(8 * 1024),
    );
    let xs_time = start.elapsed();
    assert!(
        ts_time < xs_time,
        "TSBUILD {ts_time:?} should beat workload-driven build {xs_time:?}"
    );
}
