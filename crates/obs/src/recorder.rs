//! The thread-safe [`Recorder`]: per-thread event buffers feeding a
//! shared sink, merged at drain (DESIGN.md §9).
//!
//! Hot-path writes touch only thread-local state; the shared mutex is
//! taken when a top-level span closes, a buffer reaches
//! [`FLUSH_THRESHOLD`] spans, or a thread exits (the buffer's `Drop`).
//!
//! Spans double as allocation windows (DESIGN.md §12): opening a span
//! opens a [`crate::alloc`] window on the same thread, and closing it
//! attributes the window's allocation events to the span —
//! *exclusively*, i.e. each allocation belongs to the innermost span
//! open on its thread when it happened (child totals are subtracted
//! from the parent). Recorder bookkeeping — stack pushes, record
//! pushes, buffer flushes, counter-map inserts — runs with tracking
//! suspended on the thread, so observer cost is attributed to *no*
//! span: a mid-loop buffer flush cannot pollute the hot-path span that
//! happens to be open around it.
//! Worker threads in this workspace are scoped (`crossbeam::scope` /
//! `std::thread::scope`) and therefore exit — running their flush —
//! before the spawning code can call [`Recorder::drain`], so a drain
//! observes every worker's events. Timestamps are microseconds on a
//! process-wide monotonic epoch, so spans from different threads share
//! one timeline.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

/// The disabled-path gate: every instrumentation call starts with one
/// relaxed load of this flag and returns when it is false.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Bumped on every install/uninstall; thread buffers compare it to
/// detect a recorder change and flush to the old sink before rebinding.
static GENERATION: AtomicU64 = AtomicU64::new(0);

/// Process-wide span-id allocator (ids are unique across threads).
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// Process-wide compact thread-id allocator (`ThreadId` has no stable
/// integer form; Chrome traces want small numeric `tid`s).
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(0);

/// The installed recorder, if any.
static GLOBAL: Mutex<Option<Recorder>> = Mutex::new(None);

/// Spans buffered per thread before an eager flush.
const FLUSH_THRESHOLD: usize = 1024;

/// Locks a mutex, treating poisoning as benign (the protected data is
/// monitoring state; a panicked writer leaves at worst a torn metric).
fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The process-wide monotonic epoch: fixed at the first observability
/// call, shared by every thread so timestamps are comparable.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds since the process-wide monotonic epoch.
pub fn monotonic_micros() -> u64 {
    u64::try_from(epoch().elapsed().as_micros()).unwrap_or(u64::MAX)
}

#[inline]
pub(crate) fn gate_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Number of fixed histogram buckets: bucket 0 counts zero values,
/// bucket `i` in `1..=31` counts values in `[2^(i-1), 2^i)`, and the
/// last bucket absorbs everything from `2^31` up.
pub const HISTOGRAM_BUCKETS: usize = 33;

/// A fixed-bucket power-of-two histogram (no allocation per record).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Per-bucket observation counts (see [`HISTOGRAM_BUCKETS`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Saturating sum of observed values.
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] = self.buckets[bucket_index(value)].saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Adds another histogram's observations into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine = mine.saturating_add(*theirs);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

/// Bucket of a value: 0 for zero, else `min(bit length, 32)`.
fn bucket_index(value: u64) -> usize {
    if value == 0 {
        return 0;
    }
    let bits = 64 - value.leading_zeros();
    usize::try_from(bits.min(32)).unwrap_or(HISTOGRAM_BUCKETS - 1)
}

/// One completed span: monotonic start/stop, the opening thread, and
/// the span open on the same thread when this one began.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Static span name (paper algorithm names: `TSBUILD`, …).
    pub name: &'static str,
    /// Process-unique span id.
    pub id: u64,
    /// Id of the enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// Compact id of the recording thread.
    pub tid: u64,
    /// Start, microseconds on the process-wide monotonic epoch.
    pub start_us: u64,
    /// Stop, microseconds on the same epoch.
    pub end_us: u64,
    /// Optional numeric argument (`("budget_bytes", 10240)`).
    pub arg: Option<(&'static str, u64)>,
    /// Heap allocation events attributed to this span: allocations
    /// performed on the span's thread while it was the *innermost*
    /// open span (exclusive — child spans' events are subtracted).
    /// Zero unless the binary installed [`crate::alloc::CountingAlloc`].
    pub alloc_count: u64,
    /// Bytes requested by those allocation events.
    pub alloc_bytes: u64,
    /// How far the thread's live heap rose above its size at span open
    /// (child-inclusive: a child's transient peak is the parent's too).
    pub peak_live_delta: u64,
}

/// Everything a [`Recorder::drain`] hands back, in deterministic order:
/// spans by `(start_us, id)`, counters and histograms by name.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// OS process id (the Chrome trace's `pid`).
    pub process_id: u32,
    /// All completed spans.
    pub spans: Vec<SpanRecord>,
    /// Counter totals, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Histograms, sorted by name.
    pub histograms: Vec<(String, Histogram)>,
}

impl Snapshot {
    /// Total of the named counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|entry| entry.0 == name)
            .map_or(0, |entry| entry.1)
    }

    /// Number of completed spans with the given name.
    pub fn span_count(&self, name: &str) -> usize {
        self.spans.iter().filter(|s| s.name == name).count()
    }

    /// Total allocation events attributed (exclusively) to spans with
    /// the given name — the dynamic alloc-free check reads this.
    pub fn span_alloc_count(&self, name: &str) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.name == name)
            .fold(0u64, |acc, s| acc.saturating_add(s.alloc_count))
    }

    /// Total bytes of the allocation events attributed to spans with
    /// the given name.
    pub fn span_alloc_bytes(&self, name: &str) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.name == name)
            .fold(0u64, |acc, s| acc.saturating_add(s.alloc_bytes))
    }
}

/// Merged event sink shared by all thread buffers bound to one recorder.
#[derive(Debug, Default)]
struct Shared {
    spans: Vec<SpanRecord>,
    counters: HashMap<&'static str, u64>,
    histograms: HashMap<&'static str, Histogram>,
}

/// A cloneable handle to one event sink. [`Recorder::install`] makes it
/// the process-global target of [`crate::span`]/[`crate::counter`]/
/// [`crate::observe`]; [`Recorder::drain`] empties it.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    inner: Arc<Mutex<Shared>>,
}

impl Recorder {
    /// A fresh, empty recorder (not yet installed).
    pub fn new() -> Recorder {
        Recorder::default()
    }

    /// Installs this recorder as the process-global sink and opens the
    /// instrumentation gate. Replaces any previously installed
    /// recorder; events a thread buffered for the old recorder still
    /// flush to the old one.
    pub fn install(&self) {
        let mut global = lock_unpoisoned(&GLOBAL);
        *global = Some(self.clone());
        GENERATION.fetch_add(1, Ordering::Relaxed);
        ENABLED.store(true, Ordering::Relaxed);
        // Allocation tracking rides the same gate: counting starts when
        // a recorder can attribute the deltas (no-op unless the binary
        // installed crate::alloc::CountingAlloc).
        crate::alloc::set_tracking(true);
    }

    /// Flushes the calling thread's buffer and moves all merged events
    /// out as a deterministic [`Snapshot`]. Threads that are still
    /// running keep their unflushed buffers; in this workspace all
    /// workers are scoped and have exited (flushing on drop) by the
    /// time the spawning code drains.
    pub fn drain(&self) -> Snapshot {
        flush_current_thread();
        let mut shared = lock_unpoisoned(&self.inner);
        let mut spans = std::mem::take(&mut shared.spans);
        spans.sort_by_key(|s| (s.start_us, s.id));
        let mut counters: Vec<(String, u64)> = shared
            .counters
            .drain()
            .map(|(name, value)| (name.to_string(), value))
            .collect();
        counters.sort();
        let mut histograms: Vec<(String, Histogram)> = shared
            .histograms
            .drain()
            .map(|(name, hist)| (name.to_string(), hist))
            .collect();
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        Snapshot {
            process_id: std::process::id(),
            spans,
            counters,
            histograms,
        }
    }

    fn append(&self, buf: &mut ThreadBuf) {
        let mut shared = lock_unpoisoned(&self.inner);
        shared.spans.append(&mut buf.spans);
        for (name, delta) in buf.counters.drain() {
            let slot = shared.counters.entry(name).or_insert(0);
            *slot = slot.saturating_add(delta);
        }
        for (name, hist) in buf.histograms.drain() {
            shared.histograms.entry(name).or_default().merge(&hist);
        }
    }
}

/// Closes the instrumentation gate and detaches the global recorder,
/// returning it (drain it for the collected events). Flushes the
/// calling thread first so its events are not lost.
pub fn uninstall() -> Option<Recorder> {
    flush_current_thread();
    let mut global = lock_unpoisoned(&GLOBAL);
    ENABLED.store(false, Ordering::Relaxed);
    crate::alloc::set_tracking(false);
    GENERATION.fetch_add(1, Ordering::Relaxed);
    global.take()
}

/// A span opened on this thread and not yet closed.
struct Pending {
    name: &'static str,
    id: u64,
    parent: Option<u64>,
    start_us: u64,
    arg: Option<(&'static str, u64)>,
    /// Allocation-counter snapshot at open (see [`crate::alloc`]).
    window: crate::alloc::AllocWindow,
    /// Total allocation events of already-closed child spans, to be
    /// subtracted for this span's exclusive attribution.
    child_allocs: u64,
    /// Bytes of those child events.
    child_bytes: u64,
}

/// Per-thread event buffer: all hot-path writes land here; `flush`
/// moves them into the bound recorder's shared sink.
struct ThreadBuf {
    tid: u64,
    generation: u64,
    recorder: Option<Recorder>,
    stack: Vec<Pending>,
    spans: Vec<SpanRecord>,
    counters: HashMap<&'static str, u64>,
    histograms: HashMap<&'static str, Histogram>,
}

thread_local! {
    static TLS: RefCell<ThreadBuf> = RefCell::new(ThreadBuf::new());
}

impl ThreadBuf {
    fn new() -> ThreadBuf {
        ThreadBuf {
            tid: NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed),
            generation: 0,
            recorder: None,
            stack: Vec::new(),
            spans: Vec::new(),
            counters: HashMap::new(),
            histograms: HashMap::new(),
        }
    }

    /// Rebinds to the currently installed recorder when the install
    /// generation moved, flushing buffered events to the recorder they
    /// were collected for first.
    fn rebind(&mut self) {
        let generation = GENERATION.load(Ordering::Relaxed);
        if self.generation != generation {
            self.flush();
            self.recorder = lock_unpoisoned(&GLOBAL).clone();
            self.generation = generation;
        }
    }

    /// Moves buffered events into the bound recorder (drops them when
    /// none is bound — they were recorded into the void).
    fn flush(&mut self) {
        if self.spans.is_empty() && self.counters.is_empty() && self.histograms.is_empty() {
            return;
        }
        match self.recorder.clone() {
            Some(recorder) => recorder.append(self),
            None => {
                self.spans.clear();
                self.counters.clear();
                self.histograms.clear();
            }
        }
    }
}

impl Drop for ThreadBuf {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Flushes the calling thread's buffer into its bound recorder.
pub(crate) fn flush_current_thread() {
    // try_with: a no-op during thread teardown (Drop flushes there).
    let _ = TLS.try_with(|tls| tls.borrow_mut().flush());
}

/// Guard of one open span; closing (dropping) records the stop time.
#[must_use = "bind the guard (`let _span = …`) — dropping it closes the span"]
#[derive(Debug)]
pub struct SpanGuard {
    active: bool,
}

impl SpanGuard {
    pub(crate) fn disabled() -> SpanGuard {
        SpanGuard { active: false }
    }
}

pub(crate) fn begin_span(name: &'static str, arg: Option<(&'static str, u64)>) -> SpanGuard {
    // Recorder bookkeeping (stack push, possible rebind flush) is
    // observer cost, not workload: keep it out of every alloc window.
    let _untracked = crate::alloc::suspend_tracking();
    let active = TLS
        .try_with(|tls| {
            let mut buf = tls.borrow_mut();
            buf.rebind();
            if buf.recorder.is_none() {
                return false;
            }
            let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
            let parent = buf.stack.last().map(|pending| pending.id);
            buf.stack.push(Pending {
                name,
                id,
                parent,
                start_us: monotonic_micros(),
                arg,
                window: crate::alloc::AllocWindow::default(),
                child_allocs: 0,
                child_bytes: 0,
            });
            // Open the allocation window last so the span measures only
            // the caller's work from here on (the push above was
            // suspended anyway).
            let window = crate::alloc::begin_window();
            if let Some(pending) = buf.stack.last_mut() {
                pending.window = window;
            }
            true
        })
        .unwrap_or(false);
    SpanGuard { active }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let end_us = monotonic_micros();
        // Suspended: the record push and a possible buffer flush below
        // must not be charged to the still-open parent spans.
        let _untracked = crate::alloc::suspend_tracking();
        let _ = TLS.try_with(|tls| {
            let mut buf = tls.borrow_mut();
            let Some(pending) = buf.stack.pop() else {
                return;
            };
            let delta = crate::alloc::end_window(pending.window);
            if let Some(parent) = buf.stack.last_mut() {
                parent.child_allocs = parent.child_allocs.saturating_add(delta.allocs);
                parent.child_bytes = parent.child_bytes.saturating_add(delta.bytes);
            }
            let tid = buf.tid;
            buf.spans.push(SpanRecord {
                name: pending.name,
                id: pending.id,
                parent: pending.parent,
                tid,
                start_us: pending.start_us,
                end_us,
                arg: pending.arg,
                alloc_count: delta.allocs.saturating_sub(pending.child_allocs),
                alloc_bytes: delta.bytes.saturating_sub(pending.child_bytes),
                peak_live_delta: delta.peak_live_delta,
            });
            // Merge into the shared sink at quiescence (no span open on
            // this thread) or when the local buffer grows large.
            if buf.stack.is_empty() || buf.spans.len() >= FLUSH_THRESHOLD {
                buf.flush();
            }
        });
    }
}

pub(crate) fn add_counter(name: &'static str, delta: u64) {
    let _untracked = crate::alloc::suspend_tracking();
    let _ = TLS.try_with(|tls| {
        let mut buf = tls.borrow_mut();
        buf.rebind();
        if buf.recorder.is_none() {
            return;
        }
        let slot = buf.counters.entry(name).or_insert(0);
        *slot = slot.saturating_add(delta);
    });
}

pub(crate) fn record_value(name: &'static str, value: u64) {
    let _untracked = crate::alloc::suspend_tracking();
    let _ = TLS.try_with(|tls| {
        let mut buf = tls.borrow_mut();
        buf.rebind();
        if buf.recorder.is_none() {
            return;
        }
        buf.histograms.entry(name).or_default().record(value);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_bounded() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::from(u32::MAX)), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        let mut last = 0;
        for shift in 0..64 {
            let index = bucket_index(1u64 << shift);
            assert!(index >= last);
            assert!(index < HISTOGRAM_BUCKETS);
            last = index;
        }
    }

    #[test]
    fn histogram_merge_matches_sequential_records() {
        let mut merged = Histogram::default();
        let mut left = Histogram::default();
        let mut right = Histogram::default();
        for value in [0u64, 1, 7, 1 << 20, u64::MAX] {
            left.record(value);
        }
        for value in [3u64, 3, 1 << 40] {
            right.record(value);
        }
        merged.merge(&left);
        merged.merge(&right);
        let mut sequential = Histogram::default();
        for value in [0u64, 1, 7, 1 << 20, u64::MAX, 3, 3, 1 << 40] {
            sequential.record(value);
        }
        assert_eq!(merged, sequential);
    }

    #[test]
    fn snapshot_lookup_helpers() {
        let snapshot = Snapshot {
            process_id: 1,
            spans: Vec::new(),
            counters: vec![("a".to_string(), 3)],
            histograms: Vec::new(),
        };
        assert_eq!(snapshot.counter("a"), 3);
        assert_eq!(snapshot.counter("missing"), 0);
        assert_eq!(snapshot.span_count("x"), 0);
    }
}
