//! The counting global allocator (DESIGN.md §12): every heap
//! allocation in a binary that installs [`CountingAlloc`] is tallied
//! into thread-local cells, and [`crate::SpanGuard`] attributes the
//! deltas to the innermost open span — the *dynamic* counterpart of the
//! static `hot-path-alloc` reachability analysis (DESIGN.md §11).
//!
//! Install it once per binary (harness, xtask, benches, the runtime
//! allocation tests):
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: axqa_obs::alloc::CountingAlloc = axqa_obs::alloc::CountingAlloc;
//! ```
//!
//! Cost model: with tracking off (no recorder installed) every
//! allocator hook is one relaxed atomic load on top of the system
//! allocator. With tracking on, the hooks touch four thread-local
//! `Cell`s — no atomics, no locks, no reentrancy (the cells live
//! outside the recorder's `RefCell` buffers precisely so the allocator
//! can run *inside* recorder bookkeeping without re-borrowing).
//!
//! The `forbidden-api` lint rule bans `std::alloc`/`GlobalAlloc` in
//! every other crate, so this module stays the single point where
//! allocation accounting can be installed or bypassed.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};

/// Gate for the counting hooks: flipped by [`crate::Recorder::install`]
/// and [`crate::uninstall`] alongside the span/counter gate. Off means
/// each hook is a single relaxed load.
static TRACKING: AtomicBool = AtomicBool::new(false);

pub(crate) fn set_tracking(on: bool) {
    TRACKING.store(on, Ordering::Relaxed);
}

/// Per-thread allocation tallies. Plain `Cell`s (const-initialized, no
/// lazy TLS setup) so the allocator hooks never allocate and never
/// conflict with the recorder's `RefCell` buffers.
struct Cells {
    /// Cumulative allocation events (alloc/alloc_zeroed/realloc).
    allocs: Cell<u64>,
    /// Cumulative bytes requested by those events.
    bytes: Cell<u64>,
    /// Live heap bytes (allocated − freed, clamped at 0 for memory
    /// allocated before tracking switched on).
    live: Cell<u64>,
    /// High-water mark of `live` since the innermost open span window
    /// was opened (spans reset and restore it, see `begin_window`).
    peak: Cell<u64>,
}

thread_local! {
    static CELLS: Cells = const {
        Cells {
            allocs: Cell::new(0),
            bytes: Cell::new(0),
            live: Cell::new(0),
            peak: Cell::new(0),
        }
    };
    /// Suspension depth: while nonzero, the hooks skip the tallies on
    /// this thread. The recorder suspends around its own bookkeeping
    /// (span pushes, buffer flushes, counter-map inserts) so observer
    /// cost is never attributed to any span — without it, a mid-loop
    /// buffer flush would charge its allocations to whichever hot-path
    /// span happens to be open.
    static SUSPEND: Cell<u32> = const { Cell::new(0) };
}

fn note_alloc(size: usize) {
    let size = u64::try_from(size).unwrap_or(u64::MAX);
    // try_with: a no-op during thread teardown, when TLS is gone.
    let _ = SUSPEND.try_with(|s| {
        if s.get() != 0 {
            return;
        }
        let _ = CELLS.try_with(|c| {
            c.allocs.set(c.allocs.get().saturating_add(1));
            c.bytes.set(c.bytes.get().saturating_add(size));
            let live = c.live.get().saturating_add(size);
            c.live.set(live);
            if live > c.peak.get() {
                c.peak.set(live);
            }
        });
    });
}

fn note_dealloc(size: usize) {
    let size = u64::try_from(size).unwrap_or(u64::MAX);
    let _ = SUSPEND.try_with(|s| {
        if s.get() != 0 {
            return;
        }
        let _ = CELLS.try_with(|c| {
            c.live.set(c.live.get().saturating_sub(size));
        });
    });
}

/// RAII guard suspending allocation tracking on the current thread;
/// nests (a counter, not a flag). Construction and drop never allocate.
#[derive(Debug)]
pub(crate) struct SuspendGuard;

pub(crate) fn suspend_tracking() -> SuspendGuard {
    let _ = SUSPEND.try_with(|s| s.set(s.get().saturating_add(1)));
    SuspendGuard
}

impl Drop for SuspendGuard {
    fn drop(&mut self) {
        let _ = SUSPEND.try_with(|s| s.set(s.get().saturating_sub(1)));
    }
}

/// The workspace's global allocator: the system allocator plus
/// thread-local tallies when tracking is on. Zero-sized, `const`
/// constructible, installed with `#[global_allocator]`.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingAlloc;

// SAFETY: every method delegates the actual memory management to
// `System` unchanged; the wrapper only updates thread-local counters
// (which never allocate, never unwind, and never touch the pointers).
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() && TRACKING.load(Ordering::Relaxed) {
            note_alloc(layout.size());
        }
        ptr
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc_zeroed(layout);
        if !ptr.is_null() && TRACKING.load(Ordering::Relaxed) {
            note_alloc(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        if TRACKING.load(Ordering::Relaxed) {
            note_dealloc(layout.size());
        }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = System.realloc(ptr, layout, new_size);
        if !new_ptr.is_null() && TRACKING.load(Ordering::Relaxed) {
            // One event for the new block; the old block's bytes leave
            // the live tally. Growth in place still counts as a fresh
            // allocation event — reallocation is the cost being traced.
            note_dealloc(layout.size());
            note_alloc(new_size);
        }
        new_ptr
    }
}

/// Point-in-time copy of the calling thread's allocation tallies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocSnapshot {
    /// Allocation events since tracking started on this thread.
    pub allocs: u64,
    /// Bytes requested by those events.
    pub bytes: u64,
    /// Live heap bytes attributed to this thread.
    pub live_bytes: u64,
    /// High-water mark of `live_bytes` in the current span window.
    pub peak_live_bytes: u64,
}

/// Reads the calling thread's tallies (all zero when the counting
/// allocator is not installed or tracking never ran on this thread).
pub fn thread_snapshot() -> AllocSnapshot {
    CELLS
        .try_with(|c| AllocSnapshot {
            allocs: c.allocs.get(),
            bytes: c.bytes.get(),
            live_bytes: c.live.get(),
            peak_live_bytes: c.peak.get(),
        })
        .unwrap_or_default()
}

/// A span's allocation window: the counter values at open, plus the
/// enclosing window's peak so nesting restores correctly.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct AllocWindow {
    allocs_at_open: u64,
    bytes_at_open: u64,
    live_at_open: u64,
    outer_peak: u64,
}

/// Opens an allocation window: snapshots the cumulative counters and
/// resets the running peak to the current live size, so the window
/// observes its *own* high-water mark. Windows must close LIFO (the
/// span stack guarantees it).
pub(crate) fn begin_window() -> AllocWindow {
    CELLS
        .try_with(|c| {
            let live = c.live.get();
            let outer_peak = c.peak.get();
            c.peak.set(live);
            AllocWindow {
                allocs_at_open: c.allocs.get(),
                bytes_at_open: c.bytes.get(),
                live_at_open: live,
                outer_peak,
            }
        })
        .unwrap_or_default()
}

/// What a closed window observed: total (child-inclusive) event count
/// and bytes, and how far live memory rose above its open point.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct WindowDelta {
    pub allocs: u64,
    pub bytes: u64,
    pub peak_live_delta: u64,
}

/// Closes an allocation window, restoring the enclosing window's peak
/// (the outer window's high-water mark includes everything this one
/// saw).
pub(crate) fn end_window(window: AllocWindow) -> WindowDelta {
    CELLS
        .try_with(|c| {
            let window_peak = c.peak.get();
            c.peak.set(window.outer_peak.max(window_peak));
            WindowDelta {
                allocs: c.allocs.get().saturating_sub(window.allocs_at_open),
                bytes: c.bytes.get().saturating_sub(window.bytes_at_open),
                peak_live_delta: window_peak.saturating_sub(window.live_at_open),
            }
        })
        .unwrap_or_default()
}

/// Probes whether the counting allocator is actually installed as the
/// process's global allocator: briefly forces tracking on, performs a
/// heap allocation, and checks whether the thread tally moved. Binaries
/// that forget the `#[global_allocator]` line report `false`, which the
/// bench report surfaces as `"tracked": false` instead of silently
/// all-zero allocation profiles.
pub fn counting_allocator_active() -> bool {
    let was_on = TRACKING.swap(true, Ordering::Relaxed);
    let before = thread_snapshot().allocs;
    let probe: Vec<u8> = Vec::with_capacity(64);
    std::hint::black_box(&probe);
    let after = thread_snapshot().allocs;
    drop(probe);
    TRACKING.store(was_on, Ordering::Relaxed);
    after > before
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TEST_GATE as GATE;

    // The obs test binary installs the counting allocator so the
    // windowed attribution below observes real heap traffic.
    #[global_allocator]
    static TEST_ALLOC: CountingAlloc = CountingAlloc;

    #[test]
    fn probe_detects_the_installed_allocator() {
        let _gate = GATE
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        assert!(counting_allocator_active());
    }

    #[test]
    fn windows_observe_allocations_and_nest() {
        let _gate = GATE
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        set_tracking(true);
        let outer = begin_window();
        let first: Vec<u8> = std::hint::black_box(Vec::with_capacity(1024));
        let inner = begin_window();
        let second: Vec<u8> = std::hint::black_box(Vec::with_capacity(4096));
        drop(second);
        let inner_delta = end_window(inner);
        drop(first);
        let outer_delta = end_window(outer);
        set_tracking(false);
        assert!(inner_delta.allocs >= 1);
        assert!(inner_delta.bytes >= 4096);
        assert!(inner_delta.peak_live_delta >= 4096);
        // The outer window saw the inner's events too (inclusive).
        assert!(outer_delta.allocs > inner_delta.allocs);
        assert!(outer_delta.bytes >= inner_delta.bytes + 1024);
        // Outer peak: both vecs were briefly live together.
        assert!(outer_delta.peak_live_delta >= 1024 + 4096);
    }

    #[test]
    fn dealloc_shrinks_live_but_not_totals() {
        let _gate = GATE
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        set_tracking(true);
        let window = begin_window();
        let buf: Vec<u8> = std::hint::black_box(Vec::with_capacity(512));
        let mid = thread_snapshot();
        drop(buf);
        let end = thread_snapshot();
        let delta = end_window(window);
        set_tracking(false);
        assert!(mid.live_bytes >= end.live_bytes + 512);
        assert_eq!(mid.allocs, end.allocs, "dealloc is not an event");
        assert!(delta.bytes >= 512);
    }

    #[test]
    fn tracking_off_freezes_the_tallies() {
        let _gate = GATE
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        set_tracking(false);
        let before = thread_snapshot();
        let buf: Vec<u8> = std::hint::black_box(Vec::with_capacity(2048));
        drop(buf);
        let after = thread_snapshot();
        assert_eq!(before.allocs, after.allocs);
        assert_eq!(before.bytes, after.bytes);
    }
}
