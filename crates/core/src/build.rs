//! `TSBUILD` and `CREATEPOOL` (§4.2, Figures 5 and 6).
//!
//! TSBUILD starts from the count-stable summary and greedily applies the
//! merge with the best marginal-gain ratio `errd / sized` until the
//! synopsis fits the space budget. The candidate pool is bounded (`Uh`)
//! and regenerated whenever it drains below `Lh`; pool generation walks
//! node depths bottom-up, mirroring the paper's observation that good
//! merges happen near the leaves first.
//!
//! Deviations from the pseudo-code, all behavior-preserving:
//!
//! * Instead of eagerly re-evaluating `affected(h, m)` after each merge,
//!   heap entries carry the stats *versions* of their two clusters and
//!   are lazily re-evaluated (and re-inserted) when popped stale; merged
//!   clusters forward to their successor, implementing the paper's
//!   "replace `m'` by a merge with `u_m`" rule. Every applied merge is
//!   therefore ranked by its *current* ratio, as in the paper.
//! * Stale re-evaluation itself is served by the
//!   [`crate::queue::MergeQueue`] score memo (DESIGN.md §13): only pops
//!   *adjacent* to an applied merge — endpoints whose merge-generation
//!   stamps moved — re-run `evaluate_merge`; every other stale pop
//!   re-pushes its memoized, bit-identical score
//!   (`tsbuild.stale_skipped`). [`ts_build_eager`] preserves the
//!   pre-memo loop as the reference oracle that
//!   `tests/proptest_lazy_queue.rs` pins the production path against.
//! * Within one `(label, depth)` group, `CREATEPOOL` evaluates all pairs
//!   only while the group is small; for large groups it sorts members by
//!   a cheap structural key and proposes sliding-window neighbor pairs.
//!   This keeps pool generation near-linear on documents whose stable
//!   summaries have thousands of same-label classes (the paper's own
//!   `Uh` bound plays the same cost-control role).
//! * Candidate scoring is sharded across [`BuildConfig::threads`] scoped
//!   worker threads. Each worker scores its share of the level's label
//!   groups into a local bounded worst-first heap; the local heaps are
//!   merged under the candidates' *total* order (ratio via
//!   `f64::total_cmp`, ties broken on the pair ids), so the surviving
//!   top-`Uh` set — and therefore the whole build — is bit-identical to
//!   the serial run. See DESIGN.md §4.6 for the determinism argument.

use crate::cluster::{ClusterState, PartitionSnapshot, ScoreScratch};
use crate::queue::{MergeCandidate, MergeQueue, QueueStats};
use crate::sketch::TreeSketch;
use axqa_synopsis::{SizeModel, StableSummary};
use axqa_xml::fxhash::FxHashMap;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Tuning knobs of TSBUILD.
#[derive(Debug, Clone)]
pub struct BuildConfig {
    /// Target synopsis size in bytes (the paper's `S`).
    pub budget_bytes: usize,
    /// Max candidate-pool size (the paper's `Uh`; experiments use 10000).
    pub heap_upper: usize,
    /// Pool-regeneration threshold (the paper's `Lh`; experiments use 100).
    pub heap_lower: usize,
    /// Byte-accounting model.
    pub size_model: SizeModel,
    /// Groups up to this size get all-pairs candidates; larger groups use
    /// the sorted sliding window.
    pub group_all_pairs_cap: usize,
    /// Window width for large groups.
    pub window: usize,
    /// Worker threads for `CREATEPOOL` candidate scoring and sweep
    /// snapshot finalization: `0` = available parallelism, `1` = the
    /// serial code path. Any value produces bit-identical output.
    pub threads: usize,
    /// Record every applied merge into [`BuildReport::merge_log`].
    /// Off by default: the log is test/diagnostic machinery (the
    /// lazy-vs-eager equivalence oracle compares full sequences) and
    /// recording it would allocate inside the merge loop.
    pub record_merges: bool,
}

impl BuildConfig {
    /// The paper's experimental settings (§6) with the given byte budget.
    pub fn with_budget(budget_bytes: usize) -> BuildConfig {
        BuildConfig {
            budget_bytes,
            heap_upper: 10_000,
            heap_lower: 100,
            size_model: SizeModel::TREESKETCH,
            group_all_pairs_cap: 48,
            window: 4,
            threads: 0,
            record_merges: false,
        }
    }

    /// Resolved worker count for the §4.2 `CREATEPOOL` scoring shards:
    /// `threads` if positive, otherwise the machine's available
    /// parallelism.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        }
    }
}

/// What TSBUILD did and produced.
#[derive(Debug, Clone)]
pub struct BuildReport {
    /// The constructed synopsis.
    pub sketch: TreeSketch,
    /// Number of merges applied.
    pub merges: usize,
    /// Number of CREATEPOOL invocations.
    pub pool_rebuilds: usize,
    /// Whether the budget was reached (false ⇒ the label-split floor was
    /// hit first).
    pub reached_budget: bool,
    /// Final size in bytes under the configured model.
    pub final_bytes: usize,
    /// Final squared error `sq(T S)`.
    pub squared_error: f64,
    /// Stable-class → sketch-node assignment (value layer, diagnostics).
    pub stable_assignment: Vec<u32>,
    /// Applied merges in order (resolved pair ids), recorded only when
    /// [`BuildConfig::record_merges`] is set; empty otherwise.
    pub merge_log: Vec<(u32, u32)>,
}

/// `TSBUILD` (Fig. 5): compress the stable summary of a document to
/// `config.budget_bytes`.
///
/// ```
/// use axqa_xml::parse_document;
/// use axqa_synopsis::build_stable;
/// use axqa_core::{ts_build, BuildConfig};
///
/// let doc = parse_document(
///     "<r><b><c/></b><b><c/><c/><c/></b><b><c/></b></r>",
/// ).unwrap();
/// let stable = build_stable(&doc);
/// // Compress below the exact size: similar b-classes merge.
/// let report = ts_build(&stable, &BuildConfig::with_budget(48));
/// assert!(report.merges >= 1);
/// assert!(report.sketch.len() < stable.len());
/// assert_eq!(report.sketch.total_elements(), doc.len() as u64);
/// ```
///
/// # Panics
///
/// Panics if `config.budget_bytes` is 0 — no synopsis fits in zero
/// bytes. Use [`try_ts_build`] to get a typed
/// [`crate::error::AxqaError::InvalidBudget`] instead.
pub fn ts_build(stable: &StableSummary, config: &BuildConfig) -> BuildReport {
    let mut state = ClusterState::new(stable, config.size_model);
    match ts_build_state(&mut state, config) {
        Ok(report) => report,
        // The error Display already carries the "ts_build" context.
        Err(error) => panic!("{error}"),
    }
}

/// Fallible `TSBUILD` (Fig. 5): like [`ts_build`], but rejects an empty
/// stable summary with [`crate::error::AxqaError::EmptySynopsis`], and a
/// zero byte budget with [`crate::error::AxqaError::InvalidBudget`],
/// instead of building a degenerate synopsis with no root (or
/// panicking).
pub fn try_ts_build(
    stable: &StableSummary,
    config: &BuildConfig,
) -> Result<BuildReport, crate::error::AxqaError> {
    if stable.is_empty() {
        return Err(crate::error::AxqaError::EmptySynopsis {
            context: "ts_build",
        });
    }
    let mut state = ClusterState::new(stable, config.size_model);
    ts_build_state(&mut state, config)
}

/// TSBUILD (Fig. 5) over a caller-provided state (lets tests inspect
/// the state). Fails with [`crate::error::AxqaError::InvalidBudget`]
/// when `config.budget_bytes` is 0.
pub fn ts_build_state(
    state: &mut ClusterState<'_>,
    config: &BuildConfig,
) -> Result<BuildReport, crate::error::AxqaError> {
    ts_build_to_budget(state, config, config.budget_bytes)
}

/// TSBUILD (Fig. 5) with the byte budget threaded explicitly, so budget
/// sweeps reuse one `config` instead of cloning it per step. A zero
/// budget is rejected up front: the merge loop would otherwise run to
/// the label-split floor and silently report `reached_budget: false`,
/// masking what is always a caller bug (budgets are byte *capacities*).
fn ts_build_to_budget(
    state: &mut ClusterState<'_>,
    config: &BuildConfig,
    budget_bytes: usize,
) -> Result<BuildReport, crate::error::AxqaError> {
    if budget_bytes == 0 {
        return Err(crate::error::AxqaError::InvalidBudget {
            context: "ts_build",
        });
    }
    let _span = axqa_obs::span_with("TSBUILD", "budget_bytes", budget_bytes as u64);
    let mut merges = 0usize;
    let mut pool_rebuilds = 0usize;
    let mut queue_stats = QueueStats::default();
    let mut merge_log: Vec<(u32, u32)> = Vec::new();
    // One scratch serves every lazy re-evaluation of this build; the
    // CREATEPOOL workers carry their own.
    let mut scratch = ScoreScratch::new();

    while state.size_bytes() > budget_bytes {
        let pool = create_pool(state, config, &mut scratch);
        pool_rebuilds += 1;
        if pool.is_empty() {
            break; // label-split floor: nothing left to merge
        }
        // Small pools are drained completely; big ones down to Lh.
        let lower = if pool.len() > config.heap_lower {
            config.heap_lower
        } else {
            0
        };
        // Queue construction (heapify + score-memo seeding) allocates,
        // so it happens before the merge_loop span opens: the loop
        // itself stays allocation-free (tests/alloc_free.rs), with the
        // remaining evaluate_merge scratch growth and memo inserts
        // attributed to the merge_loop.score stretch span.
        let mut queue = MergeQueue::from_pool(pool, state);
        let _merge_span = axqa_obs::span_with("TSBUILD.merge_loop", "pool", queue.len() as u64);
        let merges_before = merges;
        while state.size_bytes() > budget_bytes {
            let Some((a, b)) = queue.next_merge(state, &mut scratch, lower) else {
                break; // drained to Lh without a fresh applicable merge
            };
            let _apply_span = axqa_obs::span("TSBUILD.merge_loop.apply");
            state.apply_merge(a, b);
            merges += 1;
            if config.record_merges {
                merge_log.push((a, b));
            }
        }
        let round = queue.stats();
        queue_stats.reevals = queue_stats.reevals.saturating_add(round.reevals);
        queue_stats.stale_skipped = queue_stats
            .stale_skipped
            .saturating_add(round.stale_skipped);
        queue_stats.adjacent_rescored = queue_stats
            .adjacent_rescored
            .saturating_add(round.adjacent_rescored);
        if merges == merges_before {
            break; // pool yielded no applicable merge: avoid spinning
        }
    }

    // The eager loop's tsbuild.reevals was reevals + stale_skipped: the
    // memo converts the skipped share into heap re-pushes with no
    // evaluate_merge behind them.
    axqa_obs::counter("tsbuild.reevals", queue_stats.reevals);
    axqa_obs::counter("tsbuild.stale_skipped", queue_stats.stale_skipped);
    axqa_obs::counter("tsbuild.adjacent_rescored", queue_stats.adjacent_rescored);
    axqa_obs::counter("tsbuild.merges", merges as u64);
    axqa_obs::counter("tsbuild.pool_rebuilds", pool_rebuilds as u64);
    let final_bytes = state.size_bytes();
    let (sketch, stable_assignment) = state.to_sketch_with_assignment();
    Ok(BuildReport {
        sketch,
        merges,
        pool_rebuilds,
        reached_budget: final_bytes <= budget_bytes,
        final_bytes,
        squared_error: state.squared_error(),
        stable_assignment,
        merge_log,
    })
}

/// The pre-memo eager TSBUILD merge loop (paper §4.2, Fig. 6),
/// preserved verbatim as the reference oracle: every stale pop re-runs
/// `evaluate_merge` immediately, with no score memo in between. `tests/proptest_lazy_queue.rs` pins the
/// production [`try_ts_build`] path bitwise against this function —
/// same merge sequence ([`BuildReport::merge_log`] under
/// [`BuildConfig::record_merges`]), same `squared_error` bits, same
/// final bytes — under random documents × budgets.
///
/// Not on the production path and deliberately unobserved: it emits no
/// `TSBUILD` spans or `tsbuild.*` counters of its own (the `CREATEPOOL`
/// spans and counters of the shared pool generation still fire), so
/// running the oracle next to a measured build does not skew the
/// build's metrics.
///
/// # Errors
///
/// Rejects an empty stable summary
/// ([`crate::error::AxqaError::EmptySynopsis`]) and a zero byte budget
/// ([`crate::error::AxqaError::InvalidBudget`]), exactly like
/// [`try_ts_build`].
pub fn ts_build_eager(
    stable: &StableSummary,
    config: &BuildConfig,
) -> Result<BuildReport, crate::error::AxqaError> {
    if stable.is_empty() {
        return Err(crate::error::AxqaError::EmptySynopsis {
            context: "ts_build",
        });
    }
    let budget_bytes = config.budget_bytes;
    if budget_bytes == 0 {
        return Err(crate::error::AxqaError::InvalidBudget {
            context: "ts_build",
        });
    }
    let mut state = ClusterState::new(stable, config.size_model);
    let mut merges = 0usize;
    let mut pool_rebuilds = 0usize;
    let mut merge_log: Vec<(u32, u32)> = Vec::new();
    let mut scratch = ScoreScratch::new();

    while state.size_bytes() > budget_bytes {
        let pool = create_pool(&state, config, &mut scratch);
        pool_rebuilds += 1;
        if pool.is_empty() {
            break;
        }
        let lower = if pool.len() > config.heap_lower {
            config.heap_lower
        } else {
            0
        };
        let mut heap: BinaryHeap<MergeCandidate> = pool.into();
        let merges_before = merges;
        while state.size_bytes() > budget_bytes && heap.len() > lower {
            let Some(cand) = heap.pop() else { break };
            let a = state.resolve(cand.a);
            let b = state.resolve(cand.b);
            if a == b {
                continue;
            }
            let fresh = a == cand.a
                && b == cand.b
                && state.version_of(a) == cand.version_a
                && state.version_of(b) == cand.version_b;
            if !fresh {
                let delta = state.evaluate_merge(a, b, &mut scratch);
                heap.push(MergeCandidate {
                    ratio: delta.ratio(),
                    a,
                    b,
                    version_a: state.version_of(a),
                    version_b: state.version_of(b),
                });
                continue;
            }
            state.apply_merge(a, b);
            merges += 1;
            if config.record_merges {
                merge_log.push((a, b));
            }
        }
        if merges == merges_before {
            break;
        }
    }

    let final_bytes = state.size_bytes();
    let (sketch, stable_assignment) = state.to_sketch_with_assignment();
    Ok(BuildReport {
        sketch,
        merges,
        pool_rebuilds,
        reached_budget: final_bytes <= budget_bytes,
        final_bytes,
        squared_error: state.squared_error(),
        stable_assignment,
        merge_log,
    })
}

/// Budget sweep: compresses once, snapshotting the synopsis at every
/// requested budget. Equivalent to independent `ts_build` (Fig. 5)
/// calls per
/// budget (greedy merging is prefix-stable: the merges taken for a
/// small budget extend those for a large one), but pays the
/// construction cost once. Returns sketches aligned with the input
/// order.
///
/// # Panics
///
/// Panics if any budget in `budgets` is 0 (see [`ts_build`]).
pub fn ts_build_sweep(
    stable: &StableSummary,
    budgets: &[usize],
    config: &BuildConfig,
) -> Vec<TreeSketch> {
    let mut order: Vec<usize> = (0..budgets.len()).collect();
    order.sort_unstable_by(|&a, &b| budgets[b].cmp(&budgets[a])); // descending
    let mut state = ClusterState::new(stable, config.size_model);
    let mut snaps: Vec<Option<PartitionSnapshot>> = (0..budgets.len()).map(|_| None).collect();
    for index in order {
        if let Err(error) = ts_build_to_budget(&mut state, config, budgets[index]) {
            panic!("ts_build_sweep: {error}");
        }
        // Snapshots are cheap copies of the live partition; the costly
        // finalization (renumbering, centroids, edge sorting) is fanned
        // out below once the sequential merging is done.
        snaps[index] = Some(state.snapshot());
    }
    let snaps: Vec<PartitionSnapshot> = snaps.into_iter().flatten().collect();
    finalize_snapshots(&snaps, config)
}

/// Turns sweep snapshots into sketches, in input order, sharding the
/// per-budget finalization work across the Fig. 5 worker pool.
fn finalize_snapshots(snaps: &[PartitionSnapshot], config: &BuildConfig) -> Vec<TreeSketch> {
    let _span = axqa_obs::span_with("TSBUILD.finalize_sweep", "snapshots", snaps.len() as u64);
    let threads = config.effective_threads().max(1).min(snaps.len());
    if threads <= 1 || snaps.len() <= 1 {
        return snaps.iter().map(PartitionSnapshot::finalize).collect();
    }
    let scope_result = crossbeam::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                scope.spawn(move |_| {
                    snaps
                        .iter()
                        .enumerate()
                        .skip(t)
                        .step_by(threads)
                        .map(|(i, snap)| (i, snap.finalize()))
                        .collect::<Vec<(usize, TreeSketch)>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| match handle.join() {
                Ok(chunk) => chunk,
                Err(_) => panic!("sweep finalization worker panicked"),
            })
            .collect::<Vec<_>>()
    });
    let chunks = match scope_result {
        Ok(chunks) => chunks,
        Err(_) => panic!("sweep finalization scope failed"),
    };
    let mut out: Vec<Option<TreeSketch>> = (0..snaps.len()).map(|_| None).collect();
    for chunk in chunks {
        for (index, sketch) in chunk {
            out[index] = Some(sketch);
        }
    }
    out.into_iter().flatten().collect()
}

/// Minimum clusters at a level before scoring shards across workers;
/// below this, thread-spawn overhead dominates the evaluate_merge work.
const PARALLEL_LEVEL_MIN: usize = 32;

/// `CREATEPOOL` (Fig. 6): bottom-up (by node depth) generation of at most
/// `Uh` candidate merges, keeping the best ratios seen.
///
/// Each level's label groups are sharded round-robin across
/// [`BuildConfig::threads`] scoped workers; every worker scores its
/// groups into a local bounded worst-first heap and the local heaps are
/// merged under the candidates' total order. Because keeping the `Uh`
/// smallest elements of a set under a total order is independent of
/// visit order, the merged pool is identical to the serial one, and the
/// level-by-level early exit (the paper's loop guard) is preserved by
/// the per-level barrier.
fn create_pool(
    state: &ClusterState<'_>,
    config: &BuildConfig,
    scratch: &mut ScoreScratch,
) -> Vec<MergeCandidate> {
    let _span = axqa_obs::span_with(
        "CREATEPOOL",
        "threads",
        config.effective_threads().max(1) as u64,
    );
    // Group live clusters by label; count clusters per depth so levels
    // with no work are skipped and small levels stay serial.
    let mut by_label: FxHashMap<u32, Vec<u32>> = FxHashMap::default();
    let mut max_depth = 0u32;
    let mut level_counts: Vec<usize> = Vec::new();
    for id in state.alive_ids() {
        let cluster = state.cluster(id);
        by_label.entry(cluster.label.0).or_default().push(id);
        max_depth = max_depth.max(cluster.depth);
        let depth = usize::try_from(cluster.depth).unwrap_or(usize::MAX);
        if level_counts.len() <= depth {
            level_counts.resize(depth + 1, 0);
        }
        level_counts[depth] += 1;
    }
    let groups: Vec<Vec<u32>> = by_label.into_values().collect();
    let threads = config.effective_threads().max(1);

    // Worst-ratio-on-top heap keeping the best `Uh` candidates.
    let mut best: BinaryHeap<WorstFirst> = BinaryHeap::new();
    for level in 0..=max_depth {
        let at_level = usize::try_from(level)
            .ok()
            .and_then(|l| level_counts.get(l).copied())
            .unwrap_or(0);
        if at_level == 0 {
            continue; // no cluster has max(depth) == level here
        }
        if threads > 1 && groups.len() > 1 && at_level >= PARALLEL_LEVEL_MIN {
            for local in score_level_parallel(state, config, level, &groups, threads) {
                for worst in local {
                    bounded_push(&mut best, config.heap_upper, worst.0);
                }
            }
        } else {
            let _score_span = axqa_obs::span_with("CREATEPOOL.score", "level", u64::from(level));
            for group in &groups {
                score_group(state, config, level, group, &mut best, scratch);
            }
        }
        if best.len() >= config.heap_upper {
            break; // pool full and level exhausted (paper's loop guard)
        }
    }
    best.into_iter().map(|w| w.0).collect()
}

/// Public `CREATEPOOL` (Fig. 6) entry point for harnesses that drive the
/// [`MergeQueue`] directly (the `merge_queue` criterion bench): generates
/// the bounded candidate pool exactly as one TSBUILD round would.
pub fn create_candidate_pool(
    state: &ClusterState<'_>,
    config: &BuildConfig,
    scratch: &mut ScoreScratch,
) -> Vec<MergeCandidate> {
    create_pool(state, config, scratch)
}

/// One level of Fig. 6 scoring, sharded: worker `t` of `threads` scores
/// groups `t, t+threads, …` into a local bounded heap.
fn score_level_parallel(
    state: &ClusterState<'_>,
    config: &BuildConfig,
    level: u32,
    groups: &[Vec<u32>],
    threads: usize,
) -> Vec<BinaryHeap<WorstFirst>> {
    // Utilization telemetry (DESIGN.md §12): wall time of the region vs
    // summed per-worker busy time. `parallel.capacity_us` is
    // wall × workers, so utilization = busy / capacity across regions.
    let region = axqa_obs::Stopwatch::start();
    let scope_result = crossbeam::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                scope.spawn(move |_| {
                    // Per-worker span: the worker's own thread id makes
                    // the PR-2 parallel path visible lane-by-lane in the
                    // Chrome trace (ISSUE 4 acceptance).
                    let _span = axqa_obs::span_with("CREATEPOOL.score", "worker", t as u64);
                    let busy = axqa_obs::Stopwatch::start();
                    // Each worker owns its scratch: no sharing, no locks,
                    // and the scoring arithmetic stays order-identical.
                    let mut scratch = ScoreScratch::new();
                    let mut local: BinaryHeap<WorstFirst> = BinaryHeap::new();
                    let mut items = 0u64;
                    for group in groups.iter().skip(t).step_by(threads) {
                        score_group(state, config, level, group, &mut local, &mut scratch);
                        items = items.saturating_add(1);
                    }
                    axqa_obs::counter("parallel.busy_us", busy.elapsed_us());
                    axqa_obs::observe("parallel.worker_items", items);
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| match handle.join() {
                Ok(local) => local,
                Err(_) => panic!("CREATEPOOL scoring worker panicked"),
            })
            .collect::<Vec<_>>()
    });
    let locals = match scope_result {
        Ok(locals) => locals,
        Err(_) => panic!("CREATEPOOL scoring scope failed"),
    };
    let wall_us = region.elapsed_us();
    axqa_obs::counter("parallel.regions", 1);
    axqa_obs::counter("parallel.wall_us", wall_us);
    axqa_obs::counter(
        "parallel.capacity_us",
        wall_us.saturating_mul(threads as u64),
    );
    locals
}

/// Scores one label group at one level (Fig. 6 inner loop) into `best`:
/// all pairs while the group is small, sliding-window neighbor pairs
/// over the structural-key order otherwise.
fn score_group(
    state: &ClusterState<'_>,
    config: &BuildConfig,
    level: u32,
    group: &[u32],
    best: &mut BinaryHeap<WorstFirst>,
    scratch: &mut ScoreScratch,
) {
    // Pairs with max(depth) == level: one side at `level`, the other at
    // ≤ `level`.
    let at: Vec<u32> = group
        .iter()
        .copied()
        .filter(|&id| state.cluster(id).depth == level)
        .collect();
    if at.is_empty() {
        return;
    }
    let below: Vec<u32> = group
        .iter()
        .copied()
        .filter(|&id| state.cluster(id).depth < level)
        .collect();
    if at.len() + below.len() <= config.group_all_pairs_cap {
        for (i, &a) in at.iter().enumerate() {
            for &b in &at[i + 1..] {
                score_pair(state, config, best, a, b, scratch);
            }
            for &b in &below {
                score_pair(state, config, best, a, b, scratch);
            }
        }
    } else {
        // Large group: sort by a cheap structural key, pair within a
        // sliding window. The cached sort computes each 4-word key once
        // per cluster instead of O(n log n) times.
        let mut sorted: Vec<u32> = at.iter().chain(below.iter()).copied().collect();
        sorted.sort_by_cached_key(|&id| structural_key(state, id));
        for (i, &a) in sorted.iter().enumerate() {
            for &b in sorted[i + 1..].iter().take(config.window) {
                // Skip pairs entirely below the level (they were
                // proposed at their own level).
                if state.cluster(a).depth.max(state.cluster(b).depth) == level {
                    score_pair(state, config, best, a, b, scratch);
                }
            }
        }
    }
}

/// Evaluates one candidate pair and offers it to a bounded heap.
fn score_pair(
    state: &ClusterState<'_>,
    config: &BuildConfig,
    best: &mut BinaryHeap<WorstFirst>,
    a: u32,
    b: u32,
    scratch: &mut ScoreScratch,
) {
    axqa_obs::counter("tsbuild.candidates_scored", 1);
    let delta = state.evaluate_merge(a, b, scratch);
    let cand = MergeCandidate {
        ratio: delta.ratio(),
        a,
        b,
        version_a: state.version_of(a),
        version_b: state.version_of(b),
    };
    bounded_push(best, config.heap_upper, cand);
}

/// Keeps the `cap` smallest candidates under the total order. Eviction
/// compares the full `(ratio, a, b)` key, so the retained set is a pure
/// function of the offered *set* — the property the parallel shard
/// merge relies on.
fn bounded_push(best: &mut BinaryHeap<WorstFirst>, cap: usize, cand: MergeCandidate) {
    if cap == 0 {
        return;
    }
    if best.len() < cap {
        best.push(WorstFirst(cand));
    } else if let Some(top) = best.peek() {
        if cand.order_key(&top.0) == Ordering::Less {
            best.pop();
            best.push(WorstFirst(cand));
        }
    }
}

/// Cheap sort key grouping structurally similar clusters: first targets
/// and rounded average counts.
fn structural_key(state: &ClusterState<'_>, id: u32) -> [u64; 4] {
    let cluster = state.cluster(id);
    let n = cluster.elem_count as f64;
    let mut key = [0u64; 4];
    key[0] = cluster.stats.len() as u64;
    for (slot, &(target, stat)) in cluster.stats.iter().take(3).enumerate() {
        let avg = axqa_xml::f64_to_u64((stat.sum / n * 16.0).round()).min(u64::from(u32::MAX));
        key[slot + 1] = ((target as u64) << 32) | avg;
    }
    key
}

/// Max-heap wrapper: worst (largest) candidate under the total order on
/// top, for the bounded pool.
#[derive(Debug, Clone, Copy, PartialEq)]
struct WorstFirst(MergeCandidate);
impl Eq for WorstFirst {}
impl PartialOrd for WorstFirst {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for WorstFirst {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.order_key(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axqa_synopsis::build_stable;
    use axqa_xml::parse_document;

    fn t1_doc() -> axqa_xml::Document {
        parse_document(
            "<r><a><b><c/></b><b><c/><c/><c/><c/></b></a>\
             <a><b><c/></b><b><c/><c/><c/><c/></b></a></r>",
        )
        .unwrap()
    }

    #[test]
    fn build_with_roomy_budget_keeps_stable_summary() {
        let doc = t1_doc();
        let stable = build_stable(&doc);
        let exact_bytes = SizeModel::TREESKETCH.graph_bytes(stable.len(), stable.num_edges());
        let report = ts_build(&stable, &BuildConfig::with_budget(exact_bytes));
        assert_eq!(report.merges, 0);
        assert_eq!(report.sketch.len(), stable.len());
        assert_eq!(report.squared_error, 0.0);
        assert!(report.reached_budget);
    }

    #[test]
    fn build_compresses_to_budget() {
        let doc = t1_doc();
        let stable = build_stable(&doc);
        // Force merging the two b-classes: budget below the stable size.
        let exact_bytes = SizeModel::TREESKETCH.graph_bytes(stable.len(), stable.num_edges());
        let report = ts_build(&stable, &BuildConfig::with_budget(exact_bytes - 1));
        assert!(report.merges >= 1);
        assert!(report.final_bytes < exact_bytes);
        assert!(report.squared_error > 0.0);
        assert_eq!(report.sketch.total_elements(), doc.len() as u64);
    }

    #[test]
    fn floor_is_label_split_graph() {
        let doc = t1_doc();
        let stable = build_stable(&doc);
        let report = ts_build(&stable, &BuildConfig::with_budget(1));
        // 4 labels → 4 clusters; cannot go lower.
        assert_eq!(report.sketch.len(), 4);
        assert!(!report.reached_budget);
        // Label-split of T1: b cluster holds both b classes; each element
        // of b has avg (1+4)/2 = 2.5 children in c.
        let b_label = doc.labels().get("b").unwrap();
        let b = report.sketch.nodes_with_label(b_label).next().unwrap();
        let b_node = report.sketch.node(b);
        assert_eq!(b_node.count, 4);
        assert_eq!(b_node.edges.len(), 1);
        assert!((b_node.edges[0].1 - 2.5).abs() < 1e-9);
        // sq error: 4 elements with counts {1,1,4,4} around 2.5 →
        // Σ(c−2.5)² = 2·(1.5²)+2·(1.5²) = 9.
        assert!((report.squared_error - 9.0).abs() < 1e-9);
    }

    #[test]
    fn merge_order_prefers_cheap_merges() {
        // Two near-identical b classes (counts 3 and 4) and one very
        // different (count 50): the first merge must pair 3 with 4.
        let mut src = String::from("<r>");
        for k in [3usize, 4, 50] {
            src.push_str("<a><b>");
            src.push_str(&"<c/>".repeat(k));
            src.push_str("</b></a>");
        }
        src.push_str("</r>");
        let doc = parse_document(&src).unwrap();
        let stable = build_stable(&doc);
        let model = SizeModel::TREESKETCH;
        let exact = model.graph_bytes(stable.len(), stable.num_edges());
        // Budget that exactly one merge can satisfy.
        let mut config = BuildConfig::with_budget(exact - 1);
        config.size_model = model;
        let report = ts_build(&stable, &config);
        assert_eq!(report.merges, 1);
        // sq error of merging {3,4}: mean 3.5, Σ = 0.25+0.25 = 0.5 per
        // element... elements: one each → 0.5. Merging {3,50} or {4,50}
        // would cost ≥ 1000. Also the parent a-classes merge error.
        assert!(report.squared_error < 10.0, "err={}", report.squared_error);
    }

    #[test]
    fn nan_ratio_candidates_sort_last_and_deterministically() {
        // A degenerate 0/0 merge delta yields ratio = NaN. Under the old
        // partial_cmp(..).unwrap_or(Equal) ordering a NaN silently
        // scrambled the heap; total_cmp sorts it *after* every finite
        // ratio, so it is popped last and evicted first.
        let mk = |ratio: f64, a: u32, b: u32| MergeCandidate {
            ratio,
            a,
            b,
            version_a: 0,
            version_b: 0,
        };
        let nan = f64::NAN;
        let mut heap: BinaryHeap<MergeCandidate> = BinaryHeap::new();
        heap.push(mk(nan, 7, 8));
        heap.push(mk(1.0, 3, 4));
        heap.push(mk(-2.0, 1, 2));
        heap.push(mk(1.0, 2, 9)); // ratio tie: id tie-break decides
        let popped: Vec<(u32, u32)> =
            std::iter::from_fn(|| heap.pop().map(|c| (c.a, c.b))).collect();
        // Min ratio first; among the two 1.0 ratios the smaller (a, b)
        // pair comes first; the NaN candidate is last.
        assert_eq!(popped, vec![(1, 2), (2, 9), (3, 4), (7, 8)]);

        // Bounded pools evict the NaN before any finite candidate.
        let mut best: BinaryHeap<WorstFirst> = BinaryHeap::new();
        bounded_push(&mut best, 2, mk(nan, 7, 8));
        bounded_push(&mut best, 2, mk(5.0, 3, 4));
        bounded_push(&mut best, 2, mk(1.0, 1, 2));
        let kept: Vec<(u32, u32)> = best.into_iter().map(|w| (w.0.a, w.0.b)).collect();
        assert_eq!(kept.len(), 2);
        assert!(kept.contains(&(3, 4)) && kept.contains(&(1, 2)), "{kept:?}");
    }

    /// A document whose stable summary has enough same-label classes to
    /// overflow `group_all_pairs_cap` and exercise every scoring path.
    fn many_class_doc() -> axqa_xml::Document {
        let mut src = String::from("<r>");
        for k in 1..=40 {
            src.push_str("<p>");
            src.push_str(&"<k/>".repeat(k));
            src.push_str(&"<m/>".repeat(k % 5 + 1));
            src.push_str("</p>");
        }
        for k in 1..=20 {
            src.push_str("<q><p>");
            src.push_str(&"<k/>".repeat(k * 2));
            src.push_str("</p></q>");
        }
        src.push_str("</r>");
        parse_document(&src).unwrap()
    }

    /// Worker count for the parallel side of the serial-vs-parallel
    /// oracles. CI's determinism-smoke job overrides it
    /// (`AXQA_TEST_THREADS=2`) so the oracle is exercised with a second
    /// thread topology off the reference host.
    pub(crate) fn test_threads() -> usize {
        std::env::var("AXQA_TEST_THREADS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(4)
    }

    #[test]
    fn parallel_build_is_bit_identical_to_serial() {
        let doc = many_class_doc();
        let stable = build_stable(&doc);
        let exact = SizeModel::TREESKETCH.graph_bytes(stable.len(), stable.num_edges());
        for budget in [exact / 2, exact / 4, 1] {
            let mut serial = BuildConfig::with_budget(budget);
            serial.threads = 1;
            let mut parallel = serial.clone();
            parallel.threads = test_threads();
            let s = ts_build(&stable, &serial);
            let p = ts_build(&stable, &parallel);
            assert_eq!(s.merges, p.merges, "budget {budget}");
            assert_eq!(s.pool_rebuilds, p.pool_rebuilds, "budget {budget}");
            assert_eq!(s.final_bytes, p.final_bytes, "budget {budget}");
            assert!(
                s.squared_error == p.squared_error, // bitwise: same merge sequence
                "budget {budget}: {} vs {}",
                s.squared_error,
                p.squared_error
            );
            assert_eq!(s.stable_assignment, p.stable_assignment, "budget {budget}");
            assert_eq!(s.sketch.len(), p.sketch.len());
            for (sn, pn) in s.sketch.nodes().iter().zip(p.sketch.nodes()) {
                assert_eq!(sn, pn, "budget {budget}");
            }
        }
    }

    #[test]
    fn parallel_build_matches_serial_on_windowed_groups() {
        // Force the sliding-window path AND make levels large enough to
        // trigger the parallel shard (PARALLEL_LEVEL_MIN).
        let doc = many_class_doc();
        let stable = build_stable(&doc);
        let exact = SizeModel::TREESKETCH.graph_bytes(stable.len(), stable.num_edges());
        let mut serial = BuildConfig::with_budget(exact / 3);
        serial.group_all_pairs_cap = 4;
        serial.window = 2;
        serial.threads = 1;
        let mut parallel = serial.clone();
        parallel.threads = test_threads();
        let s = ts_build(&stable, &serial);
        let p = ts_build(&stable, &parallel);
        assert!(s.merges >= 1, "windowed path produced no merges");
        assert_eq!(s.merges, p.merges);
        assert_eq!(s.final_bytes, p.final_bytes);
        assert!(s.squared_error == p.squared_error);
        assert_eq!(s.stable_assignment, p.stable_assignment);
    }

    #[test]
    fn large_group_window_path_reaches_budget() {
        // > group_all_pairs_cap same-label classes: CREATEPOOL must fall
        // back to the sliding window and still drive the build down.
        let doc = many_class_doc();
        let stable = build_stable(&doc);
        let exact = SizeModel::TREESKETCH.graph_bytes(stable.len(), stable.num_edges());
        let mut config = BuildConfig::with_budget(exact / 2);
        config.group_all_pairs_cap = 8; // 40+ p-classes blow past this
        config.window = 3;
        let report = ts_build(&stable, &config);
        assert!(report.reached_budget, "window path failed to compress");
        assert!(report.merges >= 1);
        assert!(report.final_bytes <= exact / 2);
        assert_eq!(report.sketch.total_elements(), doc.len() as u64);
    }

    #[test]
    fn state_invariants_hold_through_building() {
        let doc = parse_document(
            "<r><a><b/><b/><c/></a><a><b/><c/><c/></a><a><b/><b/><b/></a>\
             <d><a><b/></a></d><d><a><c/></a></d></r>",
        )
        .unwrap();
        let stable = build_stable(&doc);
        let mut state = ClusterState::new(&stable, SizeModel::TREESKETCH);
        let config = BuildConfig::with_budget(1);
        let _ = ts_build_state(&mut state, &config).unwrap();
        state.verify().unwrap();
    }

    #[test]
    fn zero_budget_is_a_typed_error() {
        let doc = parse_document("<r><a/><a/></r>").unwrap();
        let stable = build_stable(&doc);

        let err = try_ts_build(&stable, &BuildConfig::with_budget(0)).unwrap_err();
        assert!(matches!(
            err,
            crate::error::AxqaError::InvalidBudget {
                context: "ts_build"
            }
        ));
        assert!(err.to_string().contains("at least 1 byte"));

        let mut state = ClusterState::new(&stable, SizeModel::TREESKETCH);
        let err = ts_build_state(&mut state, &BuildConfig::with_budget(0)).unwrap_err();
        assert!(matches!(err, crate::error::AxqaError::InvalidBudget { .. }));
    }

    #[test]
    #[should_panic(expected = "ts_build: synopsis byte budget")]
    fn infallible_ts_build_panics_on_zero_budget() {
        let doc = parse_document("<r><a/></r>").unwrap();
        let stable = build_stable(&doc);
        let _ = ts_build(&stable, &BuildConfig::with_budget(0));
    }
}

#[cfg(test)]
mod sweep_tests {
    use super::*;
    use axqa_synopsis::build_stable;
    use axqa_xml::parse_document;

    #[test]
    fn sweep_matches_independent_builds() {
        let doc = parse_document(
            "<r><a><b/><b/><c/></a><a><b/><c/><c/></a><a><b/><b/><b/></a>\
             <a><c/></a><d><a><b/></a></d><d><a><c/><c/></a></d></r>",
        )
        .unwrap();
        let stable = build_stable(&doc);
        let exact = SizeModel::TREESKETCH.graph_bytes(stable.len(), stable.num_edges());
        let budgets = [exact / 2, exact * 3 / 4, exact / 4];
        let sweep = ts_build_sweep(&stable, &budgets, &BuildConfig::with_budget(0));
        for (&budget, swept) in budgets.iter().zip(&sweep) {
            let independent = ts_build(&stable, &BuildConfig::with_budget(budget)).sketch;
            assert_eq!(swept.len(), independent.len(), "budget {budget}");
            assert_eq!(swept.num_edges(), independent.num_edges());
            assert!(
                (swept.squared_error() - independent.squared_error()).abs()
                    < 1e-6 * independent.squared_error().max(1.0),
                "budget {budget}: sweep err {} vs independent {}",
                swept.squared_error(),
                independent.squared_error()
            );
        }
    }

    #[test]
    fn sweep_equals_independent_builds_at_two_budgets() {
        // Exercises the no-clone budget threading and the parallel
        // snapshot finalization: the swept sketches must be structurally
        // identical to independent ts_build runs at the same budgets.
        let doc = parse_document(
            "<r><a><b/><b/><b/></a><a><b/></a><a><b/><b/></a>\
             <c><a><b/><b/><b/><b/></a></c><c><a/></c></r>",
        )
        .unwrap();
        let stable = build_stable(&doc);
        let exact = SizeModel::TREESKETCH.graph_bytes(stable.len(), stable.num_edges());
        let budgets = [exact * 2 / 3, exact / 3];
        let mut config = BuildConfig::with_budget(0);
        config.threads = super::tests::test_threads();
        let sweep = ts_build_sweep(&stable, &budgets, &config);
        assert_eq!(sweep.len(), 2);
        for (&budget, swept) in budgets.iter().zip(&sweep) {
            let independent = ts_build(&stable, &BuildConfig::with_budget(budget)).sketch;
            assert_eq!(swept.len(), independent.len(), "budget {budget}");
            assert_eq!(swept.num_edges(), independent.num_edges());
            assert!(
                (swept.squared_error() - independent.squared_error()).abs()
                    < 1e-6 * independent.squared_error().max(1.0),
                "budget {budget}: sweep err {} vs independent {}",
                swept.squared_error(),
                independent.squared_error()
            );
        }
    }

    #[test]
    fn sweep_preserves_input_order() {
        let doc = parse_document("<r><a><b/></a><a><b/><b/></a><a><b/><b/><b/></a></r>").unwrap();
        let stable = build_stable(&doc);
        // Unsorted budgets: results must align with the inputs.
        let budgets = [64usize, 512, 128];
        let sweep = ts_build_sweep(&stable, &budgets, &BuildConfig::with_budget(0));
        assert_eq!(sweep.len(), 3);
        let model = SizeModel::TREESKETCH;
        assert!(sweep[1].size_bytes(&model) >= sweep[2].size_bytes(&model));
        assert!(sweep[2].size_bytes(&model) >= sweep[0].size_bytes(&model));
    }
}

#[cfg(test)]
mod pool_tests {
    use super::*;
    use axqa_synopsis::build_stable;
    use axqa_xml::parse_document;

    /// A document with many same-label classes (distinct keyword counts).
    fn wide_doc() -> axqa_xml::Document {
        let mut src = String::from("<r>");
        for k in 1..=30 {
            src.push_str("<p>");
            src.push_str(&"<k/>".repeat(k));
            src.push_str("</p>");
        }
        src.push_str("</r>");
        parse_document(&src).unwrap()
    }

    #[test]
    fn heap_upper_bound_is_respected() {
        let doc = wide_doc();
        let stable = build_stable(&doc);
        let mut config = BuildConfig::with_budget(1);
        config.heap_upper = 5;
        config.heap_lower = 1;
        // Must still reach the label-split floor despite the tiny pool.
        let report = ts_build(&stable, &config);
        assert_eq!(report.sketch.len(), doc.labels().len());
    }

    #[test]
    fn windowed_and_all_pairs_reach_the_same_floor() {
        let doc = wide_doc();
        let stable = build_stable(&doc);
        let mut windowed = BuildConfig::with_budget(1);
        windowed.group_all_pairs_cap = 4;
        windowed.window = 2;
        let mut all_pairs = BuildConfig::with_budget(1);
        all_pairs.group_all_pairs_cap = usize::MAX;
        let a = ts_build(&stable, &windowed);
        let b = ts_build(&stable, &all_pairs);
        assert_eq!(a.sketch.len(), b.sketch.len());
        // Full compression is partition-identical (label-split), so the
        // squared errors agree exactly.
        assert!((a.squared_error - b.squared_error).abs() < 1e-6);
    }

    #[test]
    fn all_pairs_never_loses_to_window_at_midrange_budgets() {
        let doc = wide_doc();
        let stable = build_stable(&doc);
        let exact = SizeModel::TREESKETCH.graph_bytes(stable.len(), stable.num_edges());
        let budget = exact / 2;
        let mut windowed = BuildConfig::with_budget(budget);
        windowed.group_all_pairs_cap = 4;
        windowed.window = 2;
        let mut all_pairs = BuildConfig::with_budget(budget);
        all_pairs.group_all_pairs_cap = usize::MAX;
        let w = ts_build(&stable, &windowed);
        let a = ts_build(&stable, &all_pairs);
        // The exhaustive pool sees every candidate the window sees, so at
        // matched size its greedy result should not be (much) worse; the
        // window may pay a small quality price for its speed.
        assert!(
            a.squared_error <= w.squared_error * 1.5 + 1e-9,
            "all-pairs {} vs windowed {}",
            a.squared_error,
            w.squared_error
        );
    }
}
