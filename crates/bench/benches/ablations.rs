// Benchmarks are test-like code: panicking extractors are acceptable here.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::arithmetic_side_effects
)]

//! Ablations of the design choices DESIGN.md calls out:
//!
//! * bottom-up (TSBUILD) vs top-down construction — §4.2 claims
//!   bottom-up is better without being slower;
//! * depth-bounded, windowed CREATEPOOL vs exhaustive all-pairs pools;
//! * `Uh`/`Lh` heap-bound sensitivity;
//! * GreedyMac vs exact-EMD set distance inside ESD.

/// Bench binaries install the counting allocator (DESIGN.md §12)
/// so recorded spans carry real allocation profiles.
#[global_allocator]
static ALLOC: axqa_obs::alloc::CountingAlloc = axqa_obs::alloc::CountingAlloc;

use axqa_bench::Fixture;
use axqa_core::{topdown_build, ts_build, BuildConfig};
use axqa_datagen::Dataset;
use axqa_distance::{esd_documents, EsdConfig, SetDistance};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_topdown(c: &mut Criterion) {
    let fixture = Fixture::new(Dataset::SProt, 15_000, 0);
    let mut group = c.benchmark_group("ablation_topdown");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(5));
    group.bench_function("bottom_up_10kb", |b| {
        b.iter(|| ts_build(&fixture.stable, &BuildConfig::with_budget(10 * 1024)))
    });
    group.bench_function("top_down_10kb", |b| {
        b.iter(|| topdown_build(&fixture.stable, &BuildConfig::with_budget(10 * 1024)))
    });
    group.finish();
}

fn bench_pool(c: &mut Criterion) {
    let fixture = Fixture::new(Dataset::SProt, 15_000, 0);
    let mut group = c.benchmark_group("ablation_pool");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(5));
    group.bench_function("windowed_groups", |b| {
        b.iter(|| ts_build(&fixture.stable, &BuildConfig::with_budget(10 * 1024)))
    });
    group.bench_function("all_pairs_groups", |b| {
        let mut config = BuildConfig::with_budget(10 * 1024);
        config.group_all_pairs_cap = usize::MAX;
        b.iter(|| ts_build(&fixture.stable, &config))
    });
    group.finish();
}

fn bench_heap_bounds(c: &mut Criterion) {
    let fixture = Fixture::new(Dataset::SProt, 15_000, 0);
    let mut group = c.benchmark_group("ablation_heap");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(5));
    for (upper, lower) in [(1_000usize, 10usize), (10_000, 100), (50_000, 500)] {
        group.bench_function(format!("uh{upper}_lh{lower}"), |b| {
            let mut config = BuildConfig::with_budget(10 * 1024);
            config.heap_upper = upper;
            config.heap_lower = lower;
            b.iter(|| ts_build(&fixture.stable, &config))
        });
    }
    group.finish();
}

fn bench_setdist(c: &mut Criterion) {
    let a = Fixture::new(Dataset::Imdb, 10_000, 0);
    let b_fixture = Fixture::new(Dataset::Imdb, 6_000, 0);
    let mut group = c.benchmark_group("ablation_setdist");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(5));
    group.bench_function("esd_greedy_mac", |bench| {
        let config = EsdConfig {
            set_distance: SetDistance::GreedyMac { exponent: 2.0 },
        };
        bench.iter(|| esd_documents(&a.doc, &b_fixture.doc, &config))
    });
    group.bench_function("esd_exact_emd", |bench| {
        let config = EsdConfig {
            set_distance: SetDistance::Emd { exponent: 2.0 },
        };
        bench.iter(|| esd_documents(&a.doc, &b_fixture.doc, &config))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_topdown,
    bench_pool,
    bench_heap_bounds,
    bench_setdist
);
criterion_main!(benches);
