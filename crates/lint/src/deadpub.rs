//! Dead public API detection over the call graph.
//!
//! The api-surface snapshot ratchets *churn*, but it happily
//! fossilizes `pub fn`s nobody calls: once in the snapshot, an unused
//! export never surfaces again. This rule cross-references the call
//! graph with a workspace-wide textual scan: a plain-`pub` function
//! with zero intra-workspace call edges *and* no textual reference
//! anywhere (no identifier use outside its own definition, no doc-link
//! mention, no test or example exercising it) is reported.
//!
//! The textual pass is what keeps the conservative call graph honest:
//! function pointers (`map(score_fn)`), re-exports (`pub use`),
//! doc examples, and bench/test harness code all mention the name as
//! an identifier or in a doc comment, so anything with a textual
//! reference is presumed live. Only names that appear *nowhere* except
//! their own `fn` definition are findings — a deliberately
//! high-precision, low-recall trade.
//!
//! Existing dead exports are baseline-granted on introduction; the
//! ratchet keeps new ones out.

use crate::parse::Visibility;
use crate::token::TokenKind;
use crate::{Finding, Rule, Scope, Severity, Workspace};

/// Reports plain-`pub` fns with no callers and no textual references.
pub struct DeadPub;

impl Rule for DeadPub {
    fn id(&self) -> &'static str {
        "dead-pub"
    }
    fn describe(&self) -> &'static str {
        "plain-pub fn with zero intra-workspace callers and no textual reference \
         anywhere in the workspace (tests and docs included) — remove it or make \
         it pub(crate)"
    }
    fn scope(&self) -> Scope {
        Scope::Workspace
    }
    fn check_workspace(&self, workspace: &Workspace, findings: &mut Vec<Finding>) {
        let graph = workspace.callgraph();
        let n = graph.items.len();

        let mut has_caller = vec![false; n];
        for callees in &graph.calls {
            for &callee in callees {
                has_caller[callee] = true;
            }
        }

        let candidates: Vec<usize> = (0..n)
            .filter(|&i| {
                let item = &graph.items[i];
                item.vis == Visibility::Public
                    && !item.is_test
                    && !item.is_bin
                    && item.name != "main"
                    && item.body.is_some()
                    && !has_caller[i]
            })
            .collect();
        if candidates.is_empty() {
            return;
        }

        // Textual liveness: any identifier token equal to a candidate
        // name that is not the name in a `fn` definition, or any
        // comment/doc-comment containing it, marks the name referenced.
        // Test-masked tokens count — a fn only tests exercise is live.
        let mut referenced: Vec<bool> = vec![false; candidates.len()];
        for file in &workspace.files {
            for (t, token) in file.tokens.iter().enumerate() {
                match token.kind {
                    TokenKind::Ident => {
                        let text = token.text(&file.text);
                        let is_def = crate::token::prev_code(&file.tokens, t)
                            .is_some_and(|p| file.tokens[p].text(&file.text) == "fn");
                        if is_def {
                            continue;
                        }
                        for (c, &i) in candidates.iter().enumerate() {
                            if !referenced[c] && graph.items[i].name == text {
                                referenced[c] = true;
                            }
                        }
                    }
                    TokenKind::Comment | TokenKind::DocComment => {
                        let text = token.text(&file.text);
                        for (c, &i) in candidates.iter().enumerate() {
                            if !referenced[c] && text.contains(graph.items[i].name.as_str()) {
                                referenced[c] = true;
                            }
                        }
                    }
                    _ => {}
                }
            }
        }

        for (c, &i) in candidates.iter().enumerate() {
            if referenced[c] {
                continue;
            }
            let item = &graph.items[i];
            findings.push(Finding {
                rule: self.id(),
                severity: Severity::Error,
                file: item.file.clone(),
                line: item.line,
                span: (0, 0),
                message: format!(
                    "pub fn `{}` has no intra-workspace callers and no textual \
                     reference — remove it or mark it pub(crate)",
                    item.display_path()
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SourceFile;

    fn workspace(sources: &[(&str, &str)]) -> Workspace {
        Workspace {
            files: sources
                .iter()
                .map(|(rel, text)| {
                    SourceFile::new(
                        rel.to_string(),
                        "axqa-core".to_string(),
                        false,
                        text.to_string(),
                    )
                })
                .collect(),
            dep_edges: vec![("axqa-core".to_string(), Vec::new())],
            api_surface_snapshot: None,
            panic_surface_snapshot: None,
            alloc_surface_snapshot: None,
            hot_paths: None,
            alloc_grants: Vec::new(),
            graph: std::cell::OnceCell::new(),
        }
    }

    fn check(sources: &[(&str, &str)]) -> Vec<Finding> {
        let ws = workspace(sources);
        let mut findings = Vec::new();
        DeadPub.check_workspace(&ws, &mut findings);
        findings
    }

    #[test]
    fn unreferenced_pub_fn_is_reported() {
        let findings = check(&[(
            "crates/core/src/a.rs",
            "pub fn orphan(x: u32) -> u32 { x }\n",
        )]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("axqa_core::a::orphan"));
    }

    #[test]
    fn called_and_textually_referenced_fns_are_live() {
        let findings = check(&[
            (
                "crates/core/src/a.rs",
                "pub fn used() {}\npub fn pointed() {}\npub fn run(f: fn()) { used(); f(); }\n",
            ),
            (
                "crates/core/src/b.rs",
                "pub fn go() { super::a::run(pointed); }\n",
            ),
        ]);
        // `run` is live via the call in b.rs; `used` via the call edge;
        // `pointed` via the fn-pointer identifier; `go` mentions none
        // of the other names textually but is itself referenced by
        // nothing — the only finding.
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("::go`"));
    }

    #[test]
    fn test_only_and_doc_references_count_as_live() {
        let findings = check(&[(
            "crates/core/src/a.rs",
            "/// See also [`documented`].\npub fn entry() {}\npub fn documented() {}\n\
             pub fn tested() {}\n#[cfg(test)]\nmod tests {\n  fn t() { tested(); entry(); }\n}\n",
        )]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn restricted_private_and_main_are_ignored() {
        let findings = check(&[(
            "crates/core/src/a.rs",
            "pub(crate) fn scoped() {}\nfn private() {}\npub fn main() {}\n",
        )]);
        assert!(findings.is_empty(), "{findings:?}");
    }
}
