//! Text serialization for TreeSketch synopses.
//!
//! An approximate-answering system builds synopses offline and loads
//! them at query time; this module provides the storage format. It is
//! line-oriented (like `axqa_synopsis::io`) and self-contained:
//!
//! ```text
//! treesketch v1
//! labels <n>
//! label <id> <name>
//! nodes <n> root <id> sq <squared-error>
//! node <id> <label-id> <count> <depth>
//! edge <from> <to> <avg>
//! ```

use crate::sketch::{TreeSketch, TsNode, TsNodeId};
use axqa_xml::{LabelId, LabelTable};
use std::fmt::Write as _;

/// Serializes a TreeSketch.
pub fn to_text(sketch: &TreeSketch) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "treesketch v1");
    let _ = writeln!(out, "labels {}", sketch.labels().len());
    for (id, name) in sketch.labels().iter() {
        let _ = writeln!(out, "label {} {}", id.0, name);
    }
    let _ = writeln!(
        out,
        "nodes {} root {} sq {}",
        sketch.len(),
        sketch.root().0,
        sketch.squared_error()
    );
    for (i, node) in sketch.nodes().iter().enumerate() {
        let _ = writeln!(
            out,
            "node {} {} {} {}",
            i, node.label.0, node.count, node.depth
        );
        for &(target, avg) in &node.edges {
            let _ = writeln!(out, "edge {} {} {}", i, target.0, avg);
        }
    }
    out
}

/// Deserialization errors.
#[derive(Debug, Clone, PartialEq)]
pub struct SketchIoError {
    /// What went wrong.
    pub message: String,
    /// 1-based line number.
    pub line: usize,
}

impl std::fmt::Display for SketchIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "treesketch parse error on line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for SketchIoError {}

fn io_err(message: impl Into<String>, line: usize) -> SketchIoError {
    SketchIoError {
        message: message.into(),
        line,
    }
}

/// Parses the text format back into a TreeSketch.
pub fn from_text(text: &str) -> Result<TreeSketch, SketchIoError> {
    let mut labels = LabelTable::new();
    let mut nodes: Vec<TsNode> = Vec::new();
    let mut root = 0u32;
    let mut squared_error = 0.0f64;
    let mut seen_header = false;

    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let Some(tag) = parts.next() else {
            continue; // unreachable: the line is non-empty after trim
        };
        match tag {
            "treesketch" => {
                if parts.next() != Some("v1") {
                    return Err(io_err("unsupported version", line));
                }
                seen_header = true;
            }
            "labels" => {}
            "label" => {
                let _id: u32 = num(&mut parts, line)?;
                let name = parts
                    .next()
                    .ok_or_else(|| io_err("label needs a name", line))?;
                labels.intern(name);
            }
            "nodes" => {
                let n: u32 = num(&mut parts, line)?;
                nodes.reserve(n as usize);
                if parts.next() != Some("root") {
                    return Err(io_err("expected 'root'", line));
                }
                root = num(&mut parts, line)?;
                if parts.next() != Some("sq") {
                    return Err(io_err("expected 'sq'", line));
                }
                squared_error = fnum(&mut parts, line)?;
            }
            "node" => {
                let id: u32 = num(&mut parts, line)?;
                if id as usize != nodes.len() {
                    return Err(io_err("node ids must be dense and in order", line));
                }
                let label: u32 = num(&mut parts, line)?;
                if label as usize >= labels.len() {
                    return Err(io_err("node references unknown label", line));
                }
                let count: u32 = num(&mut parts, line)?;
                let depth: u32 = num(&mut parts, line)?;
                nodes.push(TsNode {
                    label: LabelId(label),
                    count: count as u64,
                    edges: Vec::new(),
                    depth,
                });
            }
            "edge" => {
                let from: u32 = num(&mut parts, line)?;
                let to: u32 = num(&mut parts, line)?;
                let avg: f64 = fnum(&mut parts, line)?;
                if from as usize >= nodes.len() {
                    return Err(io_err("edge from unknown node", line));
                }
                nodes[from as usize].edges.push((TsNodeId(to), avg));
            }
            other => return Err(io_err(format!("unknown record {other:?}"), line)),
        }
    }
    if !seen_header {
        return Err(io_err("missing 'treesketch v1' header", 1));
    }
    if nodes.is_empty() {
        return Err(io_err("sketch has no nodes", 1));
    }
    if root as usize >= nodes.len() {
        return Err(io_err("root references unknown node", 1));
    }
    for node in &mut nodes {
        node.edges.sort_unstable_by_key(|&(t, _)| t);
    }
    // Validate edge targets now that all nodes exist.
    let n = nodes.len();
    for node in &nodes {
        for &(t, _) in &node.edges {
            if t.index() >= n {
                return Err(io_err("edge to unknown node", 1));
            }
        }
    }
    Ok(TreeSketch::from_parts(
        labels,
        nodes,
        TsNodeId(root),
        squared_error,
    ))
}

/// Parses a serialized sketch into the workspace error type: a
/// structurally valid file describing a synopsis with no nodes maps to
/// [`crate::error::AxqaError::EmptySynopsis`], every other failure to
/// [`crate::error::AxqaError::SketchIo`].
pub fn load_sketch(text: &str) -> Result<TreeSketch, crate::error::AxqaError> {
    match from_text(text) {
        Ok(sketch) => Ok(sketch),
        Err(e) if e.message == "sketch has no nodes" => {
            Err(crate::error::AxqaError::EmptySynopsis {
                context: "load_sketch",
            })
        }
        Err(e) => Err(crate::error::AxqaError::SketchIo(e)),
    }
}

fn num<'a>(parts: &mut impl Iterator<Item = &'a str>, line: usize) -> Result<u32, SketchIoError> {
    parts
        .next()
        .ok_or_else(|| io_err("missing numeric field", line))?
        .parse()
        .map_err(|_| io_err("bad numeric field", line))
}

fn fnum<'a>(parts: &mut impl Iterator<Item = &'a str>, line: usize) -> Result<f64, SketchIoError> {
    parts
        .next()
        .ok_or_else(|| io_err("missing float field", line))?
        .parse()
        .map_err(|_| io_err("bad float field", line))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{ts_build, BuildConfig};
    use axqa_synopsis::build_stable;
    use axqa_xml::parse_document;

    #[test]
    fn roundtrip_exact_and_compressed() {
        let doc = parse_document(
            "<r><a><b><c/></b><b><c/><c/><c/><c/></b></a>\
             <a><b><c/></b><b><c/><c/><c/><c/></b></a></r>",
        )
        .unwrap();
        let stable = build_stable(&doc);
        for budget in [1usize, 10_000] {
            let sketch = ts_build(&stable, &BuildConfig::with_budget(budget)).sketch;
            let text = to_text(&sketch);
            let back = from_text(&text).unwrap();
            assert_eq!(back.len(), sketch.len());
            assert_eq!(back.num_edges(), sketch.num_edges());
            assert_eq!(back.root(), sketch.root());
            assert!((back.squared_error() - sketch.squared_error()).abs() < 1e-9);
            for (a, b) in back.nodes().iter().zip(sketch.nodes()) {
                assert_eq!(a.label, b.label);
                assert_eq!(a.count, b.count);
                assert_eq!(a.depth, b.depth);
                assert_eq!(a.edges.len(), b.edges.len());
                for (&(t1, c1), &(t2, c2)) in a.edges.iter().zip(&b.edges) {
                    assert_eq!(t1, t2);
                    assert!((c1 - c2).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn loaded_sketch_answers_queries() {
        let doc = parse_document("<r><a><k/></a><a><k/><k/></a></r>").unwrap();
        let sketch = crate::sketch::TreeSketch::from_stable(&build_stable(&doc));
        let back = from_text(&to_text(&sketch)).unwrap();
        let query = axqa_query::parse_twig("q1: q0 //a\nq2: q1 /k").unwrap();
        let estimate = crate::selectivity::estimate_query_selectivity(
            &back,
            &query,
            &crate::eval::EvalConfig::default(),
        );
        assert_eq!(estimate, 3.0);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_text("").is_err());
        assert!(from_text("treesketch v9\n").is_err());
        assert!(from_text("treesketch v1\nnode 0 0 1 0\n").is_err()); // unknown label
        assert!(
            from_text("treesketch v1\nlabel 0 a\nnodes 1 root 5 sq 0\nnode 0 0 1 0\n").is_err()
        );
        assert!(from_text("treesketch v1\nwhatever\n").is_err());
    }
}
