//! `harness` — regenerate the paper's tables and figures.
//!
//! ```text
//! harness <command> [options]
//!
//! commands:
//!   table1 | table2 | table3 | fig11 | fig12 | fig13 | negative
//!   ablation            bottom-up vs top-down construction
//!   family              §3.1 synopsis-family sizes (A(k), 1-index, stable)
//!   values              value-predicate estimation (extension)
//!   all                 every experiment in order
//!   bench baseline      wall-clock baseline snapshot (BENCH_core.json);
//!                       options: --dataset NAME --elements N --queries N
//!                       --runs N --budgets a,b,c --threads N --seed N
//!                       --out PATH --trace PATH --metrics PATH
//!   bench diff OLD NEW  compare two baseline snapshots: ±8% noise
//!                       threshold on time metrics (--time-pct N),
//!                       exact match on determinism counters; options:
//!                       --warn-only-time --out PATH (verdict JSON);
//!                       exits 1 when the comparison fails
//!
//! options:
//!   --scale F           dataset scale multiplier (default 0.25; 1 = paper)
//!   --queries N         workload size (default 200; paper = 1000)
//!   --esd-queries N     queries used for ESD (default 100)
//!   --budgets a,b,c     synopsis budgets in KB (default 10,20,30,40,50)
//!   --seed N            RNG seed (default 0x5EED)
//!   --threads N         worker threads (default: all cores)
//!   --no-xsketch        skip the slow twig-XSketch baseline
//!   --csv DIR           also write CSV files into DIR
//!   --trace PATH        record a Chrome trace_event timeline of the run
//!                       (open in chrome://tracing or ui.perfetto.dev)
//!   --metrics PATH      write the axqa-obs/2 metrics snapshot (counters,
//!                       histograms, per-span totals and allocations)
//! ```
//!
//! All argument errors flow back to `main` as `Err(message)` and exit
//! with status 2 (usage); the process never calls `std::process::exit`
//! (forbidden-api rule — destructors must run).

use axqa_harness::experiments::{
    ablation_topdown, family, fig11, fig12, fig13, negative, table1, table2, table3, values,
    ExperimentConfig,
};
use axqa_harness::PipelineConfig;
use std::process::ExitCode;

/// Every allocation this binary makes is tallied (DESIGN.md §12):
/// `bench baseline` reports per-phase allocation profiles, and the
/// `allocation.tracked` flag in the snapshot proves this line exists.
#[global_allocator]
static ALLOC: axqa_obs::alloc::CountingAlloc = axqa_obs::alloc::CountingAlloc;

const USAGE: &str = "usage: harness <table1|table2|table3|fig11|fig12|fig13|negative|ablation|\
                     family|values|all|bench> [options]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(message) => {
            eprintln!("harness: {message}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let Some(command) = args.first().cloned() else {
        return Err(USAGE.to_string());
    };
    if command == "bench" {
        return cmd_bench(&args[1..]);
    }
    let (config, obs) = parse_experiment_args(&args[1..])?;

    println!(
        "# axqa harness — scale {:.2}, {} queries, seed {:#x}, budgets {:?} KB{}",
        config.pipeline.scale,
        config.pipeline.queries,
        config.pipeline.seed,
        config.budgets_kb,
        if config.with_xsketch {
            ""
        } else {
            ", no xsketch"
        },
    );
    let started = std::time::Instant::now();
    // Only pay for recording when an output was requested; without the
    // flags every span/counter stays a relaxed-atomic branch.
    let recorder = obs.wants_recording().then(|| {
        let recorder = axqa_obs::Recorder::new();
        recorder.install();
        recorder
    });
    match command.as_str() {
        "table1" => print_one(table1(&config)),
        "table2" => print_one(table2(&config)),
        "table3" => print_one(table3(&config)),
        "fig11" => print_many(fig11(&config)),
        "fig12" => print_many(fig12(&config)),
        "fig13" => print_one(fig13(&config)),
        "negative" => print_one(negative(&config)),
        "ablation" => print_one(ablation_topdown(&config)),
        "family" => print_one(family(&config)),
        "values" => print_one(values(&config)),
        "all" => {
            print_one(table1(&config));
            print_one(table2(&config));
            print_one(table3(&config));
            print_many(fig11(&config));
            print_many(fig12(&config));
            print_one(fig13(&config));
            print_one(negative(&config));
            print_one(family(&config));
            print_one(values(&config));
            print_one(ablation_topdown(&config));
        }
        other => return Err(format!("unknown command {other}\n{USAGE}")),
    }
    if let Some(recorder) = recorder {
        axqa_obs::uninstall();
        obs.write(&recorder.drain())?;
    }
    println!("# done in {:.1}s", started.elapsed().as_secs_f64());
    Ok(ExitCode::SUCCESS)
}

/// Where to write the run's observability outputs (`--trace`,
/// `--metrics`).
#[derive(Debug, Default)]
struct ObsOutputs {
    trace: Option<std::path::PathBuf>,
    metrics: Option<std::path::PathBuf>,
}

impl ObsOutputs {
    fn wants_recording(&self) -> bool {
        self.trace.is_some() || self.metrics.is_some()
    }

    fn write(&self, snapshot: &axqa_obs::Snapshot) -> Result<(), String> {
        if let Some(path) = &self.trace {
            std::fs::write(path, axqa_obs::export::chrome_trace(snapshot))
                .map_err(|error| format!("could not write {}: {error}", path.display()))?;
            println!("# wrote trace {}", path.display());
        }
        if let Some(path) = &self.metrics {
            std::fs::write(path, axqa_obs::export::metrics_json(snapshot))
                .map_err(|error| format!("could not write {}: {error}", path.display()))?;
            println!("# wrote metrics {}", path.display());
        }
        Ok(())
    }
}

fn parse_experiment_args(args: &[String]) -> Result<(ExperimentConfig, ObsOutputs), String> {
    let mut config = ExperimentConfig {
        pipeline: PipelineConfig {
            scale: 0.25,
            queries: 200,
            seed: 0x5EED,
            threads: 0,
            need_nesting: true,
        },
        ..ExperimentConfig::default()
    };
    let mut obs = ObsOutputs::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| -> Result<String, String> {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match arg.as_str() {
            "--scale" => config.pipeline.scale = parse("--scale", &value("--scale")?)?,
            "--queries" => config.pipeline.queries = parse("--queries", &value("--queries")?)?,
            "--esd-queries" => {
                config.esd_queries = parse("--esd-queries", &value("--esd-queries")?)?;
            }
            "--seed" => config.pipeline.seed = parse("--seed", &value("--seed")?)?,
            "--threads" => config.pipeline.threads = parse("--threads", &value("--threads")?)?,
            "--no-xsketch" => config.with_xsketch = false,
            "--budgets" => config.budgets_kb = parse_budgets(&value("--budgets")?)?,
            "--csv" => config.csv_dir = Some(value("--csv")?.into()),
            "--trace" => obs.trace = Some(value("--trace")?.into()),
            "--metrics" => obs.metrics = Some(value("--metrics")?.into()),
            other => return Err(format!("unknown option {other}\n{USAGE}")),
        }
    }
    Ok((config, obs))
}

fn cmd_bench(args: &[String]) -> Result<ExitCode, String> {
    const BENCH_USAGE: &str = "usage: harness bench baseline [--dataset NAME] [--elements N] \
                               [--queries N] [--runs N] [--budgets a,b,c] [--threads N] \
                               [--seed N] [--out PATH] [--trace PATH] [--metrics PATH]\n\
                               \x20      harness bench diff OLD NEW [--time-pct N] \
                               [--warn-only-time] [--out PATH]";
    let Some(sub) = args.first() else {
        return Err(BENCH_USAGE.to_string());
    };
    if sub == "diff" {
        return cmd_bench_diff(&args[1..]);
    }
    if sub != "baseline" {
        return Err(format!(
            "unknown bench subcommand {sub} (expected: baseline | diff)\n{BENCH_USAGE}"
        ));
    }
    let mut config = axqa_harness::bench::BaselineConfig::default();
    let mut iter = args.iter().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| -> Result<String, String> {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match arg.as_str() {
            "--dataset" => {
                let name = value("--dataset")?;
                config.dataset = axqa_harness::bench::parse_dataset(&name)
                    .ok_or_else(|| format!("unknown dataset {name} (xmark|imdb|sprot|dblp)"))?;
            }
            "--elements" => config.elements = parse("--elements", &value("--elements")?)?,
            "--queries" => config.queries = parse("--queries", &value("--queries")?)?,
            "--runs" => config.runs = parse("--runs", &value("--runs")?)?,
            "--threads" => config.threads = parse("--threads", &value("--threads")?)?,
            "--seed" => config.seed = parse("--seed", &value("--seed")?)?,
            "--budgets" => config.budgets_kb = parse_budgets(&value("--budgets")?)?,
            "--out" => config.out = value("--out")?.into(),
            "--trace" => config.trace_out = Some(value("--trace")?.into()),
            "--metrics" => config.metrics_out = Some(value("--metrics")?.into()),
            other => return Err(format!("unknown option {other}\n{BENCH_USAGE}")),
        }
    }
    config
        .validate()
        .map_err(|message| format!("{message}\n{BENCH_USAGE}"))?;
    let started = std::time::Instant::now();
    let report = axqa_harness::bench::run_baseline(&config);
    print!("{}", report.render());
    report
        .write()
        .map_err(|error| format!("could not write {}: {error}", config.out.display()))?;
    if let Some(path) = &config.trace_out {
        println!("# wrote trace {}", path.display());
    }
    if let Some(path) = &config.metrics_out {
        println!("# wrote metrics {}", path.display());
    }
    println!(
        "# wrote {} in {:.1}s",
        config.out.display(),
        started.elapsed().as_secs_f64()
    );
    Ok(ExitCode::SUCCESS)
}

fn cmd_bench_diff(args: &[String]) -> Result<ExitCode, String> {
    const DIFF_USAGE: &str = "usage: harness bench diff OLD NEW [--time-pct N] \
                              [--warn-only-time] [--out PATH]";
    let mut config = axqa_harness::diff::DiffConfig::default();
    let mut paths: Vec<String> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| -> Result<String, String> {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match arg.as_str() {
            "--time-pct" => config.time_pct = parse("--time-pct", &value("--time-pct")?)?,
            "--warn-only-time" => config.warn_only_time = true,
            "--out" => config.out = Some(value("--out")?.into()),
            other if other.starts_with("--") => {
                return Err(format!("unknown option {other}\n{DIFF_USAGE}"));
            }
            path => paths.push(path.to_string()),
        }
    }
    let [old_path, new_path] = paths.as_slice() else {
        return Err(format!(
            "bench diff takes exactly two snapshot paths (got {})\n{DIFF_USAGE}",
            paths.len()
        ));
    };
    if config.time_pct < 0.0 {
        return Err(format!("--time-pct must be non-negative\n{DIFF_USAGE}"));
    }
    let report = axqa_harness::diff::run_diff(old_path, new_path, config);
    print!("{}", report.render());
    report.write().map_err(|error| {
        let out = report
            .config
            .out
            .as_ref()
            .map_or_else(String::new, |p| p.display().to_string());
        format!("could not write {out}: {error}")
    })?;
    if let Some(path) = &report.config.out {
        println!("# wrote verdict {}", path.display());
    }
    // Comparison failures are exit 1 (distinct from usage errors' 2),
    // so CI can gate on the verdict.
    Ok(if report.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn print_one(table: axqa_harness::report::Table) {
    println!("{}", table.render());
}

fn print_many(tables: Vec<axqa_harness::report::Table>) {
    for table in tables {
        println!("{}", table.render());
    }
}

fn parse<T: std::str::FromStr>(name: &str, text: &str) -> Result<T, String> {
    text.parse()
        .map_err(|_| format!("could not parse {name} value {text:?}"))
}

fn parse_budgets(text: &str) -> Result<Vec<usize>, String> {
    text.split(',')
        .map(|s| parse::<usize>("--budgets", s.trim()))
        .collect()
}
