// Examples/integration tests are demo code: panicking extractors are fine.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::arithmetic_side_effects
)]

//! The value-content extension (the paper's declared future work, §1):
//! numeric leaf values, `[. op c]` predicates, and per-cluster value
//! summaries that let a TreeSketch estimate value-selective twigs.
//!
//! ```text
//! cargo run --release --example value_predicates
//! ```

use axqa::core::values::ValueIndex;
use axqa::core::{eval_query_with_values, ts_build, BuildConfig, EvalConfig};
use axqa::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A DBLP-style bibliography whose year leaves carry numeric values.
    let doc = generate(
        Dataset::Dblp,
        &GenConfig {
            target_elements: 80_000,
            seed: 42,
        },
    );
    let stable = build_stable(&doc);
    let index = DocIndex::build(&doc);
    println!(
        "bibliography: {} elements, {} valued leaves",
        doc.len(),
        doc.num_values()
    );

    // Build a 5 KB structural synopsis plus a value layer.
    let report = ts_build(&stable, &BuildConfig::with_budget(5 * 1024));
    let sketch = report.sketch;
    let values = ValueIndex::build(&doc, &stable, &sketch, &report.stable_assignment, 64);
    println!(
        "synopsis: {} clusters / {} B structure + {} B value layer\n",
        sketch.len(),
        report.final_bytes,
        values.size_bytes()
    );

    let session = [
        (
            "articles after 2000",
            "q1: q0 //article[year[. > 2000]]\nq2: q1 /author",
        ),
        (
            "nineties conference papers",
            "q1: q0 //inproceedings/year[. >= 1990][. < 2000]",
        ),
        ("pre-1980 books", "q1: q0 //book[year[. < 1980]]"),
        ("everything from exactly 1999", "q1: q0 //year[. = 1999]"),
    ];
    println!(
        "{:<34} {:>12} {:>12} {:>8}",
        "query", "exact", "estimate", "err%"
    );
    for (title, twig) in session {
        let query = parse_twig(twig)?;
        let exact = selectivity(&doc, &index, &query);
        let estimate =
            eval_query_with_values(&sketch, &query, &EvalConfig::default(), Some(&values))
                .map_or(0.0, |r| estimate_selectivity(&r, &query));
        let err = (exact - estimate).abs() / exact.max(1.0) * 100.0;
        println!("{title:<34} {exact:>12.0} {estimate:>12.1} {err:>7.1}%");
    }

    // Without the value layer the predicates are ignored (structural
    // upper bound) — show the difference.
    let query = parse_twig("q1: q0 //article[year[. > 2000]]")?;
    let structural = eval_query(&sketch, &query, &EvalConfig::default())
        .map_or(0.0, |r| estimate_selectivity(&r, &query));
    let valued = eval_query_with_values(&sketch, &query, &EvalConfig::default(), Some(&values))
        .map_or(0.0, |r| estimate_selectivity(&r, &query));
    println!(
        "\nstructural upper bound (no value layer): {structural:.0}; with value layer: {valued:.1}"
    );
    Ok(())
}
