//! A lightweight item parser over the token stream.
//!
//! The call-graph and panic-reachability analyses (DESIGN.md §10) need
//! to know *which function* a token belongs to — something the flat
//! per-file rules never did. This module recognizes just enough of the
//! item grammar to produce a [`FnItem`] for every `fn` in a file: its
//! module/impl-qualified path, visibility, `#[cfg(test)]` status, the
//! token range of its body, and whether its doc comment carries a
//! `# Panics` section.
//!
//! Grammar subset (DESIGN.md §10): `mod name { … }`, `impl [Trait for]
//! Type { … }`, `trait Name { … }` are descended into; `fn name …
//! { body }` yields an item whose body is skipped as one brace-matched
//! block (nested `fn`s and closures are attributed to the enclosing
//! item — conservative for reachability); every other item (`struct`,
//! `enum`, `use`, `const`, macros, …) is skipped by balanced-delimiter
//! matching. Macros are opaque: the parser never expands them.

use crate::token::TokenKind;
use crate::SourceFile;

/// Declared visibility of an item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Visibility {
    /// Plain `pub` — part of the crate's public API.
    Public,
    /// `pub(crate)`, `pub(super)`, `pub(in …)`.
    Restricted,
    /// No visibility qualifier.
    Private,
}

/// One parsed function item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Workspace-relative path of the owning file.
    pub file: String,
    /// Package name of the owning crate (`axqa-core`).
    pub crate_name: String,
    /// True when the file is a binary target root.
    pub is_bin: bool,
    /// The function's bare name.
    pub name: String,
    /// Fully qualified path segments: crate ident, file-level modules,
    /// inline modules, the impl/trait type (for methods), and the name
    /// (`["axqa_core", "cluster", "ClusterState", "evaluate_merge"]`).
    pub path: Vec<String>,
    /// Enclosing `impl`/`trait` type, used to resolve `Self::` calls.
    pub self_type: Option<String>,
    /// Declared visibility.
    pub vis: Visibility,
    /// True when the `fn` token sits inside a `#[cfg(test)]` region.
    pub is_test: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token-index range of the body, exclusive of the braces
    /// (`tokens[body.0..body.1]`); `None` for bodyless trait methods.
    pub body: Option<(usize, usize)>,
    /// True when a doc comment directly above the item contains a
    /// `# Panics` section.
    pub has_panics_doc: bool,
}

impl FnItem {
    /// `path` joined with `::` — the display form used in the
    /// panic-surface snapshot.
    pub fn display_path(&self) -> String {
        self.path.join("::")
    }
}

/// Rust keywords: identifiers that can never be a call target or an
/// indexed expression.
pub const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move",
    "mut", "pub", "ref", "return", "self", "Self", "static", "struct", "super", "trait", "true",
    "type", "union", "unsafe", "use", "where", "while", "yield",
];

/// True when `text` is a Rust keyword.
pub fn is_keyword(text: &str) -> bool {
    KEYWORDS.contains(&text)
}

/// Module path contributed by the file's location: `src/lib.rs` and
/// `src/main.rs` contribute nothing, `src/build.rs` contributes
/// `["build"]`, `src/foo/bar.rs` contributes `["foo", "bar"]`, and
/// `src/foo/mod.rs` contributes `["foo"]`.
fn file_module_path(rel: &str) -> Vec<String> {
    let Some(pos) = rel.find("src/") else {
        return Vec::new();
    };
    let within = &rel[pos.saturating_add(4)..];
    let trimmed = within
        .strip_suffix(".rs")
        .unwrap_or(within)
        .trim_end_matches("/mod");
    if trimmed == "lib" || trimmed == "main" || trimmed == "mod" || within.starts_with("bin/") {
        return Vec::new();
    }
    trimmed
        .split('/')
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect()
}

/// Parses every function item in `file`.
pub fn parse_file(file: &SourceFile) -> Vec<FnItem> {
    let mut scope: Vec<String> = vec![file.crate_name.replace('-', "_")];
    scope.extend(file_module_path(&file.rel));
    let mut out = Vec::new();
    let mut cursor = 0usize;
    parse_items(
        file,
        &mut cursor,
        file.tokens.len(),
        &mut scope,
        None,
        &mut out,
    );
    out
}

/// Text of token `i`.
fn text(file: &SourceFile, i: usize) -> &str {
    file.tokens[i].text(&file.text)
}

/// Parses items in `tokens[*i..end]`, appending [`FnItem`]s to `out`.
/// `self_type` is the enclosing impl/trait type, if any.
#[allow(clippy::too_many_lines)]
fn parse_items(
    file: &SourceFile,
    i: &mut usize,
    end: usize,
    scope: &mut Vec<String>,
    self_type: Option<&str>,
    out: &mut Vec<FnItem>,
) {
    // Doc comments and visibility seen since the last completed item.
    let mut docs_panic = false;
    let mut vis = Visibility::Private;
    while *i < end {
        let token = &file.tokens[*i];
        match token.kind {
            TokenKind::DocComment => {
                if text(file, *i).contains("# Panics") {
                    docs_panic = true;
                }
                *i = i.saturating_add(1);
                continue;
            }
            TokenKind::Comment => {
                *i = i.saturating_add(1);
                continue;
            }
            _ => {}
        }
        let word = text(file, *i);
        match word {
            "#" => {
                *i = crate::token::skip_attr(&file.text, &file.tokens, *i);
            }
            "pub" => {
                *i = i.saturating_add(1);
                if *i < end && text(file, *i) == "(" {
                    vis = Visibility::Restricted;
                    *i = skip_balanced(file, *i, end, "(", ")");
                } else {
                    vis = Visibility::Public;
                }
            }
            "mod" => {
                let name_idx = i.saturating_add(1);
                let name = if name_idx < end {
                    text(file, name_idx).to_string()
                } else {
                    String::new()
                };
                *i = name_idx.saturating_add(1);
                // `mod name;` declares an out-of-line module (collected
                // as its own file); `mod name { … }` is descended into.
                if *i < end && text(file, *i) == "{" {
                    let close = find_close(file, *i, end, "{", "}");
                    let mut inner = i.saturating_add(1);
                    scope.push(name);
                    parse_items(file, &mut inner, close, scope, None, out);
                    scope.pop();
                    *i = close.saturating_add(1);
                } else if *i < end && text(file, *i) == ";" {
                    *i = i.saturating_add(1);
                }
                docs_panic = false;
                vis = Visibility::Private;
            }
            "impl" | "trait" => {
                let is_trait = word == "trait";
                // Scan to the body `{`, extracting the subject type:
                // for `impl [Trait for] Type`, the first type ident
                // after `for` (or after the generics when there is no
                // `for`); for `trait Name`, the name itself.
                let mut j = i.saturating_add(1);
                let mut subject: Option<String> = None;
                let mut after_for = false;
                let mut angle = 0i64;
                while j < end {
                    let t = text(file, j);
                    match t {
                        "{" => break,
                        ";" if angle == 0 => break, // `impl Trait for Type;`-less forms
                        "<" => angle = angle.saturating_add(1),
                        ">" => angle = angle.saturating_sub(1),
                        ">>" => angle = angle.saturating_sub(2),
                        "for" if angle == 0 && !is_trait => {
                            after_for = true;
                            subject = None; // the real subject follows
                        }
                        "where" if angle == 0 => {
                            // bounds only; subject already seen
                        }
                        _ if file.tokens[j].kind == TokenKind::Ident
                            && angle == 0
                            && !is_keyword(t)
                            && subject.is_none() =>
                        {
                            let _ = after_for;
                            subject = Some(t.to_string());
                        }
                        _ => {}
                    }
                    j = j.saturating_add(1);
                }
                if j < end && text(file, j) == "{" {
                    let close = find_close(file, j, end, "{", "}");
                    let mut inner = j.saturating_add(1);
                    let subject_name = subject.unwrap_or_default();
                    scope.push(subject_name.clone());
                    parse_items(file, &mut inner, close, scope, Some(&subject_name), out);
                    scope.pop();
                    *i = close.saturating_add(1);
                } else {
                    *i = j.saturating_add(1);
                }
                docs_panic = false;
                vis = Visibility::Private;
            }
            "fn" => {
                let fn_idx = *i;
                let name_idx = i.saturating_add(1);
                let name = if name_idx < end {
                    text(file, name_idx).to_string()
                } else {
                    String::new()
                };
                // Scan the signature for the body `{` or a trailing `;`
                // (bodyless trait method). Signatures carry no braces.
                let mut j = name_idx.saturating_add(1);
                while j < end {
                    let t = text(file, j);
                    if t == "{" || t == ";" {
                        break;
                    }
                    j = j.saturating_add(1);
                }
                let body = if j < end && text(file, j) == "{" {
                    let close = find_close(file, j, end, "{", "}");
                    let range = (j.saturating_add(1), close);
                    *i = close.saturating_add(1);
                    Some(range)
                } else {
                    *i = j.saturating_add(1);
                    None
                };
                let mut path = scope.clone();
                path.retain(|s| !s.is_empty());
                path.push(name.clone());
                out.push(FnItem {
                    file: file.rel.clone(),
                    crate_name: file.crate_name.clone(),
                    is_bin: file.is_bin,
                    name,
                    path,
                    self_type: self_type.map(str::to_string),
                    vis,
                    is_test: file.in_test.get(fn_idx).copied().unwrap_or(false),
                    line: file.tokens[fn_idx].line,
                    body,
                    has_panics_doc: docs_panic,
                });
                docs_panic = false;
                vis = Visibility::Private;
            }
            "{" => {
                // An item body we do not descend into (enum/struct
                // bodies, `extern` blocks, macro definitions).
                *i = skip_balanced(file, *i, end, "{", "}");
                docs_panic = false;
                vis = Visibility::Private;
            }
            ";" => {
                *i = i.saturating_add(1);
                docs_panic = false;
                vis = Visibility::Private;
            }
            _ => {
                *i = i.saturating_add(1);
            }
        }
    }
}

/// Index one past the token closing the `open`/`close` pair whose
/// opener sits at `i`.
fn skip_balanced(file: &SourceFile, i: usize, end: usize, open: &str, close: &str) -> usize {
    find_close(file, i, end, open, close).saturating_add(1)
}

/// Index of the token closing the `open`/`close` pair whose opener sits
/// at `i` (or `end` when unbalanced — the linter degrades gracefully).
fn find_close(file: &SourceFile, i: usize, end: usize, open: &str, close: &str) -> usize {
    let mut depth = 0i64;
    let mut j = i;
    while j < end {
        let t = text(file, j);
        if t == open {
            depth = depth.saturating_add(1);
        } else if t == close {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return j;
            }
        }
        j = j.saturating_add(1);
    }
    end
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(rel: &str, src: &str) -> Vec<FnItem> {
        parse_file(&SourceFile::new(
            rel.to_string(),
            "axqa-core".to_string(),
            false,
            src.to_string(),
        ))
    }

    #[test]
    fn free_fns_get_file_qualified_paths() {
        let items = parse(
            "crates/core/src/build.rs",
            "pub fn ts_build(x: u32) -> u32 { x }\nfn helper() {}\n",
        );
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].display_path(), "axqa_core::build::ts_build");
        assert_eq!(items[0].vis, Visibility::Public);
        assert!(items[0].body.is_some());
        assert_eq!(items[1].display_path(), "axqa_core::build::helper");
        assert_eq!(items[1].vis, Visibility::Private);
    }

    #[test]
    fn lib_rs_contributes_no_module_segment() {
        let items = parse("crates/core/src/lib.rs", "pub fn f() {}\n");
        assert_eq!(items[0].display_path(), "axqa_core::f");
    }

    #[test]
    fn impl_methods_carry_the_type_and_self_type() {
        let src = "struct S;\nimpl S {\n  pub fn new() -> S { S }\n  fn inner(&self) {}\n}\n\
                   impl std::fmt::Display for S { fn fmt(&self) -> F { todo!() } }\n";
        let items = parse("crates/core/src/cluster.rs", src);
        assert_eq!(items.len(), 3, "{items:?}");
        assert_eq!(items[0].display_path(), "axqa_core::cluster::S::new");
        assert_eq!(items[0].self_type.as_deref(), Some("S"));
        assert_eq!(items[1].vis, Visibility::Private);
        // `impl Trait for Type` binds to the type after `for`.
        assert_eq!(items[2].display_path(), "axqa_core::cluster::S::fmt");
    }

    #[test]
    fn generic_impls_resolve_the_base_type() {
        let src = "impl<'a, T: Clone> Wrapper<'a, T> { pub fn get(&self) -> &T { &self.0 } }\n";
        let items = parse("crates/core/src/io.rs", src);
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].self_type.as_deref(), Some("Wrapper"));
    }

    #[test]
    fn inline_mods_nest_and_cfg_test_marks_items() {
        let src = "mod inner {\n  pub fn deep() {}\n}\n#[cfg(test)]\nmod tests {\n  fn t() {}\n}\n";
        let items = parse("crates/core/src/eval.rs", src);
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].display_path(), "axqa_core::eval::inner::deep");
        assert!(!items[0].is_test);
        assert!(items[1].is_test);
    }

    #[test]
    fn restricted_visibility_and_panics_docs() {
        let src = "/// Does things.\n///\n/// # Panics\n/// When x is 0.\npub fn f(x: u32) {}\n\
                   pub(crate) fn g() {}\n";
        let items = parse("crates/core/src/build.rs", src);
        assert!(items[0].has_panics_doc);
        assert_eq!(items[1].vis, Visibility::Restricted);
        assert!(!items[1].has_panics_doc);
    }

    #[test]
    fn trait_decls_yield_bodyless_items() {
        let src = "pub trait Rule {\n  fn id(&self) -> &'static str;\n  fn severity(&self) -> u32 { 1 }\n}\n";
        let items = parse("crates/lint/src/lib.rs", src);
        assert_eq!(items.len(), 2);
        assert!(items[0].body.is_none());
        assert!(items[1].body.is_some());
        assert_eq!(items[0].path[items[0].path.len() - 2], "Rule");
    }

    #[test]
    fn bodies_with_nested_braces_are_one_range() {
        let src = "fn f() { if a { b(); } match c { _ => {} } }\nfn g() {}\n";
        let items = parse("crates/core/src/build.rs", src);
        assert_eq!(items.len(), 2);
        let (start, end) = items[0].body.unwrap();
        assert!(start < end);
        assert_eq!(items[1].name, "g");
    }

    #[test]
    fn structs_enums_and_macros_are_skipped_opaquely() {
        let src = "pub struct S { f: u32 }\nenum E { A, B }\nmacro_rules! m { () => {} }\n\
                   pub fn after() {}\n";
        let items = parse("crates/core/src/build.rs", src);
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].name, "after");
        assert_eq!(items[0].vis, Visibility::Public);
    }

    #[test]
    fn file_module_paths() {
        assert_eq!(
            file_module_path("crates/core/src/lib.rs"),
            Vec::<String>::new()
        );
        assert_eq!(file_module_path("crates/core/src/build.rs"), vec!["build"]);
        assert_eq!(
            file_module_path("crates/harness/src/foo/bar.rs"),
            vec!["foo", "bar"]
        );
        assert_eq!(file_module_path("crates/x/src/foo/mod.rs"), vec!["foo"]);
        assert_eq!(file_module_path("src/main.rs"), Vec::<String>::new());
        assert_eq!(
            file_module_path("crates/cli/src/bin/extra.rs"),
            Vec::<String>::new()
        );
    }
}
