// Benchmarks are test-like code: panicking extractors are acceptable here.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::arithmetic_side_effects
)]

//! Figure 13 / §6.2 — scaling: TSBUILD and estimation cost as the
//! document grows (the paper's large-dataset experiment, scaled to
//! laptop sizes; the reproduced shape is near-linear growth of
//! construction and size-independent estimation).

/// Bench binaries install the counting allocator (DESIGN.md §12)
/// so recorded spans carry real allocation profiles.
#[global_allocator]
static ALLOC: axqa_obs::alloc::CountingAlloc = axqa_obs::alloc::CountingAlloc;

use axqa_bench::Fixture;
use axqa_core::selectivity::estimate_query_selectivity;
use axqa_core::{ts_build, BuildConfig, EvalConfig};
use axqa_datagen::Dataset;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_fig13(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13_scaling");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(5));
    for elements in [10_000usize, 30_000, 90_000] {
        let fixture = Fixture::new(Dataset::Dblp, elements, 50);
        group.throughput(Throughput::Elements(elements as u64));
        group.bench_with_input(
            BenchmarkId::new("tsbuild_10kb", elements),
            &fixture,
            |b, fixture| b.iter(|| ts_build(&fixture.stable, &BuildConfig::with_budget(10 * 1024))),
        );
        let ts = ts_build(&fixture.stable, &BuildConfig::with_budget(10 * 1024)).sketch;
        group.bench_with_input(
            BenchmarkId::new("estimate_workload", elements),
            &fixture,
            |b, fixture| {
                b.iter(|| {
                    fixture
                        .workload
                        .iter()
                        .map(|q| estimate_query_selectivity(&ts, q, &EvalConfig::default()))
                        .sum::<f64>()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig13);
criterion_main!(benches);
