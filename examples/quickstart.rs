// Examples/integration tests are demo code: panicking extractors are fine.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::arithmetic_side_effects
)]

//! Quickstart: summarize a document, preview a query approximately,
//! compare against the exact answer.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the full TreeSketch life cycle on the paper's own running
//! example (the Figure 1 bibliography and the Figure 2 twig query).

use axqa::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's Figure 1 document: authors with papers, keywords,
    // names and books.
    let doc = parse_document(
        "<d>\
           <a><p><y/><t/><k/></p><p><y/><t/><k/><k/></p><n/></a>\
           <a><n/><p><y/><t/><k/></p><b><t/></b></a>\
           <a><n/><p><y/><t/><k/></p><b><t/></b></a>\
         </d>",
    )?;
    println!("document: {} elements, height {}", doc.len(), doc.height());

    // 1. The count-stable summary (BUILDSTABLE, §4.1): a lossless,
    //    deduplicated synopsis.
    let stable = build_stable(&doc);
    println!(
        "stable summary: {} classes, {} edges (lossless)",
        stable.len(),
        stable.num_edges()
    );

    // 2. Compress to a TreeSketch within a byte budget (TSBUILD, §4.2).
    let budget = SizeModel::TREESKETCH.graph_bytes(stable.len(), stable.num_edges()) - 1;
    let report = ts_build(&stable, &BuildConfig::with_budget(budget));
    println!(
        "treesketch: {} clusters after {} merges, squared error {:.2}, {} bytes",
        report.sketch.len(),
        report.merges,
        report.squared_error,
        report.final_bytes,
    );
    println!("{}", report.sketch.dump());

    // 3. The Figure 2 twig query: authors with books, their papers,
    //    keywords (optional), names (optional).
    let query = parse_twig(
        "q1: q0 //a[//b]\n\
         q2: q1 //p\n\
         q3: q2 ? //k\n\
         q4: q1 ? //n",
    )?;
    println!("query:\n{query}\n");

    // 4. Approximate answer (EVALQUERY, §4.3) + selectivity (§4.4).
    let result =
        eval_query(&report.sketch, &query, &EvalConfig::default()).expect("query is non-empty");
    println!("approximate result sketch:\n{}", result.dump());
    let estimate = estimate_selectivity(&result, &query);

    // 5. Exact ground truth for comparison.
    let index = DocIndex::build(&doc);
    let truth = evaluate(&doc, &index, &query).expect("non-empty");
    let exact = truth.binding_tuples(&query);
    println!("selectivity: exact {exact}, estimated {estimate:.3}");

    // 6. Quality of the approximate answer under the ESD metric (§5).
    let esd = esd_answer(&doc, &truth, &result, &EsdConfig::default());
    println!("ESD(approximate answer, true nesting tree) = {esd:.3}");
    Ok(())
}
