// Integration tests opt back into panicking extractors (workspace lint
// table, DESIGN.md "Static analysis & invariants").
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! Dynamic checks for the `pipeline::parallel_map_indexed_with` hot-path
//! root (ISSUE 9): worker-item spans stay alloc-free — the driver's own
//! queue/result allocations are granted and attributed *outside* the
//! item spans — and every parallel region reports the utilization
//! counters the bench baseline aggregates into `parallel.*`.

use axqa_harness::pipeline::parallel_map_indexed_with;

/// Allocation attribution needs the counting allocator in this binary.
#[global_allocator]
static ALLOC: axqa_obs::alloc::CountingAlloc = axqa_obs::alloc::CountingAlloc;

#[test]
fn parallel_worker_spans_are_alloc_free_and_report_utilization() {
    const ITEMS: usize = 64;
    const THREADS: usize = 3;
    let recorder = axqa_obs::Recorder::new();
    recorder.install();
    // Per-item body: open a span and do pure arithmetic on per-worker
    // state — the shape every harness experiment is expected to keep.
    let out = parallel_map_indexed_with(
        THREADS,
        ITEMS,
        || 0u64,
        |acc, i| {
            let _span = axqa_obs::span("test.worker_item");
            *acc = acc.wrapping_add(i as u64);
            *acc + i as u64
        },
    );
    axqa_obs::uninstall();
    let snapshot = recorder.drain();

    assert_eq!(out.len(), ITEMS);
    assert_eq!(snapshot.span_count("test.worker_item"), ITEMS);

    // The driver allocates (work queue, result vector — granted via
    // [[alloc-ok]]), but exclusive attribution keeps those events out
    // of the item spans: the measured loop body is alloc-free.
    assert_eq!(snapshot.span_alloc_count("test.worker_item"), 0);
    assert_eq!(snapshot.span_alloc_bytes("test.worker_item"), 0);

    // Utilization telemetry: one region, capacity = wall x threads, and
    // every item accounted to exactly one worker.
    assert_eq!(snapshot.counter("parallel.regions"), 1);
    let wall = snapshot.counter("parallel.wall_us");
    assert_eq!(
        snapshot.counter("parallel.capacity_us"),
        wall * THREADS as u64
    );
    let items = snapshot
        .histograms
        .iter()
        .find(|(name, _)| name == "parallel.worker_items")
        .map(|(_, hist)| hist)
        .expect("per-worker item histogram");
    assert_eq!(items.count, THREADS as u64);
    assert_eq!(items.sum, ITEMS as u64);
}
