//! XML serialization of structural documents.
//!
//! The writer produces well-formed XML with empty elements self-closed.
//! `write_document` is the compact form used to measure the "file size"
//! column of Table 1; `write_document_pretty` indents for human reading.

use crate::tree::{Document, NodeId};
use std::fmt::Write as _;

/// Serializes `doc` compactly (no whitespace between elements).
pub fn write_document(doc: &Document) -> String {
    let mut out = String::with_capacity(doc.len() * 8);
    write_node(doc, doc.root(), &mut out, None, 0);
    out
}

/// Serializes `doc` with two-space indentation per depth level.
pub fn write_document_pretty(doc: &Document) -> String {
    let mut out = String::with_capacity(doc.len() * 12);
    write_node(doc, doc.root(), &mut out, Some(2), 0);
    out
}

fn write_node(doc: &Document, node: NodeId, out: &mut String, indent: Option<usize>, depth: usize) {
    let pad = |out: &mut String, depth: usize| {
        if let Some(step) = indent {
            for _ in 0..depth * step {
                out.push(' ');
            }
        }
    };
    let name = doc.label_name(node);
    pad(out, depth);
    if doc.is_leaf(node) {
        match doc.value(node) {
            Some(v) => {
                let _ = write!(out, "<{name}>{v}</{name}>");
            }
            None => {
                let _ = write!(out, "<{name}/>");
            }
        }
        if indent.is_some() {
            out.push('\n');
        }
        return;
    }
    let _ = write!(out, "<{name}>");
    if indent.is_some() {
        out.push('\n');
    }
    for child in doc.children(node) {
        write_node(doc, child, out, indent, depth + 1);
    }
    pad(out, depth);
    let _ = write!(out, "</{name}>");
    if indent.is_some() {
        out.push('\n');
    }
}

/// The serialized byte length of the compact form, the paper's notion of
/// "file size" for Table 1.
pub fn serialized_len(doc: &Document) -> usize {
    let mut total = 0usize;
    for node in doc.pre_order() {
        let name_len = doc.label_name(node).len();
        if doc.is_leaf(node) {
            match doc.value(node) {
                Some(v) => total += 2 * name_len + 5 + format!("{v}").len(),
                None => total += name_len + 3, // <name/>
            }
        } else {
            total += 2 * name_len + 5; // <name></name>
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_document;

    #[test]
    fn roundtrip_compact() {
        let src = "<a><b><c/></b><b/></a>";
        let doc = parse_document(src).unwrap();
        assert_eq!(write_document(&doc), src);
    }

    #[test]
    fn pretty_reparses_identically() {
        let doc = parse_document("<a><b><c/><c/></b></a>").unwrap();
        let pretty = write_document_pretty(&doc);
        let doc2 = parse_document(&pretty).unwrap();
        assert_eq!(write_document(&doc2), write_document(&doc));
        assert!(pretty.contains("\n  <b>"));
    }

    #[test]
    fn serialized_len_matches_actual_output() {
        let doc = parse_document("<root><x><y/></x><z/></root>").unwrap();
        assert_eq!(serialized_len(&doc), write_document(&doc).len());
    }
}
