//! `axqa` — command-line front end for TreeSketch approximate answering.
//!
//! ```text
//! axqa stats <doc.xml>
//!     Document statistics (elements, size, labels, height, fan-out).
//!
//! axqa summarize <doc.xml> --budget 10KB -o <sketch.ts> [--values f]
//!                [--threads N]
//!     Build the count-stable summary, compress it with TSBUILD, save;
//!     --values additionally writes the value layer, --threads sets the
//!     candidate-scoring worker count (default: all cores; 1 = serial).
//!
//! axqa estimate <sketch.ts> -q "q1: q0 //a[//b]; q2: q1 //p" [--values f]
//!     Selectivity estimate from a saved synopsis (';' separates lines);
//!     --values loads a value layer so `[. op c]` predicates estimate.
//!
//! axqa preview <sketch.ts> -q <twig> [--expand N]
//!     Approximate answer: result-sketch dump, or an expanded concrete
//!     answer tree capped at N nodes.
//!
//! axqa exact <doc.xml> -q <twig>
//!     Exact selectivity (ground truth; reads the whole document).
//!
//! axqa generate <xmark|imdb|sprot|dblp> --elements N [--seed S] -o <doc.xml>
//!     Synthetic dataset generation.
//!
//! axqa workload <doc.xml> -n 100 [--seed S] [--negative]
//!     Sample a twig workload from the document's stable summary.
//! ```

use axqa_core::{
    eval_query, eval_query_with_values, expand_result, ts_build, BuildConfig, EvalConfig,
    TreeSketch,
};
use axqa_datagen::workload::{negative_workload, positive_workload, WorkloadConfig};
use axqa_datagen::{generate, Dataset, GenConfig};
use axqa_eval::DocIndex;
use axqa_query::{parse_twig, TwigQuery};
use axqa_synopsis::build_stable;
use axqa_xml::{parse_document, write_document, DocStats, Document};
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::from(1)
        }
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return Err(
            "usage: axqa <stats|summarize|estimate|preview|exact|generate|workload> …".into(),
        );
    };
    let rest = &args[1..];
    match command.as_str() {
        "stats" => cmd_stats(rest),
        "summarize" => cmd_summarize(rest),
        "estimate" => cmd_estimate(rest),
        "preview" => cmd_preview(rest),
        "exact" => cmd_exact(rest),
        "generate" => cmd_generate(rest),
        "workload" => cmd_workload(rest),
        other => Err(format!("unknown command {other:?}")),
    }
}

// ---------------------------------------------------------------------
// Option parsing helpers (no external dependencies).
// ---------------------------------------------------------------------

struct Opts {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Opts {
    fn parse(args: &[String], value_flags: &[&str]) -> Result<Opts, String> {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut iter = args.iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--").or_else(|| arg.strip_prefix('-')) {
                if value_flags.contains(&name) {
                    let value = iter
                        .next()
                        .ok_or_else(|| format!("missing value for --{name}"))?;
                    flags.push((name.to_owned(), Some(value.clone())));
                } else {
                    flags.push((name.to_owned(), None));
                }
            } else {
                positional.push(arg.clone());
            }
        }
        Ok(Opts { positional, flags })
    }

    fn value(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn positional(&self, index: usize, what: &str) -> Result<&str, String> {
        self.positional
            .get(index)
            .map(String::as_str)
            .ok_or_else(|| format!("missing {what}"))
    }
}

fn read_file(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

fn write_file(path: &str, content: &str) -> Result<(), String> {
    std::fs::write(path, content).map_err(|e| format!("cannot write {path}: {e}"))
}

fn load_document(path: &str) -> Result<Document, String> {
    parse_document(&read_file(path)?).map_err(|e| format!("{path}: {e}"))
}

fn load_sketch(path: &str) -> Result<TreeSketch, String> {
    axqa_core::io::from_text(&read_file(path)?).map_err(|e| format!("{path}: {e}"))
}

/// Parses "10KB", "512B", "2MB" or a plain byte count.
fn parse_budget(text: &str) -> Result<usize, String> {
    let lower = text.to_ascii_lowercase();
    let (digits, factor) = if let Some(d) = lower.strip_suffix("kb") {
        (d, 1024)
    } else if let Some(d) = lower.strip_suffix("mb") {
        (d, 1024 * 1024)
    } else if let Some(d) = lower.strip_suffix('b') {
        (d, 1)
    } else {
        (lower.as_str(), 1)
    };
    digits
        .trim()
        .parse::<usize>()
        .map(|n| n * factor)
        .map_err(|_| format!("bad budget {text:?} (try 10KB)"))
}

/// Parses a twig given inline (';' separates lines) or from a file.
fn query_from_opts(opts: &Opts) -> Result<TwigQuery, String> {
    let text = if let Some(inline) = opts.value("q") {
        inline.replace(';', "\n")
    } else if let Some(path) = opts.value("query-file") {
        read_file(path)?
    } else {
        return Err("pass a query with -q \"q1: q0 //a\" (';' separates lines)".into());
    };
    parse_twig(&text).map_err(|e| e.to_string())
}

// ---------------------------------------------------------------------
// Commands
// ---------------------------------------------------------------------

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args, &[])?;
    let doc = load_document(opts.positional(0, "document path")?)?;
    let stats = DocStats::compute(&doc);
    let stable = build_stable(&doc);
    println!("elements        {}", stats.elements);
    println!("file bytes      {}", stats.file_bytes);
    println!("distinct labels {}", stats.distinct_labels);
    println!("height          {}", stats.height);
    println!("max fan-out     {}", stats.max_fanout);
    println!("mean fan-out    {:.2}", stats.mean_fanout);
    println!(
        "stable summary  {} classes, {} edges ({} bytes)",
        stable.len(),
        stable.num_edges(),
        axqa_synopsis::SizeModel::TREESKETCH.graph_bytes(stable.len(), stable.num_edges()),
    );
    Ok(())
}

fn cmd_summarize(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args, &["budget", "o", "values", "threads"])?;
    let doc = load_document(opts.positional(0, "document path")?)?;
    let budget = parse_budget(opts.value("budget").unwrap_or("10KB"))?;
    let output = opts.value("o").ok_or("missing -o <sketch.ts>")?;
    let stable = build_stable(&doc);
    let mut build_config = BuildConfig::with_budget(budget);
    if let Some(threads) = opts.value("threads") {
        build_config.threads = threads.parse().map_err(|_| "bad --threads")?;
    }
    let report = ts_build(&stable, &build_config);
    write_file(output, &axqa_core::io::to_text(&report.sketch))?;
    if let Some(values_path) = opts.value("values") {
        let values = axqa_core::ValueIndex::build(
            &doc,
            &stable,
            &report.sketch,
            &report.stable_assignment,
            64,
        );
        write_file(values_path, &values.to_text())?;
        println!(
            "wrote {values_path}: value layer, {} bytes",
            values.size_bytes()
        );
    }
    println!(
        "wrote {output}: {} clusters, {} edges, {} bytes (budget {budget}), sq error {:.2}, {} merges",
        report.sketch.len(),
        report.sketch.num_edges(),
        report.final_bytes,
        report.squared_error,
        report.merges,
    );
    if !report.reached_budget {
        println!("note: label-split floor reached above the budget");
    }
    Ok(())
}

fn cmd_estimate(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args, &["q", "query-file", "values"])?;
    let sketch = load_sketch(opts.positional(0, "sketch path")?)?;
    let query = query_from_opts(&opts)?;
    let values = load_values(&opts, &sketch)?;
    let estimate =
        match eval_query_with_values(&sketch, &query, &EvalConfig::default(), values.as_ref()) {
            Some(result) => axqa_core::estimate_selectivity(&result, &query),
            None => 0.0,
        };
    println!("{estimate}");
    Ok(())
}

/// Loads the optional value layer and checks it matches the sketch.
fn load_values(opts: &Opts, sketch: &TreeSketch) -> Result<Option<axqa_core::ValueIndex>, String> {
    let Some(path) = opts.value("values") else {
        return Ok(None);
    };
    let values =
        axqa_core::ValueIndex::from_text(&read_file(path)?).map_err(|e| format!("{path}: {e}"))?;
    if values.len() != sketch.len() {
        return Err(format!(
            "{path}: value layer has {} nodes but the sketch has {}",
            values.len(),
            sketch.len()
        ));
    }
    Ok(Some(values))
}

fn cmd_preview(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args, &["q", "query-file", "expand"])?;
    let sketch = load_sketch(opts.positional(0, "sketch path")?)?;
    let query = query_from_opts(&opts)?;
    match eval_query(&sketch, &query, &EvalConfig::default()) {
        None => println!("(empty answer)"),
        Some(result) => {
            if let Some(cap) = opts.value("expand") {
                let cap: usize = cap.parse().map_err(|_| "bad --expand value")?;
                let expansion = expand_result(&result, cap);
                print_answer_tree(&expansion.tree);
                if expansion.truncated {
                    println!("… (truncated at {cap} nodes)");
                }
            } else {
                print!("{}", result.dump());
                for var in query.vars().skip(1) {
                    println!("{var}: ~{:.1} bindings", result.estimated_bindings(var));
                }
            }
        }
    }
    Ok(())
}

fn print_answer_tree(tree: &axqa_eval::AnswerTree) {
    fn rec(tree: &axqa_eval::AnswerTree, node: u32, depth: usize) {
        let n = &tree.nodes()[node as usize];
        println!(
            "{}{} ({})",
            "  ".repeat(depth),
            tree.labels().name(n.label),
            n.var
        );
        for &child in &n.children {
            rec(tree, child, depth + 1);
        }
    }
    rec(tree, tree.root(), 0);
}

fn cmd_exact(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args, &["q", "query-file"])?;
    let doc = load_document(opts.positional(0, "document path")?)?;
    let query = query_from_opts(&opts)?;
    let index = DocIndex::build(&doc);
    println!("{}", axqa_eval::selectivity(&doc, &index, &query));
    Ok(())
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args, &["elements", "seed", "o"])?;
    let dataset = match opts.positional(0, "dataset name")? {
        "xmark" => Dataset::XMark,
        "imdb" => Dataset::Imdb,
        "sprot" => Dataset::SProt,
        "dblp" => Dataset::Dblp,
        other => return Err(format!("unknown dataset {other:?} (xmark|imdb|sprot|dblp)")),
    };
    let elements: usize = opts
        .value("elements")
        .unwrap_or("10000")
        .parse()
        .map_err(|_| "bad --elements")?;
    let seed: u64 = opts
        .value("seed")
        .unwrap_or("24091")
        .parse()
        .map_err(|_| "bad --seed")?;
    let doc = generate(
        dataset,
        &GenConfig {
            target_elements: elements,
            seed,
        },
    );
    let text = write_document(&doc);
    match opts.value("o") {
        Some(path) => {
            write_file(path, &text)?;
            println!("wrote {path}: {} elements, {} bytes", doc.len(), text.len());
        }
        None => println!("{text}"),
    }
    Ok(())
}

fn cmd_workload(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args, &["n", "seed"])?;
    let doc = load_document(opts.positional(0, "document path")?)?;
    let stable = build_stable(&doc);
    let count: usize = opts
        .value("n")
        .unwrap_or("20")
        .parse()
        .map_err(|_| "bad -n")?;
    let seed: u64 = opts
        .value("seed")
        .unwrap_or("24091")
        .parse()
        .map_err(|_| "bad --seed")?;
    let config = WorkloadConfig {
        count,
        seed,
        ..WorkloadConfig::default()
    };
    let queries = if opts.has("negative") {
        negative_workload(&stable, &config)
    } else {
        positive_workload(&stable, &config)
    };
    for query in queries {
        println!("{}", query.to_string().replace('\n', " ; "));
    }
    Ok(())
}
